(* Protocol lint: run the Lepower_check analysis pass over a clean
   election and over the seeded-bug fixtures, and show what each
   analyzer certifies — the paper's disciplines (single-writer
   registers, the ≤ k-values space bound, wait-freedom) as an
   executable lint.

   Run with:  dune exec examples/protocol_lint.exe *)

let () =
  let open Lepower_check in
  (* A known-good protocol: every interleaving of the one-shot cas
     election is explored and every trace passes every rule. *)
  let clean = Lint.lint_instance (Protocols.Cas_election.instance ~k:3 ~n:2) in
  Format.printf "%a@.@." Report.pp clean;
  assert (Report.ok clean);

  (* Each fixture plants exactly one defect. *)
  List.iter
    (fun target ->
      let report = Lint.lint target in
      Format.printf "%a@.@." Report.pp report;
      assert (not (Report.ok report)))
    (Lint.fixtures ());

  (* The same reports stream as strict JSONL for tooling: one
     finding record per line plus a per-subject summary. *)
  let docs = Report.jsonl clean in
  Printf.printf "JSONL (%d documents):\n" (List.length docs);
  List.iter
    (fun doc -> print_endline (Lepower_obs.Json.to_string doc))
    docs
