(* Benchmark and experiment harness.

   The paper is pure theory — its "evaluation" is a set of quantitative
   claims (bounds, capacities, invariants).  This harness regenerates
   each claim as a table (experiments E1-E14 of DESIGN.md), then measures
   the executable constructions with Bechamel micro-benchmarks (B1-B5).
   EXPERIMENTS.md records paper-vs-measured for every row printed here. *)

module Value = Memory.Value

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let ok_or b = if b then "ok" else "FAIL"

(* ------------------------------------------------------------------ *)
(* E1: the capacity ladder — (k-1)! <= n_k <= O(k^(k^2+3)).           *)

let e1_capacity () =
  header "E1  capacity of compare&swap-(k) + r/w registers";
  Printf.printf "%-3s %-11s %-11s %-13s %-9s %s\n" "k" "bcl(k-1)" "cas(k-1)"
    "perm((k-1)!)" "dup-fails" "upper bound k^(k^2+3)";
  List.iter
    (fun k ->
      let verify instance seeds =
        let ok = ref true in
        for seed = 0 to seeds - 1 do
          match Protocols.Election.run_random instance ~seed with
          | Ok _ -> ()
          | Error _ -> ok := false
        done;
        !ok
      in
      let fact = Protocols.Perm.factorial (k - 1) in
      let bcl = verify (Protocols.Bcl_election.instance ~k ~n:(k - 1)) 10 in
      let cas = verify (Protocols.Cas_election.instance ~k ~n:(k - 1)) 10 in
      let perm =
        verify
          (Protocols.Permutation_election.instance ~k ~n:fact)
          (if fact > 100 then 3 else 10)
      in
      (* Beyond-capacity control: the duplicate-permutation protocol
         violates validity under a crash schedule. *)
      let dup_fails =
        let i =
          Protocols.Permutation_election.duplicate_instance ~k ~n:(fact + 1)
        in
        match
          Protocols.Election.run_with_crashes i ~seed:1
            ~crashed:(List.init fact (fun q -> q))
        with
        | Ok _ -> false
        | Error _ -> true
      in
      Printf.printf "%-3d %-11s %-11s %-13s %-9s %s\n" k
        (Printf.sprintf "%d %s" (k - 1) (ok_or bcl))
        (Printf.sprintf "%d %s" (k - 1) (ok_or cas))
        (Printf.sprintf "%d %s" fact (ok_or perm))
        (ok_or dup_fails)
        (Core.Bounds.upper_bound_string ~k))
    [ 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* E2: the Burns-Cruz-Loui baseline — size-k RMW alone caps at k-1.   *)

let e2_bcl () =
  header "E2  BCL baseline: k-valued RMW register alone";
  Printf.printf "%-3s %-22s %-24s\n" "k" "n=k-1 (exhaustive)" "n=k (violation found)";
  List.iter
    (fun k ->
      let fits =
        match
          Protocols.Election.explore_stats
            (Protocols.Bcl_election.instance ~k ~n:(k - 1))
            ~max_steps:50
        with
        | Ok s ->
          Printf.sprintf "ok (%d sched, %d cps)" s.Runtime.Explore.terminals
            s.Runtime.Explore.choice_points
        | Error _ -> "FAIL"
      in
      let breaks =
        match
          Protocols.Election.explore_all
            (Protocols.Bcl_election.overloaded_instance ~k)
            ~max_steps:50
        with
        | Ok _ -> "FAIL (no violation)"
        | Error _ -> "ok (witness schedule)"
      in
      Printf.printf "%-3d %-22s %-24s\n" k fits breaks)
    [ 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* E3: Lemma 1.1 — the move/jump game is bounded by m^k moves.        *)

let e3_game () =
  header "E3  Lemma 1.1 move/jump game: moves before a painted cycle";
  Printf.printf "%-3s %-3s %-8s %-8s %-9s %-8s %-10s %s\n" "m" "k" "greedy"
    "exact" "no-jumps" "m^k" "exact<=m^k" "potential audit";
  List.iter
    (fun (m, k) ->
      let greedy, exact, bound = Game.Search.strategy_gap ~m ~k ~seed:42 in
      let no_jumps = Game.Search.max_moves_no_jumps ~m ~k in
      let audit =
        let run = Game.Search.greedy_run ~m ~k ~seed:42 in
        match
          Game.Potential.audit_run
            ~init:(Game.Board.create ~m ~k ())
            ~actions:run.Game.Search.actions
        with
        | Ok a ->
          if a.Game.Potential.monotone && a.Game.Potential.amortized then
            "monotone+amortized"
          else "VIOLATED"
        | Error e -> e
      in
      Printf.printf "%-3d %-3d %-8d %-8d %-9d %-8d %-10s %s\n" m k greedy
        exact no_jumps bound
        (ok_or (exact <= bound))
        audit)
    [ (2, 2); (2, 3); (2, 4); (3, 2); (3, 3) ]

(* ------------------------------------------------------------------ *)
(* E4: the reduction — emulators extract bounded set-consensus.       *)

let e4_emulation () =
  header "E4  the reduction: m=(k-1)!+1 emulators, decisions <= (k-1)!";
  Printf.printf "%-3s %-10s %-6s %-7s %-8s %-12s %-9s %s\n" "k" "schedule"
    "seeds" "width" "labels" "consistent" "settled" "witnesses";
  List.iter
    (fun (k, schedule, schedule_name, seeds) ->
      let widths = ref [] in
      let all_consistent = ref true in
      let all_settled = ref true in
      let all_witness = ref true in
      let labels = ref 0 in
      for seed = 0 to seeds - 1 do
        let r =
          Core.Reduction.check ~seed ~schedule
            (Core.Workloads.over_capacity_cas_election ~k
               ~num_vps:(40 * Core.Bounds.emulators ~k))
            (Core.Emulation.small_params ~k)
        in
        widths := r.Core.Reduction.width :: !widths;
        labels := max !labels r.Core.Reduction.labels_used;
        all_consistent := !all_consistent && r.Core.Reduction.same_label_consistent;
        all_settled := !all_settled && r.Core.Reduction.all_settled;
        all_witness :=
          !all_witness
          && List.for_all
               (fun rep -> rep.Core.Replay.feasible)
               (Core.Replay.check_all_leaves
                  r.Core.Reduction.outcome.Core.Emulation.final)
          && Core.Replay.vp_timelines
               r.Core.Reduction.outcome.Core.Emulation.final
             = []
      done;
      let wmin = List.fold_left min max_int !widths in
      let wmax = List.fold_left max 0 !widths in
      Printf.printf "%-3d %-10s %-6d %d..%-4d %-8d %-12s %-9s %s\n" k
        schedule_name seeds wmin wmax !labels
        (ok_or !all_consistent) (ok_or !all_settled) (ok_or !all_witness))
    [
      (3, `Random, "random", 10);
      (3, `Stale_view, "stale", 5);
      (4, `Random, "random", 5);
      (4, `Stale_view, "stale", 5);
      (5, `Stale_view, "stale", 3);
      (6, `Stale_view, "stale", 2);
    ]

(* ------------------------------------------------------------------ *)
(* E5: invariant audits on value-revisiting workloads.                *)

let e5_invariants () =
  header "E5  invariant audits (cycling workload, k=3, 10 seeds)";
  let totals = Hashtbl.create 8 in
  let runs = 10 in
  for seed = 0 to runs - 1 do
    let o =
      Core.Emulation.run ~seed
        (Core.Emulation.create
           (Core.Workloads.cycling ~k:3 ~rounds:1 ~num_vps:120)
           (Core.Emulation.small_params ~k:3))
    in
    List.iter
      (fun (name, violations) ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt totals name) in
        Hashtbl.replace totals name (prev + List.length violations))
      (Core.Invariants.all o.Core.Emulation.final)
  done;
  Printf.printf "%-24s %-12s %s\n" "audit" "violations" "expectation";
  List.iter
    (fun (name, expectation) ->
      let v = Option.value ~default:0 (Hashtbl.find_opt totals name) in
      Printf.printf "%-24s %-12d %s\n" name v expectation)
    [
      ("label-budget", "0 (hard)");
      ("history-well-formed", "0 (hard)");
      ("history-backed", "0 (hard)");
      ("release-margin", "0 (hard)");
      ("reads-justified", "0 (hard)");
      ("same-label-agreement", "n/a for non-election A");
      ("stable-chain", "reported (laptop provisioning)");
    ]

(* ------------------------------------------------------------------ *)
(* E6: Herlihy hierarchy separation.                                  *)

let e6_hierarchy () =
  header "E6  consensus-number analysis vs published values";
  List.iter
    (fun row -> Format.printf "%a@." Hierarchy.Separation.pp_row row)
    (Hierarchy.Separation.table ());
  let inputs = [ Value.int 1; Value.int 2 ] in
  (match
     Hierarchy.Bivalency.drive
       (Protocols.Consensus.two_from_test_and_set ~inputs)
   with
  | Hierarchy.Bivalency.Critical { pending; _ } ->
    Printf.printf "bivalency critical config: pending = %s\n"
      (String.concat ", "
         (List.map (fun (p, l) -> Printf.sprintf "p%d->%s" p l) pending))
  | _ -> print_endline "bivalency: unexpected");
  let neg name instance =
    match Protocols.Consensus.explore_all instance ~max_steps:80 with
    | Ok _ -> Printf.printf "%s: FAIL (no violation)\n" name
    | Error _ -> Printf.printf "%s: violation witnessed\n" name
  in
  neg "r/w 2-consensus" (Protocols.Consensus.naive_rw ~inputs);
  neg "test&set 3-consensus" Hierarchy.Separation.test_and_set_three_candidate;
  neg "test&set + queue 3-consensus"
    Hierarchy.Robustness.three_consensus_candidate;
  (* Robustness probes (Jayanti [14]): composites. *)
  let show_comp name a b =
    Format.printf "composite %-14s %a@." name
      Hierarchy.Cons_number.pp_classification
      (Hierarchy.Robustness.composite_classification a b)
  in
  show_comp "rw x rw" Objects.Zoo.rw_register Objects.Zoo.rw_register;
  show_comp "t&s x queue" Objects.Zoo.test_and_set Objects.Zoo.queue;
  (* Kleinberg-Mullainathan [16]: election with one object => binary
     consensus among half as many processes; instantiated on the BCL
     register and checked exhaustively over all inputs and schedules. *)
  let km_ok = ref true in
  List.iter
    (fun inputs ->
      match
        Protocols.Consensus.explore_all
          (Hierarchy.Km_bound.from_bcl_register ~k:5 ~inputs)
          ~max_steps:40
      with
      | Ok _ -> ()
      | Error _ -> km_ok := false)
    [ [ false; false ]; [ false; true ]; [ true; false ]; [ true; true ] ];
  Printf.printf
    "KM transformation: 5-valued register alone -> binary consensus for 2: %s\n"
    (ok_or !km_ok)

(* ------------------------------------------------------------------ *)
(* E7: universality at the top of the hierarchy.                      *)

let e7_universal () =
  header "E7  universal construction: linearizability sweep";
  let qspec = Objects.Queue_obj.spec () in
  let total = ref 0 and passed = ref 0 in
  for seed = 0 to 9 do
    let u = Universal.create ~name:"u" ~spec:qspec ~n:3 ~max_ops:24 in
    let hist = "hist" in
    let bindings =
      (hist, Lincheck.History.recorder_spec ()) :: Universal.bindings u
    in
    let prog pid =
      let open Runtime.Program in
      complete
        (let* _ =
           list_fold
             (fun seq op ->
               let* _ =
                 Lincheck.History.bracket hist op
                   (Universal.invoke u ~pid ~seq op)
               in
               return (seq + 1))
             0
             [ Objects.Queue_obj.enq_op (Value.int pid); Objects.Queue_obj.deq_op ]
         in
         return Value.unit)
    in
    let store = Memory.Store.create bindings in
    let config = Runtime.Engine.init store (List.init 3 prog) in
    let outcome =
      Runtime.Engine.run ~max_steps:500_000
        ~sched:(Runtime.Sched.random ~seed) config
    in
    incr total;
    if
      outcome.Runtime.Engine.faults = []
      && Lincheck.Checker.is_linearizable ~spec:qspec
           (Lincheck.History.of_store outcome.Runtime.Engine.final.Runtime.Engine.store
              hist)
    then incr passed
  done;
  Printf.printf "universal queue over sticky consensus cells: %d/%d runs linearizable\n"
    !passed !total

(* ------------------------------------------------------------------ *)
(* E8: history machinery under load.                                  *)

let e8_history () =
  header "E8  history tree growth (cycling workload)";
  Printf.printf "%-3s %-7s %-7s %-9s %-9s %-8s %-8s %s\n" "k" "rounds" "vps"
    "history" "attaches" "splits" "releases" "labels";
  List.iter
    (fun (k, rounds, vps) ->
      let o =
        Core.Emulation.run ~seed:3
          (Core.Emulation.create
             (Core.Workloads.cycling ~k ~rounds ~num_vps:vps)
             (Core.Emulation.small_params ~k))
      in
      let final = o.Core.Emulation.final in
      let s = Core.Emulation.stats final in
      let leaves = Core.History_tree.leaf_labels (Core.Emulation.shared_tree final) in
      let max_history =
        List.fold_left
          (fun acc l -> max acc (List.length (Core.Emulation.history_of final l)))
          0 leaves
      in
      Printf.printf "%-3d %-7d %-7d %-9d %-9d %-8d %-8d %d\n" k rounds vps
        max_history s.Core.Emulation.attaches s.Core.Emulation.splits
        s.Core.Emulation.releases (List.length leaves))
    [ (3, 1, 120); (3, 2, 240); (3, 3, 480); (4, 1, 560) ]

(* ------------------------------------------------------------------ *)
(* E10: provisioning sweep — the space bound's observable shape: how   *)
(* many suspended v-processes the emulation needs before every         *)
(* emulator completes.                                                 *)

let e10_provisioning () =
  header "E10  provisioning sweep (cycling k=3 rounds=2, m=3, paper batch=m*k^2=27)";
  Printf.printf "%-8s %-8s %-9s %-9s %-10s %s\n" "batch" "vps" "decided"
    "stalled" "attaches" "releases";
  List.iter
    (fun (batch, vps) ->
      let alg = Core.Workloads.cycling ~k:3 ~rounds:2 ~num_vps:vps in
      let params =
        { (Core.Emulation.small_params ~k:3) with Core.Emulation.batch }
      in
      let o = Core.Emulation.run ~seed:0 (Core.Emulation.create alg params) in
      let s = Core.Emulation.stats o.Core.Emulation.final in
      Printf.printf "%-8d %-8d %-9d %-9d %-10d %d\n" batch vps
        (List.length o.Core.Emulation.decisions)
        (List.length o.Core.Emulation.stalled)
        s.Core.Emulation.attaches s.Core.Emulation.releases)
    [ (3, 60); (3, 240); (9, 240); (27, 720) ];
  print_endline
    "(larger suspension batches buy deeper tree attachments — the\n\
     thresholds lambda_D = sum g*m^g gate depth by available excess;\n\
     under-provisioned runs stall instead of fabricating history, which\n\
     is precisely how the Pi-sized requirement manifests at small scale)"

(* ------------------------------------------------------------------ *)
(* E9: several bounded registers — capacity is the product of the     *)
(* per-register factorials (the paper's §4 extension).                *)

let e9_multi_register () =
  header "E9  multiple bounded registers: capacity = product of (k_s-1)!";
  Printf.printf "%-12s %-10s %-10s %s\n" "registers" "capacity" "BCL product"
    "verified at capacity";
  List.iter
    (fun ks ->
      let cap = Protocols.Multi_election.capacity ~ks in
      let bcl_product = List.fold_left (fun acc k -> acc * (k - 1)) 1 ks in
      let instance = Protocols.Multi_election.instance ~ks ~n:cap in
      let ok = ref true in
      for seed = 0 to 9 do
        match Protocols.Election.run_random instance ~seed with
        | Ok _ -> ()
        | Error _ -> ok := false
      done;
      Printf.printf "%-12s %-10d %-10d %s\n"
        (Fmt.str "[%a]" Fmt.(list ~sep:(any ";") int) ks)
        cap bcl_product (ok_or !ok))
    [ [ 3 ]; [ 3; 3 ]; [ 4; 3 ]; [ 4; 4 ]; [ 3; 3; 3 ] ]

(* ------------------------------------------------------------------ *)
(* A1: ablations — what each emulation mechanism buys.                *)

let a1_ablations () =
  header "A1  ablation: emulation mechanisms (cycling k=3, rounds=2)";
  Printf.printf "%-26s %-9s %-9s %-9s %-9s %s\n" "variant" "decided"
    "stalled" "attaches" "releases" "splits";
  let alg () = Core.Workloads.cycling ~k:3 ~rounds:2 ~num_vps:240 in
  let base = { (Core.Emulation.small_params ~k:3) with Core.Emulation.batch = 9 } in
  List.iter
    (fun (name, params) ->
      let o = Core.Emulation.run ~seed:0 (Core.Emulation.create (alg ()) params) in
      let s = Core.Emulation.stats o.Core.Emulation.final in
      Printf.printf "%-26s %-9d %-9d %-9d %-9d %d\n" name
        (List.length o.Core.Emulation.decisions)
        (List.length o.Core.Emulation.stalled)
        s.Core.Emulation.attaches s.Core.Emulation.releases
        s.Core.Emulation.splits)
    [
      ("full (this paper)", base);
      ( "no in-tree attach ([1])",
        { base with Core.Emulation.disable_attach = true } );
      ( "no rebalance (Fig. 5 off)",
        { base with Core.Emulation.disable_rebalance = true } );
    ];
  print_endline
    "(the [1]-style variant must split on every update and stalls once\n\
     fresh values run out; without Fig. 5's releases, suspended\n\
     v-processes are never recycled and progress starves — both\n\
     mechanisms are load-bearing, which is the paper's §3.1.1 point)"

(* ------------------------------------------------------------------ *)
(* B1-B5: Bechamel micro-benchmarks.                                  *)

let micro_benchmarks () =
  header "B1-B5  micro-benchmarks (Bechamel, ns per run)";
  let open Bechamel in
  let open Toolkit in
  let perm_instance = Protocols.Permutation_election.instance ~k:4 ~n:6 in
  let perm5_instance = Protocols.Permutation_election.instance ~k:5 ~n:24 in
  let emu_state =
    Core.Emulation.create
      (Core.Workloads.cycling ~k:3 ~rounds:1 ~num_vps:120)
      (Core.Emulation.small_params ~k:3)
  in
  let board = Game.Board.create ~m:3 ~k:4 () in
  let snap =
    Snapshot.Swmr_snapshot.create ~base:"s" ~owners:(Array.init 3 (fun i -> i))
  in
  let snap_store = Memory.Store.create (Snapshot.Swmr_snapshot.registers snap) in
  let u =
    Universal.create ~name:"u"
      ~spec:(Objects.Queue_obj.spec ())
      ~n:2 ~max_ops:8
  in
  let u_store = Memory.Store.create (Universal.bindings u) in
  let tests =
    Test.make_grouped ~name:"bench"
      [
        Test.make ~name:"B1 perm-election full run k=4 n=6"
          (Staged.stage (fun () ->
               ignore (Protocols.Election.run_random perm_instance ~seed:1)));
        Test.make ~name:"B1 perm-election full run k=5 n=24"
          (Staged.stage (fun () ->
               ignore (Protocols.Election.run_random perm5_instance ~seed:1)));
        Test.make ~name:"B2 emulation iteration (k=3)"
          (Staged.stage (fun () ->
               ignore (Core.Emulation.step emu_state ~emu:0)));
        Test.make ~name:"B3 game legal-move generation (m=3 k=4)"
          (Staged.stage (fun () -> ignore (Game.Board.legal_actions board)));
        Test.make ~name:"B4 AADGMS scan, 3 segments (solo)"
          (Staged.stage (fun () ->
               ignore
                 (Runtime.Program.run_sequential snap_store ~pid:0
                    (Runtime.Program.complete
                       (Runtime.Program.map Value.list
                          (Snapshot.Swmr_snapshot.scan snap))))));
        Test.make ~name:"B5 universal-construction op (solo)"
          (Staged.stage (fun () ->
               ignore
                 (Runtime.Program.run_sequential u_store ~pid:0
                    (Runtime.Program.complete
                       (Universal.invoke u ~pid:0 ~seq:0
                          (Objects.Queue_obj.enq_op (Value.int 1)))))));
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.filter_map
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (ns :: _) ->
        Printf.printf "%-45s %14.1f ns/run\n" name ns;
        Some (name, ns)
      | _ ->
        Printf.printf "%-45s %14s\n" name "n/a";
        None)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* E12: exploration throughput — the explorer's opt-in reductions      *)
(* (dedup, POR, domains) against the naive exhaustive walk, with the   *)
(* cross-mode agreement checks that make the speedups trustworthy.     *)

(* Output directory for the machine-readable artifacts below;
   LEPOWER_BENCH_DIR overrides (default: the current directory). *)
let bench_dir () =
  match Sys.getenv_opt "LEPOWER_BENCH_DIR" with
  | Some dir when dir <> "" -> dir
  | _ -> "."

let host_cores = Domain.recommended_domain_count ()

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The mode grid: every reduction alone, combined, and combined across
   4 domains.  [naive dom4] isolates the parallel-runtime overhead from
   the reduction gains. *)
let e12_modes =
  [
    ("naive", false, false, 1);
    ("dedup", true, false, 1);
    ("por", false, true, 1);
    ("dedup+por", true, true, 1);
    ("naive dom4", false, false, 4);
    ("dedup+por dom4", true, true, 4);
  ]

let e12_stats_row name (stats : Runtime.Explore.stats) secs verdict =
  let module Json = Lepower_obs.Json in
  Printf.printf "%-16s %10.3fs %12d %12d %10d %10d %6s\n" name secs
    stats.Runtime.Explore.configs_visited stats.Runtime.Explore.terminals
    stats.Runtime.Explore.configs_deduped stats.Runtime.Explore.por_pruned
    verdict;
  ( name,
    Json.Obj
      [
        ("wall_s", Json.Float secs);
        ( "configs_per_s",
          Json.Float
            (if secs > 0. then
               float_of_int stats.Runtime.Explore.configs_visited /. secs
             else 0.) );
        ("configs_visited", Json.Int stats.Runtime.Explore.configs_visited);
        ("configs_deduped", Json.Int stats.Runtime.Explore.configs_deduped);
        ("por_pruned", Json.Int stats.Runtime.Explore.por_pruned);
        ("terminals", Json.Int stats.Runtime.Explore.terminals);
        ("truncated", Json.Int stats.Runtime.Explore.truncated);
        ("choice_points", Json.Int stats.Runtime.Explore.choice_points);
        ("domains_used", Json.Int stats.Runtime.Explore.domains_used);
        ("verdict", Json.String verdict);
      ] )

let e12_table_header () =
  Printf.printf "%-16s %11s %12s %12s %10s %10s %6s\n" "mode" "wall" "configs"
    "terminals" "deduped" "pruned" "check"

(* Workload 1: whole-space agreement checking (check_all through the
   election harness) on cas-election under the crash-fault adversary —
   a schedule space that is combinatorially huge but canonically tiny,
   the memoizer's best case. *)
let e12_checked_workload ~instance ~crash_faults =
  Printf.printf "\n%s, crash_faults=%b  (check_all)\n"
    instance.Protocols.Election.name crash_faults;
  e12_table_header ();
  List.map
    (fun (name, dedup, por, domains) ->
      let result, secs =
        wall (fun () ->
            Protocols.Election.explore_stats instance ~max_steps:10_000
              ~options:
                {
                  Runtime.Explore.Options.default with
                  crash_faults;
                  dedup;
                  por;
                  domains;
                })
      in
      match result with
      | Ok stats -> (e12_stats_row name stats secs "ok", `Ok)
      | Error _ ->
        let zero =
          {
            Runtime.Explore.terminals = 0;
            truncated = 0;
            max_depth = 0;
            choice_points = 0;
            configs_visited = 0;
            configs_deduped = 0;
            por_pruned = 0;
            por_checks = 0;
            por_fast_hits = 0;
            domains_used = domains;
          }
        in
        (e12_stats_row name zero secs "VIOL", `Violation))
    e12_modes

(* Workload 2: raw tree enumeration (plain explore, no predicate) of the
   permutation protocol under a step cap — multi-location programs where
   POR's independence relation has real traction, including truncated
   branches. *)
let e12_capped_workload ~instance ~max_steps =
  Printf.printf "\n%s, max_steps=%d  (plain explore)\n"
    instance.Protocols.Election.name max_steps;
  e12_table_header ();
  List.map
    (fun (name, dedup, por, domains) ->
      let stats, secs =
        wall (fun () ->
            Runtime.Explore.explore
              ~options:
                {
                  Runtime.Explore.Options.default with
                  max_steps;
                  dedup;
                  por;
                  domains;
                }
              (Protocols.Election.config instance))
      in
      e12_stats_row name stats secs "-")
    e12_modes

(* Agreement: decision_sets must be byte-identical across every mode on
   representative instances (the explorer's own equivalence tests cover
   more; re-asserting it here keeps the published numbers honest). *)
let e12_agreement () =
  let identical instance max_steps =
    let config () = Protocols.Election.config instance in
    let opts dedup por domains =
      { Runtime.Explore.Options.default with max_steps; dedup; por; domains }
    in
    let naive =
      Runtime.Explore.decision_sets ~options:(opts false false 1) (config ())
    in
    List.for_all
      (fun (_, dedup, por, domains) ->
        Runtime.Explore.decision_sets ~options:(opts dedup por domains)
          (config ())
        = naive)
      e12_modes
  in
  let cas = identical (Protocols.Cas_election.instance ~k:4 ~n:3) 60 in
  let perm = identical (Protocols.Permutation_election.instance ~k:3 ~n:2) 12 in
  Printf.printf "\ndecision_sets identical across modes: cas %s, perm %s\n"
    (ok_or cas) (ok_or perm);
  cas && perm

let e12_explore ~smoke () =
  let module Json = Lepower_obs.Json in
  header
    (Printf.sprintf "E12 exploration throughput (dedup/POR/domains)%s"
       (if smoke then " [smoke]" else ""));
  Printf.printf "host cores: %d%s\n" host_cores
    (if host_cores < 4 then
       "  (domains>1 pays the multi-domain runtime with no parallelism)"
     else "");
  let checked_instance =
    if smoke then Protocols.Cas_election.instance ~k:6 ~n:5
    else Protocols.Cas_election.instance ~k:8 ~n:7
  in
  let capped_instance = Protocols.Permutation_election.instance ~k:3 ~n:2 in
  let capped_steps = if smoke then 12 else 18 in
  let checked = e12_checked_workload ~instance:checked_instance ~crash_faults:true in
  let capped = e12_capped_workload ~instance:capped_instance ~max_steps:capped_steps in
  let verdicts_identical =
    match checked with
    | (_, first) :: rest -> List.for_all (fun (_, v) -> v = first) rest
    | [] -> true
  in
  let decisions_identical = e12_agreement () in
  Printf.printf "check_all verdicts identical across modes: %s\n"
    (ok_or verdicts_identical);
  let json =
    Json.Obj
      [
        ("source", Json.String "bench/main.exe");
        ("experiment", Json.String "E12");
        ("smoke", Json.Bool smoke);
        ("host_cores", Json.Int host_cores);
        ( "workloads",
          Json.Obj
            [
              ( checked_instance.Protocols.Election.name ^ " crash",
                Json.Obj (List.map fst checked) );
              ( Printf.sprintf "%s cap%d"
                  capped_instance.Protocols.Election.name capped_steps,
                Json.Obj capped );
            ] );
        ( "agreement",
          Json.Obj
            [
              ("check_all_verdicts_identical", Json.Bool verdicts_identical);
              ("decision_sets_identical", Json.Bool decisions_identical);
            ] );
      ]
  in
  let path = Filename.concat (bench_dir ()) "BENCH_explore.json" in
  Lepower_obs.Export.write_json path json;
  Printf.printf "explore JSON: %s\n" path;
  if not (verdicts_identical && decisions_identical) then begin
    prerr_endline "E12: cross-mode agreement check FAILED";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E13: deterministic repro — what a schedule certificate costs to     *)
(* record and to replay (against a plain uninstrumented run), and how  *)
(* hard ddmin shrinks the seeded broken-cas counterexample.            *)

let e13_reps = 200

let e13_wall_per_run f =
  let (), secs = wall (fun () -> for _ = 1 to e13_reps do f () done) in
  secs /. float_of_int e13_reps *. 1e6 (* µs/run *)

let e13_repro ~smoke () =
  let module Json = Lepower_obs.Json in
  let module Repro = Runtime.Repro in
  let module Subject = Lepower_check.Repro_subject in
  header
    (Printf.sprintf "E13 repro certificates: record/replay cost, ddmin shrink%s"
       (if smoke then " [smoke]" else ""));
  let n = if smoke then 8 else 16 in
  let target = Lepower_check.Lint.broken_cas_fixture ~n () in
  let resolved = Subject.of_target target in
  let config = resolved.Subject.config in
  let failing c = resolved.Subject.failing c <> None in
  let max_steps = 64 * n in
  (* First seed whose random schedule lets three processes cas in
     ascending order (~1/6 per seed; seed 1 at the shipped sizes). *)
  let rec failing_cert seed =
    if seed > 64 then failwith "E13: no failing seed below 64"
    else
      let outcome, cert =
        Repro.record ~subject:target.Lepower_check.Lint.subject ~seed
          ~max_steps ~sched:(Runtime.Sched.random ~seed) config
      in
      match
        resolved.Subject.failing
          (Runtime.Engine.Config_view.of_config outcome.Runtime.Engine.final)
      with
      | Some message -> (seed, Repro.with_message cert message)
      | None -> failing_cert (seed + 1)
  in
  let (seed, cert), find_secs = wall (fun () -> failing_cert 1) in
  let sched () = Runtime.Sched.random ~seed in
  (* Record overhead: the same run with and without the decision log. *)
  let plain_us =
    e13_wall_per_run (fun () ->
        ignore (Runtime.Engine.run ~max_steps ~sched:(sched ()) config))
  in
  let record_us =
    e13_wall_per_run (fun () ->
        ignore (Repro.record ~seed ~max_steps ~sched:(sched ()) config))
  in
  let replay_us =
    e13_wall_per_run (fun () ->
        match Repro.replay cert config with
        | Ok _ -> ()
        | Error e -> failwith ("E13: replay rejected: " ^ e))
  in
  Printf.printf
    "broken-cas n=%d, seed %d (found in %.3fs): %d decisions, %d reps each\n"
    n seed find_secs
    (List.length cert.Repro.decisions)
    e13_reps;
  Printf.printf "%-28s %10.2f µs/run\n" "plain run" plain_us;
  Printf.printf "%-28s %10.2f µs/run  (%.2fx plain)" "record (decision log)"
    record_us
    (record_us /. plain_us);
  print_newline ();
  Printf.printf "%-28s %10.2f µs/run  (digest-checked)\n" "replay" replay_us;
  (* Shrink: ddmin + crash/pid passes down to the 3-decision core. *)
  let (min_cert, stats), shrink_secs =
    wall (fun () -> Repro.shrink ~failing ~config0:config cert)
  in
  let ratio =
    float_of_int stats.Repro.original /. float_of_int (max 1 stats.Repro.shrunk)
  in
  Printf.printf
    "shrink: %d -> %d decisions (%.2fx, %d candidate replays, %.3fs)\n"
    stats.Repro.original stats.Repro.shrunk ratio stats.Repro.attempts
    shrink_secs;
  (match Repro.replay min_cert config with
  | Ok final when failing (Runtime.Engine.Config_view.of_config final) -> ()
  | Ok _ -> failwith "E13: shrunk certificate no longer fails"
  | Error e -> failwith ("E13: shrunk certificate rejected: " ^ e));
  let json =
    Json.Obj
      [
        ("source", Json.String "bench/main.exe");
        ("experiment", Json.String "E13");
        ("smoke", Json.Bool smoke);
        ("fixture", Json.String "broken-cas");
        ("n", Json.Int n);
        ("seed", Json.Int seed);
        ("reps", Json.Int e13_reps);
        ("plain_us", Json.Float plain_us);
        ("record_us", Json.Float record_us);
        ("record_overhead", Json.Float (record_us /. plain_us));
        ("replay_us", Json.Float replay_us);
        ("decisions_original", Json.Int stats.Repro.original);
        ("decisions_shrunk", Json.Int stats.Repro.shrunk);
        ("shrink_ratio", Json.Float ratio);
        ("shrink_attempts", Json.Int stats.Repro.attempts);
        ("shrink_wall_s", Json.Float shrink_secs);
      ]
  in
  let path = Filename.concat (bench_dir ()) "BENCH_repro.json" in
  Lepower_obs.Export.write_json path json;
  Printf.printf "repro JSON: %s\n" path;
  if not smoke && ratio < 5.0 then begin
    prerr_endline "E13: shrink ratio fell below the published 5x";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E14: fuzz vs exhaustive search — time to first violation on the     *)
(* DFS-adversarial flip fixtures, where the violating schedule order   *)
(* is the one depth-first search reaches last.  The headline claim     *)
(* gated here: a seeded PCT fuzz campaign finds the bug at least 10x   *)
(* faster than the exhaustive walk.                                    *)

let e14_fuzz ~smoke () =
  let module Json = Lepower_obs.Json in
  let module Subject = Lepower_check.Repro_subject in
  let module Fuzz = Runtime.Fuzz in
  header
    (Printf.sprintf "E14 fuzzing: time to first violation, fuzz vs DFS%s"
       (if smoke then " [smoke]" else ""));
  (* flip-cas: chain p2;p1;p0 with each pad process making
     [Lint.flip_pad_ops] doomed cas attempts — every pad multiplies the
     violation-free p0-/p1-first subtrees DFS must exhaust.  Smoke keeps
     two pads (milliseconds); full uses three (sub-second DFS, a ~1000x
     gap).  flip-swmr is fixed-size: its p0-first subtree is ~25k
     schedules either way. *)
  let cas_n = if smoke then 5 else 6 in
  let fixtures =
    [
      ( "broken-cas-flip",
        Lepower_check.Lint.broken_cas_fixture ~n:cas_n ~flip:true () );
      ("broken-swmr-flip", Lepower_check.Lint.broken_swmr_fixture ~flip:true ());
    ]
  in
  let scheds =
    [
      ("random", Fuzz.Random_walk);
      ("pct", Fuzz.Pct { depth = 3 });
      ("starve", Fuzz.Starve { victim = 0; stall = 8 });
    ]
  in
  (* DFS is deterministic: take the best of a few runs.  Fuzz campaigns
     finish in microseconds: average over many. *)
  let dfs_reps = 3 in
  let fuzz_reps = if smoke then 20 else 50 in
  let best f =
    let rec go best left =
      if left = 0 then best
      else
        let _, secs = wall f in
        go (min best secs) (left - 1)
    in
    go infinity dfs_reps
  in
  let avg f =
    let (), secs = wall (fun () -> for _ = 1 to fuzz_reps do ignore (f ()) done) in
    secs /. float_of_int fuzz_reps
  in
  Printf.printf "%-18s %-8s %14s %12s %10s\n" "fixture" "mode" "to-violation"
    "speedup" "found-at";
  let ratios = ref [] in
  let rows =
    List.map
      (fun (fname, target) ->
        let resolved = Subject.of_target target in
        let predicate c =
          match resolved.Subject.failing c with
          | Some m -> Error m
          | None -> Ok ()
        in
        let dfs_secs =
          best (fun () ->
              match
                Runtime.Explore.check_all resolved.Subject.config predicate
              with
              | Ok _ -> failwith ("E14: DFS missed the " ^ fname ^ " bug")
              | Error _ -> ())
        in
        Printf.printf "%-18s %-8s %12.1f\u{00b5}s %12s %10s\n" fname "dfs"
          (dfs_secs *. 1e6) "1.0x" "-";
        let sched_rows =
          List.map
            (fun (sname, kind) ->
              let campaign () =
                Lepower_check.Lint.fuzz_target ~kind ~runs:512 ~seed:1
                  ~shrink:false target
              in
              let found_at =
                match (campaign ()).Fuzz.first_violation with
                | Some i -> i
                | None -> failwith ("E14: " ^ sname ^ " missed " ^ fname)
              in
              let secs = avg campaign in
              let speedup = dfs_secs /. secs in
              if sname = "pct" && fname = "broken-cas-flip" then
                ratios := speedup :: !ratios;
              Printf.printf "%-18s %-8s %12.1f\u{00b5}s %11.1fx %10d\n" fname
                sname (secs *. 1e6) speedup found_at;
              ( sname,
                Json.Obj
                  [
                    ("wall_s", Json.Float secs);
                    ("speedup_vs_dfs", Json.Float speedup);
                    ("first_violation_run", Json.Int found_at);
                  ] ))
            scheds
        in
        ( fname,
          Json.Obj
            (("dfs", Json.Obj [ ("wall_s", Json.Float dfs_secs) ])
            :: sched_rows) ))
      fixtures
  in
  let json =
    Json.Obj
      [
        ("source", Json.String "bench/main.exe");
        ("experiment", Json.String "E14");
        ("smoke", Json.Bool smoke);
        ("cas_n", Json.Int cas_n);
        ("runs_budget", Json.Int 512);
        ("seed", Json.Int 1);
        ("fixtures", Json.Obj rows);
      ]
  in
  let path = Filename.concat (bench_dir ()) "BENCH_fuzz.json" in
  Lepower_obs.Export.write_json path json;
  Printf.printf "fuzz JSON: %s\n" path;
  if (not smoke) && List.exists (fun r -> r < 10.0) !ratios then begin
    prerr_endline "E14: PCT fuzzing fell below the published 10x over DFS";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E15: profiling overhead — the Lepower_prof phase layer's cost on    *)
(* the E12 smoke workload.  Gates (exit 1): the per-phase table must   *)
(* account for >= 90% of the enabled run's wall, and the estimated     *)
(* disabled-mode overhead must stay under 2% (each probe site costs    *)
(* one flag load when profiling is off; the estimate is that cost,     *)
(* micro-benchmarked, times the probe count the workload drives).      *)
(* Also measures the dom1-vs-dom4 busy accounting that explains E12's  *)
(* "naive dom4" row: per-domain busy gauges summing past the wall      *)
(* clock are the oversubscription signature on few-core hosts.         *)

let e15_prof () =
  let module Json = Lepower_obs.Json in
  let module Phase = Lepower_prof.Phase in
  let module Metrics = Lepower_obs.Metrics in
  header "E15 profiling: disabled overhead + enabled coverage (E12 smoke workload)";
  let instance = Protocols.Cas_election.instance ~k:6 ~n:5 in
  let explore ~dedup ~por ~domains () =
    ignore
      (Protocols.Election.explore_stats instance ~max_steps:10_000
         ~options:
           {
             Runtime.Explore.Options.default with
             crash_faults = true;
             dedup;
             por;
             domains;
           })
  in
  let naive = explore ~dedup:false ~por:false ~domains:1 in
  let best_of n f =
    let rec go best left =
      if left = 0 then best
      else
        let (), s = wall f in
        go (min best s) (left - 1)
    in
    go infinity n
  in
  (* Profiling disabled (the default): the number the 2% budget guards. *)
  let disabled_wall = best_of 5 naive in
  (* Cost of one disabled probe site, micro-benchmarked directly. *)
  let probe = Phase.make "e15.probe" in
  let probe_reps = 1_000_000 in
  let (), probe_secs =
    wall (fun () ->
        for _ = 1 to probe_reps do
          Phase.leave (Phase.enter probe)
        done)
  in
  let probe_ns = probe_secs /. float_of_int probe_reps *. 1e9 in
  (* Profiling enabled: per-phase attribution and its wall coverage. *)
  Phase.reset ();
  Phase.enable ();
  let (), enabled_wall = wall naive in
  Phase.disable ();
  let rows = Phase.rows () in
  let probe_count =
    List.fold_left (fun acc r -> acc + r.Phase.r_calls) 0 rows
  in
  let coverage_pct =
    if enabled_wall > 0. then
      float_of_int (Phase.self_total_ns ()) /. (enabled_wall *. 1e9) *. 100.
    else 0.
  in
  let overhead_pct =
    if disabled_wall > 0. then
      float_of_int probe_count *. probe_ns /. (disabled_wall *. 1e9) *. 100.
    else 0.
  in
  Format.printf "%a" (Phase.pp_table ~wall_us:(enabled_wall *. 1e6)) ();
  Printf.printf "disabled wall (best of 5):  %8.3f ms\n" (disabled_wall *. 1e3);
  Printf.printf "disabled probe cost:        %8.2f ns/site (%d reps)\n"
    probe_ns probe_reps;
  Printf.printf "probe sites driven:         %8d\n" probe_count;
  Printf.printf "estimated disabled overhead: %7.3f %% of wall (budget 2%%)\n"
    overhead_pct;
  Printf.printf "enabled coverage:           %8.1f %% of wall (floor 90%%)\n"
    coverage_pct;
  (* dom1 vs dom4 on the reduced explorer: busy gauges vs wall clock. *)
  let busy_sum domains =
    let rec go acc w =
      if w >= domains then acc
      else
        go
          (acc
          +. Metrics.gauge_value
               (Metrics.gauge (Printf.sprintf "explore.domain%d.busy_s" w)))
          (w + 1)
    in
    go 0. 0
  in
  let (), dom1_wall = wall (explore ~dedup:true ~por:true ~domains:1) in
  let (), dom4_wall = wall (explore ~dedup:true ~por:true ~domains:4) in
  let dom4_busy = busy_sum 4 in
  let oversub = if dom4_wall > 0. then dom4_busy /. dom4_wall else 0. in
  Printf.printf
    "dedup+por dom1 %.3f ms; dom4 %.3f ms, busy sum %.3f ms (%.2fx wall%s)\n"
    (dom1_wall *. 1e3) (dom4_wall *. 1e3) (dom4_busy *. 1e3) oversub
    (if host_cores < 4 && oversub > 1.2 then
       "; oversubscribed: fewer cores than domains"
     else "");
  let json =
    Json.Obj
      [
        ("source", Json.String "bench/main.exe");
        ("experiment", Json.String "E15");
        ("host_cores", Json.Int host_cores);
        ("probe_sites", Json.Int probe_count);
        ("probe_cost_ns", Json.Float probe_ns);
        ( "benchmarks",
          Json.Obj
            [
              ("e12-smoke disabled overhead pct", Json.Float overhead_pct);
              ("e12-smoke disabled wall_s", Json.Float disabled_wall);
            ] );
        ("enabled_wall_s", Json.Float enabled_wall);
        ("enabled_coverage_pct", Json.Float coverage_pct);
        ("phases", Phase.to_json ~wall_us:(enabled_wall *. 1e6) ());
        ( "domains",
          Json.Obj
            [
              ("dom1_wall_s", Json.Float dom1_wall);
              ("dom4_wall_s", Json.Float dom4_wall);
              ("dom4_busy_sum_s", Json.Float dom4_busy);
              ("dom4_busy_over_wall", Json.Float oversub);
            ] );
      ]
  in
  let path = Filename.concat (bench_dir ()) "BENCH_prof.json" in
  Lepower_obs.Export.write_json path json;
  Printf.printf "prof JSON: %s\n" path;
  if coverage_pct < 90.0 then begin
    prerr_endline "E15: phase table covers less than 90% of enabled wall";
    exit 1
  end;
  if overhead_pct > 2.0 then begin
    prerr_endline "E15: estimated disabled overhead exceeds the 2% budget";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E16: static analysis — what an effect summary costs to compute per  *)
(* protocol (completeness, register footprints), and what the summary- *)
(* seeded POR fast path buys the explorer.  Gates (exit 1): on the E12 *)
(* cas workload the fast path must reproduce byte-identical check_all  *)
(* verdicts and decision sets; on a composed workload of statically    *)
(* disjoint election groups it must additionally land at least one     *)
(* fast hit (the commuting pairs it exists for); and (full runs only)  *)
(* it must not slow POR down past 25% even at a 0% hit rate.           *)

let e16_analyze instance =
  Lepower_static.Absint.analyze
    ~bindings:instance.Protocols.Election.bindings
    (List.init instance.Protocols.Election.n
       instance.Protocols.Election.program)

(* The lint examples grid, smallest instances: what `lepower lint
   --static --protocol all` analyzes.  perm/multi are node-capped by
   design (response fan-out), so their rows document the incomplete
   case: no footprints, no certificates, presence evidence only. *)
let e16_summary_table ~smoke =
  let module Json = Lepower_obs.Json in
  let module Summary = Lepower_static.Summary in
  let instances =
    [
      Protocols.Cas_election.instance ~k:4 ~n:3;
      Protocols.Bcl_election.instance ~k:4 ~n:3;
      Protocols.Permutation_election.instance ~k:3 ~n:2;
      Protocols.Multi_election.instance ~ks:[ 3; 2 ] ~n:2;
    ]
  in
  let reps = if smoke then 3 else 20 in
  Printf.printf "\n%-26s %10s %9s %7s %5s %9s\n" "protocol" "analyze"
    "nodes" "passes" "regs" "complete";
  List.map
    (fun inst ->
      let summary = e16_analyze inst in
      let (), secs =
        wall (fun () ->
            for _ = 1 to reps do
              ignore (e16_analyze inst)
            done)
      in
      let ms = secs /. float_of_int reps *. 1e3 in
      let regs = Summary.protocol_register_count summary in
      Printf.printf "%-26s %8.3fms %9d %7d %5d %9s\n"
        inst.Protocols.Election.name ms summary.Summary.nodes
        summary.Summary.passes regs
        (if summary.Summary.complete then "yes"
         else String.concat "," summary.Summary.limits);
      ( inst.Protocols.Election.name,
        Json.Obj
          [
            ("analyze_ms", Json.Float ms);
            ("nodes", Json.Int summary.Summary.nodes);
            ("passes", Json.Int summary.Summary.passes);
            ("registers", Json.Int regs);
            ("complete", Json.Int (if summary.Summary.complete then 1 else 0));
          ] ))
    instances

(* Location renaming builds the composed workload: [groups] copies of a
   small cas election, each copy's locations prefixed so the copies are
   statically disjoint — every cross-group process pair is exactly what
   the fast matrix precomputes as commuting. *)
let rec e16_rename f = function
  | Runtime.Program.Done v -> Runtime.Program.Done v
  | Runtime.Program.Step (loc, op, k) ->
    Runtime.Program.Step (f loc, op, fun v -> e16_rename f (k v))

let e16_disjoint_groups ~groups ~k ~n =
  let base = Protocols.Cas_election.instance ~k ~n in
  let tag g loc = Printf.sprintf "g%d.%s" g loc in
  let gs = List.init groups Fun.id in
  let bindings =
    List.concat_map
      (fun g ->
        List.map
          (fun (loc, spec) -> (tag g loc, spec))
          base.Protocols.Election.bindings)
      gs
  in
  let programs =
    List.concat_map
      (fun g ->
        List.init n (fun pid ->
            e16_rename (tag g) (base.Protocols.Election.program pid)))
      gs
  in
  (bindings, programs)

let e16_fastpath_row name (stats : Runtime.Explore.stats) secs =
  Printf.printf "%-14s %9.3fs %10d %10d %11d %10d\n" name secs
    stats.Runtime.Explore.configs_visited stats.Runtime.Explore.por_pruned
    stats.Runtime.Explore.por_checks stats.Runtime.Explore.por_fast_hits

let e16_hit_rate (stats : Runtime.Explore.stats) =
  if stats.Runtime.Explore.por_checks = 0 then 0.
  else
    float_of_int stats.Runtime.Explore.por_fast_hits
    /. float_of_int stats.Runtime.Explore.por_checks
    *. 100.

let e16_static ~smoke () =
  let module Json = Lepower_obs.Json in
  let module Summary = Lepower_static.Summary in
  header
    (Printf.sprintf "E16 static analysis (effect summaries + POR fast path)%s"
       (if smoke then " [smoke]" else ""));
  let protocol_rows = e16_summary_table ~smoke in
  (* A/B on the E12 checked workload: dedup+por with and without the
     summary-seeded footprints.  cas-election's processes all share one
     location, so the honest expectation is a 0% hit rate — this leg
     measures the fast path's overhead and proves agreement, not wins. *)
  let instance =
    if smoke then Protocols.Cas_election.instance ~k:6 ~n:5
    else Protocols.Cas_election.instance ~k:8 ~n:7
  in
  let footprints =
    match Summary.footprints (e16_analyze instance) with
    | Some fp -> fp
    | None ->
      prerr_endline "E16: cas-election summary incomplete, no footprints";
      exit 1
  in
  let opts fps =
    {
      Runtime.Explore.Options.default with
      crash_faults = true;
      dedup = true;
      por = true;
      footprints = fps;
    }
  in
  Printf.printf "\n%s, crash_faults=true  (check_all, dedup+por)\n"
    instance.Protocols.Election.name;
  Printf.printf "%-14s %10s %10s %10s %11s %10s\n" "mode" "wall" "configs"
    "pruned" "por_checks" "fast_hits";
  let checked fps =
    let result, secs =
      wall (fun () ->
          Protocols.Election.explore_stats instance ~max_steps:10_000
            ~options:(opts fps))
    in
    (result, secs)
  in
  let base_result, base_secs = checked [||] in
  let fast_result, fast_secs = checked footprints in
  let verdict = function Ok _ -> "ok" | Error _ -> "VIOL" in
  (match (base_result, fast_result) with
  | Ok b, Ok f ->
    e16_fastpath_row "por" b base_secs;
    e16_fastpath_row "por+static" f fast_secs
  | b, f ->
    Printf.printf "por: %s, por+static: %s\n" (verdict b) (verdict f));
  let verdicts_identical = verdict base_result = verdict fast_result in
  let decisions fps =
    Runtime.Explore.decision_sets
      ~options:{ (opts fps) with max_steps = 10_000 }
      (Protocols.Election.config instance)
  in
  let decisions_identical = decisions [||] = decisions footprints in
  Printf.printf "check_all verdicts identical: %s, decision sets: %s\n"
    (ok_or verdicts_identical) (ok_or decisions_identical);
  let cas_hits, cas_checks, cas_rate =
    match fast_result with
    | Ok s ->
      (s.Runtime.Explore.por_fast_hits, s.Runtime.Explore.por_checks,
       e16_hit_rate s)
    | Error _ -> (0, 0, 0.)
  in
  (* The composed workload: two statically disjoint election groups in
     one configuration.  Cross-group pairs commute by footprint alone,
     so here the matrix lookup replaces the exact per-move check. *)
  let groups = 2 in
  let bindings, programs = e16_disjoint_groups ~groups ~k:3 ~n:2 in
  let dsummary = Lepower_static.Absint.analyze ~bindings programs in
  let dfootprints =
    match Summary.footprints dsummary with
    | Some fp -> fp
    | None ->
      prerr_endline "E16: disjoint-groups summary incomplete, no footprints";
      exit 1
  in
  let dconfig () = Runtime.Engine.init (Memory.Store.create bindings) programs in
  let dopts fps =
    {
      Runtime.Explore.Options.default with
      dedup = true;
      por = true;
      footprints = fps;
    }
  in
  Printf.printf "\ndisjoint groups: %d x cas-election(k=3,n=2)  (plain explore, dedup+por)\n"
    groups;
  Printf.printf "%-14s %10s %10s %10s %11s %10s\n" "mode" "wall" "configs"
    "pruned" "por_checks" "fast_hits";
  let dexplore fps =
    wall (fun () -> Runtime.Explore.explore ~options:(dopts fps) (dconfig ()))
  in
  let dbase, dbase_secs = dexplore [||] in
  let dfast, dfast_secs = dexplore dfootprints in
  e16_fastpath_row "por" dbase dbase_secs;
  e16_fastpath_row "por+static" dfast dfast_secs;
  let ddecisions fps =
    Runtime.Explore.decision_sets ~options:(dopts fps) (dconfig ())
  in
  let ddecisions_identical = ddecisions [||] = ddecisions dfootprints in
  let dhit = dfast.Runtime.Explore.por_fast_hits in
  Printf.printf
    "decision sets identical: %s, fast hits: %d of %d checks (%.1f%%)\n"
    (ok_or ddecisions_identical) dhit dfast.Runtime.Explore.por_checks
    (e16_hit_rate dfast);
  let json =
    Json.Obj
      [
        ("source", Json.String "bench/main.exe");
        ("experiment", Json.String "E16");
        ("smoke", Json.Bool smoke);
        ("host_cores", Json.Int host_cores);
        ("protocols", Json.Obj protocol_rows);
        ( "por_fast_path",
          Json.Obj
            [
              ( instance.Protocols.Election.name ^ " crash",
                Json.Obj
                  [
                    ("por_wall_s", Json.Float base_secs);
                    ("fast_wall_s", Json.Float fast_secs);
                    ("por_checks", Json.Int cas_checks);
                    ("fast_hits", Json.Int cas_hits);
                    ("hit_rate_pct", Json.Float cas_rate);
                  ] );
              ( Printf.sprintf "disjoint-groups g%d cas-election(k=3,n=2)"
                  groups,
                Json.Obj
                  [
                    ("por_wall_s", Json.Float dbase_secs);
                    ("fast_wall_s", Json.Float dfast_secs);
                    ("por_checks", Json.Int dfast.Runtime.Explore.por_checks);
                    ("fast_hits", Json.Int dhit);
                    ("hit_rate_pct", Json.Float (e16_hit_rate dfast));
                  ] );
            ] );
        ( "agreement",
          Json.Obj
            [
              ("verdicts_identical", Json.Int (Bool.to_int verdicts_identical));
              ( "decision_sets_identical",
                Json.Int (Bool.to_int decisions_identical) );
              ( "disjoint_decision_sets_identical",
                Json.Int (Bool.to_int ddecisions_identical) );
              ("disjoint_fast_hit", Json.Int (Bool.to_int (dhit > 0)));
            ] );
      ]
  in
  let path = Filename.concat (bench_dir ()) "BENCH_static.json" in
  Lepower_obs.Export.write_json path json;
  Printf.printf "static JSON: %s\n" path;
  if not (verdicts_identical && decisions_identical && ddecisions_identical)
  then begin
    prerr_endline "E16: footprint-seeded POR disagrees with exact POR";
    exit 1
  end;
  if dhit = 0 then begin
    prerr_endline "E16: no fast hit on statically disjoint groups";
    exit 1
  end;
  if (not smoke) && base_secs > 0.05 && fast_secs > 1.25 *. base_secs
  then begin
    prerr_endline "E16: fast path slowed POR down by more than 25%";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E17+E18: hot-path engine — the arena backend (compiled step          *)
(* programs, mutable arena store with O(1) snapshot/undo, incremental  *)
(* fingerprints) against the persistent reference engine, with the     *)
(* cross-backend agreement checks that make the speedup trustworthy:   *)
(* identical verdicts and full statistics per mode, byte-identical     *)
(* decision sets, identical fault-fuzz certificates, and bit-for-bit   *)
(* cross-backend certificate replay.  E18 adds the reduced modes: the  *)
(* dedup / por / dedup+por rows now dispatch to the journal-free       *)
(* bitset walk on the machine, timed with the same best-of-3           *)
(* methodology as the naive legs.  Gates (exit 1): any agreement       *)
(* failure; a checked naive-walk speedup below 1x (smoke) / 2x (full); *)
(* in full mode additionally a plain naive-walk speedup below 5x and a *)
(* dedup+por speedup below 1.5x (E18's acceptance bar — smoke           *)
(* workloads finish in a fraction of a millisecond, far inside timer   *)
(* noise, so smoke only gates the reduced rows at parity, 0.8x).       *)

let e17_modes =
  [
    ("naive", false, false);
    ("dedup", true, false);
    ("por", false, true);
    ("dedup+por", true, true);
  ]

let e17_backends = [ Runtime.Engine.Persistent; Runtime.Engine.Arena ]

let e17_store ~smoke () =
  let module Json = Lepower_obs.Json in
  header
    (Printf.sprintf "E17 hot-path engine (arena backend vs persistent)%s"
       (if smoke then " [smoke]" else ""));
  let instance =
    if smoke then Protocols.Cas_election.instance ~k:6 ~n:5
    else Protocols.Cas_election.instance ~k:8 ~n:7
  in
  (* Lowering telemetry, aggregated across every arena run below. *)
  let low_nodes = ref 0 in
  let low_hits = ref 0 in
  let low_misses = ref 0 in
  let low_bailed = ref 0 in
  let on_lowering reports =
    Array.iter
      (fun (r : Runtime.Program.Compiled.report) ->
        low_nodes := !low_nodes + r.Runtime.Program.Compiled.nodes;
        low_hits := !low_hits + r.Runtime.Program.Compiled.hits;
        low_misses := !low_misses + r.Runtime.Program.Compiled.misses;
        if r.Runtime.Program.Compiled.bailed then incr low_bailed)
      reports
  in
  let opts ~dedup ~por backend =
    {
      Runtime.Explore.Options.default with
      crash_faults = true;
      dedup;
      por;
      backend;
      on_lowering =
        (match backend with
        | Runtime.Engine.Persistent -> None
        | Runtime.Engine.Arena -> Some on_lowering);
    }
  in
  Printf.printf "\n%s, crash_faults=true  (check_all)\n"
    instance.Protocols.Election.name;
  e12_table_header ();
  (* rows : (mode, backend) -> (json row, wall, Ok stats option) *)
  let rows =
    List.concat_map
      (fun (mode, dedup, por) ->
        List.map
          (fun backend ->
            let name =
              Printf.sprintf "%s %s" mode
                (Runtime.Engine.backend_name backend)
            in
            let result, secs =
              wall (fun () ->
                  Protocols.Election.explore_stats instance ~max_steps:10_000
                    ~options:(opts ~dedup ~por backend))
            in
            match result with
            | Ok stats ->
              ((mode, backend), (e12_stats_row name stats secs "ok", secs, Some stats))
            | Error _ ->
              let zero =
                {
                  Runtime.Explore.terminals = 0;
                  truncated = 0;
                  max_depth = 0;
                  choice_points = 0;
                  configs_visited = 0;
                  configs_deduped = 0;
                  por_pruned = 0;
                  por_checks = 0;
                  por_fast_hits = 0;
                  domains_used = 1;
                }
              in
              ((mode, backend), (e12_stats_row name zero secs "VIOL", secs, None)))
          e17_backends)
      e17_modes
  in
  let cell mode backend =
    let _, (_, secs, stats) =
      List.find (fun (k, _) -> k = (mode, backend)) rows
    in
    (secs, stats)
  in
  (* Throughput legs, metrics disabled around every timing run
     (equally) so they compare the walk, not the counter feed; best of
     3 damps noise on this 1-core host.  [plain] is E12's raw
     enumeration with no terminal predicate — the 5x gate.  [checked]
     is the same naive walk with the election predicate on every
     terminal: the predicate reads statuses, decisions and step counts
     through Engine.Config_view, zero-copy on the arena backend, so
     checking no longer materializes a persistent configuration per
     terminal and the arena's advantage survives the checker.  The
     checked gate below (1x smoke / 2x full) pins exactly that — before
     the view API this leg ran at 0.62x. *)
  let config = Protocols.Election.config instance in
  let metrics_were_on = Lepower_obs.Metrics.is_enabled () in
  Lepower_obs.Metrics.disable ();
  let time_plain backend =
    let best = ref infinity and stats = ref None in
    for _ = 1 to 3 do
      let s, secs =
        wall (fun () ->
            Runtime.Explore.explore
              ~options:
                { (opts ~dedup:false ~por:false backend) with max_steps = 10_000 }
              config)
      in
      stats := Some s;
      if secs < !best then best := secs
    done;
    (!best, !stats)
  in
  let plain_p, plain_stats_p = time_plain Runtime.Engine.Persistent in
  let plain_a, plain_stats_a = time_plain Runtime.Engine.Arena in
  let time_checked backend =
    let best = ref infinity and stats = ref None in
    for _ = 1 to 3 do
      let r, secs =
        wall (fun () ->
            Protocols.Election.explore_stats instance ~max_steps:10_000
              ~options:(opts ~dedup:false ~por:false backend))
      in
      (match r with
      | Ok s -> stats := Some s
      | Error e ->
        Printf.eprintf "E17: checked timing leg violated: %s\n" e;
        exit 1);
      if secs < !best then best := secs
    done;
    (!best, !stats)
  in
  let checked_p, checked_stats_p = time_checked Runtime.Engine.Persistent in
  let checked_a, checked_stats_a = time_checked Runtime.Engine.Arena in
  (* E18: the reduced legs.  Same checked workload with the explorer
     reductions on — on the arena backend these dispatch to the
     journal-free bitset walk, on the persistent backend to the
     reference explore_seq.  Stats are kept so the byte-identity of the
     reduced search trees is re-asserted on the timed full workload, not
     only on the mode-grid rows above. *)
  let time_reduced ~dedup ~por backend =
    let best = ref infinity and stats = ref None in
    for _ = 1 to 3 do
      let r, secs =
        wall (fun () ->
            Protocols.Election.explore_stats instance ~max_steps:10_000
              ~options:(opts ~dedup ~por backend))
      in
      (match r with
      | Ok s -> stats := Some s
      | Error e ->
        Printf.eprintf "E18: reduced timing leg violated: %s\n" e;
        exit 1);
      if secs < !best then best := secs
    done;
    (!best, !stats)
  in
  let dedup_p, dedup_stats_p =
    time_reduced ~dedup:true ~por:false Runtime.Engine.Persistent
  in
  let dedup_a, dedup_stats_a =
    time_reduced ~dedup:true ~por:false Runtime.Engine.Arena
  in
  let red_p, red_stats_p =
    time_reduced ~dedup:true ~por:true Runtime.Engine.Persistent
  in
  let red_a, red_stats_a =
    time_reduced ~dedup:true ~por:true Runtime.Engine.Arena
  in
  if metrics_were_on then Lepower_obs.Metrics.enable ();
  let plain_rows =
    List.filter_map
      (fun (name, secs, stats) ->
        Option.map (fun s -> (e12_stats_row name s secs "-", secs)) stats)
      [
        ("plain persistent", plain_p, plain_stats_p);
        ("plain arena", plain_a, plain_stats_a);
        ("checked persistent", checked_p, checked_stats_p);
        ("checked arena", checked_a, checked_stats_a);
        ("timed dedup persistent", dedup_p, dedup_stats_p);
        ("timed dedup arena", dedup_a, dedup_stats_a);
        ("timed dedup+por persistent", red_p, red_stats_p);
        ("timed dedup+por arena", red_a, red_stats_a);
      ]
  in
  let checked_identical =
    checked_stats_p = checked_stats_a && checked_stats_p <> None
  in
  let plain_identical =
    plain_stats_p = plain_stats_a && plain_stats_p <> None
  in
  let dedup_identical =
    dedup_stats_p = dedup_stats_a && dedup_stats_p <> None
  in
  let reduced_identical = red_stats_p = red_stats_a && red_stats_p <> None in
  (* Agreement 1: per mode, verdict and the full statistics record must
     be identical across backends (dedup and POR counters included — the
     arena DFS must take exactly the reference's search tree). *)
  let stats_identical =
    List.for_all
      (fun (mode, _, _) ->
        let _, sp = cell mode Runtime.Engine.Persistent in
        let _, sa = cell mode Runtime.Engine.Arena in
        sp = sa && sp <> None)
      e17_modes
  in
  (* Agreement 2: decision sets byte-identical across backends, every
     mode, on an instance small enough to finish the naive walk fast. *)
  let small = Protocols.Cas_election.instance ~k:4 ~n:3 in
  let decisions_identical =
    List.for_all
      (fun (_, dedup, por) ->
        let sets backend =
          Runtime.Explore.decision_sets
            ~options:{ (opts ~dedup ~por backend) with max_steps = 60 }
            (Protocols.Election.config small)
        in
        sets Runtime.Engine.Persistent = sets Runtime.Engine.Arena)
      e17_modes
  in
  (* Agreement 3: a fault-injecting fuzz campaign must produce the
     identical certificate on either backend, and each certificate must
     replay bit-for-bit on both. *)
  let fuzz_outcome backend =
    Protocols.Election.fuzz ~runs:256 ~seed:1 ~plan:Runtime.Faults.default
      ~kind:Runtime.Fuzz.Random_walk ~shrink:false ~backend small
  in
  let cert_p = (fuzz_outcome Runtime.Engine.Persistent).Runtime.Fuzz.cert in
  let cert_a = (fuzz_outcome Runtime.Engine.Arena).Runtime.Fuzz.cert in
  let certs_identical = cert_p <> None && cert_p = cert_a in
  let replays_ok =
    match cert_p with
    | None -> false
    | Some cert ->
      List.for_all
        (fun backend ->
          match
            Runtime.Repro.replay ~backend cert (Protocols.Election.config small)
          with
          | Ok _ -> true
          | Error _ -> false)
        e17_backends
  in
  let speedup = if plain_a > 0. then plain_p /. plain_a else 0. in
  let cost_ratio = if plain_p > 0. then plain_a /. plain_p else 1. in
  let speedup_checked = if checked_a > 0. then checked_p /. checked_a else 0. in
  let cost_ratio_checked =
    if checked_p > 0. then checked_a /. checked_p else 1.
  in
  let speedup_dedup = if dedup_a > 0. then dedup_p /. dedup_a else 0. in
  let cost_ratio_dedup = if dedup_p > 0. then dedup_a /. dedup_p else 1. in
  let speedup_por = if red_a > 0. then red_p /. red_a else 0. in
  let cost_ratio_por = if red_p > 0. then red_a /. red_p else 1. in
  Printf.printf
    "\nstats identical per mode: %s (plain walk: %s, checked walk: %s, \
     dedup walk: %s, dedup+por walk: %s), decision sets: %s, fuzz certs: \
     %s, cross-replay: %s\n"
    (ok_or stats_identical) (ok_or plain_identical) (ok_or checked_identical)
    (ok_or dedup_identical) (ok_or reduced_identical)
    (ok_or decisions_identical) (ok_or certs_identical) (ok_or replays_ok);
  Printf.printf "plain naive-walk speedup (persistent/arena): %.2fx\n" speedup;
  Printf.printf "checked naive-walk speedup (persistent/arena): %.2fx\n"
    speedup_checked;
  Printf.printf
    "E18 reduced-walk speedup (persistent/arena): dedup %.2fx, dedup+por \
     %.2fx\n"
    speedup_dedup speedup_por;
  Printf.printf
    "lowering: %d compiled nodes, %d edge hits / %d misses, %d pids bailed\n"
    !low_nodes !low_hits !low_misses !low_bailed;
  let json =
    Json.Obj
      [
        ("source", Json.String "bench/main.exe");
        ("experiment", Json.String "E17+E18");
        ("smoke", Json.Bool smoke);
        ("host_cores", Json.Int host_cores);
        ( "workloads",
          Json.Obj
            [
              ( instance.Protocols.Election.name ^ " crash",
                Json.Obj
                  (List.map (fun (_, (row, _, _)) -> row) rows
                  @ List.map fst plain_rows) );
            ] );
        ( "agreement",
          Json.Obj
            [
              ("stats_identical", Json.Int (Bool.to_int stats_identical));
              ( "plain_stats_identical",
                Json.Int (Bool.to_int plain_identical) );
              ( "checked_stats_identical",
                Json.Int (Bool.to_int checked_identical) );
              ( "dedup_stats_identical",
                Json.Int (Bool.to_int dedup_identical) );
              ( "reduced_stats_identical",
                Json.Int (Bool.to_int reduced_identical) );
              ( "decision_sets_identical",
                Json.Int (Bool.to_int decisions_identical) );
              ("fuzz_certs_identical", Json.Int (Bool.to_int certs_identical));
              ("cross_replay_ok", Json.Int (Bool.to_int replays_ok));
            ] );
        ( "lowering",
          Json.Obj
            [
              ("nodes", Json.Int !low_nodes);
              ("edge_hits", Json.Int !low_hits);
              ("edge_misses", Json.Int !low_misses);
              ("bailed_pids", Json.Int !low_bailed);
            ] );
        ("arena_speedup_naive", Json.Float speedup);
        ("arena_speedup_checked", Json.Float speedup_checked);
        ("arena_speedup_dedup", Json.Float speedup_dedup);
        ("arena_speedup_por", Json.Float speedup_por);
        ( "benchmarks",
          Json.Obj
            [
              ("arena_cost_ratio_naive", Json.Float cost_ratio);
              ("arena_cost_ratio_checked", Json.Float cost_ratio_checked);
              ("arena_cost_ratio_dedup", Json.Float cost_ratio_dedup);
              ("arena_cost_ratio_por", Json.Float cost_ratio_por);
            ] );
      ]
  in
  let path = Filename.concat (bench_dir ()) "BENCH_store.json" in
  Lepower_obs.Export.write_json path json;
  Printf.printf "store JSON: %s\n" path;
  if not (stats_identical && plain_identical && checked_identical
          && dedup_identical && reduced_identical
          && decisions_identical && certs_identical && replays_ok)
  then begin
    prerr_endline "E17: cross-backend agreement check FAILED";
    exit 1
  end;
  (* The checked-row gate: zero-copy views must keep the arena ahead of
     the persistent engine even with a predicate on every terminal.
     The smoke workload is too small to pin the full 2x, but a ratio
     below 1x means checking re-introduced per-terminal materialization
     — fail even in smoke so it cannot regress unnoticed. *)
  let checked_gate = if smoke then 1.0 else 2.0 in
  if speedup_checked < checked_gate then begin
    Printf.eprintf
      "E17: arena checked naive-walk speedup %.2fx below the %.1fx gate\n"
      speedup_checked checked_gate;
    exit 1
  end;
  if (not smoke) && speedup < 5.0 then begin
    Printf.eprintf
      "E17: arena plain naive-walk speedup %.2fx below the 5x gate\n" speedup;
    exit 1
  end;
  (* The E18 gate: the journal-free reduced walk must beat the
     persistent reference with both reductions on.  Smoke legs finish in
     well under a millisecond — deep inside timer noise — so smoke only
     pins parity (0.8x, i.e. "not slower"); the full cas k=8 n=7 crash
     workload carries the real 1.5x acceptance bar. *)
  let reduced_gate = if smoke then 0.8 else 1.5 in
  if speedup_por < reduced_gate then begin
    Printf.eprintf
      "E18: arena dedup+por reduced-walk speedup %.2fx below the %.1fx gate\n"
      speedup_por reduced_gate;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Machine-readable artifacts: alongside the tables above, emit        *)
(* BENCH_micro.json (B1-B5 estimates) and BENCH_counters.json (the     *)
(* Lepower_obs metrics accumulated across E1-E10/A1) so perf PRs can   *)
(* diff runs without scraping stdout.                                  *)

let write_bench_json micro_rows =
  let module Json = Lepower_obs.Json in
  let dir = bench_dir () in
  let micro_path = Filename.concat dir "BENCH_micro.json" in
  Lepower_obs.Export.write_json micro_path
    (Json.Obj
       [
         ("source", Json.String "bench/main.exe");
         ("unit", Json.String "ns/run");
         ( "benchmarks",
           Json.Obj
             (List.map (fun (name, ns) -> (name, Json.Float ns)) micro_rows) );
       ]);
  let counters_path = Filename.concat dir "BENCH_counters.json" in
  Lepower_obs.Export.write_json counters_path
    (Lepower_obs.Export.metrics_json
       ~meta:[ ("source", Json.String "bench/main.exe") ]
       ());
  Printf.printf "\nmetrics JSON: %s, %s\n" micro_path counters_path

let () =
  (* Counters on for the whole harness: the experiment tables double as a
     workload that exercises every instrumented hot path, and the final
     snapshot records exactly how much work each experiment drove.

     [explore-smoke] runs only a downsized E12 — the exploration
     benchmark plus its cross-mode agreement checks — and [repro-smoke]
     only a downsized E13 (certificate record/replay/shrink), each sized
     for its smoke alias. *)
  Lepower_obs.Metrics.enable ();
  match Sys.argv with
  | [| _; "explore-smoke" |] -> e12_explore ~smoke:true ()
  | [| _; "repro-smoke" |] -> e13_repro ~smoke:true ()
  | [| _; "fuzz-smoke" |] -> e14_fuzz ~smoke:true ()
  | [| _; "prof-smoke" |] -> e15_prof ()
  | [| _; "static-smoke" |] -> e16_static ~smoke:true ()
  | [| _; "store-smoke" |] -> e17_store ~smoke:true ()
  | [| _; "store" |] -> e17_store ~smoke:false ()
  | [| _ |] ->
    e1_capacity ();
    e2_bcl ();
    e3_game ();
    e4_emulation ();
    e5_invariants ();
    e6_hierarchy ();
    e7_universal ();
    e8_history ();
    e9_multi_register ();
    e10_provisioning ();
    a1_ablations ();
    e12_explore ~smoke:false ();
    e13_repro ~smoke:false ();
    e14_fuzz ~smoke:false ();
    e15_prof ();
    e16_static ~smoke:false ();
    e17_store ~smoke:false ();
    let micro_rows = micro_benchmarks () in
    write_bench_json micro_rows;
    print_newline ()
  | _ ->
    prerr_endline
      "usage: main.exe \
       [explore-smoke|repro-smoke|fuzz-smoke|prof-smoke|static-smoke|\
        store-smoke store]";
    exit 2
