(* lepower: command-line driver for the library's experiments.

   Subcommands:
     elect      run a leader-election protocol and report the outcome
     explore    exhaustively check an election over every interleaving
     lint       run the Lepower_check analyzers over a protocol or fixture
     fuzz       adversarial-schedule fuzzing with optional fault injection
     replay     re-execute a recorded schedule certificate (and shrink it)
     emulate    run the Afek-Stupp reduction on a workload
     hierarchy  print the consensus-number table
     game       play the Lemma 1.1 move/jump game
     bounds     print the paper's closed-form bounds for a range of k

   Every run-producing subcommand takes --trace-out FILE (Chrome trace
   JSON: shared-memory operations + spans, loadable in chrome://tracing)
   and --metrics-out FILE (a Lepower_obs metrics snapshot). *)

open Cmdliner

let k_arg =
  Arg.(value & opt int 4 & info [ "k" ] ~doc:"Compare&swap register size.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Scheduler random seed.")

(* --- observability flags --- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome-trace-format JSON of the run (shared-memory \
           operations and timing spans) to $(docv); load it in \
           chrome://tracing or ui.perfetto.dev.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write a JSON snapshot of all runtime metrics (counters, gauges, \
           histograms) to $(docv) after the run.")

(* --- profiling / live-telemetry flags (explore, fuzz, lint) --- *)

let prof_arg =
  Arg.(
    value & flag
    & info [ "prof" ]
        ~doc:
          "Enable phase-attributed profiling: scoped timers and GC \
           allocation deltas around the hot phases (engine step, \
           fingerprint/dedup, POR, frontier split, scheduler decision, \
           repro record, lint checks).  Prints the per-phase cost table \
           after the run and appends it to --progress-out as a \
           {\"type\":\"phases\"} JSONL row.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Print periodic campaign heartbeats as one-liners on stderr.")

let progress_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "progress-out" ] ~docv:"FILE"
        ~doc:
          "Stream campaign heartbeats (frontier size, configs/s, dedup \
           hit-rate, POR prune-rate, fuzz runs and ETA...) as strict JSONL \
           to $(docv); render with 'lepower report'.")

let progress_interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "progress-interval" ] ~docv:"SECS"
        ~doc:"Seconds between heartbeats (default 1.0; 0 = every tick).")

let folded_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "folded-out" ] ~docv:"FILE"
        ~doc:
          "Collapse the recorded spans into Brendan-Gregg folded-stack \
           lines and write them to $(docv) (feed to flamegraph.pl).")

(* Run [f] with the telemetry plane the flags ask for: profiling phases
   enabled under --prof (table printed afterwards), spans enabled under
   --folded-out, heartbeats routed to stderr (--progress) and/or a JSONL
   stream (--progress-out).  [f] receives the heartbeat (if any) to tick
   from its progress callbacks. *)
let with_telemetry ~prof ~progress ~progress_out ~interval ~folded_out
    (f : Lepower_prof.Heartbeat.t option -> int) =
  if prof then Lepower_prof.Phase.enable ();
  if folded_out <> None then Lepower_obs.Span.enable ();
  match
    try Ok (Option.map open_out progress_out) with Sys_error e -> Error e
  with
  | Error e ->
    Printf.eprintf "lepower: cannot open progress stream: %s\n" e;
    1
  | Ok out_chan ->
    (* Heartbeats may arrive from worker domains; writes serialize here. *)
    let emit_mutex = Mutex.create () in
    let write_doc doc =
      Option.iter
        (fun oc ->
          Lepower_obs.Json.to_channel oc doc;
          output_char oc '\n')
        out_chan
    in
    let emit doc =
      Mutex.lock emit_mutex;
      write_doc doc;
      if progress then
        Format.eprintf "%a@." Lepower_prof.Heartbeat.pp_line doc;
      Mutex.unlock emit_mutex
    in
    let hb =
      if progress || out_chan <> None then begin
        (* Heartbeat rates and gauges come from the metrics plane. *)
        Lepower_obs.Metrics.enable ();
        Some (Lepower_prof.Heartbeat.create ~interval_s:interval ~emit ())
      end
      else None
    in
    let t0 = Unix.gettimeofday () in
    let code = f hb in
    let wall_us = (Unix.gettimeofday () -. t0) *. 1e6 in
    if prof then begin
      write_doc (Lepower_prof.Phase.to_json ~wall_us ());
      Format.printf "%a" (Lepower_prof.Phase.pp_table ~wall_us) ()
    end;
    Option.iter
      (fun oc ->
        close_out oc;
        Printf.printf "progress stream written to %s\n"
          (Option.get progress_out))
      out_chan;
    let folded_code =
      Option.fold ~none:0
        ~some:(fun path ->
          try
            Lepower_prof.Folded.write path (Lepower_obs.Span.completed ());
            Printf.printf "folded stacks written to %s\n" path;
            0
          with Sys_error e ->
            Printf.eprintf "lepower: cannot write folded stacks: %s\n" e;
            1)
        folded_out
    in
    max code folded_code

(* Run [f] with the observability subsystems the flags ask for enabled,
   then write the requested artifacts.  [f] returns the exit code and the
   execution trace to export (oldest first), if the subcommand has one. *)
let with_obs ~trace_out ~metrics_out (f : unit -> int * Runtime.Trace.t option)
    =
  if trace_out <> None then Lepower_obs.Span.enable ();
  if metrics_out <> None then Lepower_obs.Metrics.enable ();
  let code, trace = f () in
  (* A bad output path must not look like a protocol failure: report it
     as a plain CLI error after the run itself already completed. *)
  let write what path writer =
    try
      writer path;
      Printf.printf "%s written to %s\n" what path;
      0
    with Sys_error e ->
      Printf.eprintf "lepower: cannot write %s: %s\n" what e;
      1
  in
  let metrics_code =
    Option.fold ~none:0
      ~some:(fun path ->
        write "metrics snapshot" path (fun path ->
            Lepower_obs.Export.write_json path
              (Lepower_obs.Export.metrics_json
                 ~meta:[ ("source", Lepower_obs.Json.String "lepower") ]
                 ())))
      metrics_out
  in
  let trace_code =
    Option.fold ~none:0
      ~some:(fun path ->
        write "chrome trace" path (fun path ->
            Runtime.Trace_export.write_chrome
              ~spans:(Lepower_obs.Span.completed ())
              path
              (Option.value ~default:[] trace)))
      trace_out
  in
  max code (max metrics_code trace_code)

(* --- elect --- *)

let elect_protocol =
  Arg.(
    value
    & opt
        (enum
           [ ("perm", `Perm); ("cas", `Cas); ("bcl", `Bcl); ("multi", `Multi) ])
        `Perm
    & info [ "protocol" ]
        ~doc:"Election protocol: perm, cas, bcl or multi (two registers of \
              sizes k and k-1).")

let elect_n =
  Arg.(
    value & opt (some int) None
    & info [ "n" ] ~doc:"Process count (default: the protocol's capacity).")

let elect_crash =
  Arg.(
    value & opt int 0
    & info [ "crash" ] ~doc:"Crash the lowest-numbered $(docv) processes."
        ~docv:"COUNT")

let election_instance ~k ~n protocol =
  match protocol with
  | `Perm ->
    let n = Option.value ~default:(Protocols.Perm.factorial (k - 1)) n in
    Protocols.Permutation_election.instance ~k ~n
  | `Cas ->
    let n = Option.value ~default:(k - 1) n in
    Protocols.Cas_election.instance ~k ~n
  | `Bcl ->
    let n = Option.value ~default:(k - 1) n in
    Protocols.Bcl_election.instance ~k ~n
  | `Multi ->
    let ks = [ k; max 2 (k - 1) ] in
    let n = Option.value ~default:(Protocols.Multi_election.capacity ~ks) n in
    Protocols.Multi_election.instance ~ks ~n

let elect k seed protocol n crash trace_out metrics_out =
  let instance = election_instance ~k ~n protocol in
  Printf.printf "protocol: %s\n" instance.Protocols.Election.name;
  with_obs ~trace_out ~metrics_out (fun () ->
      let result =
        if crash = 0 then
          Protocols.Election.run instance
            ~sched:(Runtime.Sched.random ~seed)
        else
          Protocols.Election.run_with_crashes_outcome instance ~seed
            ~crashed:(List.init crash (fun i -> i))
      in
      match result with
      | Ok outcome ->
        let trace =
          Runtime.Engine.trace outcome.Runtime.Engine.final
        in
        (match Protocols.Election.leader_of outcome with
        | Some leader ->
          Format.printf "leader: %a@." Memory.Value.pp leader;
          (0, Some trace)
        | None ->
          (* Everyone crashed before deciding: vacuously consistent. *)
          print_endline "no survivor decided";
          (0, Some trace))
      | Error e ->
        Printf.printf "violation: %s\n" e;
        (1, None))

let elect_cmd =
  Cmd.v
    (Cmd.info "elect" ~doc:"Run a leader-election protocol.")
    Term.(
      const elect $ k_arg $ seed_arg $ elect_protocol $ elect_n $ elect_crash
      $ trace_out_arg $ metrics_out_arg)

(* --- explore --- *)

(* Shared by explore, fuzz and replay: which executor runs the schedules.
   [arena] is the hot path (compiled step programs + mutable arena store);
   verdicts, statistics, decision sets and certificates are identical to
   [persistent] — see Runtime.Engine.Machine. *)
let backend_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("persistent", Runtime.Engine.Persistent);
             ("arena", Runtime.Engine.Arena);
           ])
        Runtime.Engine.Persistent
    & info [ "backend" ]
        ~doc:
          "Execution backend: $(b,persistent) (immutable reference \
           configurations) or $(b,arena) (compiled step programs over a \
           mutable arena store with O(1) snapshot/undo — substantially \
           faster; verdicts, statistics, decision sets and certificates \
           are identical).  Composes with --dedup/--por/--static-por: the \
           reduced walks run journal-free on the machine's flat arrays \
           with incrementally-maintained fingerprints (see DESIGN.md \
           $(i,§7)).  Programs whose compiled form outgrows the node \
           budget transparently fall back to closure interpretation.")

let backend_verify_arg =
  Arg.(
    value & flag
    & info [ "backend-verify" ]
        ~doc:
          "Debug: with --backend arena, shadow every machine step with the \
           persistent reference engine and abort on the first divergence \
           (works in every mode; forces the journaled reduced path when \
           --dedup/--por is on).  Orders of magnitude slower.")

let explore_max_steps =
  Arg.(
    value & opt int 50
    & info [ "max-steps" ]
        ~doc:"Per-execution step bound for the exhaustive search.")

let explore_dedup =
  Arg.(
    value & flag
    & info [ "dedup" ]
        ~doc:
          "Memoize visited configurations (canonical fingerprint over store \
           + per-process state) and prune revisits.  Sound here: the \
           election predicate is trace-order-insensitive.  Under --backend \
           arena the fingerprint is maintained incrementally from each \
           step's delta and revisit probes compare machine snapshots in \
           place.")

let explore_por =
  Arg.(
    value & flag
    & info [ "por" ]
        ~doc:
          "Sleep-set partial-order reduction: skip interleavings that only \
           reorder commuting steps (distinct locations, read-read, \
           crashes, decide steps).")

let explore_domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Split the top of the schedule tree across $(docv) OCaml domains \
           running in parallel.")

let explore_crash =
  Arg.(
    value & flag
    & info [ "crash-faults" ]
        ~doc:
          "Let the adversary also fail-stop any process at every choice \
           point (the wait-free adversary; multiplies the schedule space).")

let explore_static_por =
  Arg.(
    value & flag
    & info [ "static-por" ]
        ~doc:
          "Seed --por with static effect summaries: processes whose \
           footprints provably never conflict commute without per-move \
           decoding (implies --por; verdicts and decision sets are \
           identical on either backend).  Skipped with a note when the \
           summary is incomplete (e.g. a retry-loop protocol).")

(* Heartbeat payload for explore: the campaign vitals the ISSUE asks the
   stream to carry — throughput, reduction hit-rates, frontier size and
   (under --domains) the per-domain busy gauges. *)
let explore_hb_fields hb (p : Runtime.Explore.progress) =
  let open Lepower_obs in
  let elapsed = Lepower_prof.Heartbeat.elapsed_s hb in
  let rate =
    if elapsed > 0. then Float.of_int p.Runtime.Explore.p_configs /. elapsed
    else 0.
  in
  let ratio num den =
    if den = 0 then 0. else Float.of_int num /. Float.of_int den
  in
  let gauge name = Metrics.gauge_value (Metrics.gauge name) in
  let busy =
    if p.Runtime.Explore.p_domains <= 1 then []
    else
      List.init p.Runtime.Explore.p_domains (fun w ->
          ( Printf.sprintf "domain%d_busy_s" w,
            Json.Float (gauge (Printf.sprintf "explore.domain%d.busy_s" w)) ))
  in
  [
    ("kind", Json.String "explore");
    ("configs", Json.Int p.Runtime.Explore.p_configs);
    ("terminals", Json.Int p.Runtime.Explore.p_terminals);
    ("truncated", Json.Int p.Runtime.Explore.p_truncated);
    ("max_depth", Json.Int p.Runtime.Explore.p_max_depth);
    ("configs_per_s", Json.Float rate);
    ( "dedup_hit_rate",
      Json.Float
        (ratio p.Runtime.Explore.p_deduped
           (p.Runtime.Explore.p_deduped + p.Runtime.Explore.p_configs)) );
    ( "por_prune_rate",
      Json.Float
        (ratio p.Runtime.Explore.p_pruned
           (p.Runtime.Explore.p_pruned + p.Runtime.Explore.p_configs)) );
    ("frontier", Json.Float (gauge "explore.frontier.size"));
    ("domains", Json.Int p.Runtime.Explore.p_domains);
  ]
  @ busy

let explore k protocol n max_steps dedup por static_por domains crash_faults
    backend backend_verify trace_out metrics_out prof progress progress_out
    interval folded_out =
  let instance = election_instance ~k ~n protocol in
  Printf.printf "protocol: %s\n" instance.Protocols.Election.name;
  with_telemetry ~prof ~progress ~progress_out ~interval ~folded_out
  @@ fun hb ->
  with_obs ~trace_out ~metrics_out (fun () ->
      let progress_cb =
        Option.map
          (fun hb (p : Runtime.Explore.progress) ->
            Lepower_prof.Heartbeat.tick hb (fun () -> explore_hb_fields hb p))
          hb
      in
      let footprints =
        if not static_por then [||]
        else
          let summary =
            Lepower_static.Absint.analyze
              ~bindings:instance.Protocols.Election.bindings
              (List.init instance.Protocols.Election.n
                 instance.Protocols.Election.program)
          in
          match Lepower_static.Summary.footprints summary with
          | Some fps -> fps
          | None ->
            Printf.printf
              "static summary incomplete (%s): POR fast path disabled\n"
              (String.concat ", " summary.Lepower_static.Summary.limits);
            [||]
      in
      (* Aggregate per-item lowering reports under --backend arena: how
         much of each process compiled to the flat instruction DAG and
         whether anything bailed to the closure fallback. *)
      let low_items = ref 0 in
      let low_nodes = ref 0 in
      let low_hits = ref 0 in
      let low_misses = ref 0 in
      let low_bailed = ref 0 in
      let on_lowering =
        match backend with
        | Runtime.Engine.Persistent -> None
        | Runtime.Engine.Arena ->
          Some
            (fun reports ->
              incr low_items;
              Array.iter
                (fun (r : Runtime.Program.Compiled.report) ->
                  low_nodes := !low_nodes + r.Runtime.Program.Compiled.nodes;
                  low_hits := !low_hits + r.Runtime.Program.Compiled.hits;
                  low_misses := !low_misses + r.Runtime.Program.Compiled.misses;
                  if r.Runtime.Program.Compiled.bailed then incr low_bailed)
                reports)
      in
      match
        Protocols.Election.explore_stats instance ~max_steps
          ~options:
            {
              Runtime.Explore.Options.default with
              crash_faults;
              dedup;
              por = por || static_por;
              domains;
              backend;
              verify_backend = backend_verify;
              footprints;
              on_lowering;
              progress = progress_cb;
            }
      with
      | Ok stats ->
        (* One final forced beat so the stream always ends on the exact
           totals, even for runs shorter than the interval. *)
        Option.iter
          (fun hb ->
            Lepower_prof.Heartbeat.tick ~force:true hb (fun () ->
                explore_hb_fields hb
                  {
                    Runtime.Explore.p_configs =
                      stats.Runtime.Explore.configs_visited;
                    p_terminals = stats.Runtime.Explore.terminals;
                    p_truncated = stats.Runtime.Explore.truncated;
                    p_deduped = stats.Runtime.Explore.configs_deduped;
                    p_pruned = stats.Runtime.Explore.por_pruned;
                    p_max_depth = stats.Runtime.Explore.max_depth;
                    p_domains = stats.Runtime.Explore.domains_used;
                  }))
          hb;
        Printf.printf "schedules (terminals): %d\n"
          stats.Runtime.Explore.terminals;
        Printf.printf "truncated:             %d\n"
          stats.Runtime.Explore.truncated;
        Printf.printf "max depth:             %d\n"
          stats.Runtime.Explore.max_depth;
        Printf.printf "choice points:         %d\n"
          stats.Runtime.Explore.choice_points;
        Printf.printf "configs visited:       %d\n"
          stats.Runtime.Explore.configs_visited;
        Printf.printf "configs deduped:       %d\n"
          stats.Runtime.Explore.configs_deduped;
        Printf.printf "POR pruned moves:      %d\n"
          stats.Runtime.Explore.por_pruned;
        if stats.Runtime.Explore.por_checks > 0 then
          Printf.printf "POR fast-path hits:    %d of %d checks\n"
            stats.Runtime.Explore.por_fast_hits
            stats.Runtime.Explore.por_checks;
        Printf.printf "domains used:          %d\n"
          stats.Runtime.Explore.domains_used;
        (match backend with
        | Runtime.Engine.Persistent -> ()
        | Runtime.Engine.Arena ->
          Printf.printf
            "backend:               arena (%d machines; %d compiled nodes, \
             %d edge hits / %d misses, %d pids bailed to closures%s)\n"
            !low_items !low_nodes !low_hits !low_misses !low_bailed
            (if backend_verify then "; verified against persistent" else ""));
        (0, None)
      | Error e ->
        Printf.printf "violation: %s\n" e;
        (1, None))

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively check a leader election over every interleaving and \
          report the schedule-space statistics (small instances only).  \
          --dedup, --por and --domains opt into the reduced/parallel \
          explorer; the verdict is identical to the naive walk's.")
    Term.(
      const explore $ k_arg $ elect_protocol $ elect_n $ explore_max_steps
      $ explore_dedup $ explore_por $ explore_static_por $ explore_domains
      $ explore_crash $ backend_arg $ backend_verify_arg $ trace_out_arg
      $ metrics_out_arg $ prof_arg $ progress_arg $ progress_out_arg
      $ progress_interval_arg $ folded_out_arg)

(* --- lint --- *)

let lint_subject =
  Arg.(
    value
    & opt
        (enum
           [
             ("perm", `Perm); ("cas", `Cas); ("bcl", `Bcl); ("multi", `Multi);
             ("all", `All); ("fixtures", `Fixtures);
             ("broken-swmr", `Broken_swmr); ("broken-cas", `Broken_cas);
             ("spin", `Spin);
           ])
        `All
    & info [ "protocol" ]
        ~doc:
          "What to lint: an election protocol (perm, cas, bcl, multi), all \
           of them (all), every seeded-bug fixture (fixtures), or one \
           fixture (broken-swmr, broken-cas, spin).")

let lint_rules =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "rules" ] ~docv:"RULE,..."
        ~doc:
          "Keep only findings whose rule name is listed (e.g. \
           swmr-discipline,bounded-value,wait-freedom).  Default: all \
           rules.")

let lint_jsonl_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl-out" ] ~docv:"FILE"
        ~doc:
          "Write the findings and per-subject summaries as JSONL (one \
           strict JSON document per line) to $(docv).")

let lint_seeds =
  Arg.(
    value
    & opt (some int) None
    & info [ "seeds" ]
        ~doc:
          "Force sampled-schedule mode with this many seeded runs \
           (default: exhaustive when the instance is small enough, else \
           64 samples).")

let lint_exhaustive =
  Arg.(
    value & flag
    & info [ "exhaustive" ]
        ~doc:"Force exhaustive interleaving exploration (small instances \
              only).")

let lint_max_steps =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~doc:"Per-execution step cap override.")

let lint_static =
  Arg.(
    value & flag
    & info [ "static" ]
        ~doc:
          "Run the static analysis plane (effect-summary abstract \
           interpretation: static-swmr, static-k-bound, \
           static-loop-bound, static-register-budget).  Alone, no \
           schedule is executed at all; combined with --exhaustive or \
           --seeds, both planes run, every execution is cross-checked \
           against the summary, and a dynamic finding whose static \
           counterpart already flagged the location is deduplicated.")

let lint_register_budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "register-budget" ] ~docv:"N"
        ~doc:
          "Fail when the protocol's static footprint needs more than \
           $(docv) registers (with --static).")

let lint_targets ~k ~n subject =
  let open Lepower_check in
  let protocol_name = function
    | `Perm -> "perm"
    | `Cas -> "cas"
    | `Bcl -> "bcl"
    | `Multi -> "multi"
  in
  let protocols subjects =
    List.map
      (fun p ->
        let instance = election_instance ~k ~n p in
        let subject =
          Repro_subject.election ~protocol:(protocol_name p) ~k
            ~n:instance.Protocols.Election.n ()
        in
        Lint.target_of_instance ~subject instance)
      subjects
  in
  match subject with
  | `Perm -> protocols [ `Perm ]
  | `Cas -> protocols [ `Cas ]
  | `Bcl -> protocols [ `Bcl ]
  | `Multi -> protocols [ `Multi ]
  | `All -> protocols [ `Cas; `Bcl; `Perm; `Multi ]
  | `Fixtures -> Lint.fixtures ()
  | `Broken_swmr -> [ Lint.broken_swmr_fixture () ]
  | `Broken_cas -> [ Lint.broken_cas_fixture ?n () ]
  | `Spin -> [ Lint.spin_fixture () ]

let lint_repro_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "repro-out" ] ~docv:"FILE"
        ~doc:
          "Record a replayable schedule certificate for the first failing \
           sampled run and write it to $(docv) (sampled mode only; see \
           'lepower replay').")

let lint_shrink =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:
          "Minimize the recorded certificate's decision log by delta \
           debugging before writing it (only with --repro-out).")

let lint_hb_fields hb schedules =
  let open Lepower_obs in
  let elapsed = Lepower_prof.Heartbeat.elapsed_s hb in
  let rate =
    if elapsed > 0. then Float.of_int schedules /. elapsed else 0.
  in
  [
    ("kind", Json.String "lint");
    ("schedules", Json.Int schedules);
    ("schedules_per_s", Json.Float rate);
  ]

let lint k n subject rules seeds exhaustive max_steps static register_budget
    jsonl_out repro_out shrink metrics_out prof progress progress_out interval
    folded_out =
  let open Lepower_check in
  with_telemetry ~prof ~progress ~progress_out ~interval ~folded_out
  @@ fun hb ->
  with_obs ~trace_out:None ~metrics_out @@ fun () ->
  let mode =
    if exhaustive then Some Lint.Exhaustive
    else Option.map (fun s -> Lint.Sample s) seeds
  in
  (* --static alone is the pure static plane; an explicit execution
     request (--exhaustive / --seeds) upgrades it to both planes. *)
  let static_mode =
    if not static then Lint.Static_off
    else if exhaustive || seeds <> None then Lint.Static_and_dynamic
    else Lint.Static_only
  in
  let recorded = ref None in
  let on_repro =
    Option.map
      (fun _path cert stats ->
        if !recorded = None then recorded := Some (cert, stats))
      repro_out
  in
  (* [Lint.lint]'s progress count restarts per target; fold targets into
     one cumulative schedule counter for the heartbeat stream. *)
  let scheds = ref 0 in
  let base = ref 0 in
  let progress_cb =
    Option.map
      (fun hb per_target ->
        scheds := !base + per_target;
        Lepower_prof.Heartbeat.tick hb (fun () -> lint_hb_fields hb !scheds))
      hb
  in
  let reports =
    List.map
      (fun t ->
        let r =
          Lint.lint ?mode ~static:static_mode ?register_budget ?rules
            ?max_steps ~shrink ?on_repro ?progress:progress_cb t
        in
        base := !scheds;
        r)
      (lint_targets ~k ~n subject)
  in
  Option.iter
    (fun hb ->
      Lepower_prof.Heartbeat.tick ~force:true hb (fun () ->
          lint_hb_fields hb !scheds))
    hb;
  let repro_code =
    match (repro_out, !recorded) with
    | None, _ -> 0
    | Some path, Some (cert, stats) -> (
      Option.iter
        (fun (s : Runtime.Repro.shrink_stats) ->
          Printf.printf
            "shrunk: %d -> %d decisions (%d candidate replays)\n"
            s.Runtime.Repro.original s.Runtime.Repro.shrunk
            s.Runtime.Repro.attempts)
        stats;
      try
        Runtime.Repro.save path cert;
        Printf.printf "repro certificate written to %s\n" path;
        0
      with Sys_error e ->
        Printf.eprintf "lepower: cannot write certificate: %s\n" e;
        2)
    | Some _, None ->
      print_endline
        "no failing sampled run: no repro certificate recorded";
      0
  in
  List.iter (fun r -> Format.printf "%a@.@." Report.pp r) reports;
  let code =
    Option.fold ~none:0
      ~some:(fun path ->
        try
          Report.write_jsonl path reports;
          Printf.printf "findings written to %s\n" path;
          0
        with Sys_error e ->
          Printf.eprintf "lepower: cannot write findings: %s\n" e;
          2)
      jsonl_out
  in
  let clean = List.for_all Report.ok reports in
  if not clean then
    Printf.printf "lint: %d of %d subjects have findings\n"
      (List.length (List.filter (fun r -> not (Report.ok r)) reports))
      (List.length reports);
  (max (max code repro_code) (if clean then 0 else 1), None)

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the Lepower_check analysis pass (trace discipline, \
          bounded-value, wait-freedom audit) over election protocols or \
          the seeded-bug fixtures; exit nonzero when any finding is \
          reported.")
    Term.(
      const lint $ k_arg $ elect_n $ lint_subject $ lint_rules $ lint_seeds
      $ lint_exhaustive $ lint_max_steps $ lint_static $ lint_register_budget
      $ lint_jsonl_out $ lint_repro_out $ lint_shrink $ metrics_out_arg
      $ prof_arg $ progress_arg $ progress_out_arg $ progress_interval_arg
      $ folded_out_arg)

(* --- fuzz --- *)

let fuzz_subject =
  Arg.(
    value
    & opt
        (enum
           [
             ("perm", `Perm); ("cas", `Cas); ("bcl", `Bcl); ("multi", `Multi);
             ("broken-swmr", `Broken_swmr); ("broken-cas", `Broken_cas);
             ("spin", `Spin);
           ])
        `Broken_cas
    & info [ "protocol" ]
        ~doc:
          "What to fuzz: an election protocol (perm, cas, bcl, multi) or a \
           seeded-bug fixture (broken-swmr, broken-cas, spin; see also \
           --flip).")

let fuzz_flip =
  Arg.(
    value & flag
    & info [ "flip" ]
        ~doc:
          "Use the DFS-adversarial variant of the broken-swmr/broken-cas \
           fixtures: the violating schedule order is the one exhaustive \
           depth-first search tries last, so randomized fuzzing wins by \
           orders of magnitude (the E14 benchmark fixtures).")

let fuzz_sched =
  Arg.(
    value
    & opt (enum [ ("random", `Random); ("pct", `Pct); ("starve", `Starve) ])
        `Pct
    & info [ "sched" ]
        ~doc:
          "Adversarial scheduler: random (uniform walk), pct (priority \
           scheduling with --pct-depth change points), or starve (random \
           walk withholding --starve-pid for --starve-steps steps).")

let fuzz_depth =
  Arg.(
    value & opt int 3
    & info [ "pct-depth" ]
        ~doc:"PCT bug depth d: d-1 priority-change points per run.")

let fuzz_starve_pid =
  Arg.(value & opt int 0 & info [ "starve-pid" ] ~doc:"Pid to starve.")

let fuzz_starve_steps =
  Arg.(
    value & opt int 8
    & info [ "starve-steps" ]
        ~doc:"How many executed steps the starved pid is withheld for.")

let fuzz_runs =
  Arg.(
    value & opt int 256
    & info [ "runs" ] ~doc:"Run budget: stop after this many clean runs.")

let fuzz_faults =
  Arg.(
    value & flag
    & info [ "faults" ]
        ~doc:
          "Inject faults (fail-stop crashes, lost writes, stuck-at \
           registers) at the default rates; every injection is recorded \
           in the certificate's decision log, so replay re-injects them \
           bit-for-bit.")

let fuzz_max_steps =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~doc:"Per-run step cap override.")

let fuzz_repro_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "repro-out" ] ~docv:"FILE"
        ~doc:
          "Write the violation's schedule certificate to $(docv) (see \
           'lepower replay').")

let fuzz_no_shrink =
  Arg.(
    value & flag
    & info [ "no-shrink" ]
        ~doc:
          "Skip delta-debugging minimization of the violation certificate \
           (fuzz shrinks by default).")

let fuzz_hb_fields hb (p : Runtime.Fuzz.progress) =
  let open Lepower_obs in
  let elapsed = Lepower_prof.Heartbeat.elapsed_s hb in
  let rate =
    if elapsed > 0. then Float.of_int p.Runtime.Fuzz.p_run /. elapsed else 0.
  in
  let eta =
    if rate > 0. then
      Float.of_int (p.Runtime.Fuzz.p_runs_total - p.Runtime.Fuzz.p_run) /. rate
    else 0.
  in
  [
    ("kind", Json.String "fuzz");
    ("run", Json.Int p.Runtime.Fuzz.p_run);
    ("runs_total", Json.Int p.Runtime.Fuzz.p_runs_total);
    ("injected", Json.Int p.Runtime.Fuzz.p_injected);
    ("steps", Json.Int p.Runtime.Fuzz.p_steps);
    ("runs_per_s", Json.Float rate);
    ("eta_s", Json.Float eta);
  ]

let fuzz k n subject flip sched depth starve_pid starve_steps runs seed faults
    max_steps backend repro_out no_shrink metrics_out prof progress
    progress_out interval folded_out =
  let open Lepower_check in
  with_telemetry ~prof ~progress ~progress_out ~interval ~folded_out
  @@ fun hb ->
  with_obs ~trace_out:None ~metrics_out @@ fun () ->
  let progress_cb =
    Option.map
      (fun hb (p : Runtime.Fuzz.progress) ->
        Lepower_prof.Heartbeat.tick hb (fun () -> fuzz_hb_fields hb p))
      hb
  in
  let kind =
    match sched with
    | `Random -> Runtime.Fuzz.Random_walk
    | `Pct -> Runtime.Fuzz.Pct { depth }
    | `Starve ->
      Runtime.Fuzz.Starve { victim = starve_pid; stall = starve_steps }
  in
  let plan = if faults then Runtime.Faults.default else Runtime.Faults.none in
  let shrink = not no_shrink in
  let name, outcome =
    match subject with
    | (`Perm | `Cas | `Bcl | `Multi) as p ->
      let instance = election_instance ~k ~n p in
      let protocol =
        match p with
        | `Perm -> "perm"
        | `Cas -> "cas"
        | `Bcl -> "bcl"
        | `Multi -> "multi"
      in
      let subject_json =
        Repro_subject.election ~protocol ~k
          ~n:instance.Protocols.Election.n ()
      in
      ( instance.Protocols.Election.name,
        Protocols.Election.fuzz ~runs ~seed ?max_steps ~plan ~kind ~shrink
          ~subject:subject_json ~backend ?progress:progress_cb instance )
    | `Broken_swmr ->
      let t = Lint.broken_swmr_fixture ~flip () in
      ( t.Lint.name,
        Lint.fuzz_target ~runs ~seed ?max_steps ~plan ~kind ~shrink ~backend
          ?progress:progress_cb t )
    | `Broken_cas ->
      let t = Lint.broken_cas_fixture ?n ~flip () in
      ( t.Lint.name,
        Lint.fuzz_target ~runs ~seed ?max_steps ~plan ~kind ~shrink ~backend
          ?progress:progress_cb t )
    | `Spin ->
      let t = Lint.spin_fixture () in
      ( t.Lint.name,
        Lint.fuzz_target ~runs ~seed ?max_steps ~plan ~kind ~shrink ~backend
          ?progress:progress_cb t )
  in
  Option.iter
    (fun hb ->
      Lepower_prof.Heartbeat.tick ~force:true hb (fun () ->
          fuzz_hb_fields hb
            {
              Runtime.Fuzz.p_run = outcome.Runtime.Fuzz.runs;
              p_runs_total = runs;
              p_injected = outcome.Runtime.Fuzz.injected;
              p_steps = outcome.Runtime.Fuzz.steps;
            }))
    hb;
  Printf.printf "subject:  %s\n" name;
  Printf.printf "sched:    %s  seed=%d  faults=%s  backend=%s\n"
    (Runtime.Fuzz.kind_name kind) seed
    (if faults then "on" else "off")
    (Runtime.Engine.backend_name backend);
  Printf.printf "runs:     %d (budget %d)  decisions=%d  injected=%d\n"
    outcome.Runtime.Fuzz.runs runs outcome.Runtime.Fuzz.steps
    outcome.Runtime.Fuzz.injected;
  match outcome.Runtime.Fuzz.cert with
  | None ->
    print_endline "no violation found";
    (0, None)
  | Some cert ->
    (match outcome.Runtime.Fuzz.first_violation with
    | Some i -> Printf.printf "violation at run %d (seed %d)\n" i (seed + i)
    | None -> ());
    Option.iter (Printf.printf "failure:  %s\n") outcome.Runtime.Fuzz.message;
    Option.iter
      (fun (s : Runtime.Repro.shrink_stats) ->
        Printf.printf "shrunk: %d -> %d decisions (%d candidate replays)\n"
          s.Runtime.Repro.original s.Runtime.Repro.shrunk
          s.Runtime.Repro.attempts)
      outcome.Runtime.Fuzz.shrink;
    let write_code =
      match repro_out with
      | None -> 0
      | Some path -> (
        try
          Runtime.Repro.save path cert;
          Printf.printf "repro certificate written to %s\n" path;
          0
        with Sys_error e ->
          Printf.eprintf "lepower: cannot write certificate: %s\n" e;
          2)
    in
    (max 1 write_code, None)

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Hunt schedule-dependent violations with seeded adversarial \
          schedulers (random walk, PCT priority scheduling, starvation) \
          and optional fault injection (crashes, lost writes, stuck-at \
          registers).  Deterministic: a violation is emitted as a \
          replayable schedule certificate with the injected faults in its \
          decision log.  Exit 1 when a violation is found.")
    Term.(
      const fuzz $ k_arg $ elect_n $ fuzz_subject $ fuzz_flip $ fuzz_sched
      $ fuzz_depth $ fuzz_starve_pid $ fuzz_starve_steps $ fuzz_runs
      $ seed_arg $ fuzz_faults $ fuzz_max_steps $ backend_arg
      $ fuzz_repro_out $ fuzz_no_shrink $ metrics_out_arg $ prof_arg
      $ progress_arg $ progress_out_arg $ progress_interval_arg
      $ folded_out_arg)

(* --- replay --- *)

let replay_cert =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"CERT.json"
        ~doc:"Schedule certificate to replay (see --repro-out).")

let replay_shrink =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:
          "After reproducing, minimize the decision log by delta debugging \
           (ddmin + crash-removal + pid-merge passes, every candidate \
           validated by replay).")

let replay_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the minimized certificate to $(docv) (with --shrink).")

let replay cert_file shrink out backend trace_out metrics_out =
  with_obs ~trace_out ~metrics_out @@ fun () ->
  match Runtime.Repro.load cert_file with
  | Error e ->
    Printf.eprintf "lepower: cannot load certificate: %s\n" e;
    (1, None)
  | Ok cert -> (
    match Lepower_check.Repro_subject.resolve cert.Runtime.Repro.subject with
    | Error e ->
      Printf.eprintf "lepower: cannot resolve certificate subject: %s\n" e;
      (1, None)
    | Ok r -> (
      Printf.printf "subject:   %s\n" r.Lepower_check.Repro_subject.name;
      Printf.printf "recorded:  sched=%s%s  decisions=%d  version=%s\n"
        cert.Runtime.Repro.sched
        (match cert.Runtime.Repro.seed with
        | Some s -> Printf.sprintf " seed=%d" s
        | None -> "")
        (List.length cert.Runtime.Repro.decisions)
        cert.Runtime.Repro.version;
      if cert.Runtime.Repro.message <> "" then
        Printf.printf "failure:   %s\n" cert.Runtime.Repro.message;
      match
        Runtime.Repro.replay ~backend cert
          r.Lepower_check.Repro_subject.config
      with
      | Error e ->
        Printf.printf "replay rejected: %s\n" e;
        (1, None)
      | Ok final -> (
        let trace = Some (Runtime.Engine.trace final) in
        match
          r.Lepower_check.Repro_subject.failing
            (Runtime.Engine.Config_view.of_config final)
        with
        | None ->
          print_endline
            "replay verified (fingerprints match) but the subject's failure \
             predicate does not fire";
          (1, trace)
        | Some msg ->
          Printf.printf "reproduced: %s\n" msg;
          let code =
            if not shrink then 0
            else begin
              let failing c =
                r.Lepower_check.Repro_subject.failing c <> None
              in
              let cert', stats =
                Runtime.Repro.shrink ~failing
                  ~config0:r.Lepower_check.Repro_subject.config cert
              in
              Printf.printf
                "shrunk: %d -> %d decisions (%d candidate replays)\n"
                stats.Runtime.Repro.original stats.Runtime.Repro.shrunk
                stats.Runtime.Repro.attempts;
              match out with
              | None -> 0
              | Some path -> (
                try
                  Runtime.Repro.save path cert';
                  Printf.printf "minimized certificate written to %s\n" path;
                  0
                with Sys_error e ->
                  Printf.eprintf "lepower: cannot write certificate: %s\n" e;
                  2)
            end
          in
          (code, trace))))

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Deterministically re-execute a recorded schedule certificate: \
          rebuild the instance from the certificate's subject, drive the \
          engine along the recorded adversary decisions, verify initial and \
          final configuration fingerprints bit-for-bit, and re-check the \
          failure.  Exit 0 iff the failure reproduces.")
    Term.(
      const replay $ replay_cert $ replay_shrink $ replay_out $ backend_arg
      $ trace_out_arg $ metrics_out_arg)

(* --- emulate --- *)

let emulate_workload =
  Arg.(
    value
    & opt (enum [ ("overcap", `Overcap); ("cycling", `Cycling) ]) `Overcap
    & info [ "workload" ]
        ~doc:"Emulated algorithm A: overcap (over-capacity election) or \
              cycling (value-revisiting stress).")

let emulate_vps =
  Arg.(value & opt int 280 & info [ "vps" ] ~doc:"Total virtual processes.")

let emulate_schedule =
  Arg.(
    value
    & opt
        (enum
           [ ("random", `Random); ("rr", `Round_robin); ("stale", `Stale_view) ])
        `Stale_view
    & info [ "schedule" ] ~doc:"Emulator schedule: random, rr or stale.")

let emulate_dump_tree =
  Arg.(
    value & flag
    & info [ "dump-tree" ]
        ~doc:"Print the final history structure T (Fig. 1) after the run.")

let emulate k seed workload vps schedule dump_tree trace_out metrics_out =
  let alg =
    match workload with
    | `Overcap -> Core.Workloads.over_capacity_cas_election ~k ~num_vps:vps
    | `Cycling -> Core.Workloads.cycling ~k ~rounds:1 ~num_vps:vps
  in
  let params = Core.Emulation.small_params ~k in
  with_obs ~trace_out ~metrics_out @@ fun () ->
  let r = Core.Reduction.check ~seed ~schedule alg params in
  Format.printf "%a@." Core.Reduction.pp_report r;
  let s = Core.Emulation.stats r.Core.Reduction.outcome.Core.Emulation.final in
  Printf.printf
    "stats: %d iterations, %d simple ops, %d suspensions, %d releases, %d \
     attaches, %d splits, %d stalls\n"
    s.Core.Emulation.iterations s.Core.Emulation.simple_ops
    s.Core.Emulation.suspensions s.Core.Emulation.releases
    s.Core.Emulation.attaches s.Core.Emulation.splits
    s.Core.Emulation.stall_events;
  List.iter
    (fun (name, violations) ->
      List.iter
        (fun v -> Format.printf "audit %s: %a@." name Core.Invariants.pp_violation v)
        violations)
    (Core.Invariants.all r.Core.Reduction.outcome.Core.Emulation.final);
  (* The same history structures, through the lint pipeline: every active
     label's constructed Σ-history must satisfy the space bound. *)
  let findings =
    Lepower_check.Emulation_check.check
      r.Core.Reduction.outcome.Core.Emulation.final
  in
  List.iter
    (fun f -> Format.printf "lint: %a@." Lepower_check.Finding.pp f)
    findings;
  if dump_tree then
    Format.printf "@.history structure T:@.%a" Core.History_tree.pp
      (Core.Emulation.shared_tree r.Core.Reduction.outcome.Core.Emulation.final);
  let ok =
    r.Core.Reduction.width <= r.Core.Reduction.max_width
    && not (List.exists Lepower_check.Finding.is_reportable findings)
  in
  ((if ok then 0 else 1), None)

let emulate_cmd =
  Cmd.v
    (Cmd.info "emulate" ~doc:"Run the Afek-Stupp reduction on a workload.")
    Term.(
      const emulate $ k_arg $ seed_arg $ emulate_workload $ emulate_vps
      $ emulate_schedule $ emulate_dump_tree $ trace_out_arg $ metrics_out_arg)

(* --- hierarchy --- *)

let hierarchy () =
  List.iter
    (fun row -> Format.printf "%a@." Hierarchy.Separation.pp_row row)
    (Hierarchy.Separation.table ());
  0

let hierarchy_cmd =
  Cmd.v
    (Cmd.info "hierarchy" ~doc:"Print the consensus-number analysis table.")
    Term.(const hierarchy $ const ())

(* --- game --- *)

let game_m = Arg.(value & opt int 2 & info [ "m" ] ~doc:"Number of agents.")

let game m k seed metrics_out =
  with_obs ~trace_out:None ~metrics_out @@ fun () ->
  let greedy, exact, bound = Game.Search.strategy_gap ~m ~k ~seed in
  Printf.printf "m=%d k=%d: greedy=%d exact=%d bound(m^k)=%d\n" m k greedy
    exact bound;
  ((if exact <= bound || m = 1 then 0 else 1), None)

let game_cmd =
  Cmd.v
    (Cmd.info "game" ~doc:"Play the Lemma 1.1 move/jump game.")
    Term.(const game $ game_m $ k_arg $ seed_arg $ metrics_out_arg)

(* --- rename --- *)

let rename_n =
  Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of processes.")

let rename n seed trace_out metrics_out =
  with_obs ~trace_out ~metrics_out @@ fun () ->
  let instance = Protocols.Splitter.renaming ~n in
  match Protocols.Splitter.run_random instance ~seed with
  | Ok names ->
    Printf.printf "names (by pid): %s  (space: %d)\n"
      (String.concat ", " (List.map string_of_int names))
      instance.Protocols.Splitter.name_space;
    (0, None)
  | Error e ->
    Printf.printf "violation: %s\n" e;
    (1, None)

let rename_cmd =
  Cmd.v
    (Cmd.info "rename"
       ~doc:"One-shot renaming from r/w registers (Moir-Anderson splitters).")
    Term.(const rename $ rename_n $ seed_arg $ trace_out_arg $ metrics_out_arg)

(* --- bounds --- *)

let bounds () =
  Printf.printf "%-4s %-14s %-14s %-10s %s\n" "k" "lower (k-1)!" "emulators m"
    "batch" "upper bound k^(k^2+3)";
  List.iter
    (fun k ->
      let m = Core.Bounds.emulators ~k in
      Printf.printf "%-4d %-14d %-14d %-10d %s\n" k
        (Core.Bounds.election_lower_bound ~k)
        m
        (Core.Bounds.suspension_batch ~k ~m)
        (Core.Bounds.upper_bound_string ~k))
    [ 3; 4; 5; 6; 7; 8 ];
  0

let bounds_cmd =
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the paper's closed-form bounds.")
    Term.(const bounds $ const ())

(* --- report --- *)

let report_files =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "Telemetry artifacts to ingest, in any mix: heartbeat/phase \
           JSONL streams (--progress-out), metrics snapshots \
           (--metrics-out), and single-line BENCH_*.json documents.")

let report_require_phases =
  Arg.(
    value & flag
    & info [ "require-phases" ]
        ~doc:
          "Fail (exit 1) unless the inputs contain a phase-attribution \
           document with at least one nonzero row — the CI smoke's guard \
           that --prof actually measured something.")

let report files require_phases =
  match
    Lepower_prof.Report.run ~require_phases Format.std_formatter files
  with
  | Ok () -> 0
  | Error e ->
    Printf.eprintf "lepower report: %s\n" e;
    1

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a human-readable campaign report from recorded telemetry: \
          any mix of heartbeat/phase JSONL streams, metrics snapshots and \
          BENCH_*.json documents, offline — no live process needed.")
    Term.(const report $ report_files $ report_require_phases)

let () =
  let info =
    Cmd.info "lepower" ~version:"1.0.0"
      ~doc:
        "Delimiting the power of bounded size synchronization objects \
         (Afek & Stupp, PODC 1994) — executable reproduction."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            elect_cmd; explore_cmd; lint_cmd; fuzz_cmd; replay_cmd;
            emulate_cmd; hierarchy_cmd; game_cmd; rename_cmd; bounds_cmd;
            report_cmd;
          ]))
