(* Lepower_prof: phase attribution, heartbeats, folded stacks, report. *)

module Phase = Lepower_prof.Phase
module Heartbeat = Lepower_prof.Heartbeat
module Folded = Lepower_prof.Folded
module Report = Lepower_prof.Report
module Json = Lepower_obs.Json
module Span = Lepower_obs.Span

let span ?(tid = 0) name start_us dur_us =
  { Span.name; start_us; dur_us; tid; args = [] }

(* ------------------------------------------------------------------ *)
(* Phase attribution.                                                  *)

let with_phases f =
  Phase.reset ();
  Phase.enable ();
  Fun.protect ~finally:(fun () -> Phase.disable (); Phase.reset ()) f

let row name =
  List.find_opt (fun r -> r.Phase.r_name = name) (Phase.rows ())

let spin_ms ms =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < ms /. 1e3 do
    ignore (Sys.opaque_identity (ref 0))
  done

let test_phase_disabled_noop () =
  Phase.reset ();
  let p = Phase.make "test.disabled" in
  Phase.leave (Phase.enter p);
  Alcotest.(check (list string))
    "no rows recorded while disabled" []
    (List.map (fun r -> r.Phase.r_name) (Phase.rows ()))

let test_phase_self_vs_total () =
  with_phases @@ fun () ->
  let outer = Phase.make "test.outer" in
  let inner = Phase.make "test.inner" in
  Phase.with_phase outer (fun () ->
      spin_ms 2.;
      Phase.with_phase inner (fun () -> spin_ms 4.);
      spin_ms 2.);
  let o = Option.get (row "test.outer") in
  let i = Option.get (row "test.inner") in
  Alcotest.(check int) "outer calls" 1 o.Phase.r_calls;
  Alcotest.(check int) "inner calls" 1 i.Phase.r_calls;
  (* Self excludes the nested phase: outer self ~4ms of ~8ms total. *)
  Alcotest.(check bool) "outer total >= inner total" true
    (o.Phase.r_total_ns >= i.Phase.r_total_ns);
  Alcotest.(check bool) "outer self < outer total" true
    (o.Phase.r_self_ns < o.Phase.r_total_ns);
  Alcotest.(check bool) "outer self excludes inner" true
    (o.Phase.r_self_ns <= o.Phase.r_total_ns - i.Phase.r_self_ns);
  Alcotest.(check bool) "inner leaf: self = total" true
    (i.Phase.r_self_ns = i.Phase.r_total_ns);
  (* Self times are disjoint, so their sum stays within the outer wall. *)
  Alcotest.(check bool) "sum of self <= outer total" true
    (Phase.self_total_ns () <= o.Phase.r_total_ns)

let test_phase_unbalanced () =
  with_phases @@ fun () ->
  let outer = Phase.make "test.unb.outer" in
  let leaked = Phase.make "test.unb.leaked" in
  let after = Phase.make "test.unb.after" in
  (* Enter a nested phase and never leave it; leaving the outer one must
     close the orphan instead of corrupting the stack. *)
  let t_outer = Phase.enter outer in
  ignore (Phase.enter leaked : Phase.token);
  Phase.leave t_outer;
  (* Double-leave is a no-op. *)
  Phase.leave t_outer;
  Phase.with_phase after (fun () -> ());
  let names = List.map (fun r -> r.Phase.r_name) (Phase.rows ()) in
  Alcotest.(check bool) "orphan closed" true
    (List.mem "test.unb.leaked" names);
  let o = Option.get (row "test.unb.outer") in
  let a = Option.get (row "test.unb.after") in
  Alcotest.(check int) "outer recorded once" 1 o.Phase.r_calls;
  Alcotest.(check int) "later phases unaffected" 1 a.Phase.r_calls

let test_phase_exception () =
  with_phases @@ fun () ->
  let p = Phase.make "test.exn" in
  (try Phase.with_phase p (fun () -> failwith "boom")
   with Failure _ -> ());
  let r = Option.get (row "test.exn") in
  Alcotest.(check int) "recorded despite raise" 1 r.Phase.r_calls

let test_phase_json () =
  with_phases @@ fun () ->
  let p = Phase.make "test.json" in
  Phase.with_phase p (fun () -> spin_ms 1.);
  let doc = Phase.to_json ~wall_us:5000. () in
  Alcotest.(check string) "type tag" "phases"
    (match Json.member "type" doc with Some (Json.String s) -> s | _ -> "?");
  match Json.member "rows" doc with
  | Some (Json.List (Json.Obj fields :: _)) ->
    Alcotest.(check bool) "row has name" true
      (List.mem_assoc "name" fields && List.mem_assoc "self_us" fields)
  | _ -> Alcotest.fail "rows missing"

(* ------------------------------------------------------------------ *)
(* Heartbeats.                                                         *)

let test_heartbeat_interval_zero () =
  let beats = ref [] in
  let hb =
    Heartbeat.create ~interval_s:0. ~emit:(fun d -> beats := d :: !beats) ()
  in
  for i = 1 to 3 do
    Heartbeat.tick hb (fun () -> [ ("i", Json.Int i) ])
  done;
  let beats = List.rev !beats in
  Alcotest.(check int) "every tick beats at interval 0" 3 (List.length beats);
  List.iteri
    (fun idx doc ->
      Alcotest.(check int) "seq increments"
        (idx + 1)
        (match Json.member "seq" doc with Some (Json.Int s) -> s | _ -> -1);
      Alcotest.(check string) "type tag" "heartbeat"
        (match Json.member "type" doc with
        | Some (Json.String s) -> s
        | _ -> "?");
      Alcotest.(check bool) "t_s present" true
        (Json.member "t_s" doc <> None))
    beats

let test_heartbeat_rate_limit () =
  let n = ref 0 in
  let hb = Heartbeat.create ~interval_s:3600. ~emit:(fun _ -> incr n) () in
  for _ = 1 to 100 do
    Heartbeat.tick hb (fun () -> [])
  done;
  Alcotest.(check int) "not due: no beats" 0 !n;
  Heartbeat.tick ~force:true hb (fun () -> []);
  Alcotest.(check int) "force beats" 1 !n

(* ------------------------------------------------------------------ *)
(* Folded stacks.                                                      *)

(* A known two-lane span layout whose folded rendering is pinned
   byte-for-byte: lane 0 has run > walk > {step, step}; lane 1 has an
   unrelated fuzz span. *)
let folded_fixture () =
  [
    span "run" 0. 100.;
    span "walk" 10. 80.;
    span "step" 20. 10.;
    span "step" 40. 10.;
    span ~tid:1 "fuzz" 0. 30.;
  ]

let folded_expected =
  [ "fuzz 30"; "run 20"; "run;walk 60"; "run;walk;step 20" ]

let test_folded_fixture () =
  Alcotest.(check (list string))
    "folded lines byte-for-byte" folded_expected
    (Folded.to_lines (folded_fixture ()))

let test_folded_write_roundtrip () =
  let path = Filename.temp_file "lepower_folded" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Folded.write path (folded_fixture ());
  let contents = In_channel.with_open_text path In_channel.input_all in
  Alcotest.(check string)
    "file round-trips byte-for-byte"
    (String.concat "\n" folded_expected ^ "\n")
    contents

let test_folded_ill_nested () =
  (* Overlapping spans (neither contains the other) must clip, not
     crash, and self weights must stay non-negative with total weight
     no more than the lane's real extent. *)
  let spans =
    [ span "a" 0. 60.; span "b" 30. 60.; span "c" 50. 100. ]
  in
  let lines = Folded.collapse spans in
  List.iter
    (fun (_, self) ->
      Alcotest.(check bool) "self weight non-negative" true (self >= 0))
    lines;
  let total = List.fold_left (fun acc (_, s) -> acc + s) 0 lines in
  Alcotest.(check bool) "clipped total within extent" true (total <= 150);
  Alcotest.(check bool) "all stacks named" true
    (List.for_all (fun (stack, _) -> stack <> "") lines)

let test_folded_empty () =
  Alcotest.(check (list string)) "no spans, no lines" [] (Folded.to_lines [])

(* ------------------------------------------------------------------ *)
(* Report.                                                             *)

let write_lines path lines =
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines)

let render ?(require_phases = false) paths =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let r = Report.run ~require_phases ppf paths in
  Format.pp_print_flush ppf ();
  (r, Buffer.contents buf)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_report_from_stream () =
  let path = Filename.temp_file "lepower_report" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_lines path
    [
      {|{"type":"heartbeat","seq":1,"t_s":0.5,"kind":"explore","configs":100,"configs_per_s":200.0}|};
      {|{"type":"heartbeat","seq":2,"t_s":1.0,"kind":"explore","configs":300,"configs_per_s":300.0}|};
      {|{"type":"phases","rows":[{"name":"engine.step","calls":7,"self_us":400.0,"total_us":400.0,"minor_words":10,"major_words":0}],"wall_us":1000.0}|};
    ];
  let r, out = render ~require_phases:true [ path ] in
  Alcotest.(check bool) "renders" true (r = Ok ());
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in report") true
        (contains ~needle out))
    [ "engine.step"; "heartbeat"; "configs" ]

let test_report_require_phases_fails () =
  let path = Filename.temp_file "lepower_report" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_lines path [ {|{"type":"heartbeat","seq":1,"t_s":0.5,"runs":3}|} ];
  let r, _ = render ~require_phases:true [ path ] in
  Alcotest.(check bool) "no phase rows is an error" true (Result.is_error r)

let test_report_rejects_garbage () =
  let path = Filename.temp_file "lepower_report" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_lines path [ "not json at all" ];
  let r, _ = render [ path ] in
  Alcotest.(check bool) "non-JSON line is an error" true (Result.is_error r)

(* ------------------------------------------------------------------ *)
(* Explore progress callbacks.                                         *)

let test_explore_progress () =
  (* Big enough that the 8192-config tick granularity fires many times
     (the naive walk visits ~1M configurations here). *)
  let instance = Protocols.Cas_election.instance ~k:8 ~n:7 in
  let calls = ref 0 in
  let last = ref 0 in
  let monotone = ref true in
  let progress (p : Runtime.Explore.progress) =
    incr calls;
    if p.Runtime.Explore.p_configs < !last then monotone := false;
    last := p.Runtime.Explore.p_configs
  in
  match
    Protocols.Election.explore_stats instance ~max_steps:10_000
      ~options:
        {
          Runtime.Explore.Options.default with
          crash_faults = true;
          progress = Some progress;
        }
  with
  | Error e -> Alcotest.fail ("explore violated: " ^ e)
  | Ok stats ->
    Alcotest.(check bool) "progress called" true (!calls > 0);
    Alcotest.(check bool) "configs monotone" true !monotone;
    Alcotest.(check bool) "counts stay within the final totals" true
      (!last <= stats.Runtime.Explore.configs_visited)

let () =
  Alcotest.run "prof"
    [
      ( "phase",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_phase_disabled_noop;
          Alcotest.test_case "self vs total under nesting" `Quick
            test_phase_self_vs_total;
          Alcotest.test_case "unbalanced enter/leave" `Quick
            test_phase_unbalanced;
          Alcotest.test_case "recorded despite exception" `Quick
            test_phase_exception;
          Alcotest.test_case "json document shape" `Quick test_phase_json;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "interval 0 beats every tick" `Quick
            test_heartbeat_interval_zero;
          Alcotest.test_case "rate limit and force" `Quick
            test_heartbeat_rate_limit;
        ] );
      ( "folded",
        [
          Alcotest.test_case "fixture byte-for-byte" `Quick
            test_folded_fixture;
          Alcotest.test_case "file write round-trip" `Quick
            test_folded_write_roundtrip;
          Alcotest.test_case "ill-nested spans clip" `Quick
            test_folded_ill_nested;
          Alcotest.test_case "empty input" `Quick test_folded_empty;
        ] );
      ( "report",
        [
          Alcotest.test_case "renders a mixed stream" `Quick
            test_report_from_stream;
          Alcotest.test_case "--require-phases without phases" `Quick
            test_report_require_phases_fails;
          Alcotest.test_case "rejects non-JSON lines" `Quick
            test_report_rejects_garbage;
        ] );
      ( "explore-progress",
        [
          Alcotest.test_case "callback fires with monotone counts" `Quick
            test_explore_progress;
        ] );
    ]
