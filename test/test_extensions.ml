(* Tests for the §4 extensions and ablations: multi-register elections,
   the RMW-via-cas subject, splitter renaming, emulation ablations, and
   the no-jump game variant. *)

module Value = Memory.Value
module Multi = Protocols.Multi_election
module Splitter = Protocols.Splitter
module Emulation = Core.Emulation

(* --- multi-register election --- *)

let test_multi_capacity () =
  Alcotest.(check int) "[3] cap" 2 (Multi.capacity ~ks:[ 3 ]);
  Alcotest.(check int) "[3;3] cap" 4 (Multi.capacity ~ks:[ 3; 3 ]);
  Alcotest.(check int) "[4;3] cap" 12 (Multi.capacity ~ks:[ 4; 3 ]);
  Alcotest.(check int) "[4;4] cap" 36 (Multi.capacity ~ks:[ 4; 4 ]);
  Alcotest.(check int) "[3;3;3] cap" 8 (Multi.capacity ~ks:[ 3; 3; 3 ])

let test_multi_coords_roundtrip () =
  List.iter
    (fun ks ->
      let cap = Multi.capacity ~ks in
      List.iter
        (fun pid ->
          Alcotest.(check int) "roundtrip" pid
            (Multi.pid_of_coords ~ks (Multi.coords_of_pid ~ks pid)))
        (List.init cap (fun i -> i)))
    [ [ 3 ]; [ 4; 3 ]; [ 3; 4 ]; [ 3; 3; 3 ] ]

let test_multi_election_sweeps () =
  List.iter
    (fun (ks, n, seeds) ->
      let i = Multi.instance ~ks ~n in
      for seed = 0 to seeds - 1 do
        match Protocols.Election.run_random i ~seed with
        | Ok _ -> ()
        | Error e ->
          Alcotest.fail
            (Fmt.str "ks=[%a] n=%d seed=%d: %s"
               Fmt.(list ~sep:comma int)
               ks n seed e)
      done)
    [ ([ 3; 3 ], 4, 25); ([ 4; 3 ], 12, 15); ([ 3; 3; 3 ], 8, 15) ]

let test_multi_election_partial_participation () =
  (* Fewer processes than capacity, plus crashes. *)
  let i = Multi.instance ~ks:[ 4; 3 ] ~n:7 in
  List.iter
    (fun (seed, crashed) ->
      match Protocols.Election.run_with_crashes i ~seed ~crashed with
      | Ok leader ->
        Alcotest.(check bool) "live leader" true (not (List.mem leader crashed))
      | Error e -> Alcotest.fail e)
    [ (0, [ 0 ]); (1, [ 0; 1; 2 ]); (2, [ 3; 4; 5; 6 ]); (3, [ 1; 3; 5 ]) ]

let test_multi_degenerates_to_single () =
  (* One register: behaves exactly like the permutation election. *)
  let i = Multi.instance ~ks:[ 4 ] ~n:6 in
  for seed = 0 to 19 do
    match Protocols.Election.run_random i ~seed with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed e)
  done

let test_multi_guards () =
  Alcotest.(check bool) "k=1 rejected" true
    (try
       ignore (Multi.instance ~ks:[ 1; 3 ] ~n:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "over capacity rejected" true
    (try
       ignore (Multi.instance ~ks:[ 3; 3 ] ~n:5);
       false
     with Invalid_argument _ -> true)

(* --- splitter and renaming --- *)

let test_splitter_solo_stops () =
  let store = Memory.Store.create (Splitter.splitter_bindings "s") in
  let prog =
    Runtime.Program.complete
      (Runtime.Program.map
         (function
           | Splitter.Stop -> Value.sym "stop"
           | Splitter.Right -> Value.sym "right"
           | Splitter.Down -> Value.sym "down")
         (Splitter.enter "s" ~me:(Value.int 1)))
  in
  match Runtime.Program.run_sequential store ~pid:0 prog with
  | Ok (_, v) ->
    Alcotest.(check string) "solo stops" "stop" (Value.as_sym v)
  | Error e -> Alcotest.fail e

let test_splitter_at_most_one_stop () =
  (* Exhaustive over all schedules of 3 processes entering one splitter:
     at most one Stop, never all Right, never all Down. *)
  let encode = function
    | Splitter.Stop -> Value.sym "stop"
    | Splitter.Right -> Value.sym "right"
    | Splitter.Down -> Value.sym "down"
  in
  let prog pid =
    Runtime.Program.complete
      (Runtime.Program.map encode (Splitter.enter "s" ~me:(Value.int pid)))
  in
  let store = Memory.Store.create (Splitter.splitter_bindings "s") in
  let config = Runtime.Engine.init store (List.init 3 prog) in
  match
    Runtime.Explore.check_all config (fun final ->
        let outs =
          Runtime.Engine.Config_view.decision_values final
          |> List.map Value.as_sym
        in
        let count s = List.length (List.filter (String.equal s) outs) in
        if count "stop" > 1 then Error "two processes stopped"
        else if count "right" = 3 then Error "all went right"
        else if count "down" = 3 then Error "all went down"
        else Ok ())
  with
  | Ok _ -> ()
  | Error v -> Alcotest.fail v.Runtime.Explore.message

let test_renaming_random () =
  List.iter
    (fun n ->
      let i = Splitter.renaming ~n in
      for seed = 0 to 29 do
        match Splitter.run_random i ~seed with
        | Ok names ->
          Alcotest.(check int)
            (Printf.sprintf "n=%d seed=%d count" n seed)
            n (List.length names)
        | Error e -> Alcotest.fail (Printf.sprintf "n=%d seed=%d: %s" n seed e)
      done)
    [ 1; 2; 3; 4; 5 ]

let test_renaming_exhaustive_n2 () =
  match Splitter.explore_all (Splitter.renaming ~n:2) ~max_steps:60 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_renaming_name_space () =
  let i = Splitter.renaming ~n:4 in
  Alcotest.(check int) "n(n+1)/2" 10 i.Splitter.name_space

(* --- emulation ablations --- *)

let cycling_hard () = Core.Workloads.cycling ~k:3 ~rounds:2 ~num_vps:240

let test_ablation_no_attach_stalls () =
  let base = Emulation.small_params ~k:3 in
  let full =
    Emulation.run ~seed:0 (Emulation.create (cycling_hard ()) base)
  in
  let crippled =
    Emulation.run ~seed:0
      (Emulation.create (cycling_hard ())
         { base with Emulation.disable_attach = true })
  in
  let s_full = Emulation.stats full.Emulation.final in
  let s_crip = Emulation.stats crippled.Emulation.final in
  Alcotest.(check bool) "full attaches" true (s_full.Emulation.attaches > 0);
  Alcotest.(check int) "no attaches when disabled" 0 s_crip.Emulation.attaches;
  (* The crippled emulation makes strictly less progress: fewer (or no)
     decisions. *)
  Alcotest.(check bool) "less progress without attach" true
    (List.length crippled.Emulation.decisions
    <= List.length full.Emulation.decisions);
  Alcotest.(check bool) "crippled run stalls" true
    (crippled.Emulation.stalled <> [])

let test_ablation_no_rebalance () =
  let base = Emulation.small_params ~k:3 in
  let o =
    Emulation.run ~seed:0
      (Emulation.create (cycling_hard ())
         { base with Emulation.disable_rebalance = true })
  in
  let s = Emulation.stats o.Emulation.final in
  Alcotest.(check int) "no releases" 0 s.Emulation.releases;
  (* Suspended v-processes are never recycled: the run cannot finish. *)
  Alcotest.(check bool) "incomplete" true
    (List.length o.Emulation.decisions < 3)

let test_ablations_keep_mechanical_invariants () =
  List.iter
    (fun params ->
      let o = Emulation.run ~seed:1 (Emulation.create (cycling_hard ()) params) in
      List.iter
        (fun (name, violations) ->
          if
            List.mem name
              [ "label-budget"; "history-well-formed"; "history-backed";
                "release-margin"; "reads-justified" ]
            && violations <> []
          then
            Alcotest.fail
              (Fmt.str "audit %s: %a" name
                 Fmt.(list ~sep:comma Core.Invariants.pp_violation)
                 violations))
        (Core.Invariants.all o.Emulation.final))
    [
      { (Emulation.small_params ~k:3) with Emulation.disable_attach = true };
      { (Emulation.small_params ~k:3) with Emulation.disable_rebalance = true };
    ]

(* --- RMW-via-cas subject (the §4 conjecture's shape) --- *)

let rmw_transforms k =
  [
    ("reset", fun _ -> Core.Sigma.Bot);
    ( "next",
      function
      | Core.Sigma.Bot -> Core.Sigma.V 0
      | Core.Sigma.V i -> if i >= k - 2 then Core.Sigma.Bot else Core.Sigma.V (i + 1) );
    ("id", fun v -> v);
  ]

let test_rmw_subject_emulates () =
  let k = 3 in
  let alg =
    Core.Workloads.rmw_via_cas ~k ~transforms:(rmw_transforms k) ~rounds:1
      ~num_vps:120
  in
  let o = Emulation.run ~seed:1 (Emulation.create alg (Emulation.small_params ~k)) in
  (* Laptop-scale provisioning: most emulators decide; stalls are the
     documented under-provisioning outcome, never wrong answers. *)
  Alcotest.(check bool) "most emulators decide" true
    (List.length o.Emulation.decisions >= 2);
  List.iter
    (fun (name, violations) ->
      if
        List.mem name
          [ "history-backed"; "release-margin"; "history-well-formed" ]
        && violations <> []
      then Alcotest.fail ("audit " ^ name))
    (Core.Invariants.all o.Emulation.final)

let test_rmw_identity_is_a_read () =
  (* A subject whose transform is the identity everywhere performs only
     simple operations: the register never changes. *)
  let k = 3 in
  let alg =
    Core.Workloads.rmw_via_cas ~k
      ~transforms:[ ("id", fun v -> v) ]
      ~rounds:2 ~num_vps:30
  in
  let o = Emulation.run ~seed:0 (Emulation.create alg (Emulation.small_params ~k)) in
  let s = Emulation.stats o.Emulation.final in
  Alcotest.(check int) "no history extensions" 0
    (s.Emulation.attaches + s.Emulation.splits);
  Alcotest.(check int) "everyone decides" 3 (List.length o.Emulation.decisions)

(* --- paper-faithful provisioning --- *)

let test_default_params_completes () =
  (* The literal paper parameters at k=3: batch = m*k^2 = 27, with the
     v-process estimate from Bounds.  Every emulator completes and every
     audit, witness and timeline check passes. *)
  let k = 3 in
  let params =
    { (Emulation.default_params ~k) with Emulation.simple_burst = 8 }
  in
  let vps = Core.Bounds.min_vps_per_emulator ~k ~m:params.Emulation.m * params.Emulation.m in
  let alg = Core.Workloads.cycling ~k ~rounds:2 ~num_vps:vps in
  let o = Emulation.run ~seed:0 ~max_iterations:500_000 (Emulation.create alg params) in
  Alcotest.(check int) "all emulators decide" params.Emulation.m
    (List.length o.Emulation.decisions);
  List.iter
    (fun (name, violations) ->
      if
        List.mem name
          [ "label-budget"; "history-well-formed"; "history-backed";
            "release-margin"; "reads-justified" ]
        && violations <> []
      then Alcotest.fail ("audit " ^ name))
    (Core.Invariants.all o.Emulation.final);
  Alcotest.(check bool) "witnesses feasible" true
    (List.for_all
       (fun (r : Core.Replay.report) -> r.Core.Replay.feasible)
       (Core.Replay.check_all_leaves o.Emulation.final));
  Alcotest.(check (list string)) "timelines embed" []
    (List.map
       (fun (v : Core.Replay.timeline_violation) -> v.Core.Replay.reason)
       (Core.Replay.vp_timelines o.Emulation.final))

(* --- game without jumps --- *)

let test_no_jump_maxima () =
  List.iter
    (fun (m, k) ->
      let with_jumps = Game.Search.max_moves ~m ~k in
      let without = Game.Search.max_moves_no_jumps ~m ~k in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d k=%d jumps only help" m k)
        true
        (without <= with_jumps))
    [ (2, 2); (2, 3); (3, 3); (2, 4) ]

let test_no_jump_single_agent_unchanged () =
  (* With one agent jumps never fire, so both variants agree. *)
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "m=1 k=%d" k)
        (Game.Search.max_moves ~m:1 ~k)
        (Game.Search.max_moves_no_jumps ~m:1 ~k))
    [ 2; 3; 4 ]

let () =
  Alcotest.run "extensions"
    [
      ( "multi-election",
        [
          Alcotest.test_case "capacity products" `Quick test_multi_capacity;
          Alcotest.test_case "coords roundtrip" `Quick
            test_multi_coords_roundtrip;
          Alcotest.test_case "random sweeps" `Slow test_multi_election_sweeps;
          Alcotest.test_case "partial participation + crashes" `Quick
            test_multi_election_partial_participation;
          Alcotest.test_case "degenerates to single register" `Quick
            test_multi_degenerates_to_single;
          Alcotest.test_case "guards" `Quick test_multi_guards;
        ] );
      ( "splitter",
        [
          Alcotest.test_case "solo stops" `Quick test_splitter_solo_stops;
          Alcotest.test_case "at most one stop (exhaustive)" `Slow
            test_splitter_at_most_one_stop;
          Alcotest.test_case "renaming random" `Quick test_renaming_random;
          Alcotest.test_case "renaming exhaustive n=2" `Quick
            test_renaming_exhaustive_n2;
          Alcotest.test_case "name space size" `Quick test_renaming_name_space;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "no-attach stalls ([1]-style)" `Quick
            test_ablation_no_attach_stalls;
          Alcotest.test_case "no-rebalance starves" `Quick
            test_ablation_no_rebalance;
          Alcotest.test_case "ablations keep mechanical invariants" `Quick
            test_ablations_keep_mechanical_invariants;
        ] );
      ( "rmw-subject",
        [
          Alcotest.test_case "emulates arbitrary RMW" `Quick
            test_rmw_subject_emulates;
          Alcotest.test_case "identity RMW is a read" `Quick
            test_rmw_identity_is_a_read;
        ] );
      ( "paper-faithful",
        [
          Alcotest.test_case "default params complete (k=3)" `Slow
            test_default_params_completes;
        ] );
      ( "game-no-jumps",
        [
          Alcotest.test_case "jumps only help" `Slow test_no_jump_maxima;
          Alcotest.test_case "single agent unchanged" `Quick
            test_no_jump_single_agent_unchanged;
        ] );
    ]
