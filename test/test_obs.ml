(* Tests for the observability layer (Lepower_obs) and its runtime
   integration: JSON round-trips, JSONL and Chrome-trace exports, and
   exact counter values on a deterministic election run. *)

module Json = Lepower_obs.Json
module Metrics = Lepower_obs.Metrics
module Span = Lepower_obs.Span
module Export = Lepower_obs.Export
module Engine = Runtime.Engine
module Sched = Runtime.Sched
module Trace = Runtime.Trace

let json : Json.t Alcotest.testable = Alcotest.testable Json.pp Json.equal

(* Every test starts from a clean slate: counters zeroed, spans dropped,
   both subsystems off.  (Alcotest runs cases sequentially, so the global
   registry is safe to share.) *)
let fresh () =
  Metrics.reset ();
  Metrics.disable ();
  Span.reset ();
  Span.disable ();
  Span.set_sink None

(* --- Json --- *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
      ("int", Json.Int (-42));
      ("float", Json.Float 2.5);
      ("string", Json.String "a \"quoted\"\nline\twith \\ specials");
      ( "nested",
        Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]
      );
    ]

let test_json_round_trip () =
  match Json.of_string (Json.to_string sample) with
  | Ok parsed -> Alcotest.check json "round-trip" sample parsed
  | Error e -> Alcotest.fail e

let test_json_parse_escapes () =
  match Json.of_string {|{"a":"Aé€😀","b":[1,-2.5e3,true,null]}|} with
  | Ok v ->
    Alcotest.(check (option string))
      "unicode escapes decode to UTF-8"
      (Some "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80")
      (match Json.member "a" v with
      | Some (Json.String s) -> Some s
      | _ -> None);
    Alcotest.(check bool)
      "numbers parse" true
      (match Json.member "b" v with
      | Some (Json.List [ Json.Int 1; Json.Float f; Json.Bool true; Json.Null ])
        ->
        f = -2500.
      | _ -> false)
  | Error e -> Alcotest.fail e

let test_json_rejects_garbage () =
  let bad = [ "{"; "[1,]"; "{} trailing"; "\"unterminated"; "nul"; "" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

(* --- metrics --- *)

let test_counters_disabled_are_noops () =
  fresh ();
  let c = Metrics.counter "test.noop" in
  Metrics.incr c;
  Metrics.incr c ~by:10;
  Alcotest.(check int) "disabled counter unchanged" 0 (Metrics.value c);
  Metrics.enable ();
  Metrics.incr c;
  Alcotest.(check int) "enabled counter counts" 1 (Metrics.value c)

let test_histogram_stats () =
  fresh ();
  Metrics.enable ();
  let h = Metrics.histogram "test.histo" in
  List.iter (Metrics.observe h) [ 0.5; 3.; 100. ];
  let s = Metrics.histogram_stats h in
  Alcotest.(check int) "count" 3 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 103.5 s.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" 0.5 s.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 100. s.Metrics.max;
  (* 0.5 <= 1, 3 <= 4, 100 <= 128: three distinct non-empty buckets. *)
  Alcotest.(check int) "buckets" 3 (List.length s.Metrics.buckets)

let test_metrics_multi_domain () =
  fresh ();
  Metrics.enable ();
  let c = Metrics.counter "test.par.counter" in
  let h = Metrics.histogram "test.par.histo" in
  let domains = 4 and per_domain = 50_000 in
  let worker () =
    for i = 1 to per_domain do
      Metrics.incr c;
      if i mod 100 = 0 then Metrics.observe h (Float.of_int (i mod 7))
    done
  in
  let spawned = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join spawned;
  (* Atomic counters: every increment lands, none are lost to races. *)
  Alcotest.(check int) "no lost increments" (domains * per_domain)
    (Metrics.value c);
  let s = Metrics.histogram_stats h in
  Alcotest.(check int) "no lost observations"
    (domains * (per_domain / 100))
    s.Metrics.count;
  Alcotest.(check int) "bucket totals = count" s.Metrics.count
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Metrics.buckets)

let test_metrics_snapshot_json () =
  fresh ();
  Metrics.enable ();
  Metrics.incr (Metrics.counter "test.snap") ~by:7;
  Metrics.set (Metrics.gauge "test.gauge") 1.5;
  let doc = Export.metrics_json ~meta:[ ("run", Json.String "t") ] () in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    Alcotest.(check (option int))
      "counter in snapshot" (Some 7)
      (match Json.member "counters" parsed with
      | Some counters -> (
        match Json.member "test.snap" counters with
        | Some (Json.Int v) -> Some v
        | _ -> None)
      | None -> None)

(* --- spans --- *)

let test_spans_buffer_and_sink () =
  fresh ();
  (* Disabled: thunk runs, nothing recorded. *)
  Alcotest.(check int) "disabled span is transparent" 3
    (Span.with_span "t.off" (fun () -> 3));
  Alcotest.(check int) "nothing buffered" 0 (List.length (Span.completed ()));
  Span.enable ();
  let v =
    Span.with_span "t.outer" (fun () ->
        Span.with_span "t.inner" (fun () -> ());
        41 + 1)
  in
  Alcotest.(check int) "value passes through" 42 v;
  let spans = Span.completed () in
  (* Start timestamps can tie at microsecond granularity, so compare
     as a set rather than relying on the start-time sort order. *)
  Alcotest.(check (list string))
    "both spans recorded" [ "t.inner"; "t.outer" ]
    (List.sort String.compare (List.map (fun s -> s.Span.name) spans));
  List.iter
    (fun (s : Span.completed) ->
      Alcotest.(check bool) "duration non-negative" true (s.Span.dur_us >= 0.))
    spans;
  (* A custom sink redirects the stream. *)
  let seen = ref [] in
  Span.set_sink (Some (fun s -> seen := s.Span.name :: !seen));
  Span.with_span "t.sinked" (fun () -> ());
  Span.set_sink None;
  Alcotest.(check (list string)) "sink saw the span" [ "t.sinked" ] !seen

(* --- a deterministic 2-process election, counters exact --- *)

let election_outcome () =
  let instance = Protocols.Cas_election.instance ~k:3 ~n:2 in
  match Protocols.Election.run instance ~sched:(Sched.round_robin ()) with
  | Ok outcome -> outcome
  | Error e -> Alcotest.fail e

let test_election_counters_exact () =
  fresh ();
  Metrics.enable ();
  let outcome = election_outcome () in
  let trace = Engine.trace outcome.Engine.final in
  let steps = outcome.Engine.steps in
  Alcotest.(check bool) "run did something" true (steps > 0);
  Alcotest.(check int) "trace length = steps" steps (Trace.length trace);
  Alcotest.(check int) "engine.steps" steps
    (Metrics.value (Metrics.counter "engine.steps"));
  Alcotest.(check int) "engine.store_ops" steps
    (Metrics.value (Metrics.counter "engine.store_ops"));
  Alcotest.(check int) "engine.runs" 1
    (Metrics.value (Metrics.counter "engine.runs"));
  Alcotest.(check int) "engine.faults" 0
    (Metrics.value (Metrics.counter "engine.faults"));
  (* Re-derive cas success/failure from the trace and demand exact
     agreement with the hot-path classification. *)
  let successes, failures =
    List.fold_left
      (fun (s, f) (e : Trace.event) ->
        match e.Trace.op with
        | Memory.Value.Pair
            (Memory.Value.Sym "cas", Memory.Value.Pair (expected, desired)) ->
          if
            Memory.Value.equal e.Trace.result expected
            && not (Memory.Value.equal expected desired)
          then (s + 1, f)
          else (s, f + 1)
        | _ -> (s, f))
      (0, 0) trace
  in
  Alcotest.(check bool) "some cas op happened" true (successes + failures > 0);
  Alcotest.(check int) "engine.cas_success" successes
    (Metrics.value (Metrics.counter "engine.cas_success"));
  Alcotest.(check int) "engine.cas_failure" failures
    (Metrics.value (Metrics.counter "engine.cas_failure"));
  let h = Metrics.histogram_stats (Metrics.histogram "engine.steps_per_proc") in
  Alcotest.(check int) "steps_per_proc observations" 2 h.Metrics.count;
  Alcotest.(check (float 1e-9)) "steps_per_proc sum" (Float.of_int steps)
    h.Metrics.sum

let test_explore_counters_match_stats () =
  fresh ();
  Metrics.enable ();
  let instance = Protocols.Cas_election.instance ~k:3 ~n:2 in
  match Protocols.Election.explore_stats instance ~max_steps:50 with
  | Error e -> Alcotest.fail e
  | Ok stats ->
    Alcotest.(check int) "configs counter = stats"
      stats.Runtime.Explore.configs_visited
      (Metrics.value (Metrics.counter "explore.configs_visited"));
    Alcotest.(check int) "choice-point counter = stats"
      stats.Runtime.Explore.choice_points
      (Metrics.value (Metrics.counter "explore.choice_points"));
    Alcotest.(check int) "terminals counter = stats"
      stats.Runtime.Explore.terminals
      (Metrics.value (Metrics.counter "explore.terminals"))

(* --- exporters on a real run --- *)

let test_trace_jsonl_round_trip () =
  fresh ();
  let outcome = election_outcome () in
  let trace = Engine.trace outcome.Engine.final in
  let docs = Runtime.Trace_export.jsonl trace in
  Alcotest.(check int) "one line per event" (Trace.length trace)
    (List.length docs);
  (* Every line survives print -> parse, chronologically. *)
  List.iteri
    (fun i doc ->
      match Json.of_string (Json.to_string doc) with
      | Error e -> Alcotest.fail e
      | Ok parsed ->
        Alcotest.check json "line round-trips" doc parsed;
        Alcotest.(check (option int))
          "chronological (oldest first)" (Some i)
          (match Json.member "time" parsed with
          | Some (Json.Int t) -> Some t
          | _ -> None))
    docs;
  (* And through a file. *)
  let path = Filename.temp_file "lepower_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.write_jsonl path docs;
      let lines =
        In_channel.with_open_text path In_channel.input_lines
      in
      Alcotest.(check int) "file line count" (List.length docs)
        (List.length lines);
      List.iter2
        (fun doc line ->
          match Json.of_string line with
          | Ok parsed -> Alcotest.check json "file line parses" doc parsed
          | Error e -> Alcotest.fail e)
        docs lines)

let test_chrome_trace_well_formed () =
  fresh ();
  Span.enable ();
  let outcome = election_outcome () in
  let trace = Engine.trace outcome.Engine.final in
  let spans = Span.completed () in
  Alcotest.(check bool) "engine.run span collected" true
    (List.exists (fun s -> s.Span.name = "engine.run") spans);
  let doc = Runtime.Trace_export.chrome ~spans trace in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.fail e
  | Ok parsed -> (
    match Json.member "traceEvents" parsed with
    | Some (Json.List events) ->
      Alcotest.(check int) "ops + spans all exported"
        (Trace.length trace + List.length spans)
        (List.length events);
      List.iter
        (fun ev ->
          Alcotest.(check bool) "complete-event fields present" true
            (Json.member "name" ev <> None
            && Json.member "ph" ev = Some (Json.String "X")
            && Json.member "ts" ev <> None
            && Json.member "dur" ev <> None
            && Json.member "pid" ev <> None
            && Json.member "tid" ev <> None))
        events
    | _ -> Alcotest.fail "traceEvents missing or not a list")

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_counters_disabled_are_noops;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          Alcotest.test_case "multi-domain increments" `Quick
            test_metrics_multi_domain;
          Alcotest.test_case "snapshot json" `Quick test_metrics_snapshot_json;
        ] );
      ( "spans",
        [
          Alcotest.test_case "buffer and sink" `Quick
            test_spans_buffer_and_sink;
        ] );
      ( "integration",
        [
          Alcotest.test_case "election counters exact" `Quick
            test_election_counters_exact;
          Alcotest.test_case "explore counters match stats" `Quick
            test_explore_counters_match_stats;
          Alcotest.test_case "trace JSONL round-trip" `Quick
            test_trace_jsonl_round_trip;
          Alcotest.test_case "chrome trace well-formed" `Quick
            test_chrome_trace_well_formed;
        ] );
    ]
