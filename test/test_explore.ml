(* Cross-mode equivalence of the explorer's opt-in reductions.

   The explorer's contract (Runtime.Explore) is that [~dedup], [~por]
   and [~domains] change only the cost of the search, never its verdict:
   for trace-order-insensitive predicates the Ok/Error result of
   [check_all] and the output of [decision_sets] must be identical to
   the naive exhaustive walk's.  These tests pin that contract on the
   example protocols, including the crash-fault adversary and a
   seeded-bug instance where the verdict must stay Error in every mode. *)

module Explore = Runtime.Explore
module Value = Memory.Value
module Election = Protocols.Election

(* Every reduction alone, combined, and with a parallel frontier. *)
let modes =
  [
    ("naive", false, false, 1);
    ("dedup", true, false, 1);
    ("por", false, true, 1);
    ("dedup+por", true, true, 1);
    ("dedup+por dom3", true, true, 3);
  ]

let opts ?(crash_faults = false) ~max_steps ~dedup ~por ~domains () =
  { Explore.Options.default with max_steps; crash_faults; dedup; por; domains }

let pp_sets sets =
  String.concat "; "
    (List.map
       (fun ds -> "[" ^ String.concat "," (List.map Value.to_string ds) ^ "]")
       sets)

(* --- decision_sets: byte-identical output in every mode --- *)

let check_decision_sets ?(expect_nonempty = true) name instance ~max_steps =
  let config () = Election.config instance in
  let naive =
    Explore.decision_sets
      ~options:(opts ~max_steps ~dedup:false ~por:false ~domains:1 ())
      (config ())
  in
  if expect_nonempty then
    Alcotest.(check bool)
      (name ^ ": naive decision_sets non-empty")
      true (naive <> []);
  List.iter
    (fun (mode, dedup, por, domains) ->
      let ds =
        Explore.decision_sets
          ~options:(opts ~max_steps ~dedup ~por ~domains ())
          (config ())
      in
      if ds <> naive then
        Alcotest.failf "%s: decision_sets differ under %s:\n  naive: %s\n  %s: %s"
          name mode (pp_sets naive) mode (pp_sets ds))
    modes

let test_decision_sets () =
  check_decision_sets "cas k=4 n=3"
    (Protocols.Cas_election.instance ~k:4 ~n:3)
    ~max_steps:60;
  check_decision_sets "bcl k=3 n=2"
    (Protocols.Bcl_election.instance ~k:3 ~n:2)
    ~max_steps:60;
  (* Multi-location program under a step cap tight enough that every
     branch truncates: all modes must agree on the empty answer too. *)
  check_decision_sets ~expect_nonempty:false "perm k=3 n=2 cap 12"
    (Protocols.Permutation_election.instance ~k:3 ~n:2)
    ~max_steps:12

(* --- check_all: same verdict in every mode --- *)

let harness_verdict instance ~crash_faults ~max_steps (_, dedup, por, domains)
    =
  match
    Election.explore_stats instance ~max_steps
      ~options:(opts ~crash_faults ~max_steps ~dedup ~por ~domains ())
  with
  | Ok stats -> `Ok stats
  | Error _ -> `Violation

let test_checked_verdicts () =
  (* Correct protocol, crash-fault adversary: Ok everywhere, with at
     least one complete execution enumerated. *)
  let cas = Protocols.Cas_election.instance ~k:4 ~n:3 in
  List.iter
    (fun ((mode, _, _, _) as m) ->
      match harness_verdict cas ~crash_faults:true ~max_steps:60 m with
      | `Ok stats ->
        Alcotest.(check bool)
          ("cas crash " ^ mode ^ ": terminals >= 1")
          true
          (stats.Explore.terminals >= 1)
      | `Violation -> Alcotest.failf "cas crash %s: spurious violation" mode)
    modes;
  (* Seeded bug: one process beyond bcl's capacity breaks agreement.
     Every mode must still find it. *)
  let bug = Protocols.Bcl_election.overloaded_instance ~k:3 in
  List.iter
    (fun ((mode, _, _, _) as m) ->
      match harness_verdict bug ~crash_faults:false ~max_steps:60 m with
      | `Ok _ -> Alcotest.failf "bcl overloaded %s: bug not found" mode
      | `Violation -> ())
    modes;
  (* Step-bound truncation is a violation, and the reductions preserve
     the existence of bound-exceeding executions. *)
  let perm = Protocols.Permutation_election.instance ~k:3 ~n:2 in
  List.iter
    (fun ((mode, _, _, _) as m) ->
      match harness_verdict perm ~crash_faults:false ~max_steps:12 m with
      | `Ok _ -> Alcotest.failf "perm cap 12 %s: truncation not reported" mode
      | `Violation -> ())
    modes

let test_terminals_per_protocol () =
  (* Every example protocol has at least one complete execution within
     its bound; the reduced explorer must reach one even where the naive
     walk is intractable (multi-election). *)
  let reached instance ~max_steps =
    let stats =
      Explore.explore
        ~options:(opts ~max_steps ~dedup:true ~por:true ~domains:1 ())
        (Election.config instance)
    in
    stats.Explore.terminals >= 1
  in
  List.iter
    (fun (name, instance, max_steps) ->
      Alcotest.(check bool) (name ^ ": terminals >= 1") true
        (reached instance ~max_steps))
    [
      ("cas k=4 n=3", Protocols.Cas_election.instance ~k:4 ~n:3, 60);
      ("bcl k=3 n=2", Protocols.Bcl_election.instance ~k:3 ~n:2, 60);
      ("perm k=3 n=2", Protocols.Permutation_election.instance ~k:3 ~n:2, 60);
      ("multi ks=[3,2] n=2", Protocols.Multi_election.instance ~ks:[ 3; 2 ] ~n:2, 60);
    ]

(* --- the reductions actually reduce (stats stay separated) --- *)

let test_reduction_stats () =
  let config () =
    Election.config (Protocols.Cas_election.instance ~k:4 ~n:3)
  in
  let crash ~dedup ~por ~domains =
    opts ~crash_faults:true ~max_steps:60 ~dedup ~por ~domains ()
  in
  let naive =
    Explore.explore ~options:(crash ~dedup:false ~por:false ~domains:1)
      (config ())
  in
  let dedup =
    Explore.explore ~options:(crash ~dedup:true ~por:false ~domains:1)
      (config ())
  in
  let por =
    Explore.explore ~options:(crash ~dedup:false ~por:true ~domains:1)
      (config ())
  in
  Alcotest.(check int) "naive: configs_deduped = 0" 0 naive.Explore.configs_deduped;
  Alcotest.(check int) "naive: por_pruned = 0" 0 naive.Explore.por_pruned;
  Alcotest.(check bool) "dedup prunes revisits" true
    (dedup.Explore.configs_deduped > 0);
  Alcotest.(check bool) "dedup shrinks the tree" true
    (dedup.Explore.configs_visited < naive.Explore.configs_visited);
  Alcotest.(check int) "dedup alone never POR-prunes" 0 dedup.Explore.por_pruned;
  Alcotest.(check bool) "por sleeps sibling moves" true
    (por.Explore.por_pruned > 0);
  Alcotest.(check bool) "por shrinks the tree" true
    (por.Explore.configs_visited < naive.Explore.configs_visited)

(* --- domains: deterministic stats, exact naive split --- *)

let test_domains_deterministic () =
  let config () =
    Election.config (Protocols.Cas_election.instance ~k:4 ~n:3)
  in
  let naive =
    Explore.explore
      ~options:
        (opts ~crash_faults:true ~max_steps:60 ~dedup:false ~por:false
           ~domains:1 ())
      (config ())
  in
  let run () =
    Explore.explore
      ~options:
        (opts ~crash_faults:true ~max_steps:60 ~dedup:false ~por:false
           ~domains:3 ())
      (config ())
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "two domain runs agree" true (a = b);
  Alcotest.(check int) "same configs as serial naive"
    naive.Explore.configs_visited a.Explore.configs_visited;
  Alcotest.(check int) "same terminals as serial naive"
    naive.Explore.terminals a.Explore.terminals;
  Alcotest.(check int) "same choice points as serial naive"
    naive.Explore.choice_points a.Explore.choice_points;
  Alcotest.(check int) "same max depth as serial naive"
    naive.Explore.max_depth a.Explore.max_depth;
  Alcotest.(check bool) "several domains actually ran" true
    (a.Explore.domains_used > 1)

(* --- naive mode is bit-for-bit the historical walk --- *)

let test_naive_unchanged () =
  (* Pinned from the pre-reduction explorer: the default walk must keep
     producing exactly these numbers (same traversal, same counters). *)
  let stats =
    Explore.explore
      ~options:{ Explore.Options.default with max_steps = 60 }
      (Election.config (Protocols.Cas_election.instance ~k:4 ~n:3))
  in
  Alcotest.(check int) "terminals" 6 stats.Explore.terminals;
  Alcotest.(check int) "configs_visited" 16 stats.Explore.configs_visited;
  Alcotest.(check int) "configs_deduped" 0 stats.Explore.configs_deduped;
  Alcotest.(check int) "por_pruned" 0 stats.Explore.por_pruned;
  Alcotest.(check int) "domains_used" 1 stats.Explore.domains_used

(* --- POR's read detection must match the object zoo's wire format --- *)

let test_read_op_codec () =
  Alcotest.(check bool)
    "Op_codec.read_op is the literal the independence relation tests for"
    true
    (Value.equal Objects.Op_codec.read_op (Value.sym "read"))

(* --- fingerprint sanity: histories distinguish what the store cannot --- *)

let test_fingerprint_discriminates () =
  (* Two runs of the same instance reaching different per-process
     histories must not collide just because the store agrees.  Drive
     one process of cas-election to completion vs. not at all: same
     bindings, different proc statuses. *)
  let instance = Protocols.Cas_election.instance ~k:4 ~n:3 in
  let c0 = Election.config instance in
  let c1 = Runtime.Engine.step c0 0 in
  let h0 = Array.make 3 Runtime.Fingerprint.history_empty in
  let h1 = Array.make 3 Runtime.Fingerprint.history_empty in
  (match c1.Runtime.Engine.trace with
  | e :: _ -> h1.(0) <- Runtime.Fingerprint.history_extend h1.(0) e
  | [] -> Alcotest.fail "step appended no event");
  let f0 = Runtime.Fingerprint.make c0 h0 in
  let f1 = Runtime.Fingerprint.make c1 h1 in
  Alcotest.(check bool) "distinct configs, distinct fingerprints" false
    (Runtime.Fingerprint.equal f0 f1);
  (* And the fingerprint of the same config is stable. *)
  let f0' = Runtime.Fingerprint.make c0 h0 in
  Alcotest.(check bool) "same config, same fingerprint" true
    (Runtime.Fingerprint.equal f0 f0');
  Alcotest.(check int) "same config, same hash"
    (Runtime.Fingerprint.hash f0)
    (Runtime.Fingerprint.hash f0')

let () =
  Alcotest.run "explore"
    [
      ( "equivalence",
        [
          Alcotest.test_case "decision_sets identical across modes" `Quick
            test_decision_sets;
          Alcotest.test_case "check_all verdicts identical across modes"
            `Quick test_checked_verdicts;
          Alcotest.test_case "every protocol reaches a terminal" `Quick
            test_terminals_per_protocol;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "stats separate and non-trivial" `Quick
            test_reduction_stats;
          Alcotest.test_case "read-op literal matches Op_codec" `Quick
            test_read_op_codec;
        ] );
      ( "domains",
        [
          Alcotest.test_case "deterministic merged stats" `Quick
            test_domains_deterministic;
        ] );
      ( "compatibility",
        [
          Alcotest.test_case "naive walk bit-for-bit unchanged" `Quick
            test_naive_unchanged;
          Alcotest.test_case "fingerprint discriminates and is stable" `Quick
            test_fingerprint_discriminates;
        ] );
    ]
