(* Unit and property tests for lib/memory: the value universe, object
   specifications and the persistent store. *)

module Value = Memory.Value
module Spec = Memory.Spec
module Store = Memory.Store

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

(* --- Value --- *)

let test_equal_basic () =
  Alcotest.(check bool) "unit" true (Value.equal Value.unit Value.unit);
  Alcotest.(check bool) "int" true (Value.equal (Value.int 3) (Value.int 3));
  Alcotest.(check bool) "int/int" false (Value.equal (Value.int 3) (Value.int 4));
  Alcotest.(check bool) "int/sym" false (Value.equal (Value.int 3) (Value.sym "3"));
  Alcotest.(check bool)
    "pair" true
    (Value.equal
       (Value.pair (Value.int 1) (Value.bool true))
       (Value.pair (Value.int 1) (Value.bool true)))

let test_compare_total_order () =
  let vs =
    [
      Value.unit;
      Value.bool false;
      Value.bool true;
      Value.int (-1);
      Value.int 7;
      Value.sym "a";
      Value.sym "b";
      Value.pair (Value.int 1) (Value.int 2);
      Value.list [ Value.int 1 ];
      Value.list [];
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Value.compare a b and ba = Value.compare b a in
          Alcotest.(check bool)
            "antisymmetric" true
            ((ab = 0 && ba = 0) || (ab > 0 && ba < 0) || (ab < 0 && ba > 0));
          Alcotest.(check bool)
            "compare-equal consistent" (Value.equal a b) (ab = 0))
        vs)
    vs

let test_triple_roundtrip () =
  let t = Value.triple (Value.int 1) (Value.sym "x") (Value.bool true) in
  let a, b, c = Value.as_triple t in
  Alcotest.check value "fst" (Value.int 1) a;
  Alcotest.check value "snd" (Value.sym "x") b;
  Alcotest.check value "thd" (Value.bool true) c

let test_option_roundtrip () =
  Alcotest.(check (option value))
    "some" (Some (Value.int 5))
    (Value.as_option (Value.option (Some (Value.int 5))));
  Alcotest.(check (option value)) "none" None (Value.as_option (Value.option None))

let test_destructor_errors () =
  Alcotest.check_raises "as_int on sym"
    (Value.Type_error ("int", Value.sym "x"))
    (fun () -> ignore (Value.as_int (Value.sym "x")));
  Alcotest.check_raises "as_pair on int"
    (Value.Type_error ("pair", Value.int 1))
    (fun () -> ignore (Value.as_pair (Value.int 1)));
  Alcotest.check_raises "as_option on int"
    (Value.Type_error ("option", Value.int 1))
    (fun () -> ignore (Value.as_option (Value.int 1)))

let value_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                return Value.unit;
                map Value.bool bool;
                map Value.int small_signed_int;
                map Value.sym (string_size ~gen:(char_range 'a' 'z') (return 3));
              ]
          else
            frequency
              [
                (3, map Value.int small_signed_int);
                (1, map2 Value.pair (self (n / 2)) (self (n / 2)));
                (1, map Value.list (list_size (int_bound 3) (self (n / 2))));
              ])
        (min n 6))

let arb_value = QCheck.make ~print:Value.to_string value_gen

let prop_equal_reflexive =
  QCheck.Test.make ~name:"Value.equal reflexive" ~count:200 arb_value (fun v ->
      Value.equal v v && Value.compare v v = 0)

let prop_hash_consistent =
  QCheck.Test.make ~name:"Value.hash consistent with equal" ~count:200
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      (not (Value.equal a b)) || Value.hash a = Value.hash b)

(* Random pairs are almost never equal, so the property above mostly
   vacuously passes; pair each value with an independently rebuilt
   structural copy to actually exercise the implication. *)
let rec value_copy = function
  | Value.Unit -> Value.Unit
  | Value.Bool b -> Value.Bool b
  | Value.Int i -> Value.Int i
  | Value.Sym s -> Value.Sym (String.init (String.length s) (String.get s))
  | Value.Pair (a, b) -> Value.Pair (value_copy a, value_copy b)
  | Value.List vs -> Value.List (List.map value_copy vs)

let prop_hash_equal_on_copies =
  QCheck.Test.make ~name:"Value.hash equal on structural copies" ~count:500
    arb_value (fun v -> Value.hash v = Value.hash (value_copy v))

let test_hash_depth_robust () =
  (* Regression: [Hashtbl.hash] only inspects a bounded prefix of the
     structure, so deep values differing only far from the root used to
     collide — exactly the shape of an explorer fingerprint (long
     operation histories).  The structural hash must see all of it. *)
  let deep n last =
    let rec go i acc =
      if i >= n then acc else go (i + 1) (Value.pair (Value.int i) acc)
    in
    go 0 (Value.int last)
  in
  Alcotest.(check bool) "differ only at depth 40" false
    (Value.hash (deep 40 0) = Value.hash (deep 40 1));
  let wide last = Value.list (List.init 40 Value.int @ [ Value.int last ]) in
  Alcotest.(check bool) "differ only at width 40" false
    (Value.hash (wide 0) = Value.hash (wide 1))

(* --- Spec + Store --- *)

let counter_spec =
  Spec.make ~type_name:"counter" ~init:(Value.int 0) ~apply:(fun ~pid:_ s op ->
      match op with
      | Value.Sym "incr" -> Ok (Value.int (Value.as_int s + 1), s)
      | Value.Sym "read" -> Ok (s, s)
      | _ -> Error "bad op")

let test_spec_reachable () =
  let bounded =
    Spec.make ~type_name:"mod3" ~init:(Value.int 0) ~apply:(fun ~pid:_ s op ->
        match op with
        | Value.Sym "incr" -> Ok (Value.int ((Value.as_int s + 1) mod 3), s)
        | _ -> Error "bad op")
  in
  let states, truncated =
    Spec.reachable bounded ~pids:[ 0 ] ~ops:[ Value.sym "incr" ] ~limit:100
  in
  Alcotest.(check int) "three states" 3 (List.length states);
  Alcotest.(check bool) "not truncated" false truncated

let test_spec_reachable_truncates () =
  let _, truncated =
    Spec.reachable counter_spec ~pids:[ 0 ] ~ops:[ Value.sym "incr" ] ~limit:10
  in
  Alcotest.(check bool) "truncated" true truncated

let test_store_apply () =
  let store = Store.create [ ("c", counter_spec) ] in
  (match Store.apply store ~pid:0 "c" (Value.sym "incr") with
  | Ok (store', old) ->
    Alcotest.check value "old value" (Value.int 0) old;
    Alcotest.(check (option value)) "new state" (Some (Value.int 1))
      (Store.peek store' "c");
    (* Persistence: the original store is unchanged. *)
    Alcotest.(check (option value)) "persistent" (Some (Value.int 0))
      (Store.peek store "c")
  | Error e -> Alcotest.fail e);
  match Store.apply store ~pid:0 "nope" (Value.sym "incr") with
  | Ok _ -> Alcotest.fail "unknown location accepted"
  | Error _ -> ()

let test_store_poke_and_compare () =
  let store = Store.create [ ("c", counter_spec) ] in
  let store' = Store.poke store "c" (Value.int 42) in
  Alcotest.(check (option value)) "poked" (Some (Value.int 42))
    (Store.peek store' "c");
  Alcotest.(check bool) "compare differs" true
    (Store.compare_states store store' <> 0);
  Alcotest.(check bool) "compare equal" true
    (Store.compare_states store store = 0);
  Alcotest.check_raises "poke unknown"
    (Invalid_argument "Store.poke: unknown location \"x\"") (fun () ->
      ignore (Store.poke store "x" Value.unit))

let test_store_locs () =
  let store = Store.create [ ("b", counter_spec); ("a", counter_spec) ] in
  Alcotest.(check (list string)) "sorted locs" [ "a"; "b" ] (Store.locs store)

let () =
  Alcotest.run "memory"
    [
      ( "value",
        [
          Alcotest.test_case "equal basics" `Quick test_equal_basic;
          Alcotest.test_case "compare is a total order" `Quick
            test_compare_total_order;
          Alcotest.test_case "triple roundtrip" `Quick test_triple_roundtrip;
          Alcotest.test_case "option roundtrip" `Quick test_option_roundtrip;
          Alcotest.test_case "destructors raise Type_error" `Quick
            test_destructor_errors;
          QCheck_alcotest.to_alcotest prop_equal_reflexive;
          QCheck_alcotest.to_alcotest prop_hash_consistent;
          QCheck_alcotest.to_alcotest prop_hash_equal_on_copies;
          Alcotest.test_case "hash sees deep and wide structure" `Quick
            test_hash_depth_robust;
        ] );
      ( "spec-store",
        [
          Alcotest.test_case "reachable closes finite spaces" `Quick
            test_spec_reachable;
          Alcotest.test_case "reachable truncates infinite spaces" `Quick
            test_spec_reachable_truncates;
          Alcotest.test_case "store apply is persistent" `Quick test_store_apply;
          Alcotest.test_case "store poke/compare" `Quick
            test_store_poke_and_compare;
          Alcotest.test_case "store locs" `Quick test_store_locs;
        ] );
    ]
