(* Tests for Runtime.Repro: schedule certificates, bit-for-bit replay,
   and ddmin counterexample shrinking — plus the halt-sentinel contract
   of Sched.crashing.

   Everything here leans on one fact: programs are pure and schedulers
   are oblivious, so a run is fully determined by the initial
   configuration and the decision sequence.  A certificate that stops
   replaying bit-for-bit is a bug somewhere in that chain. *)

module Value = Memory.Value
module Program = Runtime.Program
module Engine = Runtime.Engine
module Sched = Runtime.Sched
module Explore = Runtime.Explore
module Repro = Runtime.Repro
module Fingerprint = Runtime.Fingerprint
module Election = Protocols.Election
module Lint = Lepower_check.Lint
module Subject = Lepower_check.Repro_subject

let counter_spec =
  Memory.Spec.make ~type_name:"counter" ~init:(Value.int 0)
    ~apply:(fun ~pid:_ s op ->
      match op with
      | Value.Sym "incr" -> Ok (Value.int (Value.as_int s + 1), s)
      | Value.Sym "read" -> Ok (s, s)
      | _ -> Error "bad op")

let incr_and_read =
  let open Program in
  complete
    (let* _ = op "c" (Value.sym "incr") in
     op "c" (Value.sym "read"))

let config () =
  Engine.init (Memory.Store.create [ ("c", counter_spec) ]) [ incr_and_read; incr_and_read ]

(* --- record -> replay: bit-identical finals across every scheduler --- *)

let test_record_replay_schedulers () =
  List.iter
    (fun sched ->
      let c0 = config () in
      let outcome, cert = Repro.record ~max_steps:50 ~sched c0 in
      let name = cert.Repro.sched in
      Alcotest.(check bool)
        (name ^ ": decisions recorded")
        true
        (cert.Repro.decisions <> []);
      match Repro.replay cert (config ()) with
      | Error e -> Alcotest.failf "%s: replay rejected: %s" name e
      | Ok final ->
        Alcotest.(check string)
          (name ^ ": replayed digest = recorded digest")
          (Fingerprint.digest outcome.Engine.final)
          (Fingerprint.digest final))
    [
      Sched.round_robin ();
      Sched.random ~seed:7;
      Sched.fixed [ 1; 1; 0; 0 ];
      Sched.crashing ~crashed:[ 1 ] (Sched.round_robin ());
    ]

(* --- explorer path certificates, including crash decisions --- *)

let test_explore_crash_cert () =
  (* Fail exactly when the adversary crashed someone: the first
     violating DFS path necessarily contains a Crash decision, so the
     certificate exercises crash replay. *)
  let predicate view =
    let someone_crashed =
      List.exists
        (fun pid -> Engine.Config_view.status view pid = Runtime.Proc.Crashed)
        (List.init (Engine.Config_view.n_procs view) Fun.id)
    in
    if someone_crashed then Error "a process crashed" else Ok ()
  in
  let options = { Explore.Options.default with crash_faults = true } in
  match Explore.check_all ~options (config ()) predicate with
  | Ok _ -> Alcotest.fail "crash-fault adversary never crashed anyone"
  | Error v ->
    Alcotest.(check bool) "path contains a crash decision" true
      (List.exists
         (function Repro.Crash _ -> true | _ -> false)
         v.Explore.decisions);
    let cert =
      Repro.of_decisions ~sched:"explore" ~message:v.Explore.message
        (config ()) v.Explore.decisions
    in
    (match Repro.replay cert (config ()) with
    | Error e -> Alcotest.failf "explorer cert rejected: %s" e
    | Ok final -> (
      match predicate (Engine.Config_view.of_config final) with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "replayed final lost the crash"))

let test_election_explore_repro () =
  let instance = Protocols.Bcl_election.overloaded_instance ~k:3 in
  match Election.explore_repro instance ~max_steps:60 with
  | Ok _ -> Alcotest.fail "overloaded bcl: bug not found"
  | Error (v, cert) ->
    Alcotest.(check string) "sched field" "explore" cert.Repro.sched;
    Alcotest.(check string) "message carried over" v.Explore.message
      cert.Repro.message;
    (match Repro.replay cert (Election.config instance) with
    | Error e -> Alcotest.failf "election cert rejected: %s" e
    | Ok final -> (
      match
        Election.check_config instance (Engine.Config_view.of_config final)
      with
      | Ok () -> Alcotest.fail "replayed final passes the election check"
      | Error _ -> ()))

(* --- serialization --- *)

let test_json_roundtrip () =
  let _, cert = Repro.record ~seed:3 ~sched:(Sched.random ~seed:3) (config ()) in
  let cert = Repro.with_message cert "round-trip me" in
  match Repro.of_json (Repro.to_json cert) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok cert' ->
    Alcotest.(check bool) "round-tripped certificate equal" true (cert = cert')

let test_corrupted_cert_rejected () =
  let _, cert = Repro.record ~sched:(Sched.round_robin ()) (config ()) in
  let flip s =
    String.mapi (fun i c -> if i = 0 then (if c = '0' then '1' else '0') else c) s
  in
  (match Repro.replay { cert with Repro.final = flip cert.Repro.final } (config ()) with
  | Ok _ -> Alcotest.fail "tampered final digest accepted"
  | Error e ->
    Alcotest.(check bool) "names the final mismatch" true
      (String.length e > 0));
  match Repro.replay { cert with Repro.initial = flip cert.Repro.initial } (config ()) with
  | Ok _ -> Alcotest.fail "tampered initial digest accepted"
  | Error _ -> ()

(* --- shrinking --- *)

(* First seed whose sampled schedule makes the resolved subject fail. *)
let failing_cert (target : Lint.target) (resolved : Subject.resolved)
    ~max_steps =
  let rec go seed =
    if seed > 64 then Alcotest.fail "no failing seed below 64"
    else
      let outcome, cert =
        Repro.record ~subject:target.Lint.subject ~seed ~max_steps
          ~sched:(Sched.random ~seed) resolved.Subject.config
      in
      match
        resolved.Subject.failing
          (Engine.Config_view.of_config outcome.Engine.final)
      with
      | Some message -> Repro.with_message cert message
      | None -> go (seed + 1)
  in
  go 1

let test_shrink_broken_cas () =
  let target = Lint.broken_cas_fixture ~n:16 () in
  let resolved = Subject.of_target target in
  let config0 = resolved.Subject.config in
  let failing c = resolved.Subject.failing c <> None in
  let failing_config final = failing (Engine.Config_view.of_config final) in
  let cert = failing_cert target resolved ~max_steps:1024 in
  let min_cert, stats = Repro.shrink ~failing ~config0 cert in
  Alcotest.(check int) "original length" (List.length cert.Repro.decisions)
    stats.Repro.original;
  (* The minimal violating schedule is the 3-decision ascending cas
     chain; anything longer means a pass missed a removable decision. *)
  Alcotest.(check int) "shrunk to the 3-decision core" 3 stats.Repro.shrunk;
  Alcotest.(check bool) "published 5x ratio holds" true
    (float_of_int stats.Repro.original /. float_of_int stats.Repro.shrunk
     >= 5.0);
  (* The shrunk certificate is a real certificate: strict replay, still
     failing. *)
  (match Repro.replay min_cert config0 with
  | Error e -> Alcotest.failf "shrunk cert rejected: %s" e
  | Ok final ->
    Alcotest.(check bool) "shrunk cert still fails" true
      (failing_config final));
  (* 1-minimality: removing any single decision loses the failure. *)
  List.iteri
    (fun i _ ->
      let rest = List.filteri (fun j _ -> j <> i) min_cert.Repro.decisions in
      match Repro.apply ~strict:false config0 rest with
      | Error e -> Alcotest.failf "lenient apply failed: %s" e
      | Ok a ->
        Alcotest.(check bool)
          (Printf.sprintf "dropping decision %d no longer fails" i)
          false
          (failing_config a.Repro.final))
    min_cert.Repro.decisions

let test_shrink_broken_swmr () =
  let target = Lint.broken_swmr_fixture () in
  let resolved = Subject.of_target target in
  let config0 = resolved.Subject.config in
  let failing c = resolved.Subject.failing c <> None in
  let failing_config final = failing (Engine.Config_view.of_config final) in
  let cert = failing_cert target resolved ~max_steps:256 in
  let min_cert, stats = Repro.shrink ~failing ~config0 cert in
  Alcotest.(check bool) "never grows" true
    (stats.Repro.shrunk <= stats.Repro.original);
  match Repro.replay min_cert config0 with
  | Error e -> Alcotest.failf "shrunk cert rejected: %s" e
  | Ok final ->
    Alcotest.(check bool) "shrunk cert still fails" true
      (failing_config final)

(* --- the crashing wrapper's halt sentinel --- *)

let test_crashing_halt_sentinel () =
  let sched = Sched.crashing ~crashed:[ 0 ] (Sched.round_robin ()) in
  Alcotest.(check int) "only crashed pids enabled -> halt" Sched.halt
    (sched.Sched.choose ~time:0 ~enabled:[ 0 ]);
  Alcotest.(check int) "live pid still scheduled" 1
    (sched.Sched.choose ~time:0 ~enabled:[ 0; 1 ])

let () =
  Alcotest.run "repro"
    [
      ( "replay",
        [
          Alcotest.test_case "record/replay across schedulers" `Quick
            test_record_replay_schedulers;
          Alcotest.test_case "explorer crash-path certificate" `Quick
            test_explore_crash_cert;
          Alcotest.test_case "election explore_repro" `Quick
            test_election_explore_repro;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "JSON round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "corrupted digests rejected" `Quick
            test_corrupted_cert_rejected;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "broken-cas 1-minimal at 3 decisions" `Quick
            test_shrink_broken_cas;
          Alcotest.test_case "broken-swmr shrinks and still fails" `Quick
            test_shrink_broken_swmr;
        ] );
      ( "sched",
        [
          Alcotest.test_case "crashing halt sentinel" `Quick
            test_crashing_halt_sentinel;
        ] );
    ]
