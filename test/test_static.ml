(* Tests for the Lepower_static analysis plane: the abstract value
   domain, the effect-summary interpreter's completeness verdicts and
   soundness contract (every concrete execution stays inside its
   summary), the static lint rules over the seeded-bug fixtures, the
   cross-plane counterpart dedup, and the summary-seeded POR fast
   path's agreement with the exact independence check. *)

module Value = Memory.Value
module Op_codec = Objects.Op_codec
module Absval = Lepower_static.Absval
module Absint = Lepower_static.Absint
module Summary = Lepower_static.Summary
module Soundness = Lepower_static.Soundness
module Finding = Lepower_check.Finding
module Lint = Lepower_check.Lint

let rules fs =
  List.sort_uniq compare
    (List.map (fun f -> f.Finding.rule) (List.filter Finding.is_reportable fs))

let stats_of report =
  match report.Lepower_check.Report.stats with
  | Some s -> s
  | None -> Alcotest.fail "report carries no run stats"

let analyze_instance inst =
  Absint.analyze ~bindings:inst.Protocols.Election.bindings
    (List.init inst.Protocols.Election.n inst.Protocols.Election.program)

(* --- abstract value domain --- *)

let test_absval_widening () =
  let v = Value.int in
  let a = Absval.add ~cap:3 (v 0) Absval.empty in
  let a = Absval.add ~cap:3 (v 1) a in
  let a = Absval.add ~cap:3 (v 2) a in
  Alcotest.(check (option int)) "at cap" (Some 3) (Absval.cardinal a);
  Alcotest.(check bool) "dup stays" false
    (Absval.is_top (Absval.add ~cap:3 (v 2) a));
  let widened = Absval.add ~cap:3 (v 3) a in
  Alcotest.(check bool) "past cap widens" true (Absval.is_top widened);
  Alcotest.(check bool) "top admits anything" true
    (Absval.mem (v 99) widened);
  Alcotest.(check (option int)) "top has no cardinal" None
    (Absval.cardinal widened);
  let b = Absval.join ~cap:3 a (Absval.singleton (v 1)) in
  Alcotest.(check bool) "join under cap exact" true (Absval.equal a b);
  Alcotest.(check bool) "join past cap widens" true
    (Absval.is_top (Absval.join ~cap:3 a (Absval.singleton (v 7))))

(* --- op codec: the zoo encodings added for the static plane --- *)

let test_codec_zoo_round_trip () =
  let kind msg op expected =
    Alcotest.(check string) msg expected (Op_codec.kind_name (Op_codec.classify op))
  in
  kind "ll" Op_codec.ll_op "ll";
  kind "sc" (Op_codec.sc_op (Value.int 4)) "sc";
  kind "enq" (Op_codec.enq_op (Value.int 5)) "enq";
  kind "deq" Op_codec.deq_op "deq";
  kind "test&set" Op_codec.test_and_set_op "test&set";
  kind "reset" Op_codec.reset_op "reset";
  kind "fetch&add" (Op_codec.fetch_add_op 3) "fetch&add";
  let family msg op expected =
    Alcotest.(check string) msg expected
      (Op_codec.family_name (Op_codec.classify op))
  in
  family "ll family" Op_codec.ll_op "ll/sc";
  family "sc family" (Op_codec.sc_op (Value.int 1)) "ll/sc";
  family "enq family" (Op_codec.enq_op (Value.int 1)) "queue";
  family "deq family" Op_codec.deq_op "queue";
  family "reset family" Op_codec.reset_op "test&set";
  Alcotest.(check (option int)) "fetch&add payload" (Some 3)
    (Op_codec.decode_fetch_add (Op_codec.fetch_add_op 3));
  (match Op_codec.decode_sc (Op_codec.sc_op (Value.int 4)) with
  | Some v -> Alcotest.(check bool) "sc payload" true (Value.equal v (Value.int 4))
  | None -> Alcotest.fail "sc payload lost");
  (* Ll mutates by contract: it updates the link set even though the
     value is untouched. *)
  Alcotest.(check bool) "ll mutates" true
    (Op_codec.is_mutation (Op_codec.classify Op_codec.ll_op));
  Alcotest.(check bool) "sc mutates" true
    (Op_codec.is_mutation (Op_codec.classify (Op_codec.sc_op (Value.int 0))))

(* --- summaries: completeness verdicts on the example protocols --- *)

let test_summary_completeness () =
  let cas = analyze_instance (Protocols.Cas_election.instance ~k:4 ~n:3) in
  Alcotest.(check bool) "cas complete" true cas.Summary.complete;
  Alcotest.(check (list string)) "cas no limits" [] cas.Summary.limits;
  Alcotest.(check bool) "cas has footprints" true
    (Summary.footprints cas <> None);
  Alcotest.(check int) "cas one register" 1
    (Summary.protocol_register_count cas);
  (* Every cas process reads and writes the single location C. *)
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p%d touches C" p.Summary.pid)
        true
        (Summary.Sset.mem "C" (Summary.footprint p)))
    cas.Summary.per_pid;
  (* perm's response fan-out hits the caps by design: incomplete, and
     the footprints accessor must refuse to vend under-approximations. *)
  let perm =
    analyze_instance (Protocols.Permutation_election.instance ~k:3 ~n:2)
  in
  Alcotest.(check bool) "perm incomplete" false perm.Summary.complete;
  Alcotest.(check bool) "perm limits recorded" true (perm.Summary.limits <> []);
  Alcotest.(check bool) "no footprints when incomplete" true
    (Summary.footprints perm = None)

(* --- soundness: every explored execution stays inside its summary --- *)

let soundness_of_instance inst =
  let summary = analyze_instance inst in
  Alcotest.(check bool)
    (inst.Protocols.Election.name ^ " summary complete")
    true summary.Summary.complete;
  let store = Memory.Store.create inst.Protocols.Election.bindings in
  let violations = ref [] in
  let options =
    {
      Runtime.Explore.Options.default with
      dedup = true;
      analyze =
        Some
          (fun view ->
            match
              Soundness.check ~store summary
                (Runtime.Engine.Config_view.trace view)
            with
            | [] -> ()
            | vs -> violations := vs @ !violations);
    }
  in
  ignore
    (Runtime.Explore.explore ~options (Protocols.Election.config inst));
  Alcotest.(check (list string))
    (inst.Protocols.Election.name ^ " executions inside summary")
    [] !violations

let test_soundness_containment () =
  soundness_of_instance (Protocols.Cas_election.instance ~k:4 ~n:3);
  soundness_of_instance (Protocols.Bcl_election.instance ~k:3 ~n:2)

let test_soundness_detects_escape () =
  (* Feed the checker a summary for the WRONG program: an execution of
     the real one must escape it (wrong location, wrong states). *)
  let open Runtime.Program in
  let bindings =
    [
      ("a", Objects.Register.mwmr ~init:(Value.int 0) ());
      ("b", Objects.Register.mwmr ~init:(Value.int 0) ());
    ]
  in
  let writes loc v = Step (loc, Op_codec.write_op (Value.int v), fun _ -> Done (Value.int v)) in
  let summary = Absint.analyze ~bindings [ writes "a" 1 ] in
  Alcotest.(check bool) "decoy summary complete" true summary.Summary.complete;
  let store = Memory.Store.create bindings in
  let outcome =
    Runtime.Engine.run
      ~sched:(Runtime.Sched.random ~seed:1)
      (Runtime.Engine.init store [ writes "b" 2 ])
  in
  let trace = Runtime.Engine.trace outcome.Runtime.Engine.final in
  Alcotest.(check bool) "escape reported" true
    (Soundness.check ~store summary trace <> [])

(* --- static lint rules: fixtures fire without a single schedule --- *)

let lint_static target = Lint.lint ~static:Lint.Static_only target

let test_static_swmr_fixture () =
  let report = lint_static (Lint.broken_swmr_fixture ()) in
  Alcotest.(check (list string)) "static-swmr fires" [ "static-swmr" ]
    (rules report.Lepower_check.Report.findings);
  Alcotest.(check int) "zero schedules executed" 0
    (stats_of report).Lepower_check.Report.schedules;
  Alcotest.(check bool) "not exhaustive" false
    (stats_of report).Lepower_check.Report.exhaustive

let test_static_kbound_fixture () =
  let report = lint_static (Lint.broken_cas_fixture ()) in
  Alcotest.(check (list string)) "static-k-bound fires" [ "static-k-bound" ]
    (rules report.Lepower_check.Report.findings)

let test_static_loop_fixture () =
  let report = lint_static (Lint.spin_fixture ()) in
  Alcotest.(check (list string)) "static-loop-bound fires"
    [ "static-loop-bound" ]
    (rules report.Lepower_check.Report.findings)

let test_static_clean_examples () =
  List.iter
    (fun inst ->
      let report =
        lint_static (Lint.target_of_instance inst)
      in
      Alcotest.(check (list string))
        (inst.Protocols.Election.name ^ " statically clean")
        []
        (rules report.Lepower_check.Report.findings))
    [
      Protocols.Cas_election.instance ~k:4 ~n:3;
      Protocols.Bcl_election.instance ~k:4 ~n:3;
      Protocols.Permutation_election.instance ~k:3 ~n:2;
      Protocols.Multi_election.instance ~ks:[ 3; 2 ] ~n:2;
    ]

let test_register_budget () =
  let target = Lint.target_of_instance (Protocols.Cas_election.instance ~k:4 ~n:3) in
  let ok = Lint.lint ~static:Lint.Static_only ~register_budget:1 target in
  Alcotest.(check (list string)) "within budget" []
    (rules ok.Lepower_check.Report.findings);
  let over = Lint.lint ~static:Lint.Static_only ~register_budget:0 target in
  Alcotest.(check (list string)) "over budget" [ "static-register-budget" ]
    (rules over.Lepower_check.Report.findings)

(* --- cross-plane dedup: one root cause, one finding --- *)

let test_counterpart_dedup () =
  let target = Lint.broken_swmr_fixture () in
  let both = Lint.lint ~mode:Lint.Exhaustive ~static:Lint.Static_and_dynamic target in
  (* The dynamic swmr-discipline findings on the same location collapse
     into the static one; nothing else may surface. *)
  Alcotest.(check (list string)) "single root cause" [ "static-swmr" ]
    (rules both.Lepower_check.Report.findings);
  Alcotest.(check bool) "dynamic plane still ran" true
    ((stats_of both).Lepower_check.Report.schedules > 0);
  (* Without the static plane the dynamic finding is untouched. *)
  let dyn = Lint.lint ~mode:Lint.Exhaustive target in
  Alcotest.(check (list string)) "dynamic alone unchanged"
    [ "swmr-discipline" ]
    (rules dyn.Lepower_check.Report.findings)

(* --- POR fast path: byte-identical decisions, real fast hits --- *)

let test_fastpath_agreement () =
  let inst = Protocols.Cas_election.instance ~k:4 ~n:3 in
  let footprints =
    match Summary.footprints (analyze_instance inst) with
    | Some fp -> fp
    | None -> Alcotest.fail "cas summary incomplete"
  in
  let opts footprints =
    { Runtime.Explore.Options.default with por = true; footprints }
  in
  let decisions fps =
    Runtime.Explore.decision_sets ~options:(opts fps)
      (Protocols.Election.config inst)
  in
  Alcotest.(check bool) "decision sets byte-identical" true
    (decisions [||] = decisions footprints)

let test_fastpath_hits_disjoint () =
  (* Two copies of a tiny election with disjoint (renamed) locations:
     cross-copy pairs must be answered by the matrix alone. *)
  let rec rename f = function
    | Runtime.Program.Done v -> Runtime.Program.Done v
    | Runtime.Program.Step (loc, op, k) ->
      Runtime.Program.Step (f loc, op, fun v -> rename f (k v))
  in
  let base = Protocols.Cas_election.instance ~k:3 ~n:2 in
  let tag g loc = Printf.sprintf "g%d.%s" g loc in
  let bindings =
    List.concat_map
      (fun g ->
        List.map (fun (l, s) -> (tag g l, s)) base.Protocols.Election.bindings)
      [ 0; 1 ]
  in
  let programs =
    List.concat_map
      (fun g ->
        List.init base.Protocols.Election.n (fun pid ->
            rename (tag g) (base.Protocols.Election.program pid)))
      [ 0; 1 ]
  in
  let summary = Absint.analyze ~bindings programs in
  let footprints =
    match Summary.footprints summary with
    | Some fp -> fp
    | None -> Alcotest.fail "disjoint summary incomplete"
  in
  let config () = Runtime.Engine.init (Memory.Store.create bindings) programs in
  let opts footprints =
    { Runtime.Explore.Options.default with dedup = true; por = true; footprints }
  in
  let exact = Runtime.Explore.explore ~options:(opts [||]) (config ()) in
  let fast = Runtime.Explore.explore ~options:(opts footprints) (config ()) in
  Alcotest.(check int) "same terminals" exact.Runtime.Explore.terminals
    fast.Runtime.Explore.terminals;
  Alcotest.(check int) "same configs" exact.Runtime.Explore.configs_visited
    fast.Runtime.Explore.configs_visited;
  Alcotest.(check bool) "exact path never fast" true
    (exact.Runtime.Explore.por_fast_hits = 0);
  Alcotest.(check bool) "fast hits on disjoint groups" true
    (fast.Runtime.Explore.por_fast_hits > 0);
  let decisions fps =
    Runtime.Explore.decision_sets ~options:(opts fps) (config ())
  in
  Alcotest.(check bool) "decision sets byte-identical" true
    (decisions [||] = decisions footprints)

let () =
  Alcotest.run "static"
    [
      ( "absval",
        [ Alcotest.test_case "widening" `Quick test_absval_widening ] );
      ( "op-codec",
        [
          Alcotest.test_case "zoo round trip" `Quick
            test_codec_zoo_round_trip;
        ] );
      ( "summary",
        [
          Alcotest.test_case "completeness" `Quick test_summary_completeness;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "containment" `Quick test_soundness_containment;
          Alcotest.test_case "escape detected" `Quick
            test_soundness_detects_escape;
        ] );
      ( "static-lint",
        [
          Alcotest.test_case "broken swmr" `Quick test_static_swmr_fixture;
          Alcotest.test_case "broken cas" `Quick test_static_kbound_fixture;
          Alcotest.test_case "spin" `Quick test_static_loop_fixture;
          Alcotest.test_case "clean examples" `Quick
            test_static_clean_examples;
          Alcotest.test_case "register budget" `Quick test_register_budget;
          Alcotest.test_case "counterpart dedup" `Quick
            test_counterpart_dedup;
        ] );
      ( "por-fast-path",
        [
          Alcotest.test_case "agreement" `Quick test_fastpath_agreement;
          Alcotest.test_case "disjoint hits" `Quick
            test_fastpath_hits_disjoint;
        ] );
    ]
