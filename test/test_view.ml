(* Engine.Config_view: the backend-neutral read surface every checker
   now goes through.  Three contracts are pinned here:

   - accessor equivalence: on lockstep random walks the zero-copy
     machine-backed view, the persistent-config view and the
     materializing fallback agree on every accessor;
   - digest-pinned verdicts: check_all verdicts (stats and violations
     alike) and decision sets are byte-identical across backends in
     every reduction mode — including the journal-free reduced arena
     walk the dedup/por/dedup+por modes dispatch to;
   - the soundness guard: an order-inspecting predicate under dedup/por
     raises Unsound_predicate, order-free predicates and unreduced runs
     never do. *)

module Value = Memory.Value
module Store = Memory.Store
module Engine = Runtime.Engine
module Machine = Runtime.Engine.Machine
module View = Runtime.Engine.Config_view
module Explore = Runtime.Explore
module Fuzz = Runtime.Fuzz
module Fingerprint = Runtime.Fingerprint
module Election = Protocols.Election

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal

let mk_rng seed =
  let state = ref ((seed * 2654435769) + 1) in
  fun bound ->
    let s = !state in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    state := s;
    abs s mod bound

let cas_instance = Protocols.Cas_election.instance ~k:4 ~n:3

(* No_sharing: the two backends build structurally equal values with
   different physical sharing; the digest must only see the structure. *)
let digest_of x =
  Digest.to_hex (Digest.string (Marshal.to_string x [ Marshal.No_sharing ]))

(* --- accessor equivalence on seeded random walks --- *)

let check_views_agree ~msg ~locs va vb =
  let n = View.n_procs va in
  Alcotest.(check int) (msg ^ ": n_procs") n (View.n_procs vb);
  Alcotest.(check int) (msg ^ ": time") (View.time va) (View.time vb);
  Alcotest.(check bool)
    (msg ^ ": has_running")
    (View.has_running va) (View.has_running vb);
  Alcotest.(check int)
    (msg ^ ": max_steps_per_proc")
    (View.max_steps_per_proc va)
    (View.max_steps_per_proc vb);
  List.iter
    (fun bound ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: over_step_bound %d" msg bound)
        true
        (View.over_step_bound va bound = View.over_step_bound vb bound))
    [ 0; 2; 1000 ];
  for pid = 0 to n - 1 do
    let p = Printf.sprintf "%s pid %d" msg pid in
    Alcotest.(check bool)
      (p ^ ": status") true
      (View.status va pid = View.status vb pid);
    Alcotest.(check bool)
      (p ^ ": is_running")
      (View.is_running va pid) (View.is_running vb pid);
    Alcotest.(check int) (p ^ ": steps") (View.steps va pid)
      (View.steps vb pid);
    Alcotest.(check bool)
      (p ^ ": stepped")
      (View.stepped va pid) (View.stepped vb pid);
    Alcotest.(check (option value))
      (p ^ ": decision") (View.decision va pid) (View.decision vb pid);
    Alcotest.(check bool)
      (p ^ ": events_of") true
      (View.events_of va pid = View.events_of vb pid)
  done;
  Alcotest.(check bool)
    (msg ^ ": decisions") true
    (View.decisions va = View.decisions vb);
  Alcotest.(check (list value))
    (msg ^ ": decision_values")
    (View.decision_values va)
    (View.decision_values vb);
  Alcotest.(check (list value))
    (msg ^ ": distinct_decisions")
    (View.distinct_decisions va)
    (View.distinct_decisions vb);
  Alcotest.(check bool)
    (msg ^ ": faults") true
    (View.faults va = View.faults vb);
  List.iter
    (fun loc ->
      Alcotest.(check (option value))
        (Printf.sprintf "%s: store_state %s" msg loc)
        (View.store_state va loc) (View.store_state vb loc);
      Alcotest.(check bool)
        (Printf.sprintf "%s: mem_loc %s" msg loc)
        (View.mem_loc va loc) (View.mem_loc vb loc))
    locs;
  Alcotest.(check bool)
    (msg ^ ": state_bindings")
    true
    (View.state_bindings va = View.state_bindings vb);
  Alcotest.(check int)
    (msg ^ ": trace_length")
    (View.trace_length va) (View.trace_length vb);
  (* the ordered accessors last: they mark the view as order-accessed *)
  Alcotest.(check bool)
    (msg ^ ": trace") true
    (View.trace va = View.trace vb);
  Alcotest.(check bool)
    (msg ^ ": last_event") true
    (View.last_event va = View.last_event vb);
  Alcotest.(check string)
    (msg ^ ": config digest")
    (Fingerprint.digest (View.config va))
    (Fingerprint.digest (View.config vb))

let test_accessors_agree () =
  List.iter
    (fun seed ->
      let config0 = Election.config cas_instance in
      let locs = "?" :: Store.locs config0.Engine.store in
      let m = Machine.of_config config0 in
      let c = ref config0 in
      let rng = mk_rng seed in
      let steps = ref 0 in
      let continue = ref true in
      while !continue && !steps < 150 do
        (match Machine.enabled m with
        | [] -> continue := false
        | en ->
          let pid = List.nth en (rng (List.length en)) in
          Machine.step m pid;
          c := Engine.step !c pid;
          incr steps);
        if (!steps mod 10 = 0 && !steps > 0) || not !continue then begin
          let msg = Printf.sprintf "seed %d step %d" seed !steps in
          (* machine-backed view vs the lockstep persistent walk *)
          check_views_agree ~msg:(msg ^ " (machine vs persistent)") ~locs
            (View.of_machine m)
            (View.of_config !c);
          (* machine-backed view vs its own materializing fallback *)
          check_views_agree ~msg:(msg ^ " (machine vs fallback)") ~locs
            (View.of_machine m)
            (View.of_config (Machine.config m))
        end
      done)
    [ 1; 7; 42 ]

(* --- digest-pinned cross-backend verdicts --- *)

let modes =
  [
    ("naive", false, false);
    ("dedup", true, false);
    ("por", false, true);
    ("dedup+por", true, true);
  ]

let opts ~dedup ~por backend =
  {
    Explore.Options.default with
    crash_faults = true;
    max_steps = 60;
    dedup;
    por;
    backend;
  }

let test_check_all_digests () =
  let config = Election.config cas_instance in
  List.iter
    (fun (mode, dedup, por) ->
      let verdict backend =
        Explore.check_all
          ~options:(opts ~dedup ~por backend)
          config
          (Election.check_config cas_instance)
      in
      let vp = verdict Engine.Persistent in
      (match vp with
      | Ok _ -> ()
      | Error v -> Alcotest.failf "%s: persistent verdict: %s" mode
                     v.Explore.message);
      Alcotest.(check string)
        (mode ^ ": check_all verdicts byte-identical across backends")
        (digest_of vp)
        (digest_of (verdict Engine.Arena)))
    modes

let test_decision_set_digests () =
  let config = Election.config cas_instance in
  List.iter
    (fun (mode, dedup, por) ->
      let sets backend =
        Explore.decision_sets ~options:(opts ~dedup ~por backend) config
      in
      Alcotest.(check string)
        (mode ^ ": decision sets byte-identical across backends")
        (digest_of (sets Engine.Persistent))
        (digest_of (sets Engine.Arena)))
    modes

(* --- the trace-order soundness guard --- *)

let guard_opts ?(analyze = None) ~dedup backend =
  { Explore.Options.default with max_steps = 60; dedup; backend; analyze }

let test_guard_trips_on_order_access () =
  let config = Election.config cas_instance in
  let peeking view =
    ignore (View.trace view);
    Ok ()
  in
  List.iter
    (fun backend ->
      let name = Engine.backend_name backend in
      (* inspecting the trace under dedup is unsound: fail loudly *)
      (match
         Explore.check_all ~options:(guard_opts ~dedup:true backend) config
           peeking
       with
      | exception Explore.Unsound_predicate _ -> ()
      | _ -> Alcotest.failf "%s: dedup + trace access must raise" name);
      (* the same predicate on the unreduced walk is fine *)
      (match
         Explore.check_all ~options:(guard_opts ~dedup:false backend) config
           peeking
       with
      | Ok _ -> ()
      | Error v -> Alcotest.failf "%s: unreduced: %s" name v.Explore.message
      | exception Explore.Unsound_predicate m ->
        Alcotest.failf "%s: guard fired without reductions: %s" name m))
    [ Engine.Persistent; Engine.Arena ]

let test_guard_ignores_order_free_predicates () =
  let config = Election.config cas_instance in
  let order_free view =
    (* per-pid projections and flat state reads are commutation-sound,
       so they must not trip the guard even under dedup+por *)
    ignore (View.decision_values view);
    ignore (View.events_of view 0);
    ignore (View.trace_length view);
    ignore (View.state_bindings view);
    Ok ()
  in
  let options =
    { (guard_opts ~dedup:true Engine.Arena) with Explore.Options.por = true }
  in
  match Explore.check_all ~options config order_free with
  | Ok _ -> ()
  | Error v -> Alcotest.fail v.Explore.message
  | exception Explore.Unsound_predicate m ->
    Alcotest.failf "guard fired on an order-free predicate: %s" m

let test_guard_sees_analyze_hook () =
  (* the analyze hook shares the predicate's view, so its order
     accesses are caught too *)
  let config = Election.config cas_instance in
  let analyze = Some (fun view -> ignore (View.last_event view)) in
  match
    Explore.check_all
      ~options:(guard_opts ~analyze ~dedup:true Engine.Persistent)
      config
      (fun _ -> Ok ())
  with
  | exception Explore.Unsound_predicate _ -> ()
  | _ -> Alcotest.fail "dedup + order-accessing analyze hook must raise"

let () =
  Alcotest.run "view"
    [
      ( "equivalence",
        [
          Alcotest.test_case "accessors on random walks" `Quick
            test_accessors_agree;
        ] );
      ( "digest-pinned",
        [
          Alcotest.test_case "check_all verdicts" `Quick
            test_check_all_digests;
          Alcotest.test_case "decision sets" `Quick test_decision_set_digests;
        ] );
      ( "soundness-guard",
        [
          Alcotest.test_case "order access under dedup raises" `Quick
            test_guard_trips_on_order_access;
          Alcotest.test_case "order-free predicates pass" `Quick
            test_guard_ignores_order_free_predicates;
          Alcotest.test_case "analyze hook shares the view" `Quick
            test_guard_sees_analyze_hook;
        ] );
    ]
