(* Tests for the Lepower_check analysis pass: the shared op codec, the
   trace discipline checker, the bounded-value lint, the wait-freedom
   audit, the lint driver over clean protocols and seeded-bug fixtures,
   and the JSONL report format. *)

module Value = Memory.Value
module Trace = Runtime.Trace
module Op_codec = Objects.Op_codec
module Finding = Lepower_check.Finding
module Trace_check = Lepower_check.Trace_check
module Bounded_check = Lepower_check.Bounded_check
module Waitfree_check = Lepower_check.Waitfree_check
module Lint = Lepower_check.Lint
module Report = Lepower_check.Report

let rules fs = List.sort_uniq compare (List.map (fun f -> f.Finding.rule) fs)
let reportable fs = List.filter Finding.is_reportable fs

let check_rules msg expected fs =
  Alcotest.(check (list string)) msg expected (rules (reportable fs))

(* --- op codec --- *)

let test_codec_round_trip () =
  let check_kind msg op expected =
    Alcotest.(check string) msg expected (Op_codec.kind_name (Op_codec.classify op))
  in
  check_kind "read" Op_codec.read_op "read";
  check_kind "write" (Op_codec.write_op (Value.int 7)) "write";
  check_kind "cas"
    (Op_codec.cas_op ~expected:(Value.int 0) ~desired:(Value.int 1))
    "cas";
  check_kind "swap" (Op_codec.swap_op (Value.int 2)) "swap";
  check_kind "sticky" (Op_codec.sticky_write_op (Value.int 3)) "sticky-write";
  check_kind "rmw" (Op_codec.rmw_op "incr") "rmw";
  (match
     Op_codec.decode_cas
       (Op_codec.cas_op ~expected:(Value.int 4) ~desired:(Value.int 5))
   with
  | Some (e, d) ->
    Alcotest.(check bool) "cas expected" true (Value.equal e (Value.int 4));
    Alcotest.(check bool) "cas desired" true (Value.equal d (Value.int 5))
  | None -> Alcotest.fail "decode_cas failed on its own encoding");
  Alcotest.(check bool) "read is_read" true (Op_codec.is_read Op_codec.read_op);
  Alcotest.(check bool) "read not mutation" false
    (Op_codec.is_mutation Op_codec.Read);
  Alcotest.(check bool) "write is mutation" true
    (Op_codec.is_mutation (Op_codec.Write Value.unit))

let test_codec_objects_agree () =
  (* The objects encode through the same codec the lint decodes with. *)
  Alcotest.(check bool) "register read" true
    (Value.equal Objects.Register.read_op Op_codec.read_op);
  Alcotest.(check bool) "register write" true
    (Value.equal
       (Objects.Register.write_op (Value.int 9))
       (Op_codec.write_op (Value.int 9)));
  Alcotest.(check bool) "cas op" true
    (Value.equal
       (Objects.Cas_k.cas_op ~expected:Objects.Cas_k.bottom
          ~desired:(Value.int 0))
       (Op_codec.cas_op ~expected:Objects.Cas_k.bottom
          ~desired:(Value.int 0)))

(* --- trace discipline checker --- *)

let event ~time ~pid ~loc ~op ~result = { Trace.time; pid; loc; op; result }

let mwmr_store () =
  Memory.Store.create [ ("r", Objects.Register.mwmr ~init:(Value.int 0) ()) ]

let test_trace_clean () =
  let store = mwmr_store () in
  let trace =
    [
      event ~time:0 ~pid:0 ~loc:"r" ~op:(Op_codec.write_op (Value.int 1))
        ~result:Value.unit;
      event ~time:1 ~pid:1 ~loc:"r" ~op:Op_codec.read_op
        ~result:(Value.int 1);
    ]
  in
  check_rules "clean trace" [] (Trace_check.check ~store trace)

let test_trace_swmr_violation () =
  let store = mwmr_store () in
  let trace =
    [
      event ~time:0 ~pid:0 ~loc:"r" ~op:(Op_codec.write_op (Value.int 1))
        ~result:Value.unit;
      event ~time:1 ~pid:1 ~loc:"r" ~op:(Op_codec.write_op (Value.int 2))
        ~result:Value.unit;
    ]
  in
  check_rules "two writers" [ "swmr-discipline" ]
    (Trace_check.check ~single_writer:[ "r" ] ~store trace);
  check_rules "not single-writer: fine" [] (Trace_check.check ~store trace)

let test_trace_reads_from () =
  let store = mwmr_store () in
  let trace =
    [
      event ~time:0 ~pid:0 ~loc:"r" ~op:(Op_codec.write_op (Value.int 1))
        ~result:Value.unit;
      event ~time:1 ~pid:1 ~loc:"r" ~op:Op_codec.read_op
        ~result:(Value.int 99);
    ]
  in
  check_rules "stale read" [ "reads-from" ] (Trace_check.check ~store trace);
  let before_write =
    [
      event ~time:0 ~pid:1 ~loc:"r" ~op:Op_codec.read_op
        ~result:(Value.int 5);
    ]
  in
  check_rules "read before any write" [ "reads-from" ]
    (Trace_check.check ~store before_write)

let test_trace_op_type () =
  let store = mwmr_store () in
  let trace =
    [
      event ~time:0 ~pid:0 ~loc:"r" ~op:(Op_codec.write_op (Value.int 1))
        ~result:Value.unit;
      event ~time:1 ~pid:1 ~loc:"r"
        ~op:(Op_codec.swap_op (Value.int 2))
        ~result:(Value.int 1);
    ]
  in
  check_rules "swap on a register" [ "op-type" ]
    (Trace_check.check ~store trace)

(* --- bounded-value lint --- *)

let test_history_rules () =
  let open Core.Sigma in
  check_rules "legal history" []
    (Bounded_check.check_history ~k:3 ~loc:"C" [ Bot; V 0; V 1; V 0 ]);
  check_rules "consecutive repeat" [ "sigma-history" ]
    (Bounded_check.check_history ~k:3 ~loc:"C" [ Bot; V 0; V 0 ]);
  check_rules "not starting at bottom" [ "sigma-history" ]
    (Bounded_check.check_history ~k:3 ~loc:"C" [ V 0; V 1 ]);
  check_rules "alphabet escape" [ "bounded-value" ]
    (Bounded_check.check_history ~k:3 ~loc:"C" [ Bot; V 5 ]);
  (* First uses must follow the owning label's symbol order. *)
  let label = Core.Label.extend (Core.Label.extend Core.Label.root 0) 1 in
  check_rules "first-use in label order" []
    (Bounded_check.check_history ~label ~k:3 ~loc:"C" [ Bot; V 0; V 1 ]);
  check_rules "first-use out of label order" [ "label-order" ]
    (Bounded_check.check_history ~label ~k:3 ~loc:"C" [ Bot; V 1; V 0 ])

let test_replay_divergence () =
  let store = Memory.Store.create [ ("C", Objects.Cas_k.spec ~k:3) ] in
  (* The cas reports prev = 1 but the register held ⊥: not reproducible. *)
  let trace =
    [
      event ~time:0 ~pid:0 ~loc:"C"
        ~op:
          (Op_codec.cas_op ~expected:(Value.int 1) ~desired:(Value.int 0))
        ~result:(Value.int 1);
    ]
  in
  check_rules "impossible cas result" [ "replay-divergence" ]
    (Bounded_check.check ~store trace)

let test_declared_bound () =
  (* A cas(4) register claimed to be a cas(3): feeding it 3 distinct
     non-⊥ values violates the claim though the object accepts them. *)
  let store = Memory.Store.create [ ("C", Objects.Cas_k.spec ~k:4) ] in
  let cas ~time ~pid ~expected ~desired =
    event ~time ~pid ~loc:"C"
      ~op:(Op_codec.cas_op ~expected ~desired)
      ~result:expected
  in
  let trace =
    [
      cas ~time:0 ~pid:0 ~expected:Objects.Cas_k.bottom ~desired:(Value.int 0);
      cas ~time:1 ~pid:1 ~expected:(Value.int 0) ~desired:(Value.int 1);
      cas ~time:2 ~pid:2 ~expected:(Value.int 1) ~desired:(Value.int 2);
    ]
  in
  check_rules "own k=4 bound holds" [] (Bounded_check.check ~store trace);
  check_rules "claimed k=3 bound fails" [ "bounded-value" ]
    (Bounded_check.check ~bounds:[ ("C", 3) ] ~store trace)

(* --- wait-freedom audit --- *)

let test_audit_bounded () =
  let store = mwmr_store () in
  let prog =
    let open Runtime.Program in
    complete
      (let* () = Objects.Register.write "r" (Value.int 1) in
       Objects.Register.read "r")
  in
  match Waitfree_check.audit_programs ~store ~budget:5 [ prog ] with
  | [ (0, Waitfree_check.Bounded b) ] ->
    Alcotest.(check int) "two ops" 2 b
  | _ -> Alcotest.fail "expected a Bounded verdict for pid 0"

let test_audit_exceeded () =
  let store = mwmr_store () in
  let prog =
    let open Runtime.Program in
    complete
      (repeat_until (fun () ->
           let* v = Objects.Register.read "r" in
           if Value.equal v (Value.int 42) then return (Some v)
           else return None))
  in
  match Waitfree_check.audit_programs ~store ~budget:3 [ prog ] with
  | [ (0, Waitfree_check.Exceeded { budget = 3; witness }) ] ->
    Alcotest.(check int) "witness length" 4 (List.length witness)
  | _ -> Alcotest.fail "expected an Exceeded verdict for pid 0"

(* --- the lint driver --- *)

let test_lint_clean_election () =
  let r = Lint.lint_instance (Protocols.Cas_election.instance ~k:3 ~n:2) in
  Alcotest.(check bool) "report ok" true (Report.ok r);
  Alcotest.(check (list string)) "no findings" [] (rules r.Report.findings);
  match r.Report.stats with
  | Some s ->
    Alcotest.(check bool) "exhaustive" true s.Report.exhaustive;
    Alcotest.(check bool) "analyzed schedules" true (s.Report.schedules > 0)
  | None -> Alcotest.fail "expected run stats"

let test_fixture_swmr () =
  let r = Lint.lint (Lint.broken_swmr_fixture ()) in
  Alcotest.(check bool) "not ok" false (Report.ok r);
  check_rules "planted rule" [ "swmr-discipline" ] r.Report.findings

let test_fixture_cas () =
  let r = Lint.lint (Lint.broken_cas_fixture ()) in
  Alcotest.(check bool) "not ok" false (Report.ok r);
  check_rules "planted rule" [ "bounded-value" ] r.Report.findings

let test_fixture_spin () =
  let r = Lint.lint (Lint.spin_fixture ()) in
  Alcotest.(check bool) "not ok" false (Report.ok r);
  check_rules "planted rule" [ "wait-freedom" ] r.Report.findings;
  match List.assoc_opt 0 r.Report.audits with
  | Some (Waitfree_check.Exceeded _) -> ()
  | _ -> Alcotest.fail "expected the audit to exceed the budget"

let test_lint_rules_filter () =
  let r =
    Lint.lint ~rules:[ "reads-from" ] (Lint.broken_swmr_fixture ())
  in
  Alcotest.(check bool) "filtered clean" true (Report.ok r);
  Alcotest.(check (list string)) "nothing kept" [] (rules r.Report.findings)

(* --- satellite: truncation messages name depth and last event --- *)

let test_truncated_message () =
  let store = mwmr_store () in
  let spin =
    let open Runtime.Program in
    complete
      (repeat_until (fun () ->
           let* v = Objects.Register.read "r" in
           if Value.equal v (Value.int 42) then return (Some v)
           else return None))
  in
  let config = Runtime.Engine.init store [ spin ] in
  match
    Runtime.Explore.check_all
      ~options:{ Runtime.Explore.Options.default with max_steps = 5 }
      config
      (fun _ -> Ok ())
  with
  | Ok _ -> Alcotest.fail "expected the spin to truncate"
  | Error v ->
    let contains needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names the depth" true
      (contains "depth 5" v.Runtime.Explore.message);
    Alcotest.(check bool) "names the last event" true
      (contains "last event" v.Runtime.Explore.message)

(* --- JSONL report format --- *)

let test_report_jsonl () =
  let reports =
    [
      Lint.lint (Lint.broken_cas_fixture ());
      Lint.lint_instance (Protocols.Cas_election.instance ~k:3 ~n:2);
    ]
  in
  let docs = List.concat_map Report.jsonl reports in
  Alcotest.(check bool) "several documents" true (List.length docs >= 3);
  List.iter
    (fun doc ->
      let line = Lepower_obs.Json.to_string doc in
      match Lepower_obs.Json.of_string line with
      | Ok round -> Alcotest.(check bool) "round-trips" true
          (Lepower_obs.Json.equal doc round)
      | Error e -> Alcotest.fail ("unparseable JSONL line: " ^ e))
    docs;
  (* The last record of each report is its summary. *)
  match List.rev (Report.jsonl (List.hd reports)) with
  | last :: _ -> (
    match Lepower_obs.Json.member "type" last with
    | Some (Lepower_obs.Json.String "lint-summary") -> ()
    | _ -> Alcotest.fail "expected a trailing lint-summary record")
  | [] -> Alcotest.fail "empty JSONL stream"

let () =
  Alcotest.run "analysis"
    [
      ( "op-codec",
        [
          Alcotest.test_case "round trip" `Quick test_codec_round_trip;
          Alcotest.test_case "objects agree" `Quick test_codec_objects_agree;
        ] );
      ( "trace-check",
        [
          Alcotest.test_case "clean" `Quick test_trace_clean;
          Alcotest.test_case "swmr violation" `Quick
            test_trace_swmr_violation;
          Alcotest.test_case "reads-from" `Quick test_trace_reads_from;
          Alcotest.test_case "op-type" `Quick test_trace_op_type;
        ] );
      ( "bounded-check",
        [
          Alcotest.test_case "history rules" `Quick test_history_rules;
          Alcotest.test_case "replay divergence" `Quick
            test_replay_divergence;
          Alcotest.test_case "declared bound" `Quick test_declared_bound;
        ] );
      ( "waitfree-check",
        [
          Alcotest.test_case "bounded" `Quick test_audit_bounded;
          Alcotest.test_case "exceeded" `Quick test_audit_exceeded;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean election" `Quick
            test_lint_clean_election;
          Alcotest.test_case "broken swmr fixture" `Quick test_fixture_swmr;
          Alcotest.test_case "broken cas fixture" `Quick test_fixture_cas;
          Alcotest.test_case "spin fixture" `Quick test_fixture_spin;
          Alcotest.test_case "rules filter" `Quick test_lint_rules_filter;
          Alcotest.test_case "truncation message" `Quick
            test_truncated_message;
        ] );
      ( "report",
        [ Alcotest.test_case "jsonl round trip" `Quick test_report_jsonl ] );
    ]
