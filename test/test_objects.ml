(* Tests for the object zoo: sequential semantics of every object and
   key concurrent properties under exhaustive interleaving. *)

module Value = Memory.Value
module Program = Runtime.Program
module Engine = Runtime.Engine
module Explore = Runtime.Explore
module Sched = Runtime.Sched

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

let run_seq bindings prog =
  Program.run_sequential (Memory.Store.create bindings) ~pid:0
    (Program.complete prog)

let expect_value bindings prog expected =
  match run_seq bindings prog with
  | Ok (_, v) -> Alcotest.check value "result" expected v
  | Error e -> Alcotest.fail e

(* --- register --- *)

let test_register_rw () =
  let open Program in
  expect_value
    [ ("r", Objects.Register.mwmr ~init:(Value.int 7) ()) ]
    (let* before = Objects.Register.read "r" in
     let* () = Objects.Register.write "r" (Value.int 9) in
     let* after = Objects.Register.read "r" in
     return (Value.pair before after))
    (Value.pair (Value.int 7) (Value.int 9))

let test_swmr_ownership () =
  let store =
    Memory.Store.create [ ("r", Objects.Register.swmr ~owner:1 ()) ]
  in
  (match
     Memory.Store.apply store ~pid:0 "r" (Objects.Register.write_op Value.unit)
   with
  | Ok _ -> Alcotest.fail "non-owner write accepted"
  | Error _ -> ());
  (match
     Memory.Store.apply store ~pid:1 "r" (Objects.Register.write_op Value.unit)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Memory.Store.apply store ~pid:0 "r" Objects.Register.read_op with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("reader rejected: " ^ e)

(* --- cas --- *)

let test_cas_semantics () =
  let open Program in
  let bot = Objects.Cas_k.bottom in
  expect_value
    [ ("C", Objects.Cas_k.spec ~k:3) ]
    (let* p1 = Objects.Cas_k.cas "C" ~expected:bot ~desired:(Value.int 1) in
     let* p2 = Objects.Cas_k.cas "C" ~expected:bot ~desired:(Value.int 0) in
     let* p3 =
       Objects.Cas_k.cas "C" ~expected:(Value.int 1) ~desired:(Value.int 0)
     in
     let* p4 = Objects.Cas_k.read "C" in
     return (Value.list [ p1; p2; p3; p4 ]))
    (Value.list [ bot; Value.int 1; Value.int 1; Value.int 0 ])

let test_cas_bounded_alphabet () =
  let store = Memory.Store.create [ ("C", Objects.Cas_k.spec ~k:3) ] in
  match
    Memory.Store.apply store ~pid:0 "C"
      (Objects.Cas_k.cas_op ~expected:Objects.Cas_k.bottom
         ~desired:(Value.int 5))
  with
  | Ok _ -> Alcotest.fail "value outside Sigma accepted"
  | Error _ -> ()

let test_cas_succeeded () =
  let bot = Objects.Cas_k.bottom in
  Alcotest.(check bool) "real success" true
    (Objects.Cas_k.succeeded ~previous:bot ~expected:bot ~desired:(Value.int 0));
  Alcotest.(check bool) "failed" false
    (Objects.Cas_k.succeeded ~previous:(Value.int 1) ~expected:bot
       ~desired:(Value.int 0));
  Alcotest.(check bool) "no-change cas never succeeds" false
    (Objects.Cas_k.succeeded ~previous:bot ~expected:bot ~desired:bot)

let test_cas_alphabet_size () =
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "alphabet k=%d" k)
        k
        (List.length (Objects.Cas_k.alphabet ~k)))
    [ 1; 2; 3; 7 ]

(* qcheck: the register's responses always report the pre-state and the
   state never leaves the alphabet. *)
let prop_cas_stays_in_alphabet =
  let k = 4 in
  let sigma = Objects.Cas_k.alphabet ~k in
  let arb_ops =
    QCheck.list_of_size (QCheck.Gen.int_range 1 20)
      (QCheck.pair (QCheck.int_bound (k - 1)) (QCheck.int_bound (k - 1)))
  in
  QCheck.Test.make ~name:"cas state stays in alphabet" ~count:100 arb_ops
    (fun ops ->
      let spec = Objects.Cas_k.spec ~k in
      let final =
        List.fold_left
          (fun state (i, j) ->
            let expected = List.nth sigma i and desired = List.nth sigma j in
            match
              Memory.Spec.apply spec ~pid:0 state
                (Objects.Cas_k.cas_op ~expected ~desired)
            with
            | Ok (state', prev) ->
              assert (Value.equal prev state);
              state'
            | Error _ -> state)
          Objects.Cas_k.bottom ops
      in
      List.exists (Value.equal final) sigma)

(* --- test&set --- *)

let test_testset_winner_unique () =
  let open Program in
  let prog _ =
    complete
      (let* won = Objects.Testset.test_and_set "T" in
       return (Value.bool won))
  in
  let store = Memory.Store.create [ ("T", Objects.Testset.spec ()) ] in
  let config = Engine.init store [ prog 0; prog 1; prog 2 ] in
  match
    Explore.check_all config (fun final ->
        let winners =
          Engine.Config_view.decision_values final
          |> List.filter (fun v -> v = Value.bool true)
        in
        if List.length winners = 1 then Ok () else Error "winner not unique")
  with
  | Ok stats ->
    Alcotest.(check int) "3! interleavings" 6 stats.Explore.terminals
  | Error v -> Alcotest.fail v.Explore.message

let test_testset_reset () =
  let open Program in
  expect_value
    [ ("T", Objects.Testset.spec ()) ]
    (let* w1 = Objects.Testset.test_and_set "T" in
     let* () = Objects.Testset.reset "T" in
     let* w2 = Objects.Testset.test_and_set "T" in
     let* w3 = Objects.Testset.test_and_set "T" in
     return (Value.list [ Value.bool w1; Value.bool w2; Value.bool w3 ]))
    (Value.list [ Value.bool true; Value.bool true; Value.bool false ])

(* --- fetch&add --- *)

let test_fetchadd_modulus () =
  let open Program in
  expect_value
    [ ("F", Objects.Fetchadd.spec ~modulus:3 ()) ]
    (let* a = Objects.Fetchadd.fetch_add "F" 1 in
     let* b = Objects.Fetchadd.fetch_add "F" 1 in
     let* c = Objects.Fetchadd.fetch_add "F" 1 in
     let* d = Objects.Fetchadd.read "F" in
     return (Value.list [ Value.int a; Value.int b; Value.int c; Value.int d ]))
    (Value.list [ Value.int 0; Value.int 1; Value.int 2; Value.int 0 ])

let test_fetchadd_negative () =
  let open Program in
  expect_value
    [ ("F", Objects.Fetchadd.spec ~modulus:5 ()) ]
    (let* _ = Objects.Fetchadd.fetch_add "F" (-2) in
     let* v = Objects.Fetchadd.read "F" in
     return (Value.int v))
    (Value.int 3)

(* --- swap --- *)

let test_swap () =
  let open Program in
  expect_value
    [ ("S", Objects.Swap_reg.spec ~init:(Value.int 0) ()) ]
    (let* a = Objects.Swap_reg.swap "S" (Value.int 5) in
     let* b = Objects.Swap_reg.swap "S" (Value.int 6) in
     return (Value.pair a b))
    (Value.pair (Value.int 0) (Value.int 5))

(* --- queue --- *)

let test_queue_fifo () =
  let open Program in
  expect_value
    [ ("Q", Objects.Queue_obj.spec ()) ]
    (let* () = Objects.Queue_obj.enq "Q" (Value.int 1) in
     let* () = Objects.Queue_obj.enq "Q" (Value.int 2) in
     let* a = Objects.Queue_obj.deq "Q" in
     let* b = Objects.Queue_obj.deq "Q" in
     let* c = Objects.Queue_obj.deq "Q" in
     return (Value.list [ Value.option a; Value.option b; Value.option c ]))
    (Value.list
       [
         Value.option (Some (Value.int 1));
         Value.option (Some (Value.int 2));
         Value.option None;
       ])

let prop_queue_fifo_random =
  QCheck.Test.make ~name:"queue preserves FIFO order" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 0 15) QCheck.small_int)
    (fun items ->
      let spec = Objects.Queue_obj.spec () in
      let state =
        List.fold_left
          (fun s i ->
            match
              Memory.Spec.apply spec ~pid:0 s
                (Objects.Queue_obj.enq_op (Value.int i))
            with
            | Ok (s', _) -> s'
            | Error _ -> s)
          spec.Memory.Spec.init items
      in
      let rec drain s acc =
        match Memory.Spec.apply spec ~pid:0 s Objects.Queue_obj.deq_op with
        | Ok (s', r) -> (
          match Value.as_option r with
          | Some v -> drain s' (Value.as_int v :: acc)
          | None -> List.rev acc)
        | Error _ -> List.rev acc
      in
      drain state [] = items)

(* --- sticky --- *)

let test_sticky_freezes () =
  let open Program in
  expect_value
    [ ("S", Objects.Sticky.spec ()) ]
    (let* a = Objects.Sticky.sticky_write "S" (Value.int 1) in
     let* b = Objects.Sticky.sticky_write "S" (Value.int 2) in
     return (Value.pair a b))
    (Value.pair (Value.int 1) (Value.int 1))

let test_sticky_elect_agreement () =
  let prog pid =
    Program.complete (Objects.Sticky.elect "S" ~me:(Value.int pid))
  in
  let store = Memory.Store.create [ ("S", Objects.Sticky.spec ()) ] in
  let config = Engine.init store [ prog 0; prog 1; prog 2 ] in
  match
    Explore.check_all config (fun final ->
        let decisions = Engine.Config_view.distinct_decisions final in
        if List.length decisions = 1 then Ok () else Error "disagreement")
  with
  | Ok _ -> ()
  | Error v -> Alcotest.fail v.Explore.message

(* --- rmw --- *)

let test_rmw_value_set_enforced () =
  let spec =
    Objects.Rmw.spec ~type_name:"bad"
      ~values:[ Value.int 0; Value.int 1 ]
      ~init:(Value.int 0)
      ~ops:
        [ { Objects.Rmw.name = "escape"; transform = (fun _ -> Value.int 9) } ]
  in
  let store = Memory.Store.create [ ("R", spec) ] in
  match
    Memory.Store.apply store ~pid:0 "R" (Objects.Rmw.op_encoding "escape")
  with
  | Ok _ -> Alcotest.fail "escape accepted"
  | Error _ -> ()

let test_rmw_invoke () =
  let spec =
    Objects.Rmw.spec ~type_name:"flip"
      ~values:[ Value.bool false; Value.bool true ]
      ~init:(Value.bool false)
      ~ops:
        [
          {
            Objects.Rmw.name = "flip";
            transform = (fun v -> Value.bool (not (Value.as_bool v)));
          };
        ]
  in
  let open Program in
  expect_value
    [ ("R", spec) ]
    (let* a = Objects.Rmw.invoke "R" "flip" in
     let* b = Objects.Rmw.invoke "R" "flip" in
     let* c = Objects.Rmw.read "R" in
     return (Value.list [ a; b; c ]))
    (Value.list [ Value.bool false; Value.bool true; Value.bool false ])

(* --- ll/sc --- *)

let llsc_bindings () =
  [ ("L", Objects.Llsc.spec ~init:(Value.int 0) ()) ]

let test_llsc_basic () =
  let open Program in
  expect_value (llsc_bindings ())
    (let* v = Objects.Llsc.ll "L" in
     let* ok = Objects.Llsc.sc "L" (Value.int 5) in
     let* now = Objects.Llsc.read "L" in
     return (Value.list [ v; Value.bool ok; now ]))
    (Value.list [ Value.int 0; Value.bool true; Value.int 5 ])

let test_llsc_without_link_fails () =
  let open Program in
  expect_value (llsc_bindings ())
    (let* ok = Objects.Llsc.sc "L" (Value.int 5) in
     let* now = Objects.Llsc.read "L" in
     return (Value.pair (Value.bool ok) now))
    (Value.pair (Value.bool false) (Value.int 0))

let test_llsc_intervening_sc_invalidates () =
  (* p0 links; p1 links and stores; p0's sc must fail even though it
     would write the same value — no ABA. *)
  let store = Memory.Store.create (llsc_bindings ()) in
  let apply store pid op =
    match Memory.Store.apply store ~pid "L" op with
    | Ok (s, v) -> (s, v)
    | Error e -> Alcotest.fail e
  in
  let store, _ = apply store 0 Objects.Llsc.ll_op in
  let store, _ = apply store 1 Objects.Llsc.ll_op in
  let store, r1 = apply store 1 (Objects.Llsc.sc_op (Value.int 0)) in
  Alcotest.check value "p1 sc succeeds" (Value.bool true) r1;
  let _, r0 = apply store 0 (Objects.Llsc.sc_op (Value.int 7)) in
  (* Value is back to 0 (ABA situation), but p0's link is gone. *)
  Alcotest.check value "p0 sc fails despite same value" (Value.bool false) r0

let test_llsc_bounded_domain () =
  let store =
    Memory.Store.create
      [
        ( "L",
          Objects.Llsc.spec
            ~values:[ Value.int 0; Value.int 1 ]
            ~init:(Value.int 0) () );
      ]
  in
  match
    Memory.Store.apply store ~pid:0 "L" (Objects.Llsc.sc_op (Value.int 9))
  with
  | Ok _ -> Alcotest.fail "out-of-domain sc accepted"
  | Error _ -> ()

let test_llsc_unique_winner () =
  (* n processes ll then sc: exactly one sc succeeds. *)
  let prog _ =
    let open Program in
    complete
      (let* _ = Objects.Llsc.ll "L" in
       let* ok = Objects.Llsc.sc "L" (Value.int 1) in
       return (Value.bool ok))
  in
  let store = Memory.Store.create (llsc_bindings ()) in
  let config = Engine.init store [ prog 0; prog 1; prog 2 ] in
  match
    Explore.check_all config (fun final ->
        let winners =
          Engine.Config_view.decision_values final
          |> List.filter (fun v -> v = Value.bool true)
        in
        (* At least one sc must succeed (the last ll before the first sc
           is always still linked), and never two in a row without a
           fresh ll. *)
        if List.length winners >= 1 then Ok () else Error "no winner")
  with
  | Ok _ -> ()
  | Error v -> Alcotest.fail v.Explore.message

(* --- zoo --- *)

let test_zoo_specs_accept_their_ops () =
  List.iter
    (fun (entry : Objects.Zoo.entry) ->
      List.iter
        (fun op ->
          match
            Memory.Spec.apply entry.Objects.Zoo.spec ~pid:0
              entry.Objects.Zoo.spec.Memory.Spec.init op
          with
          | Ok _ -> ()
          | Error e ->
            Alcotest.fail
              (Printf.sprintf "%s rejected %s: %s" entry.Objects.Zoo.name
                 (Value.to_string op) e))
        entry.Objects.Zoo.ops)
    (Objects.Zoo.all ())

let () =
  Alcotest.run "objects"
    [
      ( "register",
        [
          Alcotest.test_case "read/write" `Quick test_register_rw;
          Alcotest.test_case "swmr ownership" `Quick test_swmr_ownership;
        ] );
      ( "cas",
        [
          Alcotest.test_case "semantics" `Quick test_cas_semantics;
          Alcotest.test_case "bounded alphabet" `Quick test_cas_bounded_alphabet;
          Alcotest.test_case "succeeded predicate" `Quick test_cas_succeeded;
          Alcotest.test_case "alphabet size" `Quick test_cas_alphabet_size;
          QCheck_alcotest.to_alcotest prop_cas_stays_in_alphabet;
        ] );
      ( "testset",
        [
          Alcotest.test_case "unique winner (exhaustive)" `Quick
            test_testset_winner_unique;
          Alcotest.test_case "reset" `Quick test_testset_reset;
        ] );
      ( "fetchadd",
        [
          Alcotest.test_case "modulus wraps" `Quick test_fetchadd_modulus;
          Alcotest.test_case "negative add" `Quick test_fetchadd_negative;
        ] );
      ("swap", [ Alcotest.test_case "swap returns old" `Quick test_swap ]);
      ( "queue",
        [
          Alcotest.test_case "fifo" `Quick test_queue_fifo;
          QCheck_alcotest.to_alcotest prop_queue_fifo_random;
        ] );
      ( "sticky",
        [
          Alcotest.test_case "freezes first write" `Quick test_sticky_freezes;
          Alcotest.test_case "elect agreement (exhaustive)" `Quick
            test_sticky_elect_agreement;
        ] );
      ( "rmw",
        [
          Alcotest.test_case "value set enforced" `Quick
            test_rmw_value_set_enforced;
          Alcotest.test_case "invoke" `Quick test_rmw_invoke;
        ] );
      ( "llsc",
        [
          Alcotest.test_case "ll then sc" `Quick test_llsc_basic;
          Alcotest.test_case "sc without link fails" `Quick
            test_llsc_without_link_fails;
          Alcotest.test_case "no ABA" `Quick
            test_llsc_intervening_sc_invalidates;
          Alcotest.test_case "bounded domain" `Quick test_llsc_bounded_domain;
          Alcotest.test_case "winner exists (exhaustive)" `Quick
            test_llsc_unique_winner;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "specs accept their op universe" `Quick
            test_zoo_specs_accept_their_ops;
        ] );
    ]
