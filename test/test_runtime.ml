(* Tests for lib/runtime: the program monad, the engine, schedulers and
   the exhaustive explorer. *)

module Value = Memory.Value
module Program = Runtime.Program
module Engine = Runtime.Engine
module Sched = Runtime.Sched
module Explore = Runtime.Explore

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

let counter_spec =
  Memory.Spec.make ~type_name:"counter" ~init:(Value.int 0)
    ~apply:(fun ~pid:_ s op ->
      match op with
      | Value.Sym "incr" -> Ok (Value.int (Value.as_int s + 1), s)
      | Value.Sym "read" -> Ok (s, s)
      | _ -> Error "bad op")

let store () = Memory.Store.create [ ("c", counter_spec) ]

(* --- Program --- *)

let test_run_sequential () =
  let open Program in
  let prog =
    complete
      (let* old = op "c" (Value.sym "incr") in
       let* _ = op "c" (Value.sym "incr") in
       let* now = op "c" (Value.sym "read") in
       return (Value.pair old now))
  in
  match Program.run_sequential (store ()) ~pid:0 prog with
  | Ok (_, v) -> Alcotest.check value "result" (Value.pair (Value.int 0) (Value.int 2)) v
  | Error e -> Alcotest.fail e

let test_decide_short_circuits () =
  let open Program in
  let prog =
    complete
      (let* _ = op "c" (Value.sym "incr") in
       let* _ = decide (Value.sym "early") in
       op "c" (Value.sym "incr"))
  in
  match Program.run_sequential (store ()) ~pid:0 prog with
  | Ok (store, v) ->
    Alcotest.check value "early decision" (Value.sym "early") v;
    Alcotest.(check (option value)) "only one incr ran" (Some (Value.int 1))
      (Memory.Store.peek store "c")
  | Error e -> Alcotest.fail e

let test_list_helpers () =
  let open Program in
  let prog =
    complete
      (let* () =
         list_iter
           (fun _ ->
             let* _ = op "c" (Value.sym "incr") in
             return ())
           [ 1; 2; 3 ]
       in
       let* vs = list_map (fun i -> return (Value.int i)) [ 4; 5 ] in
       let* sum = list_fold (fun acc v -> return (acc + Value.as_int v)) 0 vs in
       let* now = op "c" (Value.sym "read") in
       return (Value.pair (Value.int sum) now))
  in
  match Program.run_sequential (store ()) ~pid:0 prog with
  | Ok (_, v) ->
    Alcotest.check value "fold+iter" (Value.pair (Value.int 9) (Value.int 3)) v
  | Error e -> Alcotest.fail e

let test_repeat_until () =
  let open Program in
  let prog =
    complete
      (let* n =
         repeat_until (fun () ->
             let* old = op "c" (Value.sym "incr") in
             if Value.as_int old >= 4 then return (Some (Value.as_int old))
             else return None)
       in
       return (Value.int n))
  in
  match Program.run_sequential (store ()) ~pid:0 prog with
  | Ok (_, v) -> Alcotest.check value "looped to 4" (Value.int 4) v
  | Error e -> Alcotest.fail e

let test_sequential_error () =
  let open Program in
  let prog = complete (op "c" (Value.sym "nonsense")) in
  match Program.run_sequential (store ()) ~pid:0 prog with
  | Ok _ -> Alcotest.fail "bad op accepted"
  | Error _ -> ()

(* --- Engine --- *)

let incr_and_read =
  let open Program in
  complete
    (let* _ = op "c" (Value.sym "incr") in
     op "c" (Value.sym "read"))

let test_engine_runs_all () =
  let config = Engine.init (store ()) [ incr_and_read; incr_and_read ] in
  let outcome = Engine.run ~sched:(Sched.round_robin ()) config in
  Alcotest.(check int) "both decided" 2 (List.length outcome.Engine.decisions);
  Alcotest.(check bool) "no faults" true (outcome.Engine.faults = []);
  Alcotest.(check int) "four ops" 4 outcome.Engine.steps;
  (* Under round-robin both increment before either reads. *)
  List.iter
    (fun (_, v) -> Alcotest.check value "read 2" (Value.int 2) v)
    outcome.Engine.decisions

let test_engine_crash () =
  let config = Engine.init (store ()) [ incr_and_read; incr_and_read ] in
  let config = Engine.crash config 0 in
  let outcome = Engine.run ~sched:(Sched.round_robin ()) config in
  Alcotest.(check (list int)) "crashed" [ 0 ] outcome.Engine.crashes;
  Alcotest.(check int) "one decided" 1 (List.length outcome.Engine.decisions)

let test_engine_faulty () =
  let open Program in
  let bad = complete (op "c" (Value.sym "nonsense")) in
  let config = Engine.init (store ()) [ bad ] in
  let outcome = Engine.run ~sched:(Sched.round_robin ()) config in
  Alcotest.(check int) "one fault" 1 (List.length outcome.Engine.faults)

let test_engine_step_limit () =
  let open Program in
  let rec forever () =
    let* _ = op "c" (Value.sym "incr") in
    forever ()
  in
  let config = Engine.init (store ()) [ complete (forever ()) ] in
  let outcome = Engine.run ~max_steps:50 ~sched:(Sched.round_robin ()) config in
  Alcotest.(check bool) "hit limit" true outcome.Engine.hit_step_limit

let test_trace_order () =
  let config = Engine.init (store ()) [ incr_and_read; incr_and_read ] in
  let outcome = Engine.run ~sched:(Sched.fixed [ 1; 1; 0; 0 ]) config in
  let trace = Engine.trace outcome.Engine.final in
  Alcotest.(check (list int)) "pids in schedule order" [ 1; 1; 0; 0 ]
    (List.map (fun e -> e.Runtime.Trace.pid) trace);
  Alcotest.(check int) "by_pid" 2
    (List.length (Runtime.Trace.by_pid trace 0));
  Alcotest.(check int) "ops_on" 4 (List.length (Runtime.Trace.ops_on trace "c"))

let test_max_steps_per_proc () =
  let config = Engine.init (store ()) [ incr_and_read ] in
  let outcome = Engine.run ~sched:(Sched.round_robin ()) config in
  Alcotest.(check int) "two steps" 2 (Engine.max_steps_per_proc outcome)

(* --- Schedulers --- *)

let test_prioritize_starves () =
  let config = Engine.init (store ()) [ incr_and_read; incr_and_read ] in
  let outcome = Engine.run ~sched:(Sched.prioritize [ 1; 0 ]) config in
  let trace = Engine.trace outcome.Engine.final in
  Alcotest.(check (list int)) "pid 1 runs solo first" [ 1; 1; 0; 0 ]
    (List.map (fun e -> e.Runtime.Trace.pid) trace)

let test_crashing_scheduler () =
  let config = Engine.init (store ()) [ incr_and_read; incr_and_read ] in
  let sched = Sched.crashing ~crashed:[ 0 ] (Sched.round_robin ()) in
  let outcome = Engine.run ~max_steps:10 ~sched config in
  let trace = Engine.trace outcome.Engine.final in
  Alcotest.(check bool) "pid 1 finished" true
    (List.mem_assoc 1 outcome.Engine.decisions);
  (* Once only crashed pids remain enabled the wrapper halts the run:
     pid 0 never takes a step, and the engine stops without burning the
     step bound. *)
  Alcotest.(check (list int)) "pid 1 only" [ 1; 1 ]
    (List.map (fun e -> e.Runtime.Trace.pid) trace);
  Alcotest.(check bool) "halt, not step-limit" false
    outcome.Engine.hit_step_limit;
  Alcotest.(check int) "pid 0 took no step" 0
    outcome.Engine.final.Engine.procs.(0).Runtime.Proc.steps

(* --- Explore --- *)

let test_explore_counts_interleavings () =
  (* Two processes, two ops each: C(4,2) = 6 interleavings. *)
  let config = Engine.init (store ()) [ incr_and_read; incr_and_read ] in
  let stats = Explore.explore config in
  Alcotest.(check int) "terminals" 6 stats.Explore.terminals;
  Alcotest.(check int) "none truncated" 0 stats.Explore.truncated;
  (* Nodes of the schedule tree: prefixes with a <= 2 steps of p0 and
     b <= 2 of p1, i.e. sum of C(a+b, a) = 19; the 5 with a, b < 2 have
     both processes enabled and are choice points. *)
  Alcotest.(check int) "configs visited" 19 stats.Explore.configs_visited;
  Alcotest.(check int) "choice points" 5 stats.Explore.choice_points

let test_explore_truncation () =
  let config = Engine.init (store ()) [ incr_and_read; incr_and_read ] in
  let stats =
    Explore.explore
      ~options:{ Explore.Options.default with max_steps = 2 }
      config
  in
  Alcotest.(check int) "no terminal fits in 2 steps" 0 stats.Explore.terminals;
  Alcotest.(check bool) "truncated" true (stats.Explore.truncated > 0)

let test_check_all_finds_violation () =
  let open Program in
  (* A "protocol" whose outcome depends on schedule: each process reads,
     then claims victory if it saw 0. *)
  let racer =
    complete
      (let* v = op "c" (Value.sym "incr") in
       return v)
  in
  let config = Engine.init (store ()) [ racer; racer ] in
  match
    Explore.check_all config (fun final ->
        let winners =
          Engine.Config_view.decisions final
          |> List.filter (fun (_, v) ->
                 match v with Value.Int 0 -> true | _ -> false)
        in
        (* Claim (falsely) that pid 0 always sees 0 first. *)
        match winners with
        | [ (0, _) ] -> Ok ()
        | _ -> Error "pid 1 won the race")
  with
  | Ok _ -> Alcotest.fail "expected a violating schedule"
  | Error v ->
    Alcotest.(check bool) "trace non-empty" true (v.Explore.trace <> [])

let test_decision_sets () =
  let open Program in
  let racer = complete (op "c" (Value.sym "incr")) in
  let config = Engine.init (store ()) [ racer; racer ] in
  let sets = Explore.decision_sets config in
  (* Both orders give the decision multiset {0, 1}. *)
  Alcotest.(check int) "one distinct outcome" 1 (List.length sets)

let test_explore_crash_faults () =
  let open Program in
  let one = complete (op "c" (Value.sym "incr")) in
  let config = Engine.init (store ()) [ one ] in
  let stats =
    Explore.explore
      ~options:{ Explore.Options.default with crash_faults = true }
      config
  in
  (* Either the process runs (1 terminal) or crashes first (1 terminal). *)
  Alcotest.(check int) "two terminals" 2 stats.Explore.terminals;
  (* With crash faults even a single enabled process is a choice point
     (step or crash); root + both terminals = 3 configurations. *)
  Alcotest.(check int) "one choice point" 1 stats.Explore.choice_points;
  Alcotest.(check int) "three configs" 3 stats.Explore.configs_visited

let () =
  Alcotest.run "runtime"
    [
      ( "program",
        [
          Alcotest.test_case "run_sequential" `Quick test_run_sequential;
          Alcotest.test_case "decide short-circuits" `Quick
            test_decide_short_circuits;
          Alcotest.test_case "list helpers" `Quick test_list_helpers;
          Alcotest.test_case "repeat_until" `Quick test_repeat_until;
          Alcotest.test_case "sequential error" `Quick test_sequential_error;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs all to decision" `Quick test_engine_runs_all;
          Alcotest.test_case "crash removes a process" `Quick test_engine_crash;
          Alcotest.test_case "bad ops fault the process" `Quick
            test_engine_faulty;
          Alcotest.test_case "step limit" `Quick test_engine_step_limit;
          Alcotest.test_case "trace order" `Quick test_trace_order;
          Alcotest.test_case "max steps per proc" `Quick
            test_max_steps_per_proc;
        ] );
      ( "sched",
        [
          Alcotest.test_case "prioritize starves" `Quick test_prioritize_starves;
          Alcotest.test_case "crashing wrapper" `Quick test_crashing_scheduler;
        ] );
      ( "explore",
        [
          Alcotest.test_case "counts interleavings" `Quick
            test_explore_counts_interleavings;
          Alcotest.test_case "truncation" `Quick test_explore_truncation;
          Alcotest.test_case "check_all finds violations" `Quick
            test_check_all_finds_violation;
          Alcotest.test_case "decision_sets" `Quick test_decision_sets;
          Alcotest.test_case "crash faults" `Quick test_explore_crash_faults;
        ] );
    ]
