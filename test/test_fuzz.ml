(* Tests for Runtime.Fuzz and the fault plane: determinism of seeded
   campaigns across every scheduler kind, fault semantics (lost writes,
   stuck-at registers), and the headline property — a fuzz-found
   certificate replays bit for bit with its faults re-injected. *)

module Value = Memory.Value
module Store = Memory.Store
module Engine = Runtime.Engine
module Sched = Runtime.Sched
module Repro = Runtime.Repro
module Faults = Runtime.Faults
module Fuzz = Runtime.Fuzz
module Fingerprint = Runtime.Fingerprint
module Lint = Lepower_check.Lint
module Subject = Lepower_check.Repro_subject
module Election = Protocols.Election

let kinds =
  [
    Fuzz.Random_walk;
    Fuzz.Pct { depth = 3 };
    Fuzz.Starve { victim = 0; stall = 4 };
  ]

(* --- determinism: same seed => identical log and digest --------------- *)

let test_run_determinism () =
  let resolved = Subject.of_target (Lint.broken_cas_fixture ~flip:true ()) in
  List.iter
    (fun kind ->
      let name = Fuzz.kind_name kind in
      let go () =
        Fuzz.run ~max_steps:200 ~plan:Faults.default ~kind ~seed:42
          resolved.Subject.config
      in
      let r1 = go () and r2 = go () in
      Alcotest.(check bool)
        (name ^ ": identical decision logs") true
        (r1.Fuzz.decisions = r2.Fuzz.decisions);
      Alcotest.(check string)
        (name ^ ": identical final digests")
        (Fingerprint.digest r1.Fuzz.final)
        (Fingerprint.digest r2.Fuzz.final))
    kinds

let test_campaign_cert_determinism () =
  let target = Lint.broken_cas_fixture ~flip:true () in
  List.iter
    (fun kind ->
      let name = Fuzz.kind_name kind in
      let go () = Lint.fuzz_target ~kind ~runs:64 ~seed:1 target in
      let o1 = go () and o2 = go () in
      match (o1.Fuzz.cert, o2.Fuzz.cert) with
      | Some c1, Some c2 ->
        Alcotest.(check bool)
          (name ^ ": identical certificates (digests included)")
          true (c1 = c2);
        Alcotest.(check bool)
          (name ^ ": same run found it") true
          (o1.Fuzz.first_violation = o2.Fuzz.first_violation)
      | _ -> Alcotest.failf "%s: campaign found no violation" name)
    kinds

(* --- the seeded bugs are found and the certificates replay ------------ *)

let test_finds_flip_fixtures () =
  List.iter
    (fun target ->
      let outcome =
        Lint.fuzz_target ~kind:(Fuzz.Pct { depth = 3 }) ~runs:64 ~seed:1
          target
      in
      match outcome.Fuzz.cert with
      | None -> Alcotest.failf "%s: bug not found" target.Lint.name
      | Some cert -> (
        (* Resolve the certificate's own subject, as `lepower replay`
           would, and check the replayed final still fails. *)
        match Subject.resolve cert.Repro.subject with
        | Error e -> Alcotest.failf "%s: subject: %s" target.Lint.name e
        | Ok resolved -> (
          match Repro.replay cert resolved.Subject.config with
          | Error e -> Alcotest.failf "%s: replay: %s" target.Lint.name e
          | Ok final ->
            Alcotest.(check bool)
              (target.Lint.name ^ ": replayed final still fails")
              true
              (resolved.Subject.failing (Engine.Config_view.of_config final) <> None))))
    [ Lint.broken_cas_fixture ~flip:true (); Lint.broken_swmr_fixture ~flip:true () ]

(* --- fault semantics -------------------------------------------------- *)

let counter_spec =
  Memory.Spec.make ~type_name:"counter" ~init:(Value.int 0)
    ~apply:(fun ~pid:_ s op ->
      match op with
      | Value.Sym "incr" -> Ok (Value.int (Value.as_int s + 1), s)
      | Value.Sym "read" -> Ok (s, s)
      | _ -> Error "bad op")

let incr_and_read =
  let open Runtime.Program in
  complete
    (let* _ = op "c" (Value.sym "incr") in
     op "c" (Value.sym "read"))

let config () =
  Engine.init
    (Store.create [ ("c", counter_spec) ])
    [ incr_and_read; incr_and_read ]

let test_freeze_semantics () =
  let store = Store.create [ ("c", counter_spec) ] in
  let frozen = Store.freeze store "c" in
  (match Store.apply frozen ~pid:0 "c" (Value.sym "incr") with
  | Error e -> Alcotest.failf "frozen incr rejected: %s" e
  | Ok (store', response) ->
    Alcotest.(check bool) "response as if applied" true
      (Value.equal response (Value.int 0));
    Alcotest.(check bool) "state unchanged" true
      (Store.peek store' "c" = Some (Value.int 0)));
  (match Store.spec_of frozen "c" with
  | Some spec ->
    Alcotest.(check string) "type name marks the fault" "stuck(counter)"
      spec.Memory.Spec.type_name
  | None -> Alcotest.fail "spec vanished");
  (* idempotent: freezing twice does not re-wrap *)
  (match Store.spec_of (Store.freeze frozen "c") "c" with
  | Some spec ->
    Alcotest.(check string) "freeze is idempotent" "stuck(counter)"
      spec.Memory.Spec.type_name
  | None -> Alcotest.fail "spec vanished");
  Alcotest.check_raises "unknown location"
    (Invalid_argument "Store.freeze: unknown location \"nope\"") (fun () ->
      ignore (Store.freeze store "nope"))

let test_step_lost_semantics () =
  let c0 = config () in
  let c1 = Engine.step_lost c0 0 in
  Alcotest.(check bool) "store unchanged" true
    (Store.peek c1.Engine.store "c" = Some (Value.int 0));
  Alcotest.(check int) "process advanced" 1 c1.Engine.procs.(0).Runtime.Proc.steps;
  Alcotest.(check int) "clock ticked" 1 c1.Engine.time;
  Alcotest.(check int) "trace event recorded" 1
    (List.length c1.Engine.trace)

let test_fault_decisions_roundtrip () =
  let decisions =
    [ Repro.Lose 0; Repro.Stick "c"; Repro.Step 0; Repro.Step 1 ]
  in
  let cert =
    Repro.of_decisions ~sched:"test" ~message:"faulty run" (config ())
      decisions
  in
  (match Repro.of_json (Repro.to_json cert) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok cert' ->
    Alcotest.(check bool) "fault decisions survive JSON" true (cert = cert'));
  match Repro.replay cert (config ()) with
  | Error e -> Alcotest.failf "fault cert replay: %s" e
  | Ok final ->
    (* Lose 0 dropped p0's increment; Stick "c" froze the register; the
       remaining steps cannot move it: the counter must still read 0. *)
    Alcotest.(check bool) "faults re-injected on replay" true
      (Store.peek final.Engine.store "c" = Some (Value.int 0))

let test_election_fuzz_with_faults () =
  (* Lost writes genuinely break a correct cas election: the campaign
     must find a violation whose certificate contains fault decisions
     and replays bit for bit through subject resolution. *)
  let k = 4 and n = 3 in
  let instance = Protocols.Cas_election.instance ~k ~n in
  let subject = Subject.election ~protocol:"cas" ~k ~n () in
  let plan = { Faults.default with lose_p = 0.25; max_faults = 4 } in
  let outcome =
    Election.fuzz ~runs:128 ~seed:1 ~plan ~kind:Fuzz.Random_walk ~subject
      instance
  in
  match outcome.Fuzz.cert with
  | None -> Alcotest.fail "no violation under heavy lost writes"
  | Some cert -> (
    Alcotest.(check bool) "certificate carries fault decisions" true
      (List.exists Faults.is_fault cert.Repro.decisions);
    match Subject.resolve cert.Repro.subject with
    | Error e -> Alcotest.failf "subject: %s" e
    | Ok resolved -> (
      match Repro.replay cert resolved.Subject.config with
      | Error e -> Alcotest.failf "replay: %s" e
      | Ok final ->
        Alcotest.(check bool) "replayed final still violates" true
          (resolved.Subject.failing (Engine.Config_view.of_config final) <> None)))

(* --- the new schedulers ----------------------------------------------- *)

let test_starve_withholds_victim () =
  let sched = Sched.starve ~victim:0 ~stall:2 (Sched.round_robin ()) in
  let pick () =
    let pid = sched.Sched.choose ~time:0 ~enabled:[ 0; 1 ] in
    sched.Sched.observe ~time:0 ~pid;
    pid
  in
  let first = pick () in
  let second = pick () in
  let third = pick () in
  Alcotest.(check (list int)) "victim withheld for stall steps, then runs"
    [ 1; 1; 0 ]
    [ first; second; third ]

let test_starve_sole_survivor () =
  let sched = Sched.starve ~victim:0 ~stall:100 (Sched.round_robin ()) in
  Alcotest.(check int) "sole enabled victim still runs" 0
    (sched.Sched.choose ~time:0 ~enabled:[ 0 ])

let test_pct_deterministic_and_demoting () =
  let mk () = Sched.pct ~seed:9 ~depth:3 ~max_steps:50 () in
  let drive sched =
    List.init 20 (fun i ->
        let pid = sched.Sched.choose ~time:i ~enabled:[ 0; 1; 2 ] in
        sched.Sched.observe ~time:i ~pid;
        pid)
  in
  let s1 = drive (mk ()) and s2 = drive (mk ()) in
  Alcotest.(check (list int)) "same seed, same schedule" s1 s2;
  (* Without change points the top-priority pid runs solo; with depth 3
     the demotions must let some other pid in eventually. *)
  Alcotest.(check bool) "priority changes actually happen" true
    (List.length (List.sort_uniq compare s1) > 1)

let () =
  Alcotest.run "fuzz"
    [
      ( "determinism",
        [
          Alcotest.test_case "run: log + digest per kind" `Quick
            test_run_determinism;
          Alcotest.test_case "campaign: certificate per kind" `Quick
            test_campaign_cert_determinism;
        ] );
      ( "violations",
        [
          Alcotest.test_case "flip fixtures found and replayed" `Quick
            test_finds_flip_fixtures;
          Alcotest.test_case "election under lost writes" `Quick
            test_election_fuzz_with_faults;
        ] );
      ( "faults",
        [
          Alcotest.test_case "stuck-at freeze" `Quick test_freeze_semantics;
          Alcotest.test_case "lost write" `Quick test_step_lost_semantics;
          Alcotest.test_case "fault decisions round-trip and replay" `Quick
            test_fault_decisions_roundtrip;
        ] );
      ( "sched",
        [
          Alcotest.test_case "starve withholds victim" `Quick
            test_starve_withholds_victim;
          Alcotest.test_case "starve sole survivor" `Quick
            test_starve_sole_survivor;
          Alcotest.test_case "pct deterministic" `Quick
            test_pct_deterministic_and_demoting;
        ] );
    ]
