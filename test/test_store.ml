(* Cross-backend equivalence: the mutable arena store against the
   persistent reference, and the compiled machine against the closure
   engine.  The arena/machine pair is the hot path of every campaign,
   so these tests pin the contract the speedup rests on: state-for-state
   store agreement through random op sequences (faults and snapshot/
   undo included), identical exploration statistics, decision sets and
   fuzz certificates in every mode, bit-for-bit certificate replay on
   either backend, and incremental fingerprint sums that match the
   from-scratch computation after every machine step. *)

module Value = Memory.Value
module Spec = Memory.Spec
module Store = Memory.Store
module Arena = Memory.Store.Arena
module Engine = Runtime.Engine
module Machine = Runtime.Engine.Machine
module Explore = Runtime.Explore
module Fingerprint = Runtime.Fingerprint

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal

(* --- random op sequences: arena tracks the persistent store --- *)

(* A deterministic psuedo-random stream (splitmix-ish) so the sequence
   is reproducible from the seed alone. *)
let mk_rng seed =
  let state = ref (seed * 2654435769 + 1) in
  fun bound ->
    let s = !state in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    state := s;
    abs s mod bound

let zoo_bindings () =
  let open Objects.Zoo in
  [ rw_register; test_and_set; swap; cas 4; sticky_bit; fetch_add_mod 5 ]
  |> List.map (fun e -> (e.name, e.spec, Array.of_list e.ops))

let check_agree ~msg store arena =
  (* Every observation the rest of the system makes must agree. *)
  List.iter
    (fun (loc, v) ->
      Alcotest.(check (option value))
        (Printf.sprintf "%s: peek %s" msg loc)
        (Some v) (Arena.peek arena loc))
    (Store.state_bindings store);
  Alcotest.(check bool)
    (Printf.sprintf "%s: state_bindings" msg)
    true
    (Store.state_bindings store = Arena.state_bindings arena);
  Alcotest.(check int)
    (Printf.sprintf "%s: compare_states" msg)
    0
    (Store.compare_states store (Arena.to_store arena))

let test_random_ops () =
  let bindings = zoo_bindings () in
  let store0 =
    Store.create (List.map (fun (name, spec, _) -> (name, spec)) bindings)
  in
  let locs = Array.of_list (List.map (fun (name, _, _) -> name) bindings) in
  let ops = Array.of_list (List.map (fun (_, _, ops) -> ops) bindings) in
  let n_locs = Array.length locs in
  let sum_scratch bs =
    List.fold_left
      (fun acc (l, v) -> acc + Fingerprint.store_binding_hash l v)
      0 bs
  in
  List.iter
    (fun seed ->
      let rng = mk_rng seed in
      let arena = Arena.of_store store0 in
      let store = ref store0 in
      (* the store half of the fingerprint sum, maintained incrementally
         through pokes, freezes, ops and undos exactly as the reduced
         walk maintains it through step frames *)
      let sum = ref (sum_scratch (Store.state_bindings store0)) in
      (* a stack of (persistent snapshot, arena mark, sum) checkpoints *)
      let saves = ref [] in
      for i = 0 to 399 do
        let li = rng n_locs in
        let loc = locs.(li) in
        let msg = Printf.sprintf "seed %d op %d" seed i in
        (match rng 10 with
        | 0 ->
          (* poke both to the same (type-respecting) value: replay the
             object's init state *)
          let v = (List.nth bindings li |> fun (_, s, _) -> s).Spec.init in
          let old = Option.get (Arena.peek arena loc) in
          store := Store.poke !store loc v;
          Arena.poke arena loc v;
          sum :=
            !sum
            - Fingerprint.store_binding_hash loc old
            + Fingerprint.store_binding_hash loc v
        | 1 ->
          (* stuck-at fault: spec swapped, state binding untouched — no
             sum delta *)
          store := Store.freeze !store loc;
          Arena.freeze arena loc
        | 2 -> saves := (!store, Arena.mark arena, !sum) :: !saves
        | 3 -> (
          match !saves with
          | [] -> ()
          | (s, mk, sv) :: rest ->
            saves := rest;
            store := s;
            sum := sv;
            Arena.undo_to arena mk)
        | _ -> (
          let pid = rng 4 in
          let op = ops.(li).(rng (Array.length ops.(li))) in
          let old = Option.get (Arena.peek arena loc) in
          match (Store.apply !store ~pid loc op, Arena.apply arena ~pid loc op)
          with
          | Ok (store', rp), Ok ra ->
            store := store';
            Alcotest.check value (msg ^ ": result") rp ra;
            let nw = Option.get (Arena.peek arena loc) in
            sum :=
              !sum
              - Fingerprint.store_binding_hash loc old
              + Fingerprint.store_binding_hash loc nw
          | Error ep, Error ea ->
            Alcotest.(check string) (msg ^ ": error") ep ea
          | Ok _, Error e ->
            Alcotest.failf "%s: persistent Ok but arena Error %s" msg e
          | Error e, Ok _ ->
            Alcotest.failf "%s: persistent Error %s but arena Ok" msg e));
        check_agree ~msg !store arena;
        (* both backends agree binding-for-binding (just checked), so one
           from-scratch fold pins the incremental sum for both *)
        Alcotest.(check int)
          (msg ^ ": incremental store sum")
          (sum_scratch (Arena.state_bindings arena))
          !sum
      done)
    [ 1; 7; 42; 1994 ]

(* --- incremental fingerprint sums from the machine's step delta --- *)

let cas_instance = Protocols.Cas_election.instance ~k:4 ~n:3

(* The property the journal-free reduced walk rests on (DESIGN.md §7):
   fingerprint sums maintained in O(1) from each move's delta equal the
   from-scratch computation — through ordinary steps, decides, crashes,
   stuck-at freezes and lost writes — on {e both} backends, with the
   machine staying digest-lockstep with the persistent engine under the
   same schedule. *)
let test_incremental_sums () =
  List.iter
    (fun seed ->
      let config0 = Protocols.Election.config cas_instance in
      let n = Array.length config0.Engine.procs in
      let locs = Array.of_list (Store.locs config0.Engine.store) in
      let m = Machine.of_config config0 in
      let pc = ref config0 in
      let histories = Array.make n Fingerprint.history_empty in
      let store_sum0, proc_sum0 = Fingerprint.sums config0 histories in
      let store_sum = ref store_sum0 and proc_sum = ref proc_sum0 in
      let rng = mk_rng seed in
      for i = 0 to 299 do
        (match Machine.enabled m with
        | [] -> ()
        | en ->
          let pid = List.nth en (rng (List.length en)) in
          let status_before = Machine.status m pid in
          let hist_before = histories.(pid) in
          (* one process's history (and possibly status) changed *)
          let bump_proc () =
            proc_sum :=
              !proc_sum
              - Fingerprint.proc_hash ~pid status_before hist_before
              + Fingerprint.proc_hash ~pid (Machine.status m pid)
                  histories.(pid)
          in
          let record_event ~store_delta =
            if Machine.last_step_event m then begin
              let loc = Machine.last_loc m in
              if store_delta then
                store_sum :=
                  !store_sum
                  - Fingerprint.store_binding_hash loc
                      (Machine.last_old_state m)
                  + Fingerprint.store_binding_hash loc
                      (Machine.last_new_state m);
              histories.(pid) <-
                Fingerprint.history_extend_op histories.(pid) ~loc
                  ~op:(Machine.last_op m) ~result:(Machine.last_result m)
            end
          in
          match rng 12 with
          | 0 ->
            Machine.crash m pid;
            pc := Engine.crash !pc pid;
            bump_proc ()
          | 1 ->
            (* stuck-at freeze replaces a spec but no state binding, so
               the canonical fingerprint — states, statuses, histories —
               sees no delta at all *)
            let loc = locs.(rng (Array.length locs)) in
            Machine.freeze m loc;
            pc := { !pc with Engine.store = Store.freeze !pc.Engine.store loc }
          | 2 ->
            (* lost write: the event (and so the history term) happens,
               the store delta does not *)
            Machine.step_lost m pid;
            pc := Engine.step_lost !pc pid;
            record_event ~store_delta:false;
            bump_proc ()
          | _ ->
            Machine.step m pid;
            pc := Engine.step !pc pid;
            record_event ~store_delta:true;
            bump_proc ());
        let s, p = Fingerprint.sums (Machine.config m) histories in
        Alcotest.(check int)
          (Printf.sprintf "seed %d move %d: arena store sum" seed i)
          s !store_sum;
        Alcotest.(check int)
          (Printf.sprintf "seed %d move %d: arena proc sum" seed i)
          p !proc_sum;
        let s', p' = Fingerprint.sums !pc histories in
        Alcotest.(check int)
          (Printf.sprintf "seed %d move %d: persistent store sum" seed i)
          s' !store_sum;
        Alcotest.(check int)
          (Printf.sprintf "seed %d move %d: persistent proc sum" seed i)
          p' !proc_sum;
        Alcotest.(check bool)
          (Printf.sprintf "seed %d move %d: combine non-negative" seed i)
          true
          (Fingerprint.combine ~store_sum:!store_sum ~proc_sum:!proc_sum >= 0)
      done;
      (* the per-location seed identity the hot loop's precomputed
         [store_seed] array relies on *)
      List.iter
        (fun (loc, v) ->
          Alcotest.(check int)
            (Printf.sprintf "seed %d: store_seed identity at %s" seed loc)
            (Fingerprint.store_binding_hash loc v)
            (Value.hash_fold (Fingerprint.store_seed loc) v))
        (Store.state_bindings !pc.Engine.store);
      Alcotest.(check string)
        (Printf.sprintf "seed %d: final digest lockstep" seed)
        (Fingerprint.digest !pc)
        (Fingerprint.digest (Machine.config m)))
    [ 13; 99; 4096 ]

(* --- whole-space agreement across backends --- *)

let modes =
  [
    ("naive", false, false);
    ("dedup", true, false);
    ("por", false, true);
    ("dedup+por", true, true);
  ]

let opts ~dedup ~por backend =
  {
    Explore.Options.default with
    crash_faults = true;
    max_steps = 60;
    dedup;
    por;
    backend;
  }

let test_explore_stats_agree () =
  List.iter
    (fun (mode, dedup, por) ->
      let stats backend =
        Protocols.Election.explore_stats cas_instance ~max_steps:60
          ~options:(opts ~dedup ~por backend)
      in
      let sp = stats Engine.Persistent and sa = stats Engine.Arena in
      (match sp with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: persistent verdict: %s" mode e);
      Alcotest.(check bool)
        (mode ^ ": stats identical across backends")
        true (sp = sa))
    modes

let test_decision_sets_agree () =
  let config = Protocols.Election.config cas_instance in
  List.iter
    (fun (mode, dedup, por) ->
      let sets backend =
        Explore.decision_sets ~options:(opts ~dedup ~por backend) config
      in
      Alcotest.(check bool)
        (mode ^ ": decision sets identical across backends")
        true
        (sets Engine.Persistent = sets Engine.Arena))
    modes

let test_verify_backend () =
  (* The lockstep debug flag shadows every machine move with the
     persistent reference and fails on the first divergence.  Running it
     per mode also keeps the journaled reduced path (the fallback the
     lockstep shadow runs on) exercised alongside the journal-free
     walk. *)
  List.iter
    (fun (mode, dedup, por) ->
      let stats =
        Protocols.Election.explore_stats cas_instance ~max_steps:60
          ~options:
            { (opts ~dedup ~por Engine.Arena) with verify_backend = true }
      in
      match stats with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: verify_backend run failed: %s" mode e)
    modes

(* --- fuzz certificates: identical across backends, replay on both --- *)

let test_fuzz_certs_agree () =
  let outcome backend =
    Protocols.Election.fuzz ~runs:256 ~seed:1 ~plan:Runtime.Faults.default
      ~kind:Runtime.Fuzz.Random_walk ~shrink:false ~backend cas_instance
  in
  let op = outcome Engine.Persistent and oa = outcome Engine.Arena in
  Alcotest.(check bool)
    "fault fuzz finds a violation" true
    (op.Runtime.Fuzz.cert <> None);
  Alcotest.(check bool)
    "certificates identical across backends" true
    (op.Runtime.Fuzz.cert = oa.Runtime.Fuzz.cert);
  match op.Runtime.Fuzz.cert with
  | None -> ()
  | Some cert ->
    let config = Protocols.Election.config cas_instance in
    List.iter
      (fun backend ->
        match Runtime.Repro.replay ~backend cert config with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "replay on %s: %s" (Engine.backend_name backend) e)
      [ Engine.Persistent; Engine.Arena ]

(* --- forced closure fallback: machine == engine, digest-for-digest --- *)

let test_fallback_digest () =
  (* max_nodes:1 forces every pid to bail out of compilation, so the
     machine runs the closure interpreter over the arena — its outcome
     must still be digest-identical to the persistent engine's. *)
  let run_digest mk_outcome =
    let outcome = mk_outcome () in
    Fingerprint.digest outcome.Engine.final
  in
  List.iter
    (fun seed ->
      let sched () = Runtime.Sched.random ~seed in
      let dp =
        run_digest (fun () ->
            Engine.run ~max_steps:400 ~sched:(sched ())
              (Protocols.Election.config cas_instance))
      in
      let da =
        run_digest (fun () ->
            Machine.run ~max_steps:400 ~sched:(sched ())
              (Machine.of_config ~max_nodes:1
                 (Protocols.Election.config cas_instance)))
      in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: fallback digest" seed)
        dp da)
    [ 0; 1; 2; 3 ]

(* --- the engine's read classification matches the specs --- *)

let test_is_read_consistent () =
  (* [Op_codec.is_read] feeds the machine's [access]/POR read
     classification, so a misclassified mutating op would unsoundly
     commute.  Cross-check against the specs themselves: an op deemed a
     read must never change any reachable state of any zoo object. *)
  List.iter
    (fun (e : Objects.Zoo.entry) ->
      (* breadth-first closure of reachable states under the op universe,
         bounded — the zoo objects are tiny *)
      let seen = ref [ e.spec.Spec.init ] in
      let frontier = ref [ e.spec.Spec.init ] in
      let budget = ref 200 in
      while !frontier <> [] && !budget > 0 do
        decr budget;
        let state = List.hd !frontier in
        frontier := List.tl !frontier;
        List.iter
          (fun op ->
            match Spec.apply e.spec ~pid:0 state op with
            | Error _ -> ()
            | Ok (state', _) ->
              (if Objects.Op_codec.is_read op then
                 Alcotest.(check bool)
                   (Printf.sprintf "%s: read op leaves state unchanged" e.name)
                   true
                   (Value.equal state state'));
              if not (List.exists (Value.equal state') !seen) then begin
                seen := state' :: !seen;
                frontier := state' :: !frontier
              end)
          e.ops
      done)
    (Objects.Zoo.all ())

let () =
  Alcotest.run "store"
    [
      ( "arena-equivalence",
        [
          Alcotest.test_case "random op sequences" `Quick test_random_ops;
        ] );
      ( "incremental-fingerprint",
        [
          Alcotest.test_case "machine step delta" `Quick test_incremental_sums;
        ] );
      ( "cross-backend",
        [
          Alcotest.test_case "explore stats" `Quick test_explore_stats_agree;
          Alcotest.test_case "decision sets" `Quick test_decision_sets_agree;
          Alcotest.test_case "verify-backend lockstep" `Quick
            test_verify_backend;
          Alcotest.test_case "fuzz certificates" `Quick test_fuzz_certs_agree;
          Alcotest.test_case "forced fallback digest" `Quick
            test_fallback_digest;
        ] );
      ( "op-classification",
        [
          Alcotest.test_case "is_read vs specs" `Quick test_is_read_consistent;
        ] );
    ]
