type t = {
  type_name : string;
  init : Value.t;
  apply : pid:int -> Value.t -> Value.t -> (Value.t * Value.t, string) result;
}

let make ~type_name ~init ~apply = { type_name; init; apply }
let apply t ~pid state op = t.apply ~pid state op

module Vset = Set.Make (Value)

let reachable t ~pids ~ops ~limit =
  (* Breadth-first closure of the state space under [ops] by [pids]. *)
  let seen = ref (Vset.singleton t.init) in
  let queue = Queue.create () in
  Queue.add t.init queue;
  let truncated = ref false in
  let visit state =
    List.iter
      (fun pid ->
        List.iter
          (fun op ->
            match t.apply ~pid state op with
            | Error _ -> ()
            | Ok (state', _) ->
              if not (Vset.mem state' !seen) then
                if Vset.cardinal !seen >= limit then truncated := true
                else begin
                  seen := Vset.add state' !seen;
                  Queue.add state' queue
                end)
          ops)
      pids
  in
  let rec loop () =
    match Queue.take_opt queue with
    | None -> ()
    | Some state ->
      visit state;
      loop ()
  in
  loop ();
  (Vset.elements !seen, !truncated)
