(** Sequential specifications of shared objects.

    A shared object is a deterministic sequential state machine: given the
    invoking process id, the current state and an operation description, it
    produces the next state and the operation's response.  The execution
    engine applies operations atomically, one at a time, which is exactly
    the linearizable shared-memory model of the paper (Herlihy & Wing). *)

type t = {
  type_name : string;
      (** human-readable object type, e.g. ["cas(4)"] or ["swmr-reg"] *)
  init : Value.t;  (** initial state *)
  apply : pid:int -> Value.t -> Value.t -> (Value.t * Value.t, string) result;
      (** [apply ~pid state op] returns [Ok (state', response)] or
          [Error reason] when [op] is malformed or forbidden for [pid]
          (e.g. a write to a single-writer register by a non-owner). *)
}

val make :
  type_name:string ->
  init:Value.t ->
  apply:(pid:int -> Value.t -> Value.t -> (Value.t * Value.t, string) result) ->
  t

val apply :
  t -> pid:int -> Value.t -> Value.t -> (Value.t * Value.t, string) result

(** [reachable spec ~ops ~limit] enumerates the states reachable from
    [spec.init] by applying operations drawn from [ops] (invoked by any
    pid in [pids]), stopping after [limit] distinct states.  Used by the
    consensus-number classifier, which needs the finite state space of an
    object type. Returns the states found and whether exploration was
    truncated by [limit]. *)
val reachable :
  t -> pids:int list -> ops:Value.t list -> limit:int -> Value.t list * bool
