lib/memory/spec.ml: List Queue Set Value
