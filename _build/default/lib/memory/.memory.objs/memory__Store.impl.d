lib/memory/store.ml: Fmt List Map Printf Spec String Value
