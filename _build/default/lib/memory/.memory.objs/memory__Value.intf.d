lib/memory/value.mli: Format
