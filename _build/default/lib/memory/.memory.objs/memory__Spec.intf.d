lib/memory/spec.mli: Value
