lib/memory/store.mli: Format Spec Value
