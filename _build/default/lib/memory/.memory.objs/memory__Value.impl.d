lib/memory/value.ml: Bool Fmt Hashtbl Int List String
