type t = int list

let root = []
let equal = List.equal Int.equal
let compare = List.compare Int.compare

let extend l v =
  if List.mem v l then invalid_arg "Label.extend: value already first-used"
  else l @ [ v ]

let mem = List.mem

let rec is_prefix l l' =
  match l, l' with
  | [], _ -> true
  | x :: xs, y :: ys -> x = y && is_prefix xs ys
  | _ :: _, [] -> false

let compatible a b = is_prefix a b || is_prefix b a
let max_labels ~k = Protocols.Perm.factorial (k - 1)
let pp ppf l = Fmt.pf ppf "_|_%a" Fmt.(list ~sep:nop (fun ppf -> Fmt.pf ppf ".%d")) l
let to_string l = Fmt.str "%a" pp l
