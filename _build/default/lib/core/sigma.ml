type t = Bot | V of int

let equal a b =
  match a, b with
  | Bot, Bot -> true
  | V i, V j -> i = j
  | (Bot | V _), _ -> false

let compare a b =
  match a, b with
  | Bot, Bot -> 0
  | Bot, V _ -> -1
  | V _, Bot -> 1
  | V i, V j -> Int.compare i j

let all ~k =
  if k < 1 then invalid_arg "Sigma.all: k >= 1 required";
  Bot :: List.init (k - 1) (fun i -> V i)

let non_bottom ~k = List.init (k - 1) (fun i -> V i)

let index ~k:_ = function Bot -> 0 | V i -> i + 1

let of_index ~k i =
  if i = 0 then Bot
  else if i >= 1 && i < k then V (i - 1)
  else invalid_arg "Sigma.of_index: out of range"

let to_value = function
  | Bot -> Memory.Value.sym "_|_"
  | V i -> Memory.Value.int i

let of_value = function
  | Memory.Value.Sym "_|_" -> Bot
  | Memory.Value.Int i -> V i
  | v -> raise (Memory.Value.Type_error ("sigma symbol", v))

let pp ppf = function
  | Bot -> Fmt.string ppf "_|_"
  | V i -> Fmt.int ppf i

let to_string t = Fmt.str "%a" pp t
