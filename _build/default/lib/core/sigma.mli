(** The compare&swap-(k) alphabet Σ = {⊥, 0, 1, …, k−2} as used by the
    emulation, with conversions to the runtime's value encoding. *)

type t = Bot | V of int

val equal : t -> t -> bool
val compare : t -> t -> int
val all : k:int -> t list
(** ⊥ first, then 0 … k−2. *)

val non_bottom : k:int -> t list
val index : k:int -> t -> int
(** Dense index in [0 .. k-1]; ⊥ is 0. *)

val of_index : k:int -> int -> t
val to_value : t -> Memory.Value.t
val of_value : Memory.Value.t -> t
(** @raise Memory.Value.Type_error on values outside the encoding. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
