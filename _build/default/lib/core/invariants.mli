(** Per-run audits of the emulation's correctness obligations
    (experiment E5) — the executable form of Lemma 1.2 and
    Definitions 1–3.

    Each audit inspects a finished emulation and returns the list of
    violations (empty = clean).  The checks are deliberately independent
    of the emulator implementation: they recompute everything from the
    shared structures and the event log. *)

type violation = { check : string; detail : string }

val label_budget : Emulation.t -> violation list
(** At most (k−1)! labels; every label is a duplicate-free sequence of
    non-⊥ values of length ≤ k−1. *)

val history_well_formed : Emulation.t -> violation list
(** For every active label: the history starts at ⊥, never has two equal
    consecutive symbols, stays inside Σ, and the label's values make
    their first appearances in label order (Lemma 1.2(2) in spirit: the
    history is a legal sequence of register values whose splits happened
    in label order). *)

val history_backed : Emulation.t -> violation list
(** Definition 1 discipline, per leaf label: no edge of the excess graph
    is overdrawn — the number of history transitions (a→b) never exceeds
    suspensions-ever on (a→b) visible to that run (each transition must
    be attributable to a distinct suspended v-process).  This is the
    heart of "there is at least one run of A that the emulation has
    emulated". *)

val release_margin : Emulation.t -> violation list
(** Fig. 5's rule: at every release of a suspended c&s(a→b), the history
    visible to that run contained at least m unmatched (a→b)
    transitions.  Recomputed from the event log. *)

val reads_justified : Emulation.t -> violation list
(** Every emulated register read returned the register's initial value or
    a value written earlier by a label-compatible write (the Fig. 3
    register rule). *)

val same_label_agreement : Emulation.t -> violation list
(** Emulators that decided in the same final label decided equal values
    (the property that makes B an ℓ-set consensus when A is an
    election). *)

val stable_chain : Emulation.t -> violation list
(** Lemma 1.2(3), reconstructed: for each leaf label, the values used in
    its history decompose into stable components connected by a
    high-width path ({!Components.chain_decomposition}).  Reported, not
    asserted: at laptop-scale provisioning the invariant can genuinely
    fail after the budget is spent — see DESIGN.md. *)

val all : Emulation.t -> (string * violation list) list
(** Every audit, labelled. *)

val pp_violation : Format.formatter -> violation -> unit
