(** Witness-run construction (the executable reading of "we prove that
    there is at least one run of A that the emulation has emulated",
    §3.1.1).

    For each leaf label we attempt to exhibit a witness assignment: every
    transition of the constructed history is matched to a distinct
    v-process invocation that could have performed it —

    - every {e released} suspension (an emulated successful c&s) must be
      matched to a transition on its edge;
    - remaining transitions are covered by still-suspended v-processes
      (their operations are linearized in the run, responses pending) or
      by the label's first-use operations (at most one per split);
    - counts must balance edge by edge.

    The matching is per-edge counting (all operations on one edge are
    interchangeable, so Hall's condition degenerates to counting). *)

type edge_report = {
  edge : Sigma.t * Sigma.t;
  transitions : int;  (** occurrences in the history *)
  released : int;  (** emulated successes that must be matched *)
  suspended : int;  (** available pending operations *)
  first_use : int;  (** split transitions (no suspension needed) *)
  feasible : bool;
}

type report = {
  label : Label.t;
  history_length : int;
  edges : edge_report list;
  feasible : bool;  (** all edges feasible: a witness run exists *)
}

val witness : Emulation.t -> Label.t -> report
val check_all_leaves : Emulation.t -> report list
val pp_report : Format.formatter -> report -> unit

(** {1 Per-v-process timelines}

    A stronger per-process legality check: in the witness run, each
    v-process's compare&swap responses must occur at {e non-decreasing}
    positions of its run's history — a failed operation that returned
    [x] must sit at a point where the register held [x], a success on
    (a→b) must sit at an (a→b) transition, and both later than the
    process's previous operation.  [vp_timelines] verifies, for every
    leaf label and every v-process whose events belong to that run, that
    such a monotone embedding exists (greedy earliest-position
    assignment, which is exact for per-process feasibility). *)

type timeline_violation = {
  vp : int;
  label : Label.t;
  at : int;  (** index of the offending operation in the vp's sequence *)
  reason : string;
}

val vp_timelines : Emulation.t -> timeline_violation list
(** Empty = every v-process's observed responses embed into its run. *)
