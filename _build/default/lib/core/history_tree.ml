module Imap = Map.Make (Int)

module Lmap = Map.Make (struct
  type t = Label.t

  let compare = Label.compare
end)

type node = {
  value : Sigma.t;
  from_parent : Sigma.t list;
  to_parent : Sigma.t list;
  parent : int option;
  children : (int * int * int) list;
}

type tree = { nodes : node Imap.t; root : int; next_id : int }

let tree_root tree = tree.root
let tree_node tree id = Imap.find id tree.nodes
let tree_size tree = Imap.cardinal tree.nodes

type t = { trees : tree Lmap.t }

let singleton_tree value =
  {
    nodes =
      Imap.singleton 0
        { value; from_parent = []; to_parent = []; parent = None; children = [] };
    root = 0;
    next_id = 1;
  }

let create () = { trees = Lmap.singleton Label.root (singleton_tree Sigma.Bot) }
let tree t label = Lmap.find_opt label t.trees
let active_labels t = List.map fst (Lmap.bindings t.trees)

let children_labels t label =
  active_labels t
  |> List.filter_map (fun l ->
         if List.length l = List.length label + 1 && Label.is_prefix label l
         then Some (List.nth l (List.length label))
         else None)
  |> List.sort compare

let is_leaf t label = children_labels t label = []
let leaf_labels t = List.filter (is_leaf t) (active_labels t)

let rec extend_to_leaf t label =
  match children_labels t label with
  | [] -> label
  | v :: _ -> extend_to_leaf t (Label.extend label v)

let activate t ~parent ~value =
  let label = Label.extend parent value in
  if Lmap.mem label t.trees then t
  else { trees = Lmap.add label (singleton_tree (Sigma.V value)) t.trees }

let attach t ~label ~parent_node ~emu ~seq ~value ~from_parent ~to_parent =
  match Lmap.find_opt label t.trees with
  | None -> invalid_arg "History_tree.attach: no such label"
  | Some tree ->
    let id = tree.next_id in
    let node = { value; from_parent; to_parent; parent = Some parent_node; children = [] } in
    let parent = Imap.find parent_node tree.nodes in
    let children =
      List.sort compare ((emu, seq, id) :: parent.children)
    in
    let nodes =
      Imap.add id node
        (Imap.add parent_node { parent with children } tree.nodes)
    in
    let tree = { tree with nodes; next_id = id + 1 } in
    ({ trees = Lmap.add label tree t.trees }, id)

(* Fig. 4: render the tree's contribution to the history.  [full] renders
   the complete DFS (ending back at the root symbol); otherwise we stop
   right after entering the node that is last in DFS order. *)
let dfs tree ~full =
  let buf = ref [] in
  let emit s = buf := s :: !buf in
  let last_entry_mark = ref 0 in
  let rec visit id =
    let n = Imap.find id tree.nodes in
    List.iter
      (fun (_, _, child_id) ->
        let c = Imap.find child_id tree.nodes in
        List.iter emit c.from_parent;
        emit c.value;
        last_entry_mark := List.length !buf;
        visit child_id;
        List.iter emit c.to_parent;
        emit n.value)
      n.children
  in
  let root = Imap.find tree.root tree.nodes in
  emit root.value;
  last_entry_mark := List.length !buf;
  visit tree.root;
  let seq = List.rev !buf in
  if full then seq
  else List.filteri (fun i _ -> i < !last_entry_mark) seq

let rightmost tree =
  let result = ref tree.root in
  let rec visit id =
    let n = Imap.find id tree.nodes in
    List.iter
      (fun (_, _, child_id) ->
        result := child_id;
        visit child_id)
      n.children
  in
  visit tree.root;
  !result

let depth tree id =
  let rec go id acc =
    match (Imap.find id tree.nodes).parent with
    | None -> acc
    | Some p -> go p (acc + 1)
  in
  go id 0

let ancestors tree id =
  let rec go id acc =
    match (Imap.find id tree.nodes).parent with
    | None -> List.rev (id :: acc)
    | Some p -> go p (id :: acc)
  in
  go id []

let history t label =
  let prefix_list =
    List.init
      (List.length label + 1)
      (fun i -> List.filteri (fun j _ -> j < i) label)
  in
  List.concat_map
    (fun l ->
      match Lmap.find_opt l t.trees with
      | None ->
        invalid_arg
          (Printf.sprintf "History_tree.history: missing tree for %s"
             (Label.to_string l))
      | Some tree -> dfs tree ~full:(not (Label.equal l label)))
    prefix_list

let pp_tree ppf tree =
  let rec pp_node ppf id =
    let n = Imap.find id tree.nodes in
    Fmt.pf ppf "@[<v 2>%a%s%s%a@]" Sigma.pp n.value
      (if n.from_parent = [] then ""
       else
         Fmt.str " <-[%a]"
           Fmt.(list ~sep:sp Sigma.pp)
           n.from_parent)
      (if n.to_parent = [] then ""
       else Fmt.str " ->[%a]" Fmt.(list ~sep:sp Sigma.pp) n.to_parent)
      (fun ppf children ->
        List.iter (fun (_, _, c) -> Fmt.pf ppf "@,%a" pp_node c) children)
      n.children
  in
  pp_node ppf tree.root

let pp ppf t =
  Lmap.iter
    (fun label tree ->
      Fmt.pf ppf "@[<v 2>t_%s:@,%a@]@." (Label.to_string label) pp_tree tree)
    t.trees
