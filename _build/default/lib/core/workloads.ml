module Value = Memory.Value
module Program = Runtime.Program
module Cas_k = Objects.Cas_k

let cas_loc = "C"

let over_capacity_cas_election ~k ~num_vps =
  let program vp =
    let open Program in
    let mine = Value.int (vp mod (k - 1)) in
    complete
      (let* prev = Cas_k.cas cas_loc ~expected:Cas_k.bottom ~desired:mine in
       if Value.equal prev Cas_k.bottom then return mine else return prev)
  in
  {
    Emulation.name = Printf.sprintf "over-capacity-cas-election(k=%d)" k;
    k;
    cas_loc;
    bindings = [ (cas_loc, Cas_k.spec ~k) ];
    program;
    num_vps;
  }

let rmw_via_cas ~k ~transforms ~rounds ~num_vps =
  if transforms = [] then invalid_arg "rmw_via_cas: no transformations";
  let program vp =
    let open Program in
    let _, f = List.nth transforms (vp mod List.length transforms) in
    (* Apply f atomically: read-compute-c&s retry.  The first "read" is a
       failing c&s against a guessed value; every failure teaches us the
       current value, and values never repeat in a cycle within one
       retry round, so the loop is bounded by the register's traffic. *)
    let rec apply_f belief remaining =
      if remaining = 0 then decide (Value.int vp)
      else
        let desired = f belief in
        if Sigma.equal desired belief then
          (* f fixes this value: the RMW is a read here; one (failing or
             trivially-successful) c&s confirms the value. *)
          let* prev =
            Cas_k.cas cas_loc ~expected:(Sigma.to_value belief)
              ~desired:(Sigma.to_value belief)
          in
          let seen = Sigma.of_value prev in
          if Sigma.equal seen belief then apply_f belief (remaining - 1)
          else apply_f seen remaining
        else
          let* prev =
            Cas_k.cas cas_loc ~expected:(Sigma.to_value belief)
              ~desired:(Sigma.to_value desired)
          in
          let seen = Sigma.of_value prev in
          if Sigma.equal seen belief then apply_f desired (remaining - 1)
          else apply_f seen remaining
    in
    complete (apply_f (Sigma.of_index ~k (vp mod k)) rounds)
  in
  {
    Emulation.name = Printf.sprintf "rmw-via-cas(k=%d,rounds=%d)" k rounds;
    k;
    cas_loc;
    bindings = [ (cas_loc, Cas_k.spec ~k) ];
    program;
    num_vps;
  }

let cycling ~k ~rounds ~num_vps =
  (* The value cycle ⊥ → 0 → 1 → … → (k−2) → ⊥. *)
  let succ = function
    | Sigma.Bot -> Sigma.V 0
    | Sigma.V i -> if i = k - 2 then Sigma.Bot else Sigma.V (i + 1)
  in
  let program vp =
    let open Program in
    let rec go belief remaining =
      if remaining = 0 then decide (Value.int vp)
      else
        let desired = succ belief in
        let* prev =
          Cas_k.cas cas_loc ~expected:(Sigma.to_value belief)
            ~desired:(Sigma.to_value desired)
        in
        let prev_sym = Sigma.of_value prev in
        if Sigma.equal prev_sym belief then go desired (remaining - 1)
        else go prev_sym remaining
    in
    complete (go (Sigma.of_index ~k (vp mod k)) rounds)
  in
  {
    Emulation.name = Printf.sprintf "cycling(k=%d,rounds=%d)" k rounds;
    k;
    cas_loc;
    bindings = [ (cas_loc, Cas_k.spec ~k) ];
    program;
    num_vps;
  }
