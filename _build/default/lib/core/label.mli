(** Labels: the sequence of "first values" of a constructed run (§3.1).

    When emulators concurrently perform successful c&s operations that
    introduce values never used before, they split into groups — one per
    new value — and each group continues constructing its own run.  The
    label of a run is the order in which values were first used; it
    always starts with ⊥ (kept implicit here: a label is the list of
    non-⊥ symbols in first-use order).  There are at most (k−1)!
    labels, hence at most (k−1)! groups — the crux of the reduction to
    (k−1)!-set consensus.

    A label [l] identifies the tree [t_l] in the shared structure T, and
    run data is visible across groups exactly when their labels are
    prefix-compatible. *)

type t = int list
(** Values (as in {!Sigma.V}) in first-use order.  [[]] is the root
    label (only ⊥ used so far). *)

val root : t
val equal : t -> t -> bool
val compare : t -> t -> int
val extend : t -> int -> t
(** Append a newly first-used value.  @raise Invalid_argument if the
    value is already in the label. *)

val mem : int -> t -> bool
val is_prefix : t -> t -> bool
(** [is_prefix l l'] : is [l] a prefix of [l']? *)

val compatible : t -> t -> bool
(** Either is a prefix of the other — the visibility condition for
    emulated register reads. *)

val max_labels : k:int -> int
(** (k−1)! — the number of leaves of T. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
