type t = { k : int; w : int array array }

let k t = t.k

let transitions history =
  let rec go = function
    | a :: (b :: _ as rest) ->
      if Sigma.equal a b then go rest else (a, b) :: go rest
    | [ _ ] | [] -> []
  in
  go history

let compute ~k ~suspensions ~history =
  let w = Array.make_matrix k k 0 in
  let idx = Sigma.index ~k in
  (* w = f + s − p: every suspension entry contributes +1 (unreleased
     entries as available processes f, released ones as already-emulated
     successes s cancelling a history debt), every history transition
     −1. *)
  List.iter
    (fun (e : Vp_graph.entry) ->
      let a, b = e.Vp_graph.edge in
      w.(idx a).(idx b) <- w.(idx a).(idx b) + 1)
    suspensions;
  List.iter
    (fun (a, b) -> w.(idx a).(idx b) <- w.(idx a).(idx b) - 1)
    (transitions history);
  { k; w }

let weight t a b = t.w.(Sigma.index ~k:t.k a).(Sigma.index ~k:t.k b)

let debit t edges =
  let w = Array.map Array.copy t.w in
  List.iter
    (fun (a, b) ->
      let i = Sigma.index ~k:t.k a and j = Sigma.index ~k:t.k b in
      w.(i).(j) <- w.(i).(j) - 1)
    edges;
  { t with w }

(* Widest (maximum-bottleneck) path via Floyd–Warshall on the bottleneck
   semiring.  Paths must be non-empty, so we seed with single edges and
   close under concatenation. *)
let widest_matrix t =
  let n = t.k in
  let d = Array.make_matrix n n min_int in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then d.(i).(j) <- t.w.(i).(j)
    done
  done;
  for mid = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = min d.(i).(mid) d.(mid).(j) in
        if via > d.(i).(j) then d.(i).(j) <- via
      done
    done
  done;
  d

let widest_path t a b =
  let d = widest_matrix t in
  let v = d.(Sigma.index ~k:t.k a).(Sigma.index ~k:t.k b) in
  if v = min_int then 0 else max v 0

let widest_cycle_through t a b =
  if Sigma.equal a b then widest_path t a a
  else min (widest_path t a b) (widest_path t b a)

let path_with_width t ~min_width a b =
  (* Shortest path (BFS) from a to b using only edges of weight
     >= min_width; at least one edge even when a = b (a cycle).  Returns
     the strictly-intermediate symbols. *)
  let n = t.k in
  let src = Sigma.index ~k:t.k a and dst = Sigma.index ~k:t.k b in
  let edge u v = u <> v && t.w.(u).(v) >= min_width in
  let prev = Array.make n (-2) in
  (* [final_prev] is the node from which we step onto [dst]. *)
  let final_prev = ref (-2) in
  if edge src dst then final_prev := src
  else begin
    let queue = Queue.create () in
    prev.(src) <- -1;
    Queue.add src queue;
    while !final_prev = -2 && not (Queue.is_empty queue) do
      let u = Queue.take queue in
      for j = 0 to n - 1 do
        if !final_prev = -2 && edge u j then
          if j = dst then final_prev := u
          else if prev.(j) = -2 then begin
            prev.(j) <- u;
            Queue.add j queue
          end
      done
    done
  end;
  if !final_prev = -2 then None
  else begin
    let rec build u acc =
      if u = src || u = -1 then acc else build prev.(u) (u :: acc)
    in
    Some (List.map (Sigma.of_index ~k:t.k) (build !final_prev []))
  end

let pp ppf t =
  let syms = Sigma.all ~k:t.k in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Sigma.equal a b) then
            let w = weight t a b in
            if w <> 0 then
              Fmt.pf ppf "%a->%a:%d@ " Sigma.pp a Sigma.pp b w)
        syms)
    syms
