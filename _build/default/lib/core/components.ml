(* Tarjan-free SCC via double DFS (Kosaraju); the graphs have at most k
   nodes, so simplicity wins. *)
let sccs excess ~min_weight ~nodes =
  let nodes = Array.of_list nodes in
  let n = Array.length nodes in
  let edge i j =
    i <> j && Excess.weight excess nodes.(i) nodes.(j) >= min_weight
  in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs1 i =
    if not visited.(i) then begin
      visited.(i) <- true;
      for j = 0 to n - 1 do
        if edge i j then dfs1 j
      done;
      order := i :: !order
    end
  in
  for i = 0 to n - 1 do
    dfs1 i
  done;
  let comp = Array.make n (-1) in
  let rec dfs2 i c =
    if comp.(i) = -1 then begin
      comp.(i) <- c;
      for j = 0 to n - 1 do
        if edge j i then dfs2 j c
      done
    end
  in
  let count = ref 0 in
  List.iter
    (fun i ->
      if comp.(i) = -1 then begin
        dfs2 i !count;
        incr count
      end)
    !order;
  List.init !count (fun c ->
      Array.to_list nodes
      |> List.filteri (fun i _ -> comp.(i) = c))
  |> List.filter (fun l -> l <> [])

let shatters_slowly excess ~m ~extra_slack nodes =
  let j = List.length nodes in
  if j <= 1 + extra_slack then true
  else
    match sccs excess ~min_weight:1 ~nodes with
    | [ _ ] ->
      (* Strongly connected at threshold 1; check the σ-scale. *)
      let ok = ref true in
      for i = 1 to j - 1 - extra_slack do
        let threshold = Bounds.stable_weight ~m (i + 1 + extra_slack) in
        let parts = sccs excess ~min_weight:(max 1 threshold) ~nodes in
        if List.length parts > i + 1 then ok := false
      done;
      !ok
    | _ -> false

let is_stable excess ~m nodes = shatters_slowly excess ~m ~extra_slack:0 nodes

let is_super_stable excess ~m nodes =
  shatters_slowly excess ~m ~extra_slack:1 nodes

let chain_decomposition excess ~m ~nodes =
  let k = Excess.k excess in
  (* Greedy: take the C₁ components (threshold 1) of the node set; each
     must be stable; order them so consecutive components are linked by
     an edge of weight ≥ k. *)
  match nodes with
  | [] -> Some []
  | _ ->
    let comps = sccs excess ~min_weight:1 ~nodes in
    if not (List.for_all (is_stable excess ~m) comps) then None
    else
      let linked a b =
        List.exists
          (fun u -> List.exists (fun v -> Excess.weight excess u v >= k) b)
          a
      in
      (* Search for a Hamiltonian ordering of the components under
         [linked]; component counts are tiny (≤ k). *)
      let rec arrange placed remaining =
        match remaining with
        | [] -> Some (List.rev placed)
        | _ ->
          List.find_map
            (fun c ->
              let rest = List.filter (fun c' -> c' != c) remaining in
              match placed with
              | [] -> arrange [ c ] rest
              | prev :: _ -> if linked prev c then arrange (c :: placed) rest else None)
            remaining
      in
      arrange [] comps
