type edge_report = {
  edge : Sigma.t * Sigma.t;
  transitions : int;
  released : int;
  suspended : int;
  first_use : int;
  feasible : bool;
}

type report = {
  label : Label.t;
  history_length : int;
  edges : edge_report list;
  feasible : bool;
}

let witness t label =
  let k = Emulation.k t in
  let h = Emulation.history_of t label in
  let trans = Excess.transitions h in
  let entries = Vp_graph.visible (Emulation.vp_graph t) ~label in
  (* First-use transitions: for each split value x of the label, the one
     transition that introduced x needs no suspension backing (appendix,
     case 1: "at most k such cases for each kind of transition"). *)
  let first_use_count (a, b) =
    ignore a;
    match b with
    | Sigma.Bot -> 0
    | Sigma.V x -> if Label.mem x label then 1 else 0
  in
  let sigma = Sigma.all ~k in
  let edges =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if Sigma.equal a b then None
            else
              let edge = (a, b) in
              let transitions =
                List.length (List.filter (fun tr -> tr = edge) trans)
              in
              let released =
                List.length
                  (List.filter
                     (fun (e : Vp_graph.entry) ->
                       e.Vp_graph.released && e.Vp_graph.edge = edge)
                     entries)
              in
              let suspended =
                List.length
                  (List.filter
                     (fun (e : Vp_graph.entry) ->
                       (not e.Vp_graph.released) && e.Vp_graph.edge = edge)
                     entries)
              in
              let first_use = first_use_count edge in
              if transitions = 0 && released = 0 then None
              else
                let feasible =
                  released <= transitions
                  && transitions <= released + suspended + first_use
                in
                Some
                  { edge; transitions; released; suspended; first_use; feasible })
          sigma)
      sigma
  in
  {
    label;
    history_length = List.length h;
    edges;
    feasible = List.for_all (fun (e : edge_report) -> e.feasible) edges;
  }

let check_all_leaves t =
  List.map (witness t) (History_tree.leaf_labels (Emulation.shared_tree t))

type timeline_violation = {
  vp : int;
  label : Label.t;
  at : int;
  reason : string;
}

let vp_timelines t =
  let leaves = History_tree.leaf_labels (Emulation.shared_tree t) in
  let events = Emulation.events t in
  let violations = ref [] in
  List.iter
    (fun leaf ->
      let h = Array.of_list (Emulation.history_of t leaf) in
      (* Collect, per vp, the compare&swap responses whose label belongs
         to this run, in emulation order. *)
      let per_vp : (int, [ `Fail of Sigma.t | `Succ of Sigma.t * Sigma.t ] list) Hashtbl.t =
        Hashtbl.create 32
      in
      let push vp item =
        Hashtbl.replace per_vp vp
          (item :: Option.value ~default:[] (Hashtbl.find_opt per_vp vp))
      in
      List.iter
        (fun ev ->
          match ev with
          | Emulation.Ev_cas_fail { vp; returned; label } when Label.is_prefix label leaf ->
            push vp (`Fail returned)
          | Emulation.Ev_cas_success { vp; edge; label } when Label.is_prefix label leaf ->
            push vp (`Succ edge)
          | _ -> ())
        events;
      Hashtbl.iter
        (fun vp items ->
          let items = List.rev items in
          (* Greedy earliest-position embedding: pos = index into h of
             the point just before which the next op may linearize. *)
          let rec embed pos idx = function
            | [] -> ()
            | `Fail x :: rest -> (
              (* Find p >= pos with h.(p) = x. *)
              let rec find p =
                if p >= Array.length h then None
                else if Sigma.equal h.(p) x then Some p
                else find (p + 1)
              in
              match find pos with
              | Some p -> embed p (idx + 1) rest
              | None ->
                violations :=
                  {
                    vp;
                    label = leaf;
                    at = idx;
                    reason =
                      Fmt.str "failed op returned %s but the history never \
                               holds it after position %d"
                        (Sigma.to_string x) pos;
                  }
                  :: !violations)
            | `Succ (a, b) :: rest -> (
              let rec find p =
                if p + 1 >= Array.length h then None
                else if Sigma.equal h.(p) a && Sigma.equal h.(p + 1) b then
                  Some p
                else find (p + 1)
              in
              match find pos with
              | Some p -> embed (p + 1) (idx + 1) rest
              | None ->
                violations :=
                  {
                    vp;
                    label = leaf;
                    at = idx;
                    reason =
                      Fmt.str "success on %s->%s has no transition after \
                               position %d"
                        (Sigma.to_string a) (Sigma.to_string b) pos;
                  }
                  :: !violations)
          in
          embed 0 0 items)
        per_vp)
    leaves;
  List.rev !violations

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>label %s: |h|=%d %s@,%a@]" (Label.to_string r.label)
    r.history_length
    (if r.feasible then "WITNESS EXISTS" else "INFEASIBLE")
    Fmt.(
      list ~sep:cut (fun ppf e ->
          Fmt.pf ppf "  %s->%s: p=%d rel=%d susp=%d first=%d %s"
            (Sigma.to_string (fst e.edge))
            (Sigma.to_string (snd e.edge))
            e.transitions e.released e.suspended e.first_use
            (if e.feasible then "ok" else "OVERDRAWN")))
    r.edges
