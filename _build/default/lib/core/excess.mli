(** The excess graph (Definition 1).

    For a given run (label) and its history, edge (a→b) carries

    {v w(a→b) = f(a→b) − (p(a→b) − s(a→b)) v}

    where [f] = virtual processes suspended on c&s(a→b) and not released,
    [p] = transitions a→b written in the history, [s] = successful
    c&s(a→b) operations already emulated (released).  [p − s] is the
    history's {e debt}: transitions that must still be backed by a
    suspended process, so [w] is what remains available for future
    history extensions.

    The emulator needs two queries (Fig. 6): the widest cycle through two
    given values (its width gates attaching a new symbol), and an actual
    path of a guaranteed width (to fill the [FromParent]/[ToParent]
    fields of a new node). *)

type t

val compute :
  k:int -> suspensions:Vp_graph.entry list -> history:Sigma.t list -> t
(** [suspensions] should already be filtered to the run's label
    ({!Vp_graph.visible}); released entries contribute to [s], others to
    [f]; [history] supplies [p]. *)

val k : t -> int
val weight : t -> Sigma.t -> Sigma.t -> int

(** [debit t edges] subtracts one unit per listed edge: used to reserve
    the {e pending} return-path obligations of the current DFS spine
    (their transitions are not yet in the rendered history but will
    materialize when the spine is exited, so attach decisions must not
    spend them twice). *)
val debit : t -> (Sigma.t * Sigma.t) list -> t
val transitions : Sigma.t list -> (Sigma.t * Sigma.t) list
(** Consecutive pairs of a history (the [p]-multiset). *)

val widest_path : t -> Sigma.t -> Sigma.t -> int
(** Maximum over non-empty paths a→…→b of the minimum edge weight
    (0 if no positive-width path; [max_int] never returned: single-edge
    paths allowed, a = b yields the widest cycle through a). *)

val widest_cycle_through : t -> Sigma.t -> Sigma.t -> int
(** The best width of a cycle containing both values: for a ≠ b,
    [min (widest_path a b) (widest_path b a)]. *)

val path_with_width : t -> min_width:int -> Sigma.t -> Sigma.t -> Sigma.t list option
(** [Some intermediates] — the symbols strictly between a and b on some
    path all of whose edges have weight ≥ [min_width]; [None] if no such
    path.  Prefers short paths. *)

val pp : Format.formatter -> t -> unit
