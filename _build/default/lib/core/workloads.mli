(** Emulated algorithms "A" for exercising the reduction.

    The reduction's hypothesis is an {e over-capacity} election algorithm;
    no correct one exists, so the experiments feed the emulation three
    kinds of subject:

    - [over_capacity_cas_election]: Π processes all race one
      [c&s(⊥ → id mod (k−1))] and decide the winner value — the
      "too-strong" A whose emulation visibly manufactures
      (k−1)-set-consensus among the emulators (each label's run decides
      its first value);
    - [cycling]: v-processes drive the register around value cycles for
      several rounds before deciding — not an election at all, but the
      workload that exercises the deep machinery (CanRebalance releases,
      in-tree attachments, FromParent/ToParent paths), since an election
      algorithm built from fresh-value chains never revisits a value;
    - any genuine {!Protocols.Election.instance} via
      {!Emulation.of_election}. *)

val over_capacity_cas_election : k:int -> num_vps:int -> Emulation.algorithm

val cycling : k:int -> rounds:int -> num_vps:int -> Emulation.algorithm
(** v-process [i] repeatedly attempts [c&s(v_j → v_{j+1})] around the
    cycle ⊥ → 0 → 1 → … → (k−2) → ⊥ starting at phase [i mod k],
    retrying against whatever value it last saw, for [rounds] successful
    operations, then decides its id. *)

val rmw_via_cas :
  k:int -> transforms:(string * (Sigma.t -> Sigma.t)) list -> rounds:int ->
  num_vps:int -> Emulation.algorithm
(** The §4 conjecture's subject: an algorithm over an arbitrary size-k
    read-modify-write register, compiled to the compare&swap-(k) via the
    classical read–compute–c&s retry loop (a successful [c&s(v → f v)]
    {e is} an atomic application of [f]).  v-process [i] applies its
    [i mod (#transforms)]-th transformation [rounds] times, then decides
    its id.  Transformations with [f v = v] complete immediately on such
    values (an RMW that does not change the state is a read). *)
