(** The shared history structure T (Fig. 1) and the small trees t_l.

    T has one {e small tree} per label; the small tree [t_l] stores the
    part of the history that the group with label [l] constructed after
    its last split.  Each node of a small tree carries one alphabet
    symbol plus two path fields:

    - [from_parent]: the symbols the register went through between the
      parent's value and this node's value (exclusive at both ends);
    - [to_parent]: the way back.

    The history of a run with label [l = a₁…a_n] is the concatenation of
    the DFS renderings (Fig. 4) of the trees [t_[]], [t_[a₁]], …, [t_l]:
    full DFS (ending back at the root's symbol) for every proper prefix,
    and DFS cut at the {e rightmost} node — the last node in DFS order,
    whose symbol is the register's current value — for [t_l] itself.

    Nodes are attached concurrently by different emulators; the paper
    gives each node an m-tuple of single-writer child slots.  We keep the
    children sorted by (emulator, per-emulator sequence number), which is
    a deterministic order every emulator computes identically.  A late
    attachment can land in the {e middle} of the DFS; the emulation's
    correctness argument (appendix, case 2) shows the inserted segment is
    a cycle, and the invariant checker audits exactly that: consecutive
    histories of one label differ only by appends and cycle
    insertions. *)

type node = {
  value : Sigma.t;
  from_parent : Sigma.t list;
  to_parent : Sigma.t list;
  parent : int option;
  children : (int * int * int) list;
      (** (emulator, seq, node id), kept sorted *)
}

type tree

val tree_root : tree -> int
val tree_node : tree -> int -> node
val tree_size : tree -> int

type t
(** The whole structure T: one tree per active label.  Immutable. *)

val create : unit -> t
(** Only the root label (⊥ alone) is active, with a single ⊥ node. *)

val tree : t -> Label.t -> tree option
val active_labels : t -> Label.t list
val leaf_labels : t -> Label.t list
val is_leaf : t -> Label.t -> bool

val extend_to_leaf : t -> Label.t -> Label.t
(** Follow child trees (smallest first-use value first) until reaching a
    leaf label — the label-refresh step of ComputeHistory. *)

val activate : t -> parent:Label.t -> value:int -> t
(** Mark [t_(parent·value)] active, creating its root node; idempotent.
    @raise Invalid_argument if [value] already occurs in [parent]. *)

val attach :
  t -> label:Label.t -> parent_node:int -> emu:int -> seq:int ->
  value:Sigma.t -> from_parent:Sigma.t list -> to_parent:Sigma.t list ->
  t * int
(** Attach a new node under [parent_node] in [t_label]; returns the new
    node's id.  Deterministic sibling position given (emu, seq). *)

val dfs : tree -> full:bool -> Sigma.t list
(** The Fig. 4 rendering.  [full = true] ends back at the root symbol;
    [full = false] cuts just after entering the rightmost node. *)

val rightmost : tree -> int
(** The last node in DFS order (its symbol is the current register value
    for the group whose label names this tree). *)

val depth : tree -> int -> int
(** Root has depth 0. *)

val ancestors : tree -> int -> int list
(** The node itself first, then its parent chain up to the root. *)

val history : t -> Label.t -> Sigma.t list
(** ComputeHistory (Fig. 4) for a label whose prefix trees all exist:
    always starts with ⊥; its last symbol is the group's current
    register value. *)

val pp_tree : Format.formatter -> tree -> unit

val pp : Format.formatter -> t -> unit
(** Render the whole structure T: every active label with its small
    tree, in label order. *)
