type entry = {
  vp : int;
  edge : Sigma.t * Sigma.t;
  label : Label.t;
  hist_len : int;
  released : bool;
}

type t = entry list array
(** index: emulator; entries newest first internally, exposed oldest
    first. *)

let create ~m = Array.make m []
let entries t ~emu = List.rev t.(emu)

let all_entries t =
  Array.to_list t
  |> List.mapi (fun emu es -> List.rev_map (fun e -> (emu, e)) es)
  |> List.concat

let set t emu es =
  let t' = Array.copy t in
  t'.(emu) <- es;
  t'

let suspend t ~emu ~vp ~edge ~label ~hist_len =
  set t emu ({ vp; edge; label; hist_len; released = false } :: t.(emu))

let release t ~emu ~vp =
  let rec go = function
    | [] -> invalid_arg "Vp_graph.release: no unreleased entry for vp"
    | e :: rest when e.vp = vp && not e.released ->
      { e with released = true } :: rest
    | e :: rest -> e :: go rest
  in
  set t emu (go t.(emu))

let suspended_vps t ~emu =
  List.filter_map (fun e -> if e.released then None else Some e.vp) (entries t ~emu)

let is_suspended t ~emu ~vp =
  List.exists (fun e -> e.vp = vp && not e.released) t.(emu)

let visible t ~label =
  List.filter (fun (_, e) -> Label.is_prefix e.label label) (all_entries t)
  |> List.map snd

let count_unreleased t ~label ~edge =
  List.length
    (List.filter
       (fun e -> (not e.released) && e.edge = edge)
       (visible t ~label))

let count_released t ~label ~edge =
  List.length
    (List.filter (fun e -> e.released && e.edge = edge) (visible t ~label))
