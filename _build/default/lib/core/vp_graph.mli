(** The vp-graph (Fig. 2): bookkeeping of suspended virtual processes.

    A complete directed graph on the k register values; for each edge
    (a→b), each emulator keeps — in its own single-writer area — the list
    of its virtual processes ever suspended on a pending [c&s(a→b)].
    Entries are never removed: releasing marks the entry, preserving the
    full record the proof (and our invariant checker) needs.  Each entry
    carries the label and history length its emulator observed at
    suspension time, so the release rule of Fig. 5 ("only transitions
    that occurred after the suspension count") is checkable. *)

type entry = {
  vp : int;  (** virtual-process id *)
  edge : Sigma.t * Sigma.t;
  label : Label.t;  (** the owner's label at suspension time *)
  hist_len : int;  (** length of the owner's history at suspension time *)
  released : bool;
}

type t
(** The whole graph: per-emulator entry lists.  Immutable. *)

val create : m:int -> t
val entries : t -> emu:int -> entry list
(** Oldest first. *)

val all_entries : t -> (int * entry) list
(** (emulator, entry) pairs, all emulators. *)

val suspend :
  t -> emu:int -> vp:int -> edge:Sigma.t * Sigma.t -> label:Label.t ->
  hist_len:int -> t

val release : t -> emu:int -> vp:int -> t
(** Mark this emulator's entry for [vp] released.
    @raise Invalid_argument if no unreleased entry exists. *)

val suspended_vps : t -> emu:int -> int list
(** vps of this emulator currently suspended (unreleased). *)

val is_suspended : t -> emu:int -> vp:int -> bool

val visible : t -> label:Label.t -> entry list
(** Entries whose suspension label is a prefix of [label] — the ones
    belonging to this run (Fig. 5 line 2). *)

val count_unreleased : t -> label:Label.t -> edge:Sigma.t * Sigma.t -> int
val count_released : t -> label:Label.t -> edge:Sigma.t * Sigma.t -> int
