(** Stable and super-stable components (Definitions 2 and 3) — the
    auditable form of the emulation's key invariant.

    [Gx] is the excess graph restricted to edges of weight ≥ x, and [Cx]
    denotes its maximal strongly connected components.  A {e stable
    component} is a C₁ component that shatters slowly as the threshold
    climbs the scale σ_x = Σ_{i=2}^{x} mⁱ: raising the threshold by one
    σ-level may split it into at most one more piece.  Lemma 1.2(3)
    maintains that the values already used in a run's history always form
    a chain of stable components connected by a high-width path, which is
    what lets UpdateC&S always find an attachment point.

    The extended abstract's published text garbles the index arithmetic
    of both definitions (the subscripts were lost to typesetting); we
    implement the reconstruction stated above — at most [i] maximal
    components at threshold [σ_{base+i}] — and the invariant checker
    reports violations rather than assuming them impossible, so the
    reconstruction is itself under test.  See DESIGN.md §6. *)

val sccs :
  Excess.t -> min_weight:int -> nodes:Sigma.t list -> Sigma.t list list
(** Maximal strongly connected components of the excess graph restricted
    to [nodes] and to edges of weight ≥ [min_weight].  Singleton
    components are included. *)

val is_stable : Excess.t -> m:int -> Sigma.t list -> bool
(** Definition 2 (reconstructed): the node set is strongly connected at
    threshold 1, and for each i ≥ 1 it has at most [i+1] components at
    threshold [σ_{i+1}].  Singletons are stable by definition. *)

val is_super_stable : Excess.t -> m:int -> Sigma.t list -> bool
(** Definition 3 (reconstructed): one σ-level of slack more than stable;
    two-node C₁ components are always super-stable. *)

val chain_decomposition :
  Excess.t -> m:int -> nodes:Sigma.t list -> Sigma.t list list option
(** Lemma 1.2(3): try to decompose the given (history-visited) values
    into stable components [SC₁ … SC_r] such that consecutive components
    are connected by an edge of weight ≥ k; [None] if no ordering
    works. *)
