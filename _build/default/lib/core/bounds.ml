let factorial = Protocols.Perm.factorial
let election_lower_bound ~k = factorial (k - 1)
let emulators ~k = factorial (k - 1) + 1
let set_consensus_width ~k = factorial (k - 1)
let upper_bound_exponent ~k = (k * k) + 3

(* Small decimal bignum (little-endian digit list) — just enough to print
   k^(k²+3) exactly without external dependencies. *)
let big_of_int n =
  let rec go n = if n = 0 then [] else (n mod 10) :: go (n / 10) in
  if n = 0 then [ 0 ] else go n

let big_mul_small digits n =
  let rec go carry = function
    | [] -> if carry = 0 then [] else big_of_int carry
    | d :: rest ->
      let x = (d * n) + carry in
      (x mod 10) :: go (x / 10) rest
  in
  go 0 digits

let big_to_string digits =
  String.concat "" (List.rev_map string_of_int digits)

let upper_bound_string ~k =
  let e = upper_bound_exponent ~k in
  let rec pow acc i = if i = 0 then acc else pow (big_mul_small acc k) (i - 1) in
  big_to_string (pow (big_of_int 1) e)

let suspension_batch ~k ~m = m * k * k

let threshold ~m ~depth =
  let rec pow acc i = if i = 0 then acc else pow (acc * m) (i - 1) in
  let rec sum g acc = if g > depth then acc else sum (g + 1) (acc + (g * pow 1 g)) in
  sum 1 0

let stable_weight ~m x =
  let rec pow acc i = if i = 0 then acc else pow (acc * m) (i - 1) in
  let rec sum i acc = if i > x then acc else sum (i + 1) (acc + pow 1 i) in
  if x <= 1 then 0 else sum 2 0

let game_bound ~m ~k =
  let rec pow acc i = if i = 0 then acc else pow (acc * m) (i - 1) in
  pow 1 k

let min_vps_per_emulator ~k ~m = k * (k - 1) * suspension_batch ~k ~m
