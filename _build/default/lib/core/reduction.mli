(** The reduction of Claim 1, packaged: from a (hypothetical) leader
    election algorithm A over one compare&swap-(k) to an
    ℓ-set-consensus algorithm B among m = ℓ+1 emulators, ℓ = (k−1)!.

    Running [check] emulates A under a schedule, then verifies the
    set-consensus obligations of B:

    - {b consistency}: at most ℓ distinct decision values overall, and —
      when A is an election — emulators that finished in the same label
      (same constructed run of A) decided the {e same} value;
    - {b wait-freedom}: every emulator either decided or stalled for lack
      of v-processes (the paper's Π-sized provisioning rules stalls out;
      at laptop scale we report them — they are the observable form of
      the space bound);
    - {b validity}: every decision was decided by some v-process of A
      (we check it appears in a decide event of the emulation).

    If A were a correct election for more processes than n_k, B would
    contradict the set-consensus impossibility [4,11,21]; concretely,
    feeding the over-capacity A of {!Workloads} produces ≤ k−1 groups
    each deciding a different value — the manufactured set-consensus in
    the flesh (experiment E4). *)

module Value := Memory.Value

type report = {
  outcome : Emulation.outcome;
  width : int;  (** distinct decision values *)
  max_width : int;  (** ℓ = (k−1)! *)
  labels_used : int;
  same_label_consistent : bool;
      (** same final label ⟹ same decision (meaningful when A is an
          election) *)
  all_settled : bool;  (** every emulator decided or stalled *)
  stalls : int;
}

val check :
  ?seed:int ->
  ?schedule:[ `Random | `Round_robin | `Stale_view ] ->
  ?max_iterations:int ->
  Emulation.algorithm ->
  Emulation.params ->
  report

val pp_report : Format.formatter -> report -> unit
