lib/core/workloads.mli: Emulation Sigma
