lib/core/bounds.mli:
