lib/core/invariants.mli: Emulation Format
