lib/core/history_tree.ml: Fmt Int Label List Map Printf Sigma
