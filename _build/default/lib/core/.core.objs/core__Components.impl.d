lib/core/components.ml: Array Bounds Excess List
