lib/core/invariants.ml: Components Emulation Excess Fmt Hashtbl History_tree Label List Memory Option Sigma Vp_graph
