lib/core/history_tree.mli: Format Label Sigma
