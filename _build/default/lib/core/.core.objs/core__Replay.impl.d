lib/core/replay.ml: Array Emulation Excess Fmt Hashtbl History_tree Label List Option Sigma Vp_graph
