lib/core/emulation.ml: Array Bounds Excess History_tree Int Label List Map Memory Option Printf Protocols Random Runtime Sigma String Vp_graph
