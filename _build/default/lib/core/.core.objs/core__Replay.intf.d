lib/core/replay.mli: Emulation Format Label Sigma
