lib/core/reduction.ml: Bounds Emulation Fmt Label List Memory Option
