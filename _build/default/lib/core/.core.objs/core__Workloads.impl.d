lib/core/workloads.ml: Emulation List Memory Objects Printf Runtime Sigma
