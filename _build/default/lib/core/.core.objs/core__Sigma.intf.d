lib/core/sigma.mli: Format Memory
