lib/core/emulation.mli: History_tree Label Memory Protocols Runtime Sigma Vp_graph
