lib/core/reduction.mli: Emulation Format Memory
