lib/core/vp_graph.mli: Label Sigma
