lib/core/label.ml: Fmt Int List Protocols
