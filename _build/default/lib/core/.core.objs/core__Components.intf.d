lib/core/components.mli: Excess Sigma
