lib/core/excess.ml: Array Fmt List Queue Sigma Vp_graph
