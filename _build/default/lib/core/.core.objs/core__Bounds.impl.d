lib/core/bounds.ml: List Protocols String
