lib/core/vp_graph.ml: Array Label List Sigma
