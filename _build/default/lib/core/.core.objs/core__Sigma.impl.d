lib/core/sigma.ml: Fmt Int List Memory
