lib/core/excess.mli: Format Sigma Vp_graph
