module Value = Memory.Value

type report = {
  outcome : Emulation.outcome;
  width : int;
  max_width : int;
  labels_used : int;
  same_label_consistent : bool;
  all_settled : bool;
  stalls : int;
}

let check ?(seed = 0) ?(schedule = `Random) ?max_iterations alg params =
  let t = Emulation.create alg params in
  let outcome =
    match schedule with
    | `Random -> Emulation.run ~seed ?max_iterations t
    | `Round_robin -> Emulation.run_round_robin ?max_iterations t
    | `Stale_view -> Emulation.run_staleview ?max_rounds:max_iterations t
  in
  let final = outcome.Emulation.final in
  let views = Emulation.emulators final in
  let decided_views =
    List.filter_map
      (fun (v : Emulation.emulator_view) ->
        Option.map (fun d -> (v.Emulation.label, d)) v.Emulation.decided)
      views
  in
  let labels_used =
    List.sort_uniq Label.compare (List.map fst decided_views) |> List.length
  in
  let same_label_consistent =
    List.for_all
      (fun (l, d) ->
        List.for_all
          (fun (l', d') ->
            (not (Label.equal l l')) || Value.equal d d')
          decided_views)
      decided_views
  in
  let all_settled =
    List.for_all
      (fun (v : Emulation.emulator_view) ->
        v.Emulation.decided <> None || v.Emulation.stalled)
      views
  in
  {
    outcome;
    width = List.length outcome.Emulation.distinct_decisions;
    max_width = Bounds.set_consensus_width ~k:alg.Emulation.k;
    labels_used;
    same_label_consistent;
    all_settled;
    stalls = List.length outcome.Emulation.stalled;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "width=%d (max %d) labels=%d same-label-consistent=%b settled=%b \
     stalls=%d decisions=[%a]"
    r.width r.max_width r.labels_used r.same_label_consistent r.all_settled
    r.stalls
    Fmt.(list ~sep:(any ", ") Value.pp)
    r.outcome.Emulation.distinct_decisions
