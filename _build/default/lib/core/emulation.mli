(** The emulation (§3.1, Figs. 3–6): m emulators cooperatively construct
    legal runs of a leader-election algorithm A that uses one
    compare&swap-(k) plus r/w registers, while themselves communicating
    only through r/w-implementable operations.

    {2 What each emulator iteration does}

    An iteration (Fig. 3) snapshots the shared structures, recomputes its
    label and history (Fig. 4), then does exactly one of:

    + {b Suspend} a batch of its virtual processes that are all about to
      perform the same [c&s(a→b)] (lines 4–5);
    + {b EmulateSimpleOp}: execute one v-process operation that does not
      change the compare&swap — a register read/write, or a c&s that
      fails against the current value (lines 6–7);
    + {b CanRebalance} (Fig. 5): release one suspended v-process whose
      successful c&s can be safely matched to surplus history
      transitions (at least m unmatched ones that occurred after its
      suspension), swapping a fresh v-process into the suspended pool;
    + {b UpdateC&S} (Fig. 6): append a value [x] to the history — either
      attaching [x] inside the current small tree under the shallowest
      ancestor reachable by a wide-enough excess cycle (threshold
      λ_D = Σ g·mᵍ), or, when no cycle supports [x], splitting to the
      new label [l·x]; all the emulator's active v-processes then
      receive failing responses carrying [x].

    The emulator adopts the first decision any of its v-processes
    reaches — that is the set-consensus output of the reduction.

    {2 Faithfulness notes (see DESIGN.md §6)}

    - The paper's batch size m·k² and v-process allowance Π/m are
      astronomically conservative; both are parameters here, and runs
      under-provisioned in v-processes {e stall} — the observable face of
      the space bound (experiment E1/E4 report stalls).
    - The Fig. 6 threshold at depth 0 evaluates to 0, which would let
      never-used values attach without any cycle support; we require
      width ≥ max(1, λ_D), so splitting happens exactly when the excess
      graph offers no cycle through the new value.
    - Suspension batches may be replenished once fully released (the
      paper executes line 5 once per edge and maintains the pool through
      Fig. 5's swap; ours is the superset that also allows refills). *)

module Value := Memory.Value

(** The algorithm A being emulated. *)
type algorithm = {
  name : string;
  k : int;  (** size of A's compare&swap register *)
  cas_loc : string;
  bindings : (string * Memory.Spec.t) list;
      (** A's shared objects; the binding at [cas_loc] must be the
          compare&swap-(k), everything else is treated as a r/w
          register *)
  program : int -> Runtime.Program.prim;  (** v-process code *)
  num_vps : int;
}

val of_election : Protocols.Election.instance -> k:int -> algorithm
(** Use a protocol from {!Protocols} (whose compare&swap lives at ["C"])
    as the emulated A. *)

type params = {
  m : int;  (** number of emulators; the reduction uses (k−1)!+1 *)
  batch : int;  (** suspension batch size (paper: m·k²) *)
  simple_burst : int;
      (** simple operations emulated per iteration (1 = literal paper;
          larger values only batch consecutive EmulateSimpleOp calls) *)
  disable_rebalance : bool;
      (** ablation: never release suspended v-processes (Fig. 5 off) *)
  disable_attach : bool;
      (** ablation: never attach inside a tree — every update must be a
          first-use split, as in the earlier emulation of [1]; this is
          the mechanism whose absence made [1] unable to handle runs
          with unboundedly many compare&swap operations *)
}

val default_params : k:int -> params
(** m = (k−1)!+1, batch = m·k², burst 1. *)

val small_params : k:int -> params
(** Laptop-scale: same m, batch = m, burst 8 — documents itself in the
    stats so experiment tables always show the provisioning used. *)

type t
(** Whole-emulation state (immutable). *)

val create : algorithm -> params -> t

(** Observable per-emulator status. *)
type emulator_view = {
  id : int;
  label : Label.t;
  decided : Value.t option;
  stalled : bool;
  iterations : int;
}

val k : t -> int
val m : t -> int
val emulator : t -> int -> emulator_view
val emulators : t -> emulator_view list

(** Analysis log (oldest first): every emulated v-process operation and
    every shared-structure mutation.  Invisible to the emulators
    themselves; consumed by {!Invariants}, {!Replay} and experiment E8. *)
type event =
  | Ev_read of { vp : int; loc : string; value : Value.t; label : Label.t }
  | Ev_write of { vp : int; loc : string; value : Value.t; label : Label.t }
  | Ev_cas_fail of { vp : int; returned : Sigma.t; label : Label.t }
  | Ev_cas_success of { vp : int; edge : Sigma.t * Sigma.t; label : Label.t }
  | Ev_suspend of { vp : int; edge : Sigma.t * Sigma.t; label : Label.t }
  | Ev_attach of { emu : int; value : Sigma.t; label : Label.t }
  | Ev_split of { emu : int; label : Label.t }
  | Ev_decide of { emu : int; value : Value.t; label : Label.t }

val events : t -> event list
val shared_tree : t -> History_tree.t
val vp_graph : t -> Vp_graph.t
val history_of : t -> Label.t -> Sigma.t list

val step : t -> emu:int -> t
(** One full iteration of one emulator (snapshot + compute + publish). *)

val plan : t -> emu:int -> t -> t
(** [plan t0 ~emu t] runs emulator [emu]'s iteration against the {e stale}
    snapshot [t0] but publishes into [t] — the adversarial interleaving
    where several emulators acted on the same old view.  [step t e =
    plan t ~emu:e t].

    Causality requirement: [t0] must not predate emulator [emu]'s own
    last commit (a process rereading shared memory always sees its own
    previous writes).  Views older than that can reference labels the
    emulator has privately adopted but whose trees are not yet visible,
    and the iteration fails loudly. *)

(** Aggregate statistics. *)
type stats = {
  iterations : int;
  simple_ops : int;
  suspensions : int;
  releases : int;
  attaches : int;  (** in-tree history extensions *)
  splits : int;  (** new-label activations *)
  stall_events : int;
}

val stats : t -> stats

type outcome = {
  final : t;
  decisions : (int * Value.t) list;
  distinct_decisions : Value.t list;
  stalled : int list;  (** emulators that stopped making progress *)
  total_iterations : int;
}

val run : ?seed:int -> ?max_iterations:int -> t -> outcome
(** Drive emulators under a seeded random schedule until all have decided
    or stalled (or the iteration budget runs out). *)

val run_round_robin : ?max_iterations:int -> t -> outcome

val run_staleview : ?max_rounds:int -> t -> outcome
(** Adversarial simultaneity: each round, every pending emulator plans
    against the same start-of-round snapshot.  This is the schedule under
    which emulators perform concurrent first-use updates and the group
    actually splits into multiple labels (with fresh views they would
    simply join the first split they see). *)
