module Value = Memory.Value

type violation = { check : string; detail : string }

let v check fmt = Fmt.kstr (fun detail -> { check; detail }) fmt

let label_budget t =
  let k = Emulation.k t in
  let labels = History_tree.active_labels (Emulation.shared_tree t) in
  let budget =
    if List.length labels > Label.max_labels ~k + 1 then
      (* +1: the root label itself is not a leaf/permutation. *)
      [
        v "label-budget" "%d labels active, budget (k-1)! = %d"
          (List.length labels) (Label.max_labels ~k);
      ]
    else []
  in
  let shape =
    List.concat_map
      (fun l ->
        let dup = List.length (List.sort_uniq compare l) <> List.length l in
        let too_long = List.length l > k - 1 in
        let out_of_range = List.exists (fun x -> x < 0 || x > k - 2) l in
        if dup || too_long || out_of_range then
          [ v "label-shape" "bad label %s" (Label.to_string l) ]
        else [])
      labels
  in
  budget @ shape

let history_well_formed t =
  let k = Emulation.k t in
  let sigma = Sigma.all ~k in
  History_tree.active_labels (Emulation.shared_tree t)
  |> List.concat_map (fun l ->
         let h = Emulation.history_of t l in
         let errs = ref [] in
         let add fmt = Fmt.kstr (fun d -> errs := { check = "history"; detail = d } :: !errs) fmt in
         (match h with
         | Sigma.Bot :: _ -> ()
         | _ -> add "history of %s does not start at bottom" (Label.to_string l));
         let rec adjacent = function
           | a :: (b :: _ as rest) ->
             if Sigma.equal a b then
               add "history of %s repeats %s consecutively" (Label.to_string l)
                 (Sigma.to_string a);
             adjacent rest
           | _ -> ()
         in
         adjacent h;
         List.iter
           (fun s ->
             if not (List.exists (Sigma.equal s) sigma) then
               add "history of %s leaves the alphabet: %s" (Label.to_string l)
                 (Sigma.to_string s))
           h;
         (* First appearances of the label's split values follow label
            order. *)
         let first_pos x =
           let rec go i = function
             | [] -> None
             | s :: rest ->
               if Sigma.equal s (Sigma.V x) then Some i else go (i + 1) rest
           in
           go 0 h
         in
         let rec check_order last = function
           | [] -> ()
           | x :: rest -> (
             match first_pos x with
             | None ->
               add "label %s value %d never appears in its history"
                 (Label.to_string l) x
             | Some p ->
               if p < last then
                 add "label %s first-use order violated at value %d"
                   (Label.to_string l) x;
               check_order p rest)
         in
         check_order (-1) l;
         List.rev !errs)

let history_backed t =
  let k = Emulation.k t in
  History_tree.leaf_labels (Emulation.shared_tree t)
  |> List.concat_map (fun l ->
         let h = Emulation.history_of t l in
         let trans = Excess.transitions h in
         let suspensions = Vp_graph.visible (Emulation.vp_graph t) ~label:l in
         List.concat_map
           (fun a ->
             List.filter_map
               (fun b ->
                 if Sigma.equal a b then None
                 else
                   let p =
                     List.length (List.filter (fun tr -> tr = (a, b)) trans)
                   in
                   let f =
                     List.length
                       (List.filter
                          (fun (e : Vp_graph.entry) -> e.Vp_graph.edge = (a, b))
                          suspensions)
                   in
                   (* Every transition needs a distinct suspended
                      v-process, except first-use transitions (one per
                      label split, accounted once each). *)
                   let first_use =
                     match l with
                     | [] -> 0
                     | _ ->
                       List.length
                         (List.filter
                            (fun x -> Sigma.equal b (Sigma.V x))
                            l)
                   in
                   if p - first_use > f then
                     Some
                       (v "history-backed"
                          "label %s edge %s->%s: %d transitions but only %d \
                           suspensions"
                          (Label.to_string l) (Sigma.to_string a)
                          (Sigma.to_string b) p f)
                   else None)
               (Sigma.all ~k))
           (Sigma.all ~k))

let release_margin t =
  let m = Emulation.m t in
  (* Replay the event log per label, tracking history transitions seen so
     far (we approximate the releasing emulator's view with the global
     event order, which is exactly the linearization the emulation
     wrote). *)
  let seen_success : (Sigma.t * Sigma.t, int) Hashtbl.t = Hashtbl.create 16 in
  let errs = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Emulation.Ev_cas_success { edge; label; _ } ->
        let t' = t in
        let h = Emulation.history_of t' label in
        (* Final history ⊇ history at release time, so this is a
           necessary-condition check: the final history must contain at
           least (releases so far + m) transitions on the edge. *)
        let total =
          List.length
            (List.filter (fun tr -> tr = edge) (Excess.transitions h))
        in
        let released_before =
          Option.value ~default:0 (Hashtbl.find_opt seen_success edge)
        in
        Hashtbl.replace seen_success edge (released_before + 1);
        if total - released_before < m then
          errs :=
            v "release-margin"
              "release #%d on %s->%s but final history has only %d such \
               transitions (< released + m = %d)"
              (released_before + 1)
              (Sigma.to_string (fst edge))
              (Sigma.to_string (snd edge))
              total (released_before + m)
            :: !errs
      | _ -> ())
    (Emulation.events t);
  List.rev !errs

let reads_justified t =
  let errs = ref [] in
  let writes : (string, (Value.t * Label.t) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun ev ->
      match ev with
      | Emulation.Ev_write { loc; value; label; _ } ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt writes loc) in
        Hashtbl.replace writes loc ((value, label) :: prev)
      | Emulation.Ev_read { loc; value; label; vp } ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt writes loc) in
        let justified =
          List.exists
            (fun (w, wl) -> Value.equal w value && Label.compatible wl label)
            prev
          || prev = []  (* initial value *)
          || not
               (List.exists
                  (fun (_, wl) -> Label.compatible wl label)
                  prev)
          (* no compatible write yet: must be the initial value *)
        in
        if not justified then
          errs :=
            v "reads-justified" "vp %d read %s from %s without a matching write"
              vp (Value.to_string value) loc
            :: !errs
      | _ -> ())
    (Emulation.events t);
  List.rev !errs

let same_label_agreement t =
  let views = Emulation.emulators t in
  let decided =
    List.filter_map
      (fun (vw : Emulation.emulator_view) ->
        Option.map (fun d -> (vw.Emulation.label, d)) vw.Emulation.decided)
      views
  in
  List.concat_map
    (fun (l, d) ->
      List.filter_map
        (fun (l', d') ->
          if Label.equal l l' && not (Value.equal d d') then
            Some
              (v "same-label-agreement" "label %s decided both %s and %s"
                 (Label.to_string l) (Value.to_string d) (Value.to_string d'))
          else None)
        decided)
    decided

let stable_chain t =
  let m = Emulation.m t in
  let k = Emulation.k t in
  History_tree.leaf_labels (Emulation.shared_tree t)
  |> List.filter_map (fun l ->
         let h = Emulation.history_of t l in
         let used = List.sort_uniq Sigma.compare h in
         let suspensions = Vp_graph.visible (Emulation.vp_graph t) ~label:l in
         let excess = Excess.compute ~k ~suspensions ~history:h in
         match Components.chain_decomposition excess ~m ~nodes:used with
         | Some _ -> None
         | None ->
           Some
             (v "stable-chain"
                "label %s: used values do not decompose into a stable chain"
                (Label.to_string l)))

let all t =
  [
    ("label-budget", label_budget t);
    ("history-well-formed", history_well_formed t);
    ("history-backed", history_backed t);
    ("release-margin", release_margin t);
    ("reads-justified", reads_justified t);
    ("same-label-agreement", same_label_agreement t);
    ("stable-chain", stable_chain t);
  ]

let pp_violation ppf { check; detail } = Fmt.pf ppf "[%s] %s" check detail
