(** The paper's quantitative bounds, in closed form.

    All quantities are exact integer arithmetic (no floats) so the tables
    in experiment E1 print true values; beware that [upper_bound] grows as
    k^(k²+3) and exceeds 64-bit range already at k = 5 — use
    [upper_bound_string] for display. *)

val factorial : int -> int

val election_lower_bound : k:int -> int
(** (k−1)! — processes that {e can} elect a leader with one
    compare&swap-(k) plus r/w registers (the [1]/FOCS '93 algorithm,
    reconstructed in {!Protocols.Permutation_election}). *)

val emulators : k:int -> int
(** m = (k−1)! + 1 — the number of emulators in the reduction
    (Claim 1). *)

val set_consensus_width : k:int -> int
(** (k−1)! — the ℓ of the ℓ-set-consensus protocol the reduction
    produces; impossible among m = ℓ+1 processes over r/w registers. *)

val upper_bound_exponent : k:int -> int
(** k² + 3: Theorem 1 bounds n_k by O(k^(k²+3)). *)

val upper_bound_string : k:int -> string
(** Decimal rendering of k^(k²+3) (arbitrary precision). *)

val suspension_batch : k:int -> m:int -> int
(** m·k² — the number of v-processes an emulator suspends per
    compare&swap edge before emulating a successful operation
    (Fig. 3 line 5). *)

val threshold : m:int -> depth:int -> int
(** λ_D = Σ_{g=1}^{D} g·m^g — the excess-cycle width required to attach a
    new symbol below a depth-D node of a small tree (Fig. 6 line 7). *)

val stable_weight : m:int -> int -> int
(** σ_x = Σ_{i=2}^{x} m^i (σ_1 = 0) — the edge-weight scale in the
    stable-component definitions (Definitions 2 and 3). *)

val game_bound : m:int -> k:int -> int
(** m^k — Lemma 1.1. *)

val min_vps_per_emulator : k:int -> m:int -> int
(** A practical lower estimate of how many v-processes an emulator needs
    to own so it can populate one suspension batch on every edge:
    k(k−1) edges × m·k² each.  The paper's Π/m allowance is far larger;
    experiments below this level are expected to stall — that stall is
    the observable face of the space lower bound. *)
