module Value = Memory.Value
module Program = Runtime.Program
module Snapshot_obj = Snapshot.Snapshot_obj

(* --- sequential specifications (for the linearizability checker) --- *)

let counter_incr_op = Value.sym "incr"
let counter_read_op = Value.sym "read"

let counter_seq_spec =
  Memory.Spec.make ~type_name:"counter" ~init:(Value.int 0)
    ~apply:(fun ~pid:_ s op ->
      match op with
      | Value.Sym "incr" -> Ok (Value.int (Value.as_int s + 1), Value.unit)
      | Value.Sym "read" -> Ok (s, s)
      | _ -> Error "counter: bad operation")

let max_write_op v = Value.pair (Value.sym "max-write") (Value.int v)
let max_read_op = Value.sym "read"

let max_seq_spec =
  Memory.Spec.make ~type_name:"max-register" ~init:(Value.int 0)
    ~apply:(fun ~pid:_ s op ->
      match op with
      | Value.Pair (Value.Sym "max-write", Value.Int v) ->
        Ok (Value.int (max (Value.as_int s) v), Value.unit)
      | Value.Sym "read" -> Ok (s, s)
      | _ -> Error "max-register: bad operation")

(* --- counter from snapshot --- *)

type counter = { c_loc : string; c_n : int }

let counter ~base ~n = { c_loc = base; c_n = n }

let counter_bindings t =
  [ (t.c_loc, Snapshot_obj.spec ~segments:t.c_n ()) ]

let segment_int v = match v with Value.Int i -> i | _ -> 0

let incr t ~me =
  let open Program in
  (* Read own segment from a scan, bump it.  Only the owner writes the
     segment, so the read-modify-write is private and needs no atomicity
     beyond the two operations. *)
  let* segments = Snapshot_obj.scan t.c_loc in
  let mine = segment_int (List.nth segments me) in
  Snapshot_obj.update t.c_loc ~segment:me (Value.int (mine + 1))

let counter_read t =
  let open Program in
  let* segments = Snapshot_obj.scan t.c_loc in
  return (List.fold_left (fun acc v -> acc + segment_int v) 0 segments)

(* --- max register from snapshot --- *)

type max_reg = { m_loc : string; m_n : int }

let max_reg ~base ~n = { m_loc = base; m_n = n }
let max_bindings t = [ (t.m_loc, Snapshot_obj.spec ~segments:t.m_n ()) ]

let max_write t ~me v =
  let open Program in
  let* segments = Snapshot_obj.scan t.m_loc in
  let mine = segment_int (List.nth segments me) in
  if v > mine then Snapshot_obj.update t.m_loc ~segment:me (Value.int v)
  else return ()

let max_read t =
  let open Program in
  let* segments = Snapshot_obj.scan t.m_loc in
  return (List.fold_left (fun acc v -> max acc (segment_int v)) 0 segments)
