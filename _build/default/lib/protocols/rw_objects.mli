(** Wait-free objects that r/w registers {e can} implement.

    Leader election needs consensus power, but plenty of useful shared
    objects do not: a counter (increments commute) and a max-register
    (writes overwrite monotonically) are both implementable wait-free
    from atomic snapshot — hence from SWMR registers
    ({!Snapshot.Swmr_snapshot}).  In Herlihy's classifier terms
    ({!Hierarchy.Cons_number}) their operation algebras are
    commute/overwrite, which is exactly why they sit at level 1 and why
    implementing them needs no strong object.

    Both constructions give each process a private segment of one
    snapshot object; the test suite checks linearizability against the
    corresponding sequential specifications. *)

module Value := Memory.Value

(** {1 Counter} *)

val counter_seq_spec : Memory.Spec.t
(** Sequential counter: [Sym "incr"] → unit, [Sym "read"] → current
    total. *)

val counter_incr_op : Value.t
val counter_read_op : Value.t

type counter

val counter : base:string -> n:int -> counter
val counter_bindings : counter -> (string * Memory.Spec.t) list
val incr : counter -> me:int -> unit Runtime.Program.t
val counter_read : counter -> int Runtime.Program.t

(** {1 Max register} *)

val max_seq_spec : Memory.Spec.t
(** Sequential max-register: [Pair (Sym "max-write", Int v)] → unit,
    [Sym "read"] → the largest value written (0 initially). *)

val max_write_op : int -> Value.t
val max_read_op : Value.t

type max_reg

val max_reg : base:string -> n:int -> max_reg
val max_bindings : max_reg -> (string * Memory.Spec.t) list
val max_write : max_reg -> me:int -> int -> unit Runtime.Program.t
val max_read : max_reg -> int Runtime.Program.t
