(** k-set consensus (§2 of the paper).

    Each of [n] processes starts with an input from a domain [D] and
    decides a value such that (a) {b Consistent}: at most [k] distinct
    values are decided overall, (b) {b Wait-free}, (c) {b Valid}: every
    decision is some process's input.

    The paper's lower bound manufactures a [(k−1)!]-set-consensus protocol
    for [(k−1)!+1] processes out of a too-strong election algorithm; this
    module provides the generic machinery for checking set-consensus
    outcomes, plus two honest protocols used as references:

    - [trivial]: with [n <= k] processes, deciding your own input is
      already k-set consensus (this is why the impossibility needs
      [m > l] processes);
    - [from_groups]: [n] processes, partitioned into [k] groups, each
      group agreeing internally via one consensus object — k-set
      consensus for arbitrary [n]. *)

module Value := Memory.Value

type instance = {
  name : string;
  n : int;
  k : int;  (** max distinct decisions allowed *)
  inputs : Value.t array;
  bindings : (string * Memory.Spec.t) list;
  program : int -> Runtime.Program.prim;
  step_bound : int;
}

val config : instance -> Runtime.Engine.config
val check_outcome : instance -> Runtime.Engine.outcome -> (unit, string) result
val run_random : instance -> seed:int -> (Value.t list, string) result
(** Distinct decided values (size ≤ k on success). *)

val explore_all : instance -> max_steps:int -> (int, string) result

val trivial : k:int -> inputs:Value.t list -> instance
val from_groups : k:int -> inputs:Value.t list -> instance
