(** The Burns–Cruz–Loui baseline: election with a size-k RMW register
    {e alone} (no read/write registers).

    Under BCL's assumptions — the system has only read-modify-write
    registers, each written at most once per process — a k-valued RMW
    register elects a leader among at most [k−1] processes, and this is
    tight.  The protocol: the register's k values are {free, id₁ … id_{k−1}};
    each process applies one atomic "claim if free" transformation and
    decides the old value (or itself if the old value was free).

    The negative side ([n = k] is impossible) is a theorem over {e all}
    protocols; what we exhibit executably is that the natural protocol is
    forced to either reuse an identity (breaking agreement under some
    schedule, found by exhaustive search) or use a value outside the
    register's domain (rejected by the bounded object).  See test suite
    and experiment E2. *)

val instance : k:int -> n:int -> Election.instance
(** Requires [n <= k-1]. *)

val overloaded_instance : k:int -> Election.instance
(** The forced-collision protocol for [n = k] processes on a size-k
    register: processes [k-1] and [0] share an identity.  Exhaustive
    exploration finds an agreement violation — the executable witness for
    why capacity stops at [k−1]. *)
