lib/protocols/consensus.mli: Memory Runtime
