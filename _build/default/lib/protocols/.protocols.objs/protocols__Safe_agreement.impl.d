lib/protocols/safe_agreement.ml: Array List Memory Objects Option Printf Runtime
