lib/protocols/rw_objects.ml: List Memory Runtime Snapshot
