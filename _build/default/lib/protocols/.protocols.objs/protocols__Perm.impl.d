lib/protocols/perm.ml: Fmt List
