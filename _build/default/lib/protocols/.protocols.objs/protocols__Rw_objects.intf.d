lib/protocols/rw_objects.mli: Memory Runtime
