lib/protocols/bcl_election.ml: Election List Memory Objects Printf Runtime
