lib/protocols/cas_election.ml: Election Memory Objects Printf Runtime
