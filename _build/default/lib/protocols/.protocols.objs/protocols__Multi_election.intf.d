lib/protocols/multi_election.mli: Election
