lib/protocols/set_consensus.ml: Array Fmt List Memory Objects Printf Runtime
