lib/protocols/splitter.mli: Memory Runtime
