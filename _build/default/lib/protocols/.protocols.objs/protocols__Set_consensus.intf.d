lib/protocols/set_consensus.mli: Memory Runtime
