lib/protocols/multi_election.ml: Election Fmt List Memory Objects Perm Permutation_election Printf Runtime
