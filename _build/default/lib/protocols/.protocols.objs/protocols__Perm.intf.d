lib/protocols/perm.mli: Format
