lib/protocols/election.ml: Array Fmt List Memory Printf Result Runtime
