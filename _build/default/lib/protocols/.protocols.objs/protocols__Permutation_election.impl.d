lib/protocols/permutation_election.ml: Election Int List Memory Objects Perm Printf Runtime Set
