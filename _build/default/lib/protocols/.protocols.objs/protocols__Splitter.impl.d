lib/protocols/splitter.ml: Array Fmt List Memory Objects Printf Runtime
