lib/protocols/permutation_election.mli: Election Memory
