lib/protocols/consensus.ml: Array Fmt List Memory Objects Printf Runtime
