lib/protocols/election.mli: Memory Runtime
