lib/protocols/cas_election.mli: Election
