lib/protocols/safe_agreement.mli: Memory Runtime
