lib/protocols/bcl_election.mli: Election
