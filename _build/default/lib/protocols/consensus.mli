(** Wait-free consensus protocols from objects at different hierarchy
    levels.

    Each builder returns a configured instance: shared-object bindings and
    one program per process, where process [pid] proposes [inputs.(pid)].
    The checkers enforce the classical properties: {b agreement} (all
    decisions equal), {b validity} (the decision is some process's input),
    {b wait-freedom} (bounded own-steps, crash-tolerant). *)

module Value := Memory.Value

type instance = {
  name : string;
  n : int;
  inputs : Value.t array;
  bindings : (string * Memory.Spec.t) list;
  program : int -> Runtime.Program.prim;
  step_bound : int;
}

val config : instance -> Runtime.Engine.config
val check_outcome : instance -> Runtime.Engine.outcome -> (unit, string) result

val run_random : instance -> seed:int -> (Value.t, string) result
val run_with_crashes :
  instance -> seed:int -> crashed:int list -> (Value.t option, string) result
val explore_all : instance -> max_steps:int -> (int, string) result

(** {1 Protocols} *)

val from_cas : inputs:Value.t list -> instance
(** n-consensus from one compare&swap over the alphabet {⊥} ∪ inputs —
    the standard proof that compare&swap has consensus number ∞.  Note the
    register needs [n+1] values to carry [n] distinct inputs: consensus
    number ∞ does {e not} mean a {e bounded} register suffices, which is
    the paper's point. *)

val from_sticky : inputs:Value.t list -> instance
(** n-consensus from one sticky register (Plotkin [20]). *)

val two_from_test_and_set : inputs:Value.t list -> instance
(** 2-process consensus from one test&set plus two SWMR registers:
    both write their input, race on the test&set; the winner decides its
    own input, the loser adopts the winner's. *)

val two_from_queue : inputs:Value.t list -> instance
(** 2-process consensus from a queue pre-loaded with a winner token
    (Herlihy's classical construction). *)

val naive_rw : inputs:Value.t list -> instance
(** A {e deliberately impossible} attempt at 2-consensus from r/w
    registers only (write-then-scan, prefer the smaller pid's value on
    conflict).  FLP/Herlihy say every such protocol fails; exhaustive
    exploration and the bivalency adversary exhibit the failing schedules.
    Used as the negative control in experiment E6. *)
