(** Moir–Anderson splitters and one-shot renaming from r/w registers.

    A counterpoint inside the model: leader election is impossible from
    r/w registers for even two processes (the base of the paper's whole
    hierarchy story), yet {e renaming} — shrinking the name space to
    O(n²) — is wait-free solvable from r/w registers alone.  The
    splitter is the classic building block:

    {v
        splitter(id):
          X := id
          if door closed then return Right
          close door
          if X = id then return Stop else return Down
    v}

    Among the processes that enter one splitter, at most one {b Stop}s,
    at most n−1 go {b Right} (the first process to enter cannot see the
    door closed) and at most n−1 go {b Down} (the last writer of X that
    closed… the last process to write X before any door-read cannot be
    overwritten — standard argument).  Arranging splitters in a
    triangular grid gives each process a distinct grid cell within n−1
    steps: a one-shot renaming into n(n+1)/2 names. *)

module Value := Memory.Value

type outcome = Stop | Right | Down

val splitter_bindings : string -> (string * Memory.Spec.t) list
(** The two registers (X and the door) of a named splitter. *)

val enter : string -> me:Value.t -> outcome Runtime.Program.t
(** Run the splitter protocol (3–4 register operations). *)

(** {2 Renaming} *)

type instance = {
  n : int;
  bindings : (string * Memory.Spec.t) list;
  program : int -> Runtime.Program.prim;
      (** decides the acquired name as an [Int] *)
  name_space : int;  (** n(n+1)/2 *)
  step_bound : int;
}

val renaming : n:int -> instance

val check_outcome :
  instance -> Runtime.Engine.outcome -> (unit, string) result
(** All non-crashed processes acquired distinct names within
    [0, name_space). *)

val run_random : instance -> seed:int -> (int list, string) result
(** The names acquired, indexed by pid order. *)

val explore_all : instance -> max_steps:int -> (int, string) result
