module Value = Memory.Value
module Program = Runtime.Program
module Register = Objects.Register
module Cas_k = Objects.Cas_k

let capacity ~ks =
  List.fold_left (fun acc k -> acc * Perm.factorial (k - 1)) 1 ks

let radices ~ks = List.map (fun k -> Perm.factorial (k - 1)) ks

let coords_of_pid ~ks pid =
  (* Most significant coordinate first. *)
  let rec go pid = function
    | [] -> []
    | radix :: rest ->
      let weight = List.fold_left ( * ) 1 rest in
      (pid / weight mod radix) :: go pid rest
  in
  go pid (radices ~ks)

let pid_of_coords ~ks coords =
  let rec go coords radii =
    match coords, radii with
    | [], [] -> 0
    | c :: cs, _ :: rest ->
      let weight = List.fold_left ( * ) 1 rest in
      (c * weight) + go cs rest
    | _ -> invalid_arg "pid_of_coords: arity mismatch"
  in
  go coords (radices ~ks)

let cas_loc s = Printf.sprintf "MC.%d" s
let claims_loc pid = Printf.sprintf "mclaims.%d" pid

(* Log entries: an announcement, or a claim tagged with its stage. *)
let announce_entry = Value.sym "announce"

let claim_entry ~stage (c : Permutation_election.claim) =
  Value.pair
    (Value.pair (Value.sym "claim") (Value.int stage))
    (Value.triple c.Permutation_election.source
       (Value.int c.Permutation_election.dest)
       (Value.int c.Permutation_election.position))

let decode_entry v =
  match v with
  | Value.Sym "announce" -> `Announce
  | Value.Pair (Value.Pair (Value.Sym "claim", Value.Int stage), rest) ->
    let source, dest, position = Value.as_triple rest in
    `Claim
      ( stage,
        {
          Permutation_election.source;
          dest = Value.as_int dest;
          position = Value.as_int position;
        } )
  | _ -> raise (Value.Type_error ("multi-election log entry", v))

let stage_claims views ~stage =
  List.concat_map
    (fun view ->
      List.filter_map
        (fun entry ->
          match decode_entry entry with
          | `Claim (s, c) when s = stage -> Some c
          | `Claim _ | `Announce -> None)
        (Value.as_list view))
    views

let announced_pids views =
  List.mapi (fun pid view -> (pid, view)) views
  |> List.filter_map (fun (pid, view) ->
         if
           List.exists
             (fun entry -> decode_entry entry = `Announce)
             (Value.as_list view)
         then Some pid
         else None)

let append pid entry =
  let open Program in
  let* log = Register.read (claims_loc pid) in
  Register.write (claims_loc pid) (Value.list (entry :: Value.as_list log))

let read_views n =
  Program.list_map (fun q -> Register.read (claims_loc q)) (List.init n (fun q -> q))

let program ~ks ~n pid =
  let open Program in
  let nstages = List.length ks in
  let k_of s = List.nth ks s in
  let coords q = coords_of_pid ~ks q in
  (* One pass: read every stage register and all logs, reconstruct the
     chains stage by stage, and either decide or drive the first
     incomplete stage. *)
  let rec work () =
    let* currents =
      list_map (fun s -> Cas_k.read (cas_loc s)) (List.init nstages (fun s -> s))
    in
    let* views = read_views n in
    let announced = announced_pids views in
    (* Reconstruct chains in stage order; stop at the first incomplete
       one. *)
    let rec chains s elected =
      if s >= nstages then `All_elected (List.rev elected)
      else
        let k = k_of s in
        let claims = stage_claims views ~stage:s in
        match
          Permutation_election.reconstruct ~k ~cur:(List.nth currents s) ~claims
        with
        | None -> failwith "multi-election: reconstruction found no chain"
        | Some chain ->
          if List.length chain = k - 1 then
            chains (s + 1) (Perm.rank chain :: elected)
          else `Drive (s, chain, List.rev elected)
    in
    match chains 0 [] with
    | `All_elected elected ->
      let winner = pid_of_coords ~ks elected in
      if winner < 0 || winner >= n then
        failwith "multi-election: elected coordinates name no process"
      else decide (Value.int winner)
    | `Drive (s, chain, elected) ->
      let k = k_of s in
      (* Candidates: announced processes whose earlier coordinates match
         the already-elected ones. *)
      let matches q =
        let cq = coords q in
        List.for_all2
          (fun a b -> a = b)
          elected
          (List.filteri (fun i _ -> i < s) cq)
      in
      let candidate_perm q = Perm.unrank ~m:(k - 1) (List.nth (coords q) s) in
      let pi =
        match
          List.find_opt
            (fun q -> matches q && Perm.is_prefix chain (candidate_perm q))
            (List.sort compare announced)
        with
        | Some q -> candidate_perm q
        | None -> failwith "multi-election: no candidate permutation"
      in
      let next = List.nth pi (List.length chain) in
      let cur = List.nth currents s in
      let claim =
        {
          Permutation_election.source = cur;
          dest = next;
          position = List.length chain;
        }
      in
      let* () = append pid (claim_entry ~stage:s claim) in
      let* _ =
        Cas_k.cas (cas_loc s) ~expected:cur ~desired:(Value.int next)
      in
      work ()
  in
  complete
    (let* () = append pid announce_entry in
     work ())

let bindings ~ks ~n =
  List.mapi (fun s k -> (cas_loc s, Cas_k.spec ~k)) ks
  @ List.init n (fun pid ->
        (claims_loc pid, Register.swmr ~owner:pid ~init:(Value.list []) ()))

let step_bound ~ks ~n =
  (* Per iteration: L register reads + n log reads + 2 log ops + 1 cas.
     Total register movements: Σ (kₛ−1); failures bounded likewise. *)
  let total_moves = List.fold_left (fun acc k -> acc + k - 1) 0 ks in
  let per_iteration = List.length ks + n + 4 in
  (((2 * total_moves) + 2) * per_iteration) + 2

let instance ~ks ~n =
  if List.exists (fun k -> k < 2) ks then
    invalid_arg "Multi_election: every register needs k >= 2";
  let cap = capacity ~ks in
  if n < 1 || n > cap then
    invalid_arg
      (Printf.sprintf "Multi_election: need 1 <= n <= capacity = %d, got %d"
         cap n);
  {
    Election.name =
      Fmt.str "multi-election(ks=[%a],n=%d)" Fmt.(list ~sep:(any ", ") int) ks n;
    n;
    bindings = bindings ~ks ~n;
    program = program ~ks ~n;
    step_bound = step_bound ~ks ~n;
  }
