module Value = Memory.Value
module Program = Runtime.Program
module Register = Objects.Register
module Cas_k = Objects.Cas_k

type claim = { source : Value.t; dest : int; position : int }

let cas_loc = "C"
let claims_loc pid = Printf.sprintf "claims.%d" pid
let perm_of_pid ~k pid = Perm.unrank ~m:(k - 1) pid

(* Claim-log entries. *)
let announce_entry = Value.sym "announce"

let claim_entry { source; dest; position } =
  Value.pair (Value.sym "claim")
    (Value.triple source (Value.int dest) (Value.int position))

let decode_entry v =
  match v with
  | Value.Sym "announce" -> `Announce
  | Value.Pair (Value.Sym "claim", rest) ->
    let source, dest, position = Value.as_triple rest in
    `Claim { source; dest = Value.as_int dest; position = Value.as_int position }
  | _ -> raise (Value.Type_error ("claim-log entry", v))

(* Why this computes the true chain.  Claim sources were read directly
   from the register, so every source is an introduced value and (by
   induction over publication times) every claim's label equals its
   source's position + 1.  Hence at path position j < pos(cur) the only
   way to continue to a value that is itself the source of a label-(j+1)
   claim is through the true j-th value; the only other label-consistent
   moves jump straight to [cur] (failed intents that wanted to introduce
   [cur] early) and terminate.  So every label-consistent path ending at
   [cur] is a prefix of the true chain followed by [cur], and the longest
   one is the chain itself.  Claims published after our register read can
   only mention later values and never extend a path that must end at
   [cur], so the staleness of the (non-atomic) log collect is harmless. *)
let reconstruct ~k ~cur ~claims =
  ignore k;
  if Value.equal cur Cas_k.bottom then Some []
  else begin
    let claims =
      List.sort_uniq
        (fun a b ->
          match Value.compare a.source b.source with
          | 0 -> compare (a.dest, a.position) (b.dest, b.position)
          | c -> c)
        claims
    in
    let goal = Value.as_int cur in
    let is_source_at position v =
      List.exists
        (fun c -> c.position = position && Value.equal c.source (Value.int v))
        claims
    in
    let module Iset = Set.Make (Int) in
    let solutions = ref [] in
    let rec go last position used acc =
      List.iter
        (fun c ->
          if
            c.position = position
            && Value.equal c.source last
            && not (Iset.mem c.dest used)
          then
            if c.dest = goal then solutions := List.rev (goal :: acc) :: !solutions
            else if is_source_at (position + 1) c.dest then
              go (Value.int c.dest) (position + 1) (Iset.add c.dest used)
                (c.dest :: acc))
        claims
    in
    go Cas_k.bottom 0 Iset.empty [];
    match !solutions with
    | [] -> None
    | first :: rest ->
      let longest =
        List.fold_left
          (fun best s -> if List.length s > List.length best then s else best)
          first rest
      in
      if
        List.for_all (fun s ->
            Perm.is_prefix (List.filteri (fun i _ -> i < List.length s - 1) s)
              longest)
          !solutions
      then Some longest
      else failwith "Permutation_election.reconstruct: ambiguous chain"
  end

let all_claims views =
  List.concat_map
    (fun view ->
      List.filter_map
        (fun entry ->
          match decode_entry entry with
          | `Claim c -> Some c
          | `Announce -> None)
        (Value.as_list view))
    views

let announced_pids views =
  List.mapi (fun pid view -> (pid, view)) views
  |> List.filter_map (fun (pid, view) ->
         if
           List.exists
             (fun entry -> decode_entry entry = `Announce)
             (Value.as_list view)
         then Some pid
         else None)

(* Append an entry to our own single-writer claim log. *)
let append pid entry =
  let open Program in
  let* log = Register.read (claims_loc pid) in
  Register.write (claims_loc pid) (Value.list (entry :: Value.as_list log))

let read_views n =
  Program.list_map
    (fun q -> Register.read (claims_loc q))
    (List.init n (fun q -> q))

let program ~k ~n ~perm_assignment pid =
  let open Program in
  let rec help () =
    let* cur = Cas_k.read cas_loc in
    let* views = read_views n in
    let claims = all_claims views in
    let announced = announced_pids views in
    match reconstruct ~k ~cur ~claims with
    | None -> failwith "reconstruction found no chain"
    | Some chain ->
      if List.length chain = k - 1 then
        (* Chain complete: its owner is the process assigned this
           permutation.  The owner announced before the extension that
           realized its permutation, so validity holds. *)
        let owner =
          match
            List.find_opt
              (fun q -> perm_assignment q = chain)
              (List.init n (fun q -> q))
          with
          | Some q -> q
          | None -> failwith "realized chain has no owner"
        in
        decide (Value.int owner)
      else
        (* Steer the chain toward the minimal announced permutation
           consistent with it, publish the labelled claim, then attempt. *)
        let pi =
          match
            List.find_opt
              (fun q -> Perm.is_prefix chain (perm_assignment q))
              (List.sort compare announced)
          with
          | Some q -> perm_assignment q
          | None -> failwith "no announced permutation is consistent"
        in
        let next = List.nth pi (List.length chain) in
        let c = { source = cur; dest = next; position = List.length chain } in
        let* () = append pid (claim_entry c) in
        let* _prev =
          Cas_k.cas cas_loc ~expected:cur ~desired:(Value.int next)
        in
        help ()
  in
  complete
    (let* () = append pid announce_entry in
     help ())

let bindings ~k ~n =
  (cas_loc, Cas_k.spec ~k)
  :: List.init n (fun pid ->
         (claims_loc pid, Register.swmr ~owner:pid ~init:(Value.list []) ()))

(* Per iteration: 1 register read of C, n view reads, 2 log ops, 1 cas.
   Iterations: at most k-1 own successes + k-1 failures (each failure
   implies the register moved) + 1 deciding pass. *)
let step_bound ~k ~n = ((2 * k) + 1) * (n + 4) + 2

let instance ~k ~n =
  if n < 1 || n > Perm.factorial (k - 1) then
    invalid_arg
      (Printf.sprintf "Permutation_election: need 1 <= n <= (k-1)! = %d, got %d"
         (Perm.factorial (k - 1))
         n);
  {
    Election.name = Printf.sprintf "perm-election(k=%d,n=%d)" k n;
    n;
    bindings = bindings ~k ~n;
    program = program ~k ~n ~perm_assignment:(perm_of_pid ~k);
    step_bound = step_bound ~k ~n;
  }

let duplicate_instance ~k ~n =
  let fact = Perm.factorial (k - 1) in
  let perm_assignment pid = perm_of_pid ~k (pid mod fact) in
  {
    Election.name = Printf.sprintf "perm-election-dup(k=%d,n=%d)" k n;
    n;
    bindings = bindings ~k ~n;
    program = program ~k ~n ~perm_assignment;
    step_bound = step_bound ~k ~n;
  }
