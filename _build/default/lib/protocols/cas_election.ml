module Value = Memory.Value
module Program = Runtime.Program
module Cas_k = Objects.Cas_k

let register = "C"

let program ~n:_ pid =
  let open Program in
  complete
    (let* prev =
       Cas_k.cas register ~expected:Cas_k.bottom ~desired:(Value.int pid)
     in
     if Value.equal prev Cas_k.bottom then return (Value.int pid)
     else return prev)

let instance ~k ~n =
  if n > k - 1 then
    invalid_arg
      (Printf.sprintf
         "Cas_election: %d processes cannot be named with %d non-bottom values"
         n (k - 1));
  {
    Election.name = Printf.sprintf "cas-election(k=%d,n=%d)" k n;
    n;
    bindings = [ (register, Cas_k.spec ~k) ];
    program = program ~n;
    step_bound = 1;
  }
