(** Permutations of [{0, …, m-1}] with lexicographic ranking.

    The permutation-chain election assigns process [pid] the permutation
    [unrank ~m pid]; the emulation's labels are permutation prefixes.  Both
    need the rank/unrank bijection between [0 … m!-1] and permutations. *)

type t = int list
(** A permutation of [{0, …, m-1}], given as the list of its values. *)

val factorial : int -> int
val all : int -> t list
(** All permutations of [{0,…,m-1}] in lexicographic order.  [m <= 8]. *)

val rank : t -> int
(** Lexicographic rank, inverse of {!unrank}. *)

val unrank : m:int -> int -> t
(** [unrank ~m r] is the rank-[r] permutation of [{0,…,m-1}];
    [0 <= r < m!]. *)

val is_prefix : int list -> t -> bool
val is_permutation : m:int -> int list -> bool
val pp : Format.formatter -> t -> unit
