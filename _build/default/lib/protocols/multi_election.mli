(** Leader election with {e several} bounded compare&swap registers —
    the paper's §4 extension ("…and to systems with a number of copies
    of the strong object"), made constructive.

    Given registers of sizes [k₁, …, k_L] (plus unbounded r/w memory),
    the protocol elects among [Π (kₛ−1)!] processes: identities are
    mixed-radix tuples [(c₁, …, c_L)] with [cₛ < (kₛ−1)!], and the
    election proceeds in stages.  Stage [s] runs the permutation-chain
    protocol on register [s], where the {e candidate} permutations are
    those of announced processes whose first [s−1] coordinates match the
    coordinates already elected.  The stage-[s] chain realizes the
    permutation of one such candidate, electing coordinate
    [e_s = rank(chain_s)]; after stage [L] the winner is the process with
    coordinates [(e₁, …, e_L)] — which, by induction on the candidate
    invariant, announced itself, so validity holds.

    Everyone helps drive every stage (candidates are computed from the
    announcement logs, not from who is "supposed" to contend), so the
    protocol stays wait-free: each register changes value at most
    [kₛ−1] times and a failed attempt implies somebody else made
    progress.

    For a single register this degenerates to
    {!Permutation_election.instance}.  Compare Burns–Cruz–Loui's product
    bound for registers {e without} r/w memory: [Π (kₛ−1)] — r/w
    registers boost each factor from [kₛ−1] to [(kₛ−1)!]. *)

val capacity : ks:int list -> int
(** [Π (kₛ−1)!]. *)

val coords_of_pid : ks:int list -> int -> int list
(** Mixed-radix decomposition of an identity; inverse of
    {!pid_of_coords}. *)

val pid_of_coords : ks:int list -> int list -> int

val instance : ks:int list -> n:int -> Election.instance
(** Requires [1 <= n <= capacity ~ks] and every [kₛ >= 2]. *)
