module Value = Memory.Value
module Program = Runtime.Program
module Rmw = Objects.Rmw

let register = "R"
let free = Value.sym "free"

(* The k register values: free, plus one identity slot per electable
   process. *)
let rmw_spec ~k ~id_of ~n =
  let values = free :: List.init (k - 1) (fun i -> Value.int i) in
  let claim pid =
    {
      Rmw.name = Printf.sprintf "claim%d" pid;
      transform =
        (fun state -> if Value.equal state free then Value.int (id_of pid) else state);
    }
  in
  Rmw.spec
    ~type_name:(Printf.sprintf "rmw(%d)" k)
    ~values ~init:free
    ~ops:(List.init n claim)

let program pid =
  let open Program in
  complete
    (let* old = Rmw.invoke register (Printf.sprintf "claim%d" pid) in
     if Value.equal old free then return (Value.int pid) else return old)

let instance ~k ~n =
  if n > k - 1 then
    invalid_arg
      (Printf.sprintf "Bcl_election: capacity of a %d-valued RMW is %d" k
         (k - 1));
  {
    Election.name = Printf.sprintf "bcl-election(k=%d,n=%d)" k n;
    n;
    bindings = [ (register, rmw_spec ~k ~id_of:(fun pid -> pid) ~n) ];
    program;
    step_bound = 1;
  }

let overloaded_instance ~k =
  let n = k in
  (* Pigeonhole: k processes, k-1 identity slots — pid k-1 is forced to
     reuse identity 0. *)
  let id_of pid = if pid = k - 1 then 0 else pid in
  (* The winner decides its own pid, but the register can only transmit
     [id_of pid]: for pid k-1 that collides with pid 0, so under the
     schedule where pid k-1 wins, everyone else decides 0 while the winner
     decides k-1 — agreement breaks.  A k-valued register simply cannot
     name k distinct winners. *)
  let program pid =
    let open Program in
    complete
      (let* old = Rmw.invoke register (Printf.sprintf "claim%d" pid) in
       if Value.equal old free then return (Value.int pid) else return old)
  in
  {
    Election.name = Printf.sprintf "bcl-overloaded(k=%d,n=%d)" k n;
    n;
    bindings = [ (register, rmw_spec ~k ~id_of ~n) ];
    program;
    step_bound = 1;
  }
