(** Borowsky–Gafni safe agreement — the building block of the BG
    simulation [4], which the paper contrasts with its own technique
    ("in their technique each simulating process tries to simulate all
    the codes … while in our technique we divide the codes among the
    simulators").

    Safe agreement is consensus with a weakened liveness guarantee,
    implementable from r/w registers alone:

    + [val_i := v; level_i := 1]  (enter the unsafe window)
    + collect levels; if somebody is already at level 2, retreat to
      level 0, else advance to level 2  (leave the window)
    + spin until nobody is at level 1, then decide the value of the
      smallest-id process at level 2.

    Agreement and validity always hold, and if no process {e crashes
    inside the window} every participant decides.  But a crash inside
    the window blocks everyone forever — safe agreement is {e not}
    wait-free, which is exactly why the BG simulation lives in the
    t-resilient world while the paper's emulation, which partitions the
    v-processes among the emulators instead of agreeing step by step,
    stays wait-free.  The test suite demonstrates both faces. *)

module Value := Memory.Value

type instance = {
  n : int;
  inputs : Value.t array;
  bindings : (string * Memory.Spec.t) list;
  program : int -> Runtime.Program.prim;
}

val make : inputs:Value.t list -> instance

val run_random :
  instance -> seed:int -> (Value.t list * bool, string) result
(** [(distinct decisions, hit_step_limit)] — without crashes the run
    terminates with one decision; see {!run_with_window_crash} for the
    blocking face. *)

val run_with_window_crash : instance -> seed:int -> bool
(** Crash process 0 immediately after it enters the unsafe window
    (level 1) and run the others: returns [true] iff the survivors
    spin without deciding (hit the step limit) — the expected,
    blocking outcome. *)

val explore_all : instance -> max_steps:int -> (int, string) result
(** Exhaustively verify agreement + validity over all crash-free
    schedules (small n); returns the number of {e complete} schedules.
    Termination is deliberately not required: unfair schedules starve
    the decide spin even without crashes — safe agreement's liveness
    needs fairness, which is precisely its difference from the paper's
    wait-free emulation. *)
