(** Leader election for [(k−1)!] processes from one compare&swap-(k) plus
    unbounded SWMR registers — our executable reconstruction of the
    algorithm of Afek & Stupp, FOCS '93 (reference [1] of the paper),
    whose capacity the paper's Theorem 1 upper-bounds.

    {2 The algorithm}

    The register's alphabet is Σ = {⊥, 0, …, k−2}.  The protocol only ever
    performs successful operations that introduce a {e fresh} value, so
    the register never revisits a value and its value sequence — the
    {e chain} — is a growing prefix of a permutation of Σ∖{⊥}.  Process
    [pid] owns the rank-[pid] permutation (lexicographic); the process
    whose permutation equals the realized chain is elected.

    Every process, repeatedly:

    + reads the register and every process's claim log;
    + {e reconstructs} the chain so far (see below);
    + if the chain is complete (all k−1 values used) decides its owner;
    + otherwise picks the minimal {e announced} permutation consistent
      with the chain, publishes a labelled claim [(cur → next, position)]
      in its own SWMR log, and attempts [c&s(cur → next)].

    Everyone helps drive the chain, so no process ever waits on another:
    an attempt fails only if the register moved, and it can move at most
    k−1 times, which bounds every process's steps — wait-freedom.

    {2 Reconstruction}

    A claim [(c → s, j)] is published {e before} the attempt, when the
    claimant has just read the register at [c] and reconstructed [c]'s
    position as [j−1].  Consequently (a) claim sources are always
    introduced values, so the introduced set is exactly
    [{sources} ∪ {current value}]; (b) claim labels are always accurate
    for their source.  A short induction then shows there is exactly one
    label-consistent path from ⊥ through all introduced values ending at
    the current value — the true chain — even though some successful
    operations may never be individually attributable (their performers
    may have crashed).  [reconstruct] computes it; the test suite checks
    uniqueness on every schedule of small instances.

    Capacity is exactly [(k−1)!]: with more processes two would share a
    permutation and both would decide themselves; [duplicate_instance]
    exhibits the resulting agreement violation. *)

module Value := Memory.Value

val instance : k:int -> n:int -> Election.instance
(** Requires [1 <= n <= (k-1)!]. *)

val duplicate_instance : k:int -> n:int -> Election.instance
(** Same protocol with [n] processes but permutations assigned modulo
    [(k−1)!].  With [n = (k−1)!+1], pids [0] and [n−1] share a
    permutation, and identities stop being recoverable from the chain: in
    a run where only pid [n−1] participates, the realized chain is its
    permutation but the deterministic owner rule names pid [0], electing a
    process that never proposed itself — a validity violation the test
    suite exhibits with a crash schedule.  (This shows {e this} protocol's
    capacity is exactly [(k−1)!]; whether some other protocol exceeds it
    is the paper's open gap between [(k−1)!] and [O(k^(k²+3))].) *)

(** {2 Exposed internals (for tests and the emulation experiments)} *)

type claim = { source : Value.t; dest : int; position : int }

val reconstruct :
  k:int -> cur:Value.t -> claims:claim list -> int list option
(** The chain of introduced values up to (and including) the register's
    current value [cur]: the longest label-consistent claim path from ⊥
    ending at [cur].  In reachable states every such path is a prefix of
    the true chain (ended early by a failed intent that wanted to
    introduce [cur] sooner), so the longest is the chain itself; [None]
    only for claim sets not arising from real executions.
    @raise Failure if two solutions are not prefix-ordered — impossible in
    reachable states, and the tests rely on this being checked. *)

val perm_of_pid : k:int -> int -> int list
