(** The trivial one-shot election on a compare&swap-(k) register.

    Every process tries [c&s(⊥ → own id)]; the register changes exactly
    once, so the first attempt wins and every later attempt reads the
    winner.  Capacity: ids must fit in Σ∖{⊥}, i.e. at most [k−1]
    processes — the baseline the paper's [(k−1)!] algorithm beats by using
    unbounded r/w registers alongside the bounded compare&swap. *)

val instance : k:int -> n:int -> Election.instance
(** Requires [n <= k-1]. *)
