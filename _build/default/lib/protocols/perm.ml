type t = int list

let factorial m =
  let rec go acc i = if i <= 1 then acc else go (acc * i) (i - 1) in
  if m < 0 then invalid_arg "Perm.factorial: negative" else go 1 m

let rec insertions x = function
  | [] -> [ [ x ] ]
  | y :: ys as l -> (x :: l) :: List.map (fun r -> y :: r) (insertions x ys)

let all m =
  let rec go = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insertions x) (go xs)
  in
  go (List.init m (fun i -> i)) |> List.sort compare

let rank perm =
  (* Lexicographic rank: for each element, count smaller elements to its
     right and weight by the factorial of the remaining length. *)
  let rec go = function
    | [] -> 0
    | x :: rest ->
      let smaller = List.length (List.filter (fun y -> y < x) rest) in
      (smaller * factorial (List.length rest)) + go rest
  in
  go perm

let unrank ~m r =
  if r < 0 || r >= factorial m then invalid_arg "Perm.unrank: rank out of range";
  let rec go available r =
    match available with
    | [] -> []
    | _ ->
      let f = factorial (List.length available - 1) in
      let i = r / f in
      let x = List.nth available i in
      x :: go (List.filter (fun y -> y <> x) available) (r mod f)
  in
  go (List.init m (fun i -> i)) r

let rec is_prefix prefix perm =
  match prefix, perm with
  | [], _ -> true
  | x :: xs, y :: ys -> x = y && is_prefix xs ys
  | _ :: _, [] -> false

let is_permutation ~m l =
  List.length l = m && List.sort compare l = List.init m (fun i -> i)

let pp ppf t = Fmt.pf ppf "<%a>" Fmt.(list ~sep:(any " ") int) t
