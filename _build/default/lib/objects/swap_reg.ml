module Value = Memory.Value
module Program = Runtime.Program

let swap_op v = Value.pair (Value.sym "swap") v

let spec ?(init = Value.unit) () =
  let apply ~pid:_ state op =
    match op with
    | Value.Pair (Value.Sym "swap", v) -> Ok (v, state)
    | Value.Sym "read" -> Ok (state, state)
    | _ -> Error ("swap: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:"swap" ~init ~apply

let swap loc v = Program.op loc (swap_op v)
let read loc = Program.op loc (Value.sym "read")
