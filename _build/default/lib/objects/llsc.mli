(** Load-linked / store-conditional — the other universal primitive the
    paper names alongside compare&swap (§1).

    [ll] returns the current value and records a {e link} for the calling
    process; [sc v] succeeds (writes [v], returns [true]) only if the
    caller's link is still valid, i.e. no successful [sc] occurred since
    the caller's last [ll].  Like compare&swap it is universal; unlike
    compare&swap it does not suffer from ABA, because validity is about
    {e intervening writes}, not values.

    The value domain can be bounded ([values]) to study the paper's
    regime: a bounded LL/SC register rejects out-of-domain writes just
    like {!Cas_k}. *)

module Value := Memory.Value

val spec : ?values:Value.t list -> init:Value.t -> unit -> Memory.Spec.t
(** [values = None] leaves the domain unbounded. *)

val ll_op : Value.t
val sc_op : Value.t -> Value.t

val ll : string -> Value.t Runtime.Program.t
val sc : string -> Value.t -> bool Runtime.Program.t
val read : string -> Value.t Runtime.Program.t
(** A plain read (does not link). *)
