module Value = Memory.Value

type entry = {
  name : string;
  spec : Memory.Spec.t;
  ops : Value.t list;
  herlihy_number : [ `Finite of int | `Infinite ];
}

let rw_register =
  {
    name = "r/w register";
    spec = Register.mwmr ~init:(Value.int 0) ();
    ops =
      Register.read_op
      :: List.map (fun i -> Register.write_op (Value.int i)) [ 0; 1; 2 ];
    herlihy_number = `Finite 1;
  }

let test_and_set =
  {
    name = "test&set";
    spec = Testset.spec ();
    ops = [ Testset.test_and_set_op; Value.sym "read" ];
    herlihy_number = `Finite 2;
  }

let swap =
  {
    name = "swap";
    spec = Swap_reg.spec ~init:(Value.int 0) ();
    ops =
      Value.sym "read"
      :: List.map (fun i -> Swap_reg.swap_op (Value.int i)) [ 0; 1; 2 ];
    herlihy_number = `Finite 2;
  }

let fetch_add_mod m =
  {
    name = Printf.sprintf "fetch&add mod %d" m;
    spec = Fetchadd.spec ~modulus:m ();
    ops = [ Fetchadd.fetch_add_op 1; Value.sym "read" ];
    herlihy_number = `Finite 2;
  }

let queue =
  {
    name = "queue";
    spec = Queue_obj.spec ();
    ops =
      [
        Queue_obj.deq_op;
        Queue_obj.enq_op (Value.int 0);
        Queue_obj.enq_op (Value.int 1);
      ];
    herlihy_number = `Finite 2;
  }

let sticky_bit =
  {
    name = "sticky bit";
    spec = Sticky.spec ();
    ops =
      Value.sym "read"
      :: List.map (fun i -> Sticky.sticky_write_op (Value.int i)) [ 0; 1 ];
    herlihy_number = `Infinite;
  }

let llsc =
  {
    name = "ll/sc";
    spec =
      Llsc.spec
        ~values:[ Value.int 0; Value.int 1; Value.int 2 ]
        ~init:(Value.int 0) ();
    ops =
      [ Llsc.ll_op; Value.sym "read"; Llsc.sc_op (Value.int 1);
        Llsc.sc_op (Value.int 2) ];
    herlihy_number = `Infinite;
  }

let cas k =
  let sigma = Cas_k.alphabet ~k in
  let pairs =
    List.concat_map (fun a -> List.map (fun b -> (a, b)) sigma) sigma
  in
  {
    name = Printf.sprintf "compare&swap-(%d)" k;
    spec = Cas_k.spec ~k;
    ops = List.map (fun (a, b) -> Cas_k.cas_op ~expected:a ~desired:b) pairs;
    herlihy_number = `Infinite;
  }

let all () =
  [
    rw_register;
    test_and_set;
    swap;
    fetch_add_mod 4;
    queue;
    sticky_bit;
    llsc;
    cas 3;
    cas 4;
  ]
