(** Single-bit test&set — consensus number 2 in Herlihy's hierarchy.

    [test_and_set] returns the old value (false exactly once, for the
    winner) and sets the bit.  Supported by the hardware the paper cites
    (IBM mainframes, Encore Multimax, Sequent Symmetry, DEC Firefly). *)

module Value := Memory.Value

val spec : unit -> Memory.Spec.t
val test_and_set_op : Value.t
val reset_op : Value.t

val test_and_set : string -> bool Runtime.Program.t
(** Returns [true] iff this process won (saw the bit unset). *)

val reset : string -> unit Runtime.Program.t
val read : string -> bool Runtime.Program.t
