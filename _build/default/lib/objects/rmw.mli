(** Generic read-modify-write registers over a finite value set.

    An RMW register type is a menu of named transformations
    [f : state -> state] applied atomically, each returning the old state.
    Keeping the menu finite and the value set explicit makes the object a
    finite state machine, which the consensus-number classifier
    ({!Hierarchy.Cons_number}) exploits.  The paper conjectures its results
    extend from compare&swap-(k) to arbitrary size-k RMW registers —
    this module is the playground for that conjecture. *)

module Value := Memory.Value

type op = { name : string; transform : Value.t -> Value.t }

val spec :
  type_name:string -> values:Value.t list -> init:Value.t -> ops:op list ->
  Memory.Spec.t
(** The object checks that [init] and every transformation result stay
    inside [values] — a transformation escaping the declared value set is
    an error, mirroring the boundedness of compare&swap-(k). *)

val op_encoding : string -> Value.t
(** The [Value.t] encoding of a named transformation, as accepted by specs
    from this module (useful for feeding the classifier an op universe). *)

val invoke : string -> string -> Value.t Runtime.Program.t
(** [invoke loc name] applies the named transformation, returning the old
    value. *)

val read : string -> Value.t Runtime.Program.t
