(** The object zoo: a registry of the object types used across the
    experiments, each paired with a finite operation universe so the
    hierarchy classifier can analyse it. *)

module Value := Memory.Value

type entry = {
  name : string;
  spec : Memory.Spec.t;
  ops : Value.t list;
      (** a finite, representative operation universe for classification *)
  herlihy_number : [ `Finite of int | `Infinite ];
      (** the known consensus number, from the literature; the experiments
          check our machinery against these ground truths *)
}

val rw_register : entry
val test_and_set : entry
val swap : entry
val fetch_add_mod : int -> entry
val queue : entry
val sticky_bit : entry
val llsc : entry
val cas : int -> entry
(** [cas k] is compare&swap-(k); consensus number ∞ for every [k >= 3]
    (with k = 2 it can change value only once, which still solves
    2-consensus; the paper's refinement is about how many processes can
    {e elect a leader}, not binary consensus). *)

val all : unit -> entry list
(** A representative sample (with small parameters) for sweep tests. *)
