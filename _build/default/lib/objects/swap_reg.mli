(** Atomic swap register (read-modify-write: write and return the old
    value).  Consensus number 2, like test&set. *)

module Value := Memory.Value

val spec : ?init:Value.t -> unit -> Memory.Spec.t
val swap_op : Value.t -> Value.t

val swap : string -> Value.t -> Value.t Runtime.Program.t
(** [swap loc v] stores [v] and returns the previous value. *)

val read : string -> Value.t Runtime.Program.t
