(** The compare&swap-(k) object — the paper's central object (§2).

    A register whose value ranges over the finite alphabet
    [Σ = {⊥, 0, 1, …, k−2}] (so it can hold exactly [k] distinct values),
    supporting the single operation

    {v c&s(a → b)(r): prev := r; if prev = a then r := b; return prev v}

    An operation {e succeeds} if it changes the register's value.  The
    object rejects operations naming values outside Σ — that is precisely
    the boundedness the paper studies, and protocols that try to smuggle
    extra values through the register must fail. *)

module Value := Memory.Value

val bottom : Value.t
(** The initial value ⊥, encoded as [Sym "_|_"]. *)

val value : int -> Value.t
(** [value i] is the alphabet symbol [i], for [0 <= i <= k-2]. *)

val alphabet : k:int -> Value.t list
(** [⊥; 0; …; k−2] — all [k] values. *)

val spec : k:int -> Memory.Spec.t
(** A compare&swap-(k) register initialized to ⊥. *)

val generic_spec : values:Value.t list -> init:Value.t -> Memory.Spec.t
(** A compare&swap register over an arbitrary finite alphabet (still
    bounded: operations naming values outside [values] are rejected).
    [spec ~k] = [generic_spec ~values:(alphabet ~k) ~init:bottom]. *)

val cas_op : expected:Value.t -> desired:Value.t -> Value.t

val cas :
  string -> expected:Value.t -> desired:Value.t -> Value.t Runtime.Program.t
(** Perform [c&s(expected → desired)]; returns the previous value. *)

val read : string -> Value.t Runtime.Program.t
(** Read the register via [c&s(a → a)] for an arbitrary [a] — compare&swap
    subsumes read without extra hardware support. *)

val succeeded :
  previous:Value.t -> expected:Value.t -> desired:Value.t -> bool
(** Did a [c&s(expected → desired)] that returned [previous] change the
    register?  True iff [previous = expected] and [expected <> desired]
    (the paper's convention: an operation succeeds only if it {e changes}
    the value, so [c&s(a→a)] never succeeds). *)
