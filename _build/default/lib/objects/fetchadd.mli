(** Fetch&add counter, optionally bounded.

    With [modulus = Some m] the counter wraps modulo [m], making it an
    [m]-valued read-modify-write register — the bounded-size regime the
    paper studies (and the object underlying the Burns–Cruz–Loui baseline
    election). *)

module Value := Memory.Value

val spec : ?modulus:int -> unit -> Memory.Spec.t
val fetch_add_op : int -> Value.t

val fetch_add : string -> int -> int Runtime.Program.t
(** Returns the value before the addition. *)

val read : string -> int Runtime.Program.t
