(** Wait-free FIFO queue object (consensus number 2).

    Used by the hierarchy experiments as the classic example of an object
    that separates level 2 from level 1, and by the universal-construction
    tests as a sequential specification to implement. *)

module Value := Memory.Value

val spec : ?init:Value.t list -> unit -> Memory.Spec.t
val enq_op : Value.t -> Value.t
val deq_op : Value.t

val enq : string -> Value.t -> unit Runtime.Program.t

val deq : string -> Value.t option Runtime.Program.t
(** [None] when the queue is empty. *)
