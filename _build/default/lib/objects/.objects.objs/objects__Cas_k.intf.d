lib/objects/cas_k.mli: Memory Runtime
