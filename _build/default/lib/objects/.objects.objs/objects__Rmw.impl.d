lib/objects/rmw.ml: List Memory Printf Runtime String
