lib/objects/sticky.ml: Memory Runtime
