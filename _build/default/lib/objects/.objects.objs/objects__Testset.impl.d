lib/objects/testset.ml: Memory Runtime
