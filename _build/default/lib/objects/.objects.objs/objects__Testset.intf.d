lib/objects/testset.mli: Memory Runtime
