lib/objects/swap_reg.ml: Memory Runtime
