lib/objects/llsc.mli: Memory Runtime
