lib/objects/cas_k.ml: List Memory Printf Runtime
