lib/objects/queue_obj.mli: Memory Runtime
