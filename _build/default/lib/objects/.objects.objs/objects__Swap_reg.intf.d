lib/objects/swap_reg.mli: Memory Runtime
