lib/objects/register.mli: Memory Runtime
