lib/objects/sticky.mli: Memory Runtime
