lib/objects/queue_obj.ml: Memory Runtime
