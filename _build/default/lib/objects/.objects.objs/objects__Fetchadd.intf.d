lib/objects/fetchadd.mli: Memory Runtime
