lib/objects/llsc.ml: List Memory Runtime
