lib/objects/zoo.ml: Cas_k Fetchadd List Llsc Memory Printf Queue_obj Register Sticky Swap_reg Testset
