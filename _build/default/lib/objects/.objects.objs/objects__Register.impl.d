lib/objects/register.ml: Memory Printf Runtime
