lib/objects/zoo.mli: Memory
