lib/objects/fetchadd.ml: Memory Printf Runtime
