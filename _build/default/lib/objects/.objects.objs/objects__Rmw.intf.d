lib/objects/rmw.mli: Memory Runtime
