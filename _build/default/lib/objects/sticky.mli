(** Plotkin's sticky bit / sticky register [20].

    A write succeeds only when the register still holds ⊥; afterwards the
    value is frozen ("sticky").  Sticky bits are universal (Plotkin), and a
    sticky register over process ids is exactly a one-shot leader-election
    object: the paper's sequential specification of an LE object — "all
    elect operations return the identity of the processor that applied the
    first operation" — is implemented by [elect] below. *)

module Value := Memory.Value

val bottom : Value.t
val spec : unit -> Memory.Spec.t
val sticky_write_op : Value.t -> Value.t

val sticky_write : string -> Value.t -> Value.t Runtime.Program.t
(** Attempt to freeze the given value; returns the frozen value (which is
    the argument iff this process was first). *)

val read : string -> Value.t Runtime.Program.t

val elect : string -> me:Value.t -> Value.t Runtime.Program.t
(** The LE-object elect operation: propose [me], return the winner. *)
