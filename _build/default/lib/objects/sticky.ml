module Value = Memory.Value
module Program = Runtime.Program

let bottom = Value.sym "_|_"
let sticky_write_op v = Value.pair (Value.sym "sticky-write") v

let spec () =
  let apply ~pid:_ state op =
    match op with
    | Value.Pair (Value.Sym "sticky-write", v) ->
      if Value.equal state bottom then Ok (v, v) else Ok (state, state)
    | Value.Sym "read" -> Ok (state, state)
    | _ -> Error ("sticky: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:"sticky" ~init:bottom ~apply

let sticky_write loc v = Program.op loc (sticky_write_op v)
let read loc = Program.op loc (Value.sym "read")
let elect loc ~me = sticky_write loc me
