module Value = Memory.Value
module Program = Runtime.Program

let test_and_set_op = Value.sym "test&set"
let reset_op = Value.sym "reset"

let spec () =
  let apply ~pid:_ state op =
    match op with
    | Value.Sym "test&set" -> Ok (Value.bool true, state)
    | Value.Sym "reset" -> Ok (Value.bool false, Value.unit)
    | Value.Sym "read" -> Ok (state, state)
    | _ -> Error ("test&set: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:"test&set" ~init:(Value.bool false) ~apply

let test_and_set loc =
  let open Program in
  let* old = op loc test_and_set_op in
  return (not (Value.as_bool old))

let reset loc =
  let open Program in
  let* _ = op loc reset_op in
  return ()

let read loc =
  let open Program in
  let* v = op loc (Value.sym "read") in
  return (Value.as_bool v)
