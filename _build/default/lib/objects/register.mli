(** Atomic read/write registers.

    Two flavours: multi-writer multi-reader ([mwmr]) and single-writer
    multi-reader ([swmr]).  The paper assumes w.l.o.g. that all r/w
    registers of the emulated algorithm are SWMR [3,17,19,22]; we provide
    both and enforce the single-writer discipline in the object itself, so
    a protocol violating it becomes a faulty process rather than a silent
    data race. *)

module Value := Memory.Value

val mwmr : ?init:Value.t -> unit -> Memory.Spec.t
val swmr : owner:int -> ?init:Value.t -> unit -> Memory.Spec.t

(** {1 Operation encodings} *)

val read_op : Value.t
val write_op : Value.t -> Value.t

(** {1 Program helpers} *)

val read : string -> Value.t Runtime.Program.t
val write : string -> Value.t -> unit Runtime.Program.t
