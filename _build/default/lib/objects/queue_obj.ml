module Value = Memory.Value
module Program = Runtime.Program

let enq_op v = Value.pair (Value.sym "enq") v
let deq_op = Value.sym "deq"

let spec ?(init = []) () =
  let apply ~pid:_ state op =
    let items = Value.as_list state in
    match op with
    | Value.Pair (Value.Sym "enq", v) ->
      Ok (Value.list (items @ [ v ]), Value.unit)
    | Value.Sym "deq" -> (
      match items with
      | [] -> Ok (state, Value.option None)
      | x :: rest -> Ok (Value.list rest, Value.option (Some x)))
    | _ -> Error ("queue: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:"queue" ~init:(Value.list init) ~apply

let enq loc v =
  let open Program in
  let* _ = op loc (enq_op v) in
  return ()

let deq loc =
  let open Program in
  let* r = op loc deq_op in
  return (Value.as_option r)
