lib/lincheck/history.mli: Format Memory Runtime
