lib/lincheck/checker.mli: History Memory
