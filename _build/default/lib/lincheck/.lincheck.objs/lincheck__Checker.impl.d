lib/lincheck/checker.ml: Array Hashtbl History List Memory
