lib/lincheck/history.ml: Fmt Hashtbl List Memory Runtime
