module Value = Memory.Value
module Program = Runtime.Program
module Register = Objects.Register

type t = { base : string; writers : int array }

let create ~base ~writers = { base; writers }
let cells t = Array.length t.writers
let loc t i = Printf.sprintf "%s.w%d" t.base i

let initial_cell =
  (* timestamp 0, writer -1: loses to every real write. *)
  Value.triple (Value.int 0) (Value.int (-1)) Value.unit

let registers t =
  List.init (cells t) (fun i ->
      (loc t i, Register.swmr ~owner:t.writers.(i) ~init:initial_cell ()))

let decode cell =
  let ts, wid, v = Value.as_triple cell in
  (Value.as_int ts, Value.as_int wid, v)

let collect t =
  Program.list_map
    (fun i -> Program.map decode (Register.read (loc t i)))
    (List.init (cells t) (fun i -> i))

let best cells_read =
  List.fold_left
    (fun (bts, bwid, bv) (ts, wid, v) ->
      if ts > bts || (ts = bts && wid > bwid) then (ts, wid, v)
      else (bts, bwid, bv))
    (0, -1, Value.unit) cells_read

let write t ~me v =
  let open Program in
  let* cells_read = collect t in
  let max_ts = List.fold_left (fun acc (ts, _, _) -> max acc ts) 0 cells_read in
  Register.write (loc t me)
    (Value.triple (Value.int (max_ts + 1)) (Value.int me) v)

let read t =
  let open Program in
  let* cells_read = collect t in
  let _, _, v = best cells_read in
  return v
