module Value = Memory.Value
module Program = Runtime.Program

let update_op ~segment v =
  Value.triple (Value.sym "update") (Value.int segment) v

let scan_op = Value.sym "scan"

let spec ~segments ?owners () =
  let owner_of i =
    match owners with None -> i | Some a -> a.(i)
  in
  let init = Value.list (List.init segments (fun _ -> Value.unit)) in
  let apply ~pid state op =
    match op with
    | Value.Sym "scan" -> Ok (state, state)
    | Value.Pair (Value.Sym "update", Value.Pair (Value.Int i, v)) ->
      if i < 0 || i >= segments then
        Error (Printf.sprintf "snapshot: segment %d out of range" i)
      else if pid <> owner_of i then
        Error
          (Printf.sprintf "snapshot: segment %d owned by %d, updated by %d" i
             (owner_of i) pid)
      else
        let items = Value.as_list state in
        let items' = List.mapi (fun j x -> if j = i then v else x) items in
        Ok (Value.list items', Value.unit)
    | _ -> Error ("snapshot: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:(Printf.sprintf "snapshot(%d)" segments) ~init
    ~apply

let update loc ~segment v =
  let open Program in
  let* _ = op loc (update_op ~segment v) in
  return ()

let scan loc =
  let open Program in
  let* s = op loc scan_op in
  return (Value.as_list s)
