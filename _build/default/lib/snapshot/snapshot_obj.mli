(** Atomic snapshot objects.

    An [n]-segment snapshot object lets process [i] atomically [update]
    segment [i] and lets any process atomically [scan] all segments.  The
    paper's emulation reads all shared data structures in one atomic
    [SnapShot(T, G)] (Fig. 3 line 2); atomic snapshot is implementable
    wait-free from SWMR registers (see {!Swmr_snapshot}), so granting it
    as a primitive does not strengthen the r/w model. *)

module Value := Memory.Value

val spec : segments:int -> ?owners:int array -> unit -> Memory.Spec.t
(** A primitive snapshot object with [segments] segments initialized to
    [Unit].  With [owners], segment [i] may only be updated by pid
    [owners.(i)]; the default owner of segment [i] is pid [i]. *)

val update_op : segment:int -> Value.t -> Value.t
val scan_op : Value.t

val update : string -> segment:int -> Value.t -> unit Runtime.Program.t
val scan : string -> Value.t list Runtime.Program.t
