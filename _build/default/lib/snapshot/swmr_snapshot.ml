module Value = Memory.Value
module Program = Runtime.Program
module Register = Objects.Register

type t = { base : string; owners : int array }

let create ~base ~owners = { base; owners }
let segments t = Array.length t.owners
let loc t i = Printf.sprintf "%s.seg%d" t.base i

let initial_cell n =
  (* (seq, value, embedded view) *)
  Value.triple (Value.int 0) Value.unit
    (Value.list (List.init n (fun _ -> Value.unit)))

let registers t =
  let n = segments t in
  List.init n (fun i ->
      (loc t i, Register.swmr ~owner:t.owners.(i) ~init:(initial_cell n) ()))

let decode cell =
  let seq, v, view = Value.as_triple cell in
  (Value.as_int seq, v, Value.as_list view)

let collect t =
  let n = segments t in
  Program.list_map (fun i -> Program.map decode (Register.read (loc t i)))
    (List.init n (fun i -> i))

let values_of cells = List.map (fun (_, v, _) -> v) cells

(* The recursion threads its state (previous collect, per-segment move
   counts) through arguments rather than mutable cells: a program's
   continuations must be pure, because the exhaustive explorer resumes the
   same continuation along many interleaving branches. *)
let scan t =
  let open Program in
  let rec attempt prev moved =
    let* cur = collect t in
    let deltas =
      List.map2
        (fun (pseq, _, _) (cseq, _, view) -> (pseq <> cseq, view))
        prev cur
    in
    if List.for_all (fun (changed, _) -> not changed) deltas then
      return (values_of cur)
    else
      (* A segment observed to move twice has completed a whole update
         inside our interval — borrow its embedded view. *)
      let moved' =
        List.map2
          (fun count (changed, _) -> if changed then count + 1 else count)
          moved deltas
      in
      let borrowed =
        List.combine moved' deltas
        |> List.find_map (fun (count, (changed, view)) ->
               if changed && count >= 2 then Some view else None)
      in
      match borrowed with
      | Some view -> return view
      | None -> attempt cur moved'
  in
  let* first = collect t in
  attempt first (List.map (fun _ -> 0) first)

let update t ~segment v =
  let open Program in
  let* view = scan t in
  let* cell = Register.read (loc t segment) in
  let seq, _, _ = decode cell in
  Register.write (loc t segment)
    (Value.triple (Value.int (seq + 1)) v (Value.list view))
