lib/snapshot/mwmr_from_swmr.ml: Array List Memory Objects Printf Runtime
