lib/snapshot/mwmr_from_swmr.mli: Memory Runtime
