lib/snapshot/swmr_snapshot.ml: Array List Memory Objects Printf Runtime
