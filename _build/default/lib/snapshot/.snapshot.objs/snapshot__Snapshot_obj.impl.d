lib/snapshot/snapshot_obj.ml: Array List Memory Printf Runtime
