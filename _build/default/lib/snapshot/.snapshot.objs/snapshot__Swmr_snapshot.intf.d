lib/snapshot/swmr_snapshot.mli: Memory Runtime
