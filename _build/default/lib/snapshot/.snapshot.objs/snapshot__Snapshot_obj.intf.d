lib/snapshot/snapshot_obj.mli: Memory Runtime
