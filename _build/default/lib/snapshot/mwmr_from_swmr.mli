(** A multi-writer multi-reader atomic register from single-writer
    registers — the construction behind the paper's "w.l.o.g. we assume
    that all atomic registers in A are SWMR [3,17,19,22]" (proof of
    Claim 1).

    Unbounded-timestamp version (Vitányi–Awerbuch style): each writer
    owns one SWMR register holding [(timestamp, writer_id, value)].

    - [write v]: collect all cells, pick a timestamp greater than every
      one seen, publish [(ts, me, v)] in one's own cell;
    - [read]: collect all cells, return the value of the
      lexicographically largest [(timestamp, writer_id)].

    Each cell's timestamp grows monotonically and a collect reads every
    cell, so reads never suffer new/old inversion; ties between
    concurrent writers are broken by id.  The test suite checks
    linearizability against a plain MWMR register spec across random
    schedules rather than trusting this argument. *)

module Value := Memory.Value

type t

val create : base:string -> writers:int array -> t
(** [writers.(i)] is the pid owning cell [i]. *)

val registers : t -> (string * Memory.Spec.t) list

val write : t -> me:int -> Value.t -> unit Runtime.Program.t
(** [me] is the caller's {e cell index} (its position in [writers]). *)

val read : t -> Value.t Runtime.Program.t
(** Returns the register's current value ([Value.unit] before any
    write). *)
