(** Wait-free atomic snapshot from SWMR registers.

    The unbounded-sequence-number construction of Afek, Attiya, Dolev,
    Gafni, Merritt and Shavit (1993): each segment is a SWMR register
    holding [(seq, value, embedded_view)].

    - [scan] performs repeated collects.  Two identical consecutive
      collects form a clean double collect and are returned directly.  A
      segment observed to change {e twice} during a scan must have
      completed a whole [update] inside the scan's interval, so its
      embedded view — itself a snapshot taken inside that interval — can
      be borrowed and returned.
    - [update] first scans, then writes the new value together with the
      obtained view and an incremented sequence number.

    Wait-freedom: with [n] processes, after [n+1] collects a scan has
    either seen a clean double collect or seen some segment move twice,
    so every scan terminates within [O(n²)] reads.

    The module exposes the construction as programs over the runtime DSL
    so executions are schedulable, explorable and linearizability-checked
    against the primitive {!Snapshot} object in the test suite. *)

module Value := Memory.Value

type t

val create : base:string -> owners:int array -> t
(** [owners.(i)] is the pid allowed to update segment [i]. *)

val registers : t -> (string * Memory.Spec.t) list
(** The SWMR register bindings to install in the store. *)

val segments : t -> int

val update : t -> segment:int -> Value.t -> unit Runtime.Program.t
val scan : t -> Value.t list Runtime.Program.t
(** Returns the segment values (without bookkeeping fields). *)
