(** Executable consensus-number analysis of finite object types.

    Herlihy's hierarchy [10] classifies object types by the number of
    processes among which one object (plus r/w registers) solves
    wait-free consensus.  For a finite object specification we can decide
    two useful facts mechanically:

    - {b Level 1 certificate}: if for every reachable state any two
      operations by different processes {e commute} or one {e overwrites}
      the other, the object cannot help two processes learn who came
      first, so together with r/w registers its consensus number is 1
      (Herlihy's interference argument).
    - {b 2-decider witness}: a reachable state and two operations whose
      responses each depend on the order — from such a witness a working
      2-consensus protocol is synthesized ({!derived_two_consensus}),
      proving consensus number ≥ 2 constructively.

    Experiment E6 runs this analysis over the {!Objects.Zoo} and checks
    it against the published consensus numbers. *)

module Value := Memory.Value

type witness = {
  state : Value.t;  (** a reachable state of the object *)
  op1 : Value.t;
  op2 : Value.t;
  resp1_first : Value.t;  (** response of [op1] when it goes first *)
  resp1_second : Value.t;  (** response of [op1] after [op2] *)
  resp2_first : Value.t;
  resp2_second : Value.t;
}

type classification =
  | Level_one
      (** all operation pairs commute or overwrite in every reachable
          state: consensus number 1 *)
  | At_least_two of witness
  | Inconclusive of string
      (** state space truncated, or interference analysis failed without
          yielding a decider (rare; the classifier is sound, not
          complete) *)

val classify :
  Memory.Spec.t -> ops:Value.t list -> ?state_limit:int -> unit ->
  classification

val pp_classification : Format.formatter -> classification -> unit

val derived_two_consensus :
  Memory.Spec.t -> witness -> inputs:Value.t list ->
  Protocols.Consensus.instance
(** Synthesize a 2-process consensus protocol from a decider witness: the
    object is driven to [witness.state]; process 0 performs [op1],
    process 1 performs [op2]; each tells from its response whether it was
    first and decides its own or the other's (pre-announced) input. *)
