module Value = Memory.Value
module Program = Runtime.Program
module Register = Objects.Register

type row = {
  object_name : string;
  published : string;
  verdict : Cons_number.classification;
  derived_protocol_ok : bool option;
}

let published_of = function
  | `Finite n -> string_of_int n
  | `Infinite -> "infinity"

let analyse (entry : Objects.Zoo.entry) =
  let verdict =
    Cons_number.classify entry.Objects.Zoo.spec ~ops:entry.Objects.Zoo.ops ()
  in
  let derived_protocol_ok =
    match verdict with
    | Cons_number.At_least_two w ->
      let inputs = [ Value.int 100; Value.int 200 ] in
      let instance =
        Cons_number.derived_two_consensus entry.Objects.Zoo.spec w ~inputs
      in
      Some
        (match Protocols.Consensus.explore_all instance ~max_steps:100 with
        | Ok _ -> true
        | Error _ -> false)
    | Cons_number.Level_one | Cons_number.Inconclusive _ -> None
  in
  {
    object_name = entry.Objects.Zoo.name;
    published = published_of entry.Objects.Zoo.herlihy_number;
    verdict;
    derived_protocol_ok;
  }

let table () = List.map analyse (Objects.Zoo.all ())

let pp_row ppf row =
  Fmt.pf ppf "%-22s published=%-9s %a%s" row.object_name row.published
    Cons_number.pp_classification row.verdict
    (match row.derived_protocol_ok with
    | Some true -> " [derived 2-consensus: verified]"
    | Some false -> " [derived 2-consensus: FAILED]"
    | None -> "")

let test_and_set_three_candidate =
  let inputs = [| Value.int 10; Value.int 20; Value.int 30 |] in
  let input_loc pid = Printf.sprintf "t3.in.%d" pid in
  let unwritten = Value.sym "unwritten" in
  let program pid =
    let open Program in
    complete
      (let* () = Register.write (input_loc pid) inputs.(pid) in
       let* won = Objects.Testset.test_and_set "t3.T" in
       if won then return inputs.(pid)
       else
         (* The loser knows *someone else* won but not who: guess the
            smallest pid that has written.  The guess is wrong under
            schedules where a larger pid won the race. *)
         let rec adopt q =
           if q >= 3 then return inputs.(pid)
           else if q = pid then adopt (q + 1)
           else
             let* v = Register.read (input_loc q) in
             if Value.equal v unwritten then adopt (q + 1) else return v
         in
         adopt 0)
  in
  {
    Protocols.Consensus.name = "test&set-3-consensus-candidate (must fail)";
    n = 3;
    inputs;
    bindings =
      ("t3.T", Objects.Testset.spec ())
      :: List.init 3 (fun pid ->
             (input_loc pid, Register.swmr ~owner:pid ~init:unwritten ()));
    program;
    step_bound = 5;
  }
