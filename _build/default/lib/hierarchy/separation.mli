(** The hierarchy separation experiments (E6): our machinery against the
    published consensus numbers.

    For each object in the zoo the row records (a) the classifier's
    verdict, (b) whether a synthesized 2-consensus protocol from its
    decider witness passes exhaustive checking, and (c) the published
    consensus number.  [test_and_set_three_candidate] is the natural —
    and necessarily broken — attempt to reach 3-process consensus from
    one test&set: the losers cannot tell {e which} of the other
    processes won.  Exhaustive search produces the violating schedule. *)

type row = {
  object_name : string;
  published : string;  (** consensus number from the literature *)
  verdict : Cons_number.classification;
  derived_protocol_ok : bool option;
      (** [Some true] when the synthesized 2-consensus protocol passed
          exhaustive checking; [None] for level-1 objects *)
}

val analyse : Objects.Zoo.entry -> row
val table : unit -> row list
val pp_row : Format.formatter -> row -> unit

val test_and_set_three_candidate : Protocols.Consensus.instance
(** Three processes, one test&set: winner decides its own input, losers
    adopt the input of the smallest pid that has written.  Fails under
    schedules where the winner is not that pid. *)
