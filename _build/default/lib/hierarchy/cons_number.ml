module Value = Memory.Value
module Spec = Memory.Spec

type witness = {
  state : Value.t;
  op1 : Value.t;
  op2 : Value.t;
  resp1_first : Value.t;
  resp1_second : Value.t;
  resp2_first : Value.t;
  resp2_second : Value.t;
}

type classification =
  | Level_one
  | At_least_two of witness
  | Inconclusive of string

(* Apply two operations in both orders; op1 is issued by pid 0 and op2 by
   pid 1 (mirroring two distinct contenders). *)
type order_probe = {
  s12 : Value.t;  (** state after op1 then op2 *)
  s21 : Value.t;
  s1 : Value.t;  (** state after op1 alone *)
  s2 : Value.t;
  r1f : Value.t;  (** op1's response going first *)
  r1s : Value.t;  (** op1's response going second *)
  r2f : Value.t;
  r2s : Value.t;
}

let probe spec state op1 op2 =
  let ( let* ) r f = Result.bind r f in
  let* s1, r1f = Spec.apply spec ~pid:0 state op1 in
  let* s12, r2s = Spec.apply spec ~pid:1 s1 op2 in
  let* s2, r2f = Spec.apply spec ~pid:1 state op2 in
  let* s21, r1s = Spec.apply spec ~pid:0 s2 op1 in
  Ok { s12; s21; s1; s2; r1f; r1s; r2f; r2s }

(* Herlihy's interference condition, made executable: the pair is
   harmless if the orders fully commute (states and both responses
   agree), or one operation obliterates the other (the state looks as if
   only the second ran, and the second's response is order-independent).
   Any of these lets the standard critical-configuration argument derive
   a contradiction, so an object all of whose reachable pairs are
   harmless has consensus number 1. *)
let harmless p =
  let commute =
    Value.equal p.s12 p.s21
    && Value.equal p.r1f p.r1s
    && Value.equal p.r2f p.r2s
  in
  let op2_obliterates =
    Value.equal p.s12 p.s2 && Value.equal p.r2f p.r2s
  in
  let op1_obliterates =
    Value.equal p.s21 p.s1 && Value.equal p.r1f p.r1s
  in
  commute || op2_obliterates || op1_obliterates

(* A decider: both contenders learn the order from their own response. *)
let decider p =
  (not (Value.equal p.r1f p.r1s)) && not (Value.equal p.r2f p.r2s)

let classify spec ~ops ?(state_limit = 2000) () =
  let states, truncated =
    Spec.reachable spec ~pids:[ 0; 1 ] ~ops ~limit:state_limit
  in
  let found_witness = ref None in
  let all_harmless = ref true in
  List.iter
    (fun state ->
      List.iter
        (fun op1 ->
          List.iter
            (fun op2 ->
              match probe spec state op1 op2 with
              | Error _ -> ()
              | Ok p ->
                if (not (harmless p)) then all_harmless := false;
                if decider p && !found_witness = None then
                  found_witness :=
                    Some
                      {
                        state;
                        op1;
                        op2;
                        resp1_first = p.r1f;
                        resp1_second = p.r1s;
                        resp2_first = p.r2f;
                        resp2_second = p.r2s;
                      })
            ops)
        ops)
    states;
  match !found_witness with
  | Some w -> At_least_two w
  | None ->
    if truncated then
      Inconclusive
        (Printf.sprintf "state space truncated at %d states" state_limit)
    else if !all_harmless then Level_one
    else
      Inconclusive
        "some pair neither commutes nor obliterates, but no two-sided \
         decider exists in the given op universe"

let pp_classification ppf = function
  | Level_one -> Fmt.string ppf "consensus number 1 (certified)"
  | At_least_two w ->
    Fmt.pf ppf "consensus number >= 2 (decider %a/%a at state %a)" Value.pp
      w.op1 Value.pp w.op2 Value.pp w.state
  | Inconclusive reason -> Fmt.pf ppf "inconclusive: %s" reason

let derived_two_consensus spec witness ~inputs =
  let inputs_arr = Array.of_list inputs in
  if Array.length inputs_arr <> 2 then
    invalid_arg "derived_two_consensus: exactly two inputs";
  let obj_loc = "hier.O" and input_loc pid = Printf.sprintf "hier.in.%d" pid in
  let obj_spec =
    Spec.make
      ~type_name:(spec.Spec.type_name ^ "@witness")
      ~init:witness.state ~apply:spec.Spec.apply
  in
  let program pid =
    let open Runtime.Program in
    let my_op = if pid = 0 then witness.op1 else witness.op2 in
    let first_resp =
      if pid = 0 then witness.resp1_first else witness.resp2_first
    in
    let other = 1 - pid in
    complete
      (let* () =
         Objects.Register.write (input_loc pid) inputs_arr.(pid)
       in
       let* resp = op obj_loc my_op in
       if Value.equal resp first_resp then return inputs_arr.(pid)
       else Objects.Register.read (input_loc other))
  in
  {
    Protocols.Consensus.name =
      Printf.sprintf "derived-2-consensus(%s)" spec.Spec.type_name;
    n = 2;
    inputs = inputs_arr;
    bindings =
      [
        (obj_loc, obj_spec);
        (input_loc 0, Objects.Register.swmr ~owner:0 ());
        (input_loc 1, Objects.Register.swmr ~owner:1 ());
      ];
    program;
    step_bound = 3;
  }
