lib/hierarchy/bivalency.ml: Array List Memory Protocols Runtime Set
