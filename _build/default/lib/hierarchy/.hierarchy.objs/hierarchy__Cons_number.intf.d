lib/hierarchy/cons_number.mli: Format Memory Protocols
