lib/hierarchy/bivalency.mli: Memory Protocols Runtime
