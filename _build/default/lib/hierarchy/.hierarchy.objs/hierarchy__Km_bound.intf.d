lib/hierarchy/km_bound.mli: Protocols
