lib/hierarchy/robustness.mli: Cons_number Memory Objects Protocols
