lib/hierarchy/robustness.ml: Array Cons_number List Memory Objects Printf Protocols Runtime
