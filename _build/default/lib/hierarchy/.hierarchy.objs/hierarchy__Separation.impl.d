lib/hierarchy/separation.ml: Array Cons_number Fmt List Memory Objects Printf Protocols Runtime
