lib/hierarchy/cons_number.ml: Array Fmt List Memory Objects Printf Protocols Result Runtime
