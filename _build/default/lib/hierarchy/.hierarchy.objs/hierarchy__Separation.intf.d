lib/hierarchy/separation.mli: Cons_number Format Objects Protocols
