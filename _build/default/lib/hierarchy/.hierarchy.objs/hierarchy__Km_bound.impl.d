lib/hierarchy/km_bound.ml: Array List Memory Objects Printf Protocols Runtime
