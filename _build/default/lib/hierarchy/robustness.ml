module Value = Memory.Value
module Program = Runtime.Program
module Register = Objects.Register

let left op = Value.pair (Value.sym "left") op
let right op = Value.pair (Value.sym "right") op

let compose (a : Memory.Spec.t) (b : Memory.Spec.t) =
  let apply ~pid state op =
    let sa, sb = Value.as_pair state in
    match op with
    | Value.Pair (Value.Sym "left", inner) -> (
      match a.Memory.Spec.apply ~pid sa inner with
      | Ok (sa', r) -> Ok (Value.pair sa' sb, r)
      | Error _ as e -> e)
    | Value.Pair (Value.Sym "right", inner) -> (
      match b.Memory.Spec.apply ~pid sb inner with
      | Ok (sb', r) -> Ok (Value.pair sa sb', r)
      | Error _ as e -> e)
    | _ -> Error ("composite: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make
    ~type_name:
      (Printf.sprintf "%s x %s" a.Memory.Spec.type_name b.Memory.Spec.type_name)
    ~init:(Value.pair a.Memory.Spec.init b.Memory.Spec.init)
    ~apply

let compose_ops ops_a ops_b = List.map left ops_a @ List.map right ops_b

let composite_classification (a : Objects.Zoo.entry) (b : Objects.Zoo.entry) =
  Cons_number.classify
    (compose a.Objects.Zoo.spec b.Objects.Zoo.spec)
    ~ops:(compose_ops a.Objects.Zoo.ops b.Objects.Zoo.ops)
    ()

let three_consensus_candidate =
  let inputs = [| Value.int 10; Value.int 20; Value.int 30 |] in
  let input_loc pid = Printf.sprintf "rob.in.%d" pid in
  let unwritten = Value.sym "unwritten" in
  let program pid =
    let open Program in
    complete
      (let* () = Register.write (input_loc pid) inputs.(pid) in
       let* won = Objects.Testset.test_and_set "rob.T" in
       if won then
         (* Publish victory through the queue, then decide own input. *)
         let* () = Objects.Queue_obj.enq "rob.Q" (Value.int pid) in
         return inputs.(pid)
       else
         (* Ask the queue who won; the winner may not have announced
            yet, in which case fall back to the smallest written input —
            the unfixable guess. *)
         let* tok = Objects.Queue_obj.deq "rob.Q" in
         match tok with
         | Some w ->
           let* () = Objects.Queue_obj.enq "rob.Q" w in
           Register.read (input_loc (Value.as_int w))
         | None ->
           let rec scan q =
             if q >= 3 then return inputs.(pid)
             else if q = pid then scan (q + 1)
             else
               let* v = Register.read (input_loc q) in
               if Value.equal v unwritten then scan (q + 1) else return v
           in
           scan 0)
  in
  {
    Protocols.Consensus.name =
      "3-consensus from test&set + queue (must fail)";
    n = 3;
    inputs;
    bindings =
      ("rob.T", Objects.Testset.spec ())
      :: ("rob.Q", Objects.Queue_obj.spec ())
      :: List.init 3 (fun pid ->
             (input_loc pid, Register.swmr ~owner:pid ~init:unwritten ()));
    program;
    step_bound = 8;
  }
