(** Probing the robustness of Herlihy's hierarchy (related work:
    Jayanti [14], Kleinberg & Mullainathan [16]).

    The robustness question: can objects of consensus number ≤ n,
    {e combined}, solve consensus for more than n processes?  We make
    the combination executable: {!compose} forms the product object
    (both components side by side, operations tagged left/right), and
    the classifier plus candidate protocols probe the composite:

    - composing level-1 objects stays level 1 (the interference
      certificate is closed under products — checked, not assumed);
    - composing two {e different} level-2 objects (test&set and a
      queue) still does not yield 3-consensus: the natural candidate
      fails on an exhaustively-found schedule.

    These are experiments, not proofs of robustness — exactly the state
    of the art the paper's related-work section describes (the general
    robustness question was open in 1994). *)

module Value := Memory.Value

val compose : Memory.Spec.t -> Memory.Spec.t -> Memory.Spec.t
(** The product object.  Operations are [Pair (Sym "left", op)] or
    [Pair (Sym "right", op)]; the state is the pair of component
    states; responses are the component's response. *)

val left : Value.t -> Value.t
val right : Value.t -> Value.t

val compose_ops : Value.t list -> Value.t list -> Value.t list
(** Tagged union of the component op universes, for the classifier. *)

val composite_classification :
  Objects.Zoo.entry -> Objects.Zoo.entry -> Cons_number.classification

val three_consensus_candidate : Protocols.Consensus.instance
(** Three processes, one test&set {e and} one queue (plus r/w
    registers): winner of the test&set decides its own input; losers
    try to learn the winner through the queue.  Fails — and exhaustive
    exploration produces the schedule. *)
