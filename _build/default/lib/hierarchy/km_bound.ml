module Value = Memory.Value
module Program = Runtime.Program
module Rmw = Objects.Rmw

let register = "km.R"
let free = Value.sym "free"

(* The k register values: free plus the k-1 election identities. *)
let rmw_spec ~k =
  let values = free :: List.init (k - 1) (fun i -> Value.int i) in
  let claim id =
    {
      Rmw.name = Printf.sprintf "claim%d" id;
      transform = (fun state -> if Value.equal state free then Value.int id else state);
    }
  in
  Rmw.spec ~type_name:(Printf.sprintf "rmw(%d)" k) ~values ~init:free
    ~ops:(List.init (k - 1) claim)

let from_bcl_register ~k ~inputs =
  let inputs = Array.of_list inputs in
  let m = Array.length inputs in
  if m > (k - 1) / 2 then
    invalid_arg
      (Printf.sprintf
         "Km_bound: %d-valued register supports binary consensus for at most \
          %d processes"
         k ((k - 1) / 2));
  let program pid =
    let open Program in
    let b = inputs.(pid) in
    let identity = (2 * pid) + if b then 1 else 0 in
    complete
      (let* old = Rmw.invoke register (Printf.sprintf "claim%d" identity) in
       let elected =
         if Value.equal old free then identity else Value.as_int old
       in
       return (Value.bool (elected mod 2 = 1)))
  in
  {
    Protocols.Consensus.name =
      Printf.sprintf "km-binary-consensus(k=%d,m=%d)" k m;
    n = m;
    inputs = Array.map Value.bool inputs;
    bindings = [ (register, rmw_spec ~k) ];
    program;
    step_bound = 1;
  }
