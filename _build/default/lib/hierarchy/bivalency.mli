(** The FLP/Herlihy bivalency adversary, made executable.

    For a candidate 2-process consensus protocol, a configuration is
    {e bivalent} when both decision values are still reachable under some
    schedule, {e univalent} otherwise.  The adversary repeatedly steps a
    process that keeps the configuration bivalent; for a correct wait-free
    protocol this must terminate in a {e critical configuration} — one
    whose every successor is univalent — and Herlihy's argument shows the
    two pending operations there must interfere through a strong object.

    [drive] computes the maximal bivalent path and analyses the critical
    configuration: for the test&set-based protocol the pending operations
    land on the test&set object; for r/w-only candidates no critical
    configuration with register operations can be consistent, and indeed
    [Protocols.Consensus.explore_all] finds an agreement violation or
    non-termination instead.  Experiment E6. *)

module Value := Memory.Value

val decision_values :
  Protocols.Consensus.instance -> Runtime.Engine.config -> Value.t list
(** All values decided by any process in any terminal configuration
    reachable from here.  Exponential; small instances only. *)

type verdict =
  | Critical of {
      path : int list;  (** pids stepped to reach the critical config *)
      pending : (int * string) list;
          (** each enabled pid with the location its next operation
              targets *)
      successor_valence : (int * Value.t) list;
          (** pid -> the unique value its step commits to *)
    }
  | Never_bivalent of Value.t list
      (** the initial configuration was already univalent (or worse) *)
  | Still_bivalent_at_bound of int

val drive : ?max_depth:int -> Protocols.Consensus.instance -> verdict

val pending_locations : Runtime.Engine.config -> (int * string) list
(** The shared-memory location each running process touches next. *)
