(** The constructive direction of Kleinberg & Mullainathan [16] (related
    work, §1): "if n processes can elect a leader with one copy of
    object O (without any other registers!) then this object can solve
    binary consensus among at most ⌊n/2⌋ processes."

    The transformation is identity-doubling: binary-consensus process
    [i] with input [b ∈ {0,1}] enters the election under identity
    [2i + b]; everyone decides the parity of the elected identity.
    Agreement follows from the election's agreement, validity because
    the elected identity was proposed — i.e. equals [2j + b_j] for a
    participating [j], whose input [b_j] is exactly the decided parity.

    Instantiated here with the Burns–Cruz–Loui election object (one
    k-valued RMW register, election capacity k−1): binary consensus for
    ⌊(k−1)/2⌋ processes using just that register. *)

val from_bcl_register : k:int -> inputs:bool list -> Protocols.Consensus.instance
(** Requires [length inputs <= (k-1)/2].  Decisions are [Bool]s encoded
    as [Value.bool]. *)
