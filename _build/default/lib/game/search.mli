(** Exact and heuristic adversaries for the move/jump game.

    [max_moves] computes, by memoized depth-first search over the finite
    abstract state space, the exact maximum number of moves achievable
    from a position before the painted edges contain a cycle — the
    quantity Lemma 1.1 bounds by [m^k].  Feasible up to roughly
    [m * k <= 10].

    The strategies produce long (not necessarily optimal) runs used by
    the benchmarks at larger sizes, and their runs feed the potential
    audit. *)

val max_moves : m:int -> k:int -> int
(** Maximum moves from the all-at-node-0 start, cycle-free throughout.
    The count does not include a final cycle-creating move (the run must
    stay acyclic, matching the lemma's "before the painted edges contain
    a cycle"). *)

val max_moves_from : Board.t -> int

val max_moves_no_jumps : m:int -> k:int -> int
(** Ablation: the same maximization with jumps forbidden.  Without jumps
    each agent can only descend the painted DAG, so the maximum
    collapses to roughly the longest path per agent — quantifying how
    much of the m^k budget the jump rule is responsible for. *)

type run = { actions : Board.action list; moves : int; final : Board.t }

val best_run : m:int -> k:int -> run
(** An {e optimal} adversary run: an action sequence achieving
    [max_moves ~m ~k], reconstructed from the memoized search.  Feeding
    it to {!Potential.audit_run} checks the Lemma 1.1 accounting on the
    worst case, not just on heuristic play. *)

val greedy_run : m:int -> k:int -> seed:int -> run
(** Randomized greedy adversary: prefers moves that do not create a
    cycle, jumping to refresh positions when stuck; stops when no
    cycle-free move exists. *)

val strategy_gap : m:int -> k:int -> seed:int -> int * int * int
(** [(greedy, exact, bound)] for small instances: the greedy run's move
    count, the exact maximum, and [m^k]. *)
