lib/game/potential.mli: Board
