lib/game/board.mli: Format
