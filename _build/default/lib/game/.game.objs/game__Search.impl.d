lib/game/search.ml: Board Hashtbl List Potential Random
