lib/game/search.mli: Board
