lib/game/board.ml: Array Buffer Char Fmt List
