lib/game/potential.ml: Array Board
