let max_moves_general ~allow_jumps board =
  let memo : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let rec go board =
    let key = Board.encode board in
    match Hashtbl.find_opt memo key with
    | Some best -> best
    | None ->
      (* The reachable state graph is acyclic (jump-only sequences
         strictly decrease eligibility bits; Lemma 1.1 rules out cycles
         containing moves), so plain memoization is sound. *)
      Hashtbl.add memo key 0;
      let best = ref 0 in
      List.iter
        (fun action ->
          match action with
          | Board.Jump _ when not allow_jumps -> ()
          | _ -> (
            match Board.apply board action with
            | Error _ -> ()
            | Ok board' ->
              if not (Board.has_cycle board') then begin
                let gain =
                  match action with Board.Move _ -> 1 | Board.Jump _ -> 0
                in
                let total = gain + go board' in
                if total > !best then best := total
              end))
        (Board.legal_actions board);
      Hashtbl.replace memo key !best;
      !best
  in
  go board

let max_moves_from board = max_moves_general ~allow_jumps:true board
let max_moves ~m ~k = max_moves_from (Board.create ~m ~k ())

let max_moves_no_jumps ~m ~k =
  max_moves_general ~allow_jumps:false (Board.create ~m ~k ())

type run = { actions : Board.action list; moves : int; final : Board.t }

let best_run ~m ~k =
  (* Memoize best values, then greedily walk the arg-max actions. *)
  let memo : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let rec value board =
    let key = Board.encode board in
    match Hashtbl.find_opt memo key with
    | Some best -> best
    | None ->
      Hashtbl.add memo key 0;
      let best = ref 0 in
      List.iter
        (fun action ->
          match Board.apply board action with
          | Error _ -> ()
          | Ok board' ->
            if not (Board.has_cycle board') then begin
              let gain =
                match action with Board.Move _ -> 1 | Board.Jump _ -> 0
              in
              let total = gain + value board' in
              if total > !best then best := total
            end)
        (Board.legal_actions board);
      Hashtbl.replace memo key !best;
      !best
  in
  let rec walk board actions =
    let target = value board in
    if target = 0 then
      { actions = List.rev actions; moves = Board.moves_made board; final = board }
    else
      let next =
        List.find_map
          (fun action ->
            match Board.apply board action with
            | Error _ -> None
            | Ok board' ->
              if Board.has_cycle board' then None
              else
                let gain =
                  match action with Board.Move _ -> 1 | Board.Jump _ -> 0
                in
                if gain + value board' = target then Some (action, board')
                else None)
          (Board.legal_actions board)
      in
      match next with
      | Some (action, board') -> walk board' (action :: actions)
      | None ->
        (* Cannot happen: the memoized value promised a continuation. *)
        { actions = List.rev actions; moves = Board.moves_made board; final = board }
  in
  walk (Board.create ~m ~k ()) []

let greedy_run ~m ~k ~seed =
  let rng = Random.State.make [| seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  let rec go board actions jumps_since_move =
    let acyclic_moves =
      List.filter
        (fun a ->
          match Board.apply board a with
          | Ok b -> not (Board.has_cycle b)
          | Error _ -> false)
        (Board.legal_moves board)
    in
    let jumps =
      List.filter
        (function Board.Jump _ -> true | Board.Move _ -> false)
        (Board.legal_actions board)
    in
    let choice =
      match (acyclic_moves, jumps) with
      | [], [] -> None
      | [], _ :: _ when jumps_since_move < 2 * m -> Some (pick jumps)
      | [], _ :: _ -> None
      | moves, [] -> Some (pick moves)
      | moves, jumps ->
        (* Mostly move; occasionally jump to refresh eligibility. *)
        if Random.State.int rng 4 = 0 then Some (pick jumps)
        else Some (pick moves)
    in
    match choice with
    | None -> { actions = List.rev actions; moves = Board.moves_made board; final = board }
    | Some action -> (
      match Board.apply board action with
      | Error _ -> { actions = List.rev actions; moves = Board.moves_made board; final = board }
      | Ok board' ->
        let jumps_since_move =
          match action with Board.Move _ -> 0 | Board.Jump _ -> jumps_since_move + 1
        in
        go board' (action :: actions) jumps_since_move)
  in
  go (Board.create ~m ~k ()) [] 0

let strategy_gap ~m ~k ~seed =
  let greedy = (greedy_run ~m ~k ~seed).moves in
  let exact = max_moves ~m ~k in
  (greedy, exact, Potential.weight_bound ~m ~k)
