type action = Move of int * int | Jump of int * int

type t = {
  m : int;
  k : int;
  positions : int array;  (** agent -> node *)
  painted : bool array array;  (** painted.(v).(u) : edge v→u painted *)
  eligibility : bool array array;
      (** eligibility.(agent).(node): has another agent moved to [node]
          since [agent] last visited it? *)
  moves : int;
}

let m t = t.m
let k t = t.k
let position t a = t.positions.(a)
let moves_made t = t.moves
let eligible t ~agent ~node = t.eligibility.(agent).(node)

let create ~m ~k ?positions () =
  if m < 1 || k < 2 then invalid_arg "Board.create: need m >= 1, k >= 2";
  let positions =
    match positions with
    | None -> Array.make m 0
    | Some p ->
      if Array.length p <> m || Array.exists (fun v -> v < 0 || v >= k) p then
        invalid_arg "Board.create: bad positions"
      else Array.copy p
  in
  {
    m;
    k;
    positions;
    painted = Array.make_matrix k k false;
    eligibility = Array.make_matrix m k false;
    moves = 0;
  }

let painted t =
  let acc = ref [] in
  for v = t.k - 1 downto 0 do
    for u = t.k - 1 downto 0 do
      if t.painted.(v).(u) then acc := (v, u) :: !acc
    done
  done;
  !acc

let legal t = function
  | Move (a, u) ->
    if a < 0 || a >= t.m then Error "no such agent"
    else if u < 0 || u >= t.k then Error "no such node"
    else if t.positions.(a) = u then Error "a move must change node"
    else Ok ()
  | Jump (a, u) ->
    if a < 0 || a >= t.m then Error "no such agent"
    else if u < 0 || u >= t.k then Error "no such node"
    else if t.positions.(a) = u then Error "a jump must change node"
    else if not t.eligibility.(a).(u) then
      Error "jump target not refreshed by another agent's move"
    else Ok ()

let copy_matrix mat = Array.map Array.copy mat

let apply t action =
  match legal t action with
  | Error _ as e -> e
  | Ok () ->
    let positions = Array.copy t.positions in
    let eligibility = copy_matrix t.eligibility in
    (match action with
    | Move (a, u) ->
      let v = positions.(a) in
      positions.(a) <- u;
      (* Leaving v and arriving at u reset this agent's eligibility for
         both; the move refreshes everyone else's eligibility for u. *)
      eligibility.(a).(v) <- false;
      for b = 0 to t.m - 1 do
        eligibility.(b).(u) <- b <> a
      done;
      let painted = copy_matrix t.painted in
      painted.(v).(u) <- true;
      Ok { t with positions; eligibility; painted; moves = t.moves + 1 }
    | Jump (a, u) ->
      let v = positions.(a) in
      positions.(a) <- u;
      eligibility.(a).(v) <- false;
      eligibility.(a).(u) <- false;
      Ok { t with positions; eligibility; moves = t.moves })

let legal_actions t =
  let acc = ref [] in
  for a = t.m - 1 downto 0 do
    for u = t.k - 1 downto 0 do
      if u <> t.positions.(a) then begin
        acc := Move (a, u) :: !acc;
        if t.eligibility.(a).(u) then acc := Jump (a, u) :: !acc
      end
    done
  done;
  !acc

let legal_moves t =
  List.filter (function Move _ -> true | Jump _ -> false) (legal_actions t)

let topological_order t =
  (* Kahn's algorithm on the painted graph; edges must go from higher to
     lower positions, so we assign positions in reverse removal order of
     sinks. *)
  let outdeg = Array.make t.k 0 in
  for v = 0 to t.k - 1 do
    for u = 0 to t.k - 1 do
      if t.painted.(v).(u) then outdeg.(v) <- outdeg.(v) + 1
    done
  done;
  let order = Array.make t.k (-1) in
  let removed = Array.make t.k false in
  let next_pos = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    for v = 0 to t.k - 1 do
      if (not removed.(v)) && outdeg.(v) = 0 then begin
        (* v is a sink of the remaining graph: lowest remaining position. *)
        order.(v) <- !next_pos;
        incr next_pos;
        removed.(v) <- true;
        for w = 0 to t.k - 1 do
          if (not removed.(w)) && t.painted.(w).(v) then
            outdeg.(w) <- outdeg.(w) - 1
        done;
        progress := true
      end
    done
  done;
  if !next_pos = t.k then Some order else None

let has_cycle t = topological_order t = None

let pp_action ppf = function
  | Move (a, u) -> Fmt.pf ppf "move(a%d -> n%d)" a u
  | Jump (a, u) -> Fmt.pf ppf "jump(a%d -> n%d)" a u

let pp ppf t =
  Fmt.pf ppf "@[<v>m=%d k=%d moves=%d@,positions: %a@,painted: %a@]" t.m t.k
    t.moves
    Fmt.(array ~sep:sp int)
    t.positions
    Fmt.(list ~sep:sp (pair ~sep:(any "->") int int))
    (painted t)

let encode t =
  let buf = Buffer.create (t.m + (t.k * t.k) + (t.m * t.k) + 8) in
  Array.iter (fun p -> Buffer.add_char buf (Char.chr (p + 48))) t.positions;
  Buffer.add_char buf '|';
  Array.iter
    (fun row ->
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) row)
    t.painted;
  Buffer.add_char buf '|';
  Array.iter
    (fun row ->
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) row)
    t.eligibility;
  Buffer.contents buf
