(** The potential-function argument of Lemma 1.1, checked on real runs.

    Fix the topological order of the {e final} (still acyclic) painted
    graph, with painted edges going from higher to lower positions.
    Give an agent standing at the node of position [j] weight [m^j] and
    let Φ be the sum of all agents' weights.  Then

    - initially Φ ≤ m · m^(k-1) = m^k;
    - every {e move} strictly decreases Φ (the mover drops to a strictly
      lower position in the final order — its painted edge must respect
      that order);
    - a {e jump} can increase Φ, but only to a node another agent just
      moved to, and the accounting still nets out (we check the per-move
      decrease ≥ 1 claim on replays);
    - Φ ≥ 0 always.

    Hence at most [m^k] moves before the first painted cycle. *)

val weight_bound : m:int -> k:int -> int
(** [m^k], the Lemma 1.1 bound.  Meaningful for [m >= 2]: with a single
    agent no jumps are ever enabled and the true maximum is the longest
    path, [k-1] (the emulation always has [m = (k-1)!+1 >= 2] agents). *)

val phi : order:int array -> Board.t -> int
(** Φ of a state w.r.t. a fixed topological order. *)

type audit = {
  initial_phi : int;
  bound : int;
  moves : int;
  monotone : bool;  (** every move decreased Φ by at least 1 *)
  amortized : bool;
      (** Φ + #moves never exceeded the initial Φ — the banked-budget form
          of the lemma's accounting: each move's decrease beyond 1 pays in
          advance for the at most m−1 jumps it enables *)
  final_phi : int;
}

val audit_run :
  init:Board.t -> actions:Board.action list -> (audit, string) result
(** Replay the action sequence (which must keep the painted graph
    acyclic), evaluate Φ against the final topological order at every
    step, and report.  [Error] if an action is illegal or a cycle
    appears. *)
