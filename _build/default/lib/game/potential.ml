let weight_bound ~m ~k =
  let rec pow acc i = if i = 0 then acc else pow (acc * m) (i - 1) in
  pow 1 k

let phi ~order board =
  let total = ref 0 in
  let rec pow acc i = if i = 0 then acc else pow (acc * Board.m board) (i - 1) in
  for a = 0 to Board.m board - 1 do
    total := !total + pow 1 order.(Board.position board a)
  done;
  !total

type audit = {
  initial_phi : int;
  bound : int;
  moves : int;
  monotone : bool;
  amortized : bool;
  final_phi : int;
}

let audit_run ~init ~actions =
  (* First replay to obtain the final painted graph and its topological
     order; then replay again, evaluating Φ against that fixed order. *)
  let rec replay board = function
    | [] -> Ok board
    | action :: rest -> (
      match Board.apply board action with
      | Error _ as e -> e
      | Ok board' ->
        if Board.has_cycle board' then
          Error "run painted a cycle (audit requires acyclic runs)"
        else replay board' rest)
  in
  match replay init actions with
  | Error _ as e -> e
  | Ok final -> (
    match Board.topological_order final with
    | None -> Error "final graph has a cycle"
    | Some order ->
      let initial_phi = phi ~order init in
      let rec audit board monotone amortized = function
        | [] -> Ok (monotone, amortized, board)
        | action :: rest -> (
          let before = phi ~order board in
          match Board.apply board action with
          | Error _ as e -> e
          | Ok board' ->
            let after = phi ~order board' in
            let monotone =
              match action with
              | Board.Move _ -> monotone && after <= before - 1
              | Board.Jump _ -> monotone
            in
            (* The Lemma 1.1 accounting: a move's decrease pays for the
               (at most m-1) jumps it enables, netting at least 1 per
               move, so Φ + #moves never exceeds the initial Φ. *)
            let amortized =
              amortized && after + Board.moves_made board' <= initial_phi
            in
            audit board' monotone amortized rest)
      in
      match audit init true true actions with
      | Error _ as e -> e
      | Ok (monotone, amortized, final') ->
        Ok
          {
            initial_phi;
            bound = weight_bound ~m:(Board.m init) ~k:(Board.k init);
            moves = Board.moves_made final';
            monotone;
            amortized;
            final_phi = phi ~order final';
          })
