(** The combinatorial move/jump game of Lemma 1.1 (due to Noga Alon).

    [m] agents sit on the nodes of a complete directed graph on [k]
    nodes.  Repeatedly, an agent may

    - {b Move} from its node [v] to another node [u], painting edge
      [v→u] (painted edges stay painted), or
    - {b Jump} to a node [u], allowed only if {e another} agent has moved
      to [u] since this agent last visited [u] (or ever, if it never
      visited [u]).

    The run of interest ends when the painted edges contain a directed
    cycle.  Lemma 1.1: at most [m^k] moves can occur first.

    In the emulation this game is the abstract heart of why an emulator
    can always extend the history: agents = emulators, nodes = register
    values, a painted cycle = a value cycle that suspended v-processes
    can traverse.

    The state deliberately abstracts time into a per-(agent, node)
    {e eligibility} bit — exactly the information the jump rule needs —
    so that the whole game is a finite state machine and exact maximum
    runs can be computed by memoized search ({!Search}). *)

type t
(** Immutable game state. *)

type action = Move of int * int | Jump of int * int
    (** [Move (agent, target)] / [Jump (agent, target)] *)

val create : m:int -> k:int -> ?positions:int array -> unit -> t
(** All agents start at node 0 unless [positions] is given. *)

val m : t -> int
val k : t -> int
val position : t -> int -> int
val painted : t -> (int * int) list
val moves_made : t -> int
val eligible : t -> agent:int -> node:int -> bool

val legal : t -> action -> (unit, string) result
val apply : t -> action -> (t, string) result
(** Applies a legal action; [Error] on an illegal one.  Applying a move
    that completes a painted cycle is allowed — check {!has_cycle}
    afterwards; the move count includes it. *)

val legal_actions : t -> action list
val legal_moves : t -> action list
(** Only the [Move] actions (the resource Lemma 1.1 counts). *)

val has_cycle : t -> bool
(** Do the painted edges contain a directed cycle? *)

val topological_order : t -> int array option
(** [Some order] with [order.(node)] = position (painted edges go from
    higher to lower positions, as in the Lemma 1.1 proof); [None] if the
    painted graph has a cycle. *)

val pp : Format.formatter -> t -> unit
val pp_action : Format.formatter -> action -> unit
val encode : t -> string
(** Canonical encoding of the abstract state (positions, painted edges,
    eligibility), used as a memoization key. *)
