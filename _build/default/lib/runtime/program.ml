module Value = Memory.Value

type prim =
  | Done of Value.t
  | Step of string * Value.t * (Value.t -> prim)

type 'a t = ('a -> prim) -> prim

let return x k = k x
let bind m f k = m (fun a -> f a k)
let map f m k = m (fun a -> k (f a))
let ( let* ) = bind
let ( let+ ) m f = map f m
let op loc o k = Step (loc, o, k)
let decide v _k = Done v

let rec list_iter f = function
  | [] -> return ()
  | x :: xs ->
    let* () = f x in
    list_iter f xs

let rec list_map f = function
  | [] -> return []
  | x :: xs ->
    let* y = f x in
    let* ys = list_map f xs in
    return (y :: ys)

let rec list_fold f acc = function
  | [] -> return acc
  | x :: xs ->
    let* acc = f acc x in
    list_fold f acc xs

let rec repeat_until body =
  let* r = body () in
  match r with Some x -> return x | None -> repeat_until body

let complete m = m (fun v -> Done v)

let run_sequential store ~pid prim =
  let rec go store = function
    | Done v -> Ok (store, v)
    | Step (loc, o, k) -> (
      match Memory.Store.apply store ~pid loc o with
      | Error _ as e -> e
      | Ok (store, res) -> (
        match k res with
        | exception Value.Type_error (want, got) ->
          Error
            (Printf.sprintf "type error: expected %s, got %s" want
               (Value.to_string got))
        | next -> go store next))
  in
  go store prim
