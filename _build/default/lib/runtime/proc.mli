(** A simulated process: a program plus its execution status. *)

type status =
  | Running
  | Decided of Memory.Value.t
  | Crashed  (** fail-stopped by the adversary; never scheduled again *)
  | Faulty of string
      (** the program misbehaved (bad operation, type error); counts as a
          protocol bug, never as a legal outcome *)

type t = {
  pid : int;
  prog : Program.prim;
  steps : int;  (** shared-memory operations this process has performed *)
  status : status;
}

val make : pid:int -> Program.prim -> t
(** Normalizes: a program that is immediately [Done] starts as [Decided]. *)

val is_running : t -> bool
val decision : t -> Memory.Value.t option
val pp_status : Format.formatter -> status -> unit
