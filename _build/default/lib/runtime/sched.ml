type t = { name : string; choose : time:int -> enabled:int list -> int }

let hd_exn = function
  | [] -> invalid_arg "Sched: empty enabled set"
  | pid :: _ -> pid

let round_robin () =
  let last = ref (-1) in
  let choose ~time:_ ~enabled =
    let next =
      match List.find_opt (fun pid -> pid > !last) enabled with
      | Some pid -> pid
      | None -> hd_exn enabled
    in
    last := next;
    next
  in
  { name = "round-robin"; choose }

let random ~seed =
  let state = Random.State.make [| seed |] in
  let choose ~time:_ ~enabled =
    List.nth enabled (Random.State.int state (List.length enabled))
  in
  { name = Printf.sprintf "random(%d)" seed; choose }

let fixed pids =
  let remaining = ref pids in
  let fallback = round_robin () in
  let rec choose ~time ~enabled =
    match !remaining with
    | [] -> fallback.choose ~time ~enabled
    | pid :: rest ->
      remaining := rest;
      if List.mem pid enabled then pid else choose ~time ~enabled
  in
  { name = "fixed"; choose }

let prioritize order =
  let choose ~time:_ ~enabled =
    match List.find_opt (fun pid -> List.mem pid enabled) order with
    | Some pid -> pid
    | None -> hd_exn enabled
  in
  { name = "prioritize"; choose }

let crashing ~crashed inner =
  let choose ~time ~enabled =
    match List.filter (fun pid -> not (List.mem pid crashed)) enabled with
    | [] -> inner.choose ~time ~enabled
    | alive -> inner.choose ~time ~enabled:alive
  in
  { name = inner.name ^ "+crash"; choose }
