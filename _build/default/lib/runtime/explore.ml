type stats = { terminals : int; truncated : int; max_depth : int }

exception Stop_exploration

let explore ?(max_steps = 10_000) ?(crash_faults = false) ?on_terminal
    ?on_truncated config =
  let terminals = ref 0 and truncated = ref 0 and max_depth = ref 0 in
  let emit hook n config =
    incr n;
    match hook with None -> () | Some f -> f config
  in
  let rec go config depth =
    if depth > !max_depth then max_depth := depth;
    match Engine.enabled config with
    | [] -> emit on_terminal terminals config
    | pids when depth >= max_steps ->
      ignore pids;
      emit on_truncated truncated config
    | pids ->
      List.iter
        (fun pid ->
          go (Engine.step config pid) (depth + 1);
          if crash_faults then go (Engine.crash config pid) depth)
        pids
  in
  go config 0;
  { terminals = !terminals; truncated = !truncated; max_depth = !max_depth }

type violation = { trace : Trace.t; message : string }

let check_all ?max_steps ?crash_faults config predicate =
  let failure = ref None in
  let record config message =
    failure := Some { trace = Engine.trace config; message };
    raise Stop_exploration
  in
  let on_terminal config =
    match predicate config with
    | Ok () -> ()
    | Error message -> record config message
  in
  let on_truncated config =
    record config "execution exceeded the step bound (possible livelock)"
  in
  match explore ?max_steps ?crash_faults ~on_terminal ~on_truncated config with
  | stats -> Ok stats
  | exception Stop_exploration -> (
    match !failure with
    | Some v -> Error v
    | None -> assert false)

let decision_sets ?max_steps config =
  let module Vls = Set.Make (struct
    type t = Memory.Value.t list

    let compare = List.compare Memory.Value.compare
  end) in
  let sets = ref Vls.empty in
  let on_terminal config =
    let ds =
      Array.to_list config.Engine.procs
      |> List.filter_map Proc.decision
      |> List.sort Memory.Value.compare
    in
    sets := Vls.add ds !sets
  in
  ignore (explore ?max_steps ~on_terminal config);
  Vls.elements !sets
