type event = {
  time : int;
  pid : int;
  loc : string;
  op : Memory.Value.t;
  result : Memory.Value.t;
}

type t = event list

let pp_event ppf e =
  Fmt.pf ppf "@[t=%d p%d %s %a -> %a@]" e.time e.pid e.loc Memory.Value.pp e.op
    Memory.Value.pp e.result

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_event) t
let by_pid t pid = List.filter (fun e -> e.pid = pid) t
let ops_on t loc = List.filter (fun e -> String.equal e.loc loc) t
let length = List.length
