(** Schedulers: the adversary controlling the interleaving.

    A scheduler sees the global time and the set of processes that still
    have a pending step and picks which one moves next.  It sees nothing
    else — the contents of memory are not an input, which keeps these
    schedulers oblivious; content-aware adversaries (e.g. the bivalency
    adversary) drive {!Engine.step} directly instead. *)

type t = { name : string; choose : time:int -> enabled:int list -> int }
(** [choose] is only called with a non-empty [enabled] list and must return
    a member of it. *)

val round_robin : unit -> t
(** Cycles through process ids in order.  Fresh internal cursor per call. *)

val random : seed:int -> t
(** Uniform choice among enabled processes, deterministic in [seed]. *)

val fixed : int list -> t
(** Follows the given pid sequence while its entries are enabled (skipping
    disabled ones); falls back to round-robin when exhausted. *)

val prioritize : int list -> t
(** Always runs the enabled process that appears earliest in the list;
    processes not listed are starved until all listed ones finish.  This is
    the "solo run" adversary used in wait-freedom tests. *)

val crashing : crashed:int list -> t -> t
(** Wraps a scheduler so that the given pids are never scheduled
    (fail-stop).  If only crashed processes remain enabled, the underlying
    scheduler is consulted anyway so the engine can terminate the run. *)
