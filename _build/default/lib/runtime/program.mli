(** Protocol programs.

    A process's code is a sequence of atomic shared-memory operations with
    local computation between them.  We represent it as a resumable step
    machine ({!prim}) and provide a continuation monad ({!type-t}) for
    writing protocols in direct style:

    {[
      let open Runtime.Program in
      let* v = op "r" (Objects.Register.read_op) in
      if Memory.Value.as_int v = 0 then decide (Memory.Value.int 1)
      else return ()
    ]}

    The execution engine owns all scheduling: a program only advances when
    the scheduler grants it a step, and each [op] is applied atomically.

    {b Purity requirement.}  Continuations must not capture mutable state:
    the exhaustive explorer ({!Explore}) resumes the same continuation
    along many interleaving branches, so captured refs would leak state
    between alternative schedules.  Thread loop state through recursion
    arguments instead. *)

module Value := Memory.Value

(** A resumable program: either finished with a decision value, or blocked
    on one shared-memory operation with a continuation awaiting the
    response. *)
type prim =
  | Done of Value.t
  | Step of string * Value.t * (Value.t -> prim)
      (** [Step (loc, op, k)] invokes [op] on the object at [loc]. *)

type 'a t
(** Monadic protocol fragment returning an ['a]. *)

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t

val op : string -> Value.t -> Value.t t
(** [op loc o] performs one atomic operation on the shared object at [loc]
    and returns its response. *)

val decide : Value.t -> 'a t
(** Terminate the whole program immediately with the given decision value,
    discarding the continuation. *)

val list_iter : ('a -> unit t) -> 'a list -> unit t
val list_map : ('a -> 'b t) -> 'a list -> 'b list t
val list_fold : ('acc -> 'a -> 'acc t) -> 'acc -> 'a list -> 'acc t

val repeat_until : (unit -> 'a option t) -> 'a t
(** [repeat_until body] runs [body] repeatedly until it returns [Some x].
    The loop itself consumes no steps; only the [op]s inside [body] do. *)

val complete : Value.t t -> prim
(** Close a program: its result becomes the decision value. *)

val run_sequential : Memory.Store.t -> pid:int -> prim ->
  (Memory.Store.t * Value.t, string) result
(** Run a program to completion alone against a store (no concurrency).
    Used by tests and by the replay checker. *)
