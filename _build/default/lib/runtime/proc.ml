type status =
  | Running
  | Decided of Memory.Value.t
  | Crashed
  | Faulty of string

type t = { pid : int; prog : Program.prim; steps : int; status : status }

let make ~pid prog =
  let status =
    match prog with Program.Done v -> Decided v | Program.Step _ -> Running
  in
  { pid; prog; steps = 0; status }

let is_running t = t.status = Running
let decision t = match t.status with Decided v -> Some v | _ -> None

let pp_status ppf = function
  | Running -> Fmt.string ppf "running"
  | Decided v -> Fmt.pf ppf "decided %a" Memory.Value.pp v
  | Crashed -> Fmt.string ppf "crashed"
  | Faulty msg -> Fmt.pf ppf "faulty (%s)" msg
