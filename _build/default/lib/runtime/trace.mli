(** Execution traces: the linearization order of shared-memory operations. *)

type event = {
  time : int;  (** global step number *)
  pid : int;
  loc : string;
  op : Memory.Value.t;
  result : Memory.Value.t;
}

type t = event list
(** Oldest event first. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

val by_pid : t -> int -> t
val ops_on : t -> string -> t
val length : t -> int
