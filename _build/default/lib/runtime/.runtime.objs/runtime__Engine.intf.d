lib/runtime/engine.mli: Memory Proc Program Sched Trace
