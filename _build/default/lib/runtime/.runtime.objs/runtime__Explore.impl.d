lib/runtime/explore.ml: Array Engine List Memory Proc Set Trace
