lib/runtime/explore.mli: Engine Memory Trace
