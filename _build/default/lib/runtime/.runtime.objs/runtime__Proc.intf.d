lib/runtime/proc.mli: Format Memory Program
