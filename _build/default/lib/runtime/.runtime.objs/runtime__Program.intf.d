lib/runtime/program.mli: Memory
