lib/runtime/sched.ml: List Printf Random
