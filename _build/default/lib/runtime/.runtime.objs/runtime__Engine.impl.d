lib/runtime/engine.ml: Array List Memory Printf Proc Program Sched Trace
