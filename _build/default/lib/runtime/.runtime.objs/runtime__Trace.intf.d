lib/runtime/trace.mli: Format Memory
