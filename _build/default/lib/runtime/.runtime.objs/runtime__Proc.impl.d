lib/runtime/proc.ml: Fmt Memory Program
