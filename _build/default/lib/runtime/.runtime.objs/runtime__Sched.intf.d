lib/runtime/sched.mli:
