lib/runtime/program.ml: Memory Printf
