lib/runtime/trace.ml: Fmt List Memory String
