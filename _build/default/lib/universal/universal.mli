(** Herlihy's universal construction [10], as modified to bounded form by
    Jayanti & Toueg [15] in spirit: a wait-free linearizable
    implementation of {e any} sequential object from consensus objects
    plus SWMR registers.

    This is the sense in which compare&swap is "universal" at the top of
    the hierarchy — and the construction consumes one consensus object
    per operation, so a {e bounded} compare&swap register cannot feed it
    forever: precisely the gap the paper's Theorem 1 quantifies.

    {2 Construction}

    The shared state is an agreed log of operations:

    - [cell i] — a consensus object (here compare&swap-based) deciding
      which announced operation is the [i]-th to apply;
    - [announce p] — a SWMR register where process [p] publishes its
      pending operation, tagged [(p, seq)];
    - processes repeatedly propose at the first undecided cell.  To make
      the construction wait-free, at cell [i] every process first tries
      to {e help} process [i mod n]: if that process has announced an
      operation not yet in the log, propose {e it} instead of one's own.
      Within [n] cells of announcing, every pending operation is decided
      into the log (either someone proposed it, or its turn as the helped
      process came up), so each invocation completes in [O(n)] cell
      rounds.

    An operation's response is computed by replaying the sequential
    specification over the decided log prefix. *)

module Value := Memory.Value

type t

val create : name:string -> spec:Memory.Spec.t -> n:int -> max_ops:int -> t
(** [spec] is the sequential object being implemented; [n] the number of
    client processes; [max_ops] bounds the log length (the simulation's
    substitute for unbounded memory — runs exceeding it become faulty
    processes, which tests would catch). *)

val bindings : t -> (string * Memory.Spec.t) list

val invoke : t -> pid:int -> seq:int -> Value.t -> Value.t Runtime.Program.t
(** [invoke t ~pid ~seq op] runs one high-level operation against the
    universal object and returns its (linearized) response.  [seq] must
    increase across the calling process's successive invocations. *)

val log_of_store : t -> Memory.Store.t -> (int * int * Value.t) list
(** The decided operation log [(pid, seq, op)], for tests. *)
