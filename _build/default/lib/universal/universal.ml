module Value = Memory.Value
module Program = Runtime.Program
module Register = Objects.Register
module Sticky = Objects.Sticky

type t = {
  name : string;
  spec : Memory.Spec.t;
  n : int;
  max_ops : int;
}

let create ~name ~spec ~n ~max_ops = { name; spec; n; max_ops }
let cell_loc t i = Printf.sprintf "%s.cell%d" t.name i
let announce_loc t p = Printf.sprintf "%s.ann%d" t.name p

let bindings t =
  List.init t.max_ops (fun i ->
      (* Consensus cells: sticky registers (write-once), Plotkin-style;
         each decides the i-th log entry exactly once. *)
      (cell_loc t i, Sticky.spec ()))
  @ List.init t.n (fun p ->
        (announce_loc t p, Register.swmr ~owner:p ~init:(Value.option None) ()))

let descriptor ~pid ~seq op = Value.triple (Value.int pid) (Value.int seq) op

let decode_descriptor d =
  let pid, seq, op = Value.as_triple d in
  (Value.as_int pid, Value.as_int seq, op)

(* Replay the sequential specification over a decided log prefix (oldest
   first); returns the response of the last operation. *)
let replay spec log =
  let rec go state last = function
    | [] -> last
    | (pid, _, op) :: rest -> (
      match Memory.Spec.apply spec ~pid state op with
      | Error msg -> failwith ("universal replay: " ^ msg)
      | Ok (state', resp) -> go state' (Some resp) rest)
  in
  match go spec.Memory.Spec.init None log with
  | Some resp -> resp
  | None -> failwith "universal replay: empty log"

let invoke t ~pid ~seq operation =
  let open Program in
  let mine = descriptor ~pid ~seq operation in
  let applied acc (p, s, _) =
    List.exists (fun (p', s', _) -> p = p' && s = s') acc
  in
  (* Walk the log from the start, accumulating decided entries (newest
     last).  At the first undecided cell, propose — helping the process
     whose turn it is at this cell, so every announced operation is
     decided within n cells. *)
  let rec walk i acc =
    if i >= t.max_ops then failwith "universal: log exhausted (max_ops)"
    else
      let* current = Sticky.read (cell_loc t i) in
      let* decided =
        if Value.equal current Sticky.bottom then
          let helped = i mod t.n in
          let* announced = Register.read (announce_loc t helped) in
          let proposal =
            match Value.as_option announced with
            | Some pending ->
              let s, o = Value.as_pair pending in
              let d = (helped, Value.as_int s, o) in
              if applied acc d || helped = pid then mine
              else descriptor ~pid:helped ~seq:(Value.as_int s) o
            | None -> mine
          in
          Sticky.sticky_write (cell_loc t i) proposal
        else return current
      in
      let entry = decode_descriptor decided in
      let acc = acc @ [ entry ] in
      let p, s, _ = entry in
      if p = pid && s = seq then return (replay t.spec acc)
      else walk (i + 1) acc
  in
  let* () =
    Register.write (announce_loc t pid)
      (Value.option (Some (Value.pair (Value.int seq) operation)))
  in
  walk 0 []

let log_of_store t store =
  let rec go i acc =
    if i >= t.max_ops then List.rev acc
    else
      match Memory.Store.peek store (cell_loc t i) with
      | None -> List.rev acc
      | Some v ->
        if Value.equal v Sticky.bottom then List.rev acc
        else go (i + 1) (decode_descriptor v :: acc)
  in
  go 0 []
