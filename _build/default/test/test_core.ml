(* Tests for the paper's core: alphabet, labels, bounds, the history
   tree, excess graphs, components, and the emulation itself. *)

module Value = Memory.Value
module Sigma = Core.Sigma
module Label = Core.Label
module Bounds = Core.Bounds
module Tree = Core.History_tree
module Excess = Core.Excess
module Vp_graph = Core.Vp_graph
module Emulation = Core.Emulation

let sigma_t : Sigma.t Alcotest.testable =
  Alcotest.testable Sigma.pp Sigma.equal

(* --- sigma --- *)

let test_sigma_alphabet () =
  Alcotest.(check int) "size" 4 (List.length (Sigma.all ~k:4));
  Alcotest.check sigma_t "bottom first" Sigma.Bot (List.hd (Sigma.all ~k:4));
  Alcotest.(check int) "non-bottom" 3 (List.length (Sigma.non_bottom ~k:4))

let test_sigma_index_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.check sigma_t "roundtrip"
        s
        (Sigma.of_index ~k:5 (Sigma.index ~k:5 s)))
    (Sigma.all ~k:5)

let test_sigma_value_roundtrip () =
  List.iter
    (fun s -> Alcotest.check sigma_t "roundtrip" s (Sigma.of_value (Sigma.to_value s)))
    (Sigma.all ~k:4)

(* --- label --- *)

let test_label_basics () =
  let l = Label.extend (Label.extend Label.root 2) 0 in
  Alcotest.(check bool) "mem" true (Label.mem 2 l);
  Alcotest.(check bool) "prefix" true (Label.is_prefix [ 2 ] l);
  Alcotest.(check bool) "not prefix" false (Label.is_prefix [ 0 ] l);
  Alcotest.(check bool) "compatible" true (Label.compatible [ 2 ] l);
  Alcotest.(check bool) "incompatible" false (Label.compatible [ 0 ] l);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Label.extend l 2);
       false
     with Invalid_argument _ -> true)

let test_label_budget () =
  Alcotest.(check int) "k=4: 3! labels" 6 (Label.max_labels ~k:4);
  Alcotest.(check int) "k=5: 4! labels" 24 (Label.max_labels ~k:5)

(* --- bounds --- *)

let test_bounds_closed_forms () =
  Alcotest.(check int) "m(k=3)" 3 (Bounds.emulators ~k:3);
  Alcotest.(check int) "m(k=4)" 7 (Bounds.emulators ~k:4);
  Alcotest.(check int) "lower(k=5)" 24 (Bounds.election_lower_bound ~k:5);
  Alcotest.(check int) "exponent(k=3)" 12 (Bounds.upper_bound_exponent ~k:3);
  Alcotest.(check string) "3^12" "531441" (Bounds.upper_bound_string ~k:3);
  Alcotest.(check string) "4^19" "274877906944" (Bounds.upper_bound_string ~k:4);
  Alcotest.(check int) "batch(k=3)" 27
    (Bounds.suspension_batch ~k:3 ~m:3);
  Alcotest.(check int) "game bound" 8 (Bounds.game_bound ~m:2 ~k:3)

let test_bounds_threshold () =
  (* λ_D = Σ_{g=1}^{D} g·m^g *)
  Alcotest.(check int) "depth 0" 0 (Bounds.threshold ~m:3 ~depth:0);
  Alcotest.(check int) "depth 1" 3 (Bounds.threshold ~m:3 ~depth:1);
  Alcotest.(check int) "depth 2" 21 (Bounds.threshold ~m:3 ~depth:2);
  Alcotest.(check int) "depth 3" 102 (Bounds.threshold ~m:3 ~depth:3)

let test_bounds_stable_weight () =
  (* σ_x = Σ_{i=2}^{x} m^i, σ_1 = 0 *)
  Alcotest.(check int) "sigma_1" 0 (Bounds.stable_weight ~m:3 1);
  Alcotest.(check int) "sigma_2" 9 (Bounds.stable_weight ~m:3 2);
  Alcotest.(check int) "sigma_3" 36 (Bounds.stable_weight ~m:3 3)

let test_upper_bound_string_grows () =
  let l3 = String.length (Bounds.upper_bound_string ~k:3) in
  let l5 = String.length (Bounds.upper_bound_string ~k:5) in
  let l7 = String.length (Bounds.upper_bound_string ~k:7) in
  Alcotest.(check bool) "monotone growth" true (l3 < l5 && l5 < l7)

(* --- history tree --- *)

let test_tree_initial () =
  let t = Tree.create () in
  Alcotest.(check int) "one label" 1 (List.length (Tree.active_labels t));
  Alcotest.(check bool) "root is leaf" true (Tree.is_leaf t Label.root);
  Alcotest.(check (list (module struct
      type t = Sigma.t list
      let pp = Fmt.Dump.list Sigma.pp
      let equal = List.equal Sigma.equal
    end))) "history = [bottom]"
    [ [ Sigma.Bot ] ]
    [ Tree.history t Label.root ]

let test_tree_activate_and_leaves () =
  let t = Tree.create () in
  let t = Tree.activate t ~parent:Label.root ~value:1 in
  let t = Tree.activate t ~parent:Label.root ~value:0 in
  Alcotest.(check bool) "root no longer leaf" false (Tree.is_leaf t Label.root);
  Alcotest.(check int) "two leaves" 2 (List.length (Tree.leaf_labels t));
  (* extend_to_leaf prefers the smallest first value. *)
  Alcotest.(check (list int)) "extends to smallest" [ 0 ]
    (Tree.extend_to_leaf t Label.root);
  (* idempotent *)
  let t' = Tree.activate t ~parent:Label.root ~value:0 in
  Alcotest.(check int) "activate idempotent" 2
    (List.length (Tree.leaf_labels t'))

let test_tree_attach_and_dfs () =
  let t = Tree.create () in
  (* Attach 0 directly under the root (⊥), then 1 under 0 with a return
     path through ⊥. *)
  let t, n0 =
    Tree.attach t ~label:Label.root ~parent_node:0 ~emu:0 ~seq:0
      ~value:(Sigma.V 0) ~from_parent:[] ~to_parent:[]
  in
  let t, _ =
    Tree.attach t ~label:Label.root ~parent_node:n0 ~emu:0 ~seq:1
      ~value:(Sigma.V 1) ~from_parent:[] ~to_parent:[ Sigma.Bot ]
  in
  let tree = Option.get (Tree.tree t Label.root) in
  (* Full DFS: ⊥ 0 1 (to_parent ⊥) 0 (back) ⊥ *)
  Alcotest.(check (list string)) "full dfs"
    [ "_|_"; "0"; "1"; "_|_"; "0"; "_|_" ]
    (List.map Sigma.to_string (Tree.dfs tree ~full:true));
  (* Cut at rightmost: ⊥ 0 1 *)
  Alcotest.(check (list string)) "cut dfs" [ "_|_"; "0"; "1" ]
    (List.map Sigma.to_string (Tree.dfs tree ~full:false));
  Alcotest.(check int) "rightmost is the deep node" 2 (Tree.rightmost tree);
  Alcotest.(check int) "depth" 2 (Tree.depth tree 2);
  Alcotest.(check (list int)) "ancestors" [ 2; 1; 0 ] (Tree.ancestors tree 2)

let test_tree_sibling_order () =
  let t = Tree.create () in
  (* Two emulators attach children of the root concurrently; sibling
     order is by (emulator, seq) whatever the attach order. *)
  let t, _ =
    Tree.attach t ~label:Label.root ~parent_node:0 ~emu:2 ~seq:0
      ~value:(Sigma.V 1) ~from_parent:[] ~to_parent:[]
  in
  let t, _ =
    Tree.attach t ~label:Label.root ~parent_node:0 ~emu:1 ~seq:0
      ~value:(Sigma.V 0) ~from_parent:[] ~to_parent:[]
  in
  let tree = Option.get (Tree.tree t Label.root) in
  Alcotest.(check (list string)) "dfs order by slot"
    [ "_|_"; "0"; "_|_"; "1"; "_|_" ]
    (List.map Sigma.to_string (Tree.dfs tree ~full:true))

let test_tree_multi_label_history () =
  let t = Tree.create () in
  let t = Tree.activate t ~parent:Label.root ~value:2 in
  let label = [ 2 ] in
  let t, _ =
    Tree.attach t ~label ~parent_node:0 ~emu:0 ~seq:0 ~value:(Sigma.V 0)
      ~from_parent:[] ~to_parent:[]
  in
  (* history of [2] = full dfs of t_root (just ⊥) then cut dfs of t_[2]. *)
  Alcotest.(check (list string)) "chained history" [ "_|_"; "2"; "0" ]
    (List.map Sigma.to_string (Tree.history t label))

(* --- excess graph --- *)

let entry vp edge = { Vp_graph.vp; edge; label = []; hist_len = 1; released = false }

let test_excess_weights () =
  let suspensions =
    [
      entry 0 (Sigma.Bot, Sigma.V 0);
      entry 1 (Sigma.Bot, Sigma.V 0);
      entry 2 (Sigma.V 0, Sigma.Bot);
      { (entry 3 (Sigma.Bot, Sigma.V 0)) with released = true };
    ]
  in
  let history = [ Sigma.Bot; Sigma.V 0; Sigma.Bot ] in
  let g = Excess.compute ~k:3 ~suspensions ~history in
  (* f+s-p: bottom->0: 2 unreleased + 1 released - 1 transition = 2 *)
  Alcotest.(check int) "bottom->0" 2 (Excess.weight g Sigma.Bot (Sigma.V 0));
  (* 0->bottom: 1 - 1 = 0 *)
  Alcotest.(check int) "0->bottom" 0 (Excess.weight g (Sigma.V 0) Sigma.Bot);
  Alcotest.(check int) "unused edge" 0 (Excess.weight g (Sigma.V 0) (Sigma.V 1))

let test_excess_transitions () =
  let h = [ Sigma.Bot; Sigma.V 0; Sigma.V 0; Sigma.V 1 ] in
  Alcotest.(check int) "skips equal-adjacent" 2
    (List.length (Excess.transitions h))

let test_excess_widest_and_paths () =
  let suspensions =
    List.concat_map
      (fun i -> [ entry i (Sigma.Bot, Sigma.V 0) ])
      [ 0; 1; 2 ]
    @ [ entry 3 (Sigma.V 0, Sigma.V 1); entry 4 (Sigma.V 1, Sigma.Bot);
        entry 5 (Sigma.V 1, Sigma.Bot) ]
  in
  let g = Excess.compute ~k:3 ~suspensions ~history:[ Sigma.Bot ] in
  (* Cycle ⊥ →(3) 0 →(1) 1 →(2) ⊥: bottleneck 1. *)
  Alcotest.(check int) "widest path bottom->1" 1
    (Excess.widest_path g Sigma.Bot (Sigma.V 1));
  Alcotest.(check int) "widest cycle through bottom,0" 1
    (Excess.widest_cycle_through g Sigma.Bot (Sigma.V 0));
  (match Excess.path_with_width g ~min_width:1 (Sigma.V 0) Sigma.Bot with
  | Some mids ->
    Alcotest.(check (list string)) "path 0->⊥ via 1" [ "1" ]
      (List.map Sigma.to_string mids)
  | None -> Alcotest.fail "path should exist");
  (match Excess.path_with_width g ~min_width:2 (Sigma.V 0) Sigma.Bot with
  | Some _ -> Alcotest.fail "no width-2 path exists"
  | None -> ());
  (* Direct edge: no intermediates. *)
  match Excess.path_with_width g ~min_width:3 Sigma.Bot (Sigma.V 0) with
  | Some [] -> ()
  | _ -> Alcotest.fail "direct edge expected"

let test_excess_debit () =
  let g =
    Excess.compute ~k:3
      ~suspensions:[ entry 0 (Sigma.Bot, Sigma.V 0) ]
      ~history:[ Sigma.Bot ]
  in
  let g' = Excess.debit g [ (Sigma.Bot, Sigma.V 0) ] in
  Alcotest.(check int) "debited" 0 (Excess.weight g' Sigma.Bot (Sigma.V 0));
  Alcotest.(check int) "original untouched" 1
    (Excess.weight g Sigma.Bot (Sigma.V 0))

let test_excess_cycle_to_self () =
  let suspensions =
    [ entry 0 (Sigma.Bot, Sigma.V 0); entry 1 (Sigma.V 0, Sigma.Bot) ]
  in
  let g = Excess.compute ~k:3 ~suspensions ~history:[ Sigma.Bot ] in
  Alcotest.(check int) "self cycle" 1 (Excess.widest_path g Sigma.Bot Sigma.Bot);
  match Excess.path_with_width g ~min_width:1 Sigma.Bot Sigma.Bot with
  | Some mids ->
    Alcotest.(check (list string)) "cycle intermediates" [ "0" ]
      (List.map Sigma.to_string mids)
  | None -> Alcotest.fail "cycle path should exist"

(* --- vp graph --- *)

let test_vp_graph_lifecycle () =
  let g = Vp_graph.create ~m:2 in
  let g =
    Vp_graph.suspend g ~emu:0 ~vp:7 ~edge:(Sigma.Bot, Sigma.V 0) ~label:[]
      ~hist_len:1
  in
  Alcotest.(check bool) "suspended" true (Vp_graph.is_suspended g ~emu:0 ~vp:7);
  Alcotest.(check (list int)) "listed" [ 7 ] (Vp_graph.suspended_vps g ~emu:0);
  Alcotest.(check int) "unreleased count" 1
    (Vp_graph.count_unreleased g ~label:[ 1 ] ~edge:(Sigma.Bot, Sigma.V 0));
  let g = Vp_graph.release g ~emu:0 ~vp:7 in
  Alcotest.(check bool) "released" false (Vp_graph.is_suspended g ~emu:0 ~vp:7);
  Alcotest.(check int) "released count" 1
    (Vp_graph.count_released g ~label:[] ~edge:(Sigma.Bot, Sigma.V 0));
  Alcotest.(check bool) "double release fails" true
    (try
       ignore (Vp_graph.release g ~emu:0 ~vp:7);
       false
     with Invalid_argument _ -> true)

let test_vp_graph_label_visibility () =
  let g = Vp_graph.create ~m:1 in
  let g =
    Vp_graph.suspend g ~emu:0 ~vp:1 ~edge:(Sigma.Bot, Sigma.V 0) ~label:[ 0 ]
      ~hist_len:2
  in
  Alcotest.(check int) "visible from extension" 1
    (List.length (Vp_graph.visible g ~label:[ 0; 1 ]));
  Alcotest.(check int) "invisible from other branch" 0
    (List.length (Vp_graph.visible g ~label:[ 1 ]))

(* --- components --- *)

let test_components_sccs () =
  let suspensions =
    [
      entry 0 (Sigma.Bot, Sigma.V 0);
      entry 1 (Sigma.V 0, Sigma.Bot);
      entry 2 (Sigma.V 1, Sigma.Bot);
    ]
  in
  let g = Excess.compute ~k:3 ~suspensions ~history:[ Sigma.Bot ] in
  let comps =
    Core.Components.sccs g ~min_weight:1 ~nodes:(Sigma.all ~k:3)
  in
  (* {⊥,0} strongly connected; {1} alone. *)
  Alcotest.(check int) "two components" 2 (List.length comps);
  Alcotest.(check bool) "pair component" true
    (List.exists (fun c -> List.length c = 2) comps)

let test_components_stability () =
  let g =
    Excess.compute ~k:3
      ~suspensions:
        (List.concat_map
           (fun i ->
             [ entry (2 * i) (Sigma.Bot, Sigma.V 0);
               entry ((2 * i) + 1) (Sigma.V 0, Sigma.Bot) ])
           [ 0; 1; 2; 3; 4 ])
      ~history:[ Sigma.Bot ]
  in
  Alcotest.(check bool) "singleton stable" true
    (Core.Components.is_stable g ~m:2 [ Sigma.V 1 ]);
  Alcotest.(check bool) "2-cycle super stable" true
    (Core.Components.is_super_stable g ~m:2 [ Sigma.Bot; Sigma.V 0 ])

(* --- emulation --- *)

let over_cap k vps = Core.Workloads.over_capacity_cas_election ~k ~num_vps:vps
let small k = Emulation.small_params ~k

let mechanical_audits =
  (* The audits that must be clean on every run; same-label-agreement is
     meaningful only for election As and stable-chain is reported, not
     asserted (see DESIGN.md). *)
  [ "label-budget"; "history-well-formed"; "history-backed"; "release-margin";
    "reads-justified" ]

let assert_clean_audits ?(extra = []) t =
  List.iter
    (fun (name, violations) ->
      if List.mem name (mechanical_audits @ extra) && violations <> [] then
        Alcotest.fail
          (Fmt.str "audit %s: %a" name
             Fmt.(list ~sep:comma Core.Invariants.pp_violation)
             violations))
    (Core.Invariants.all t)

let test_emulation_over_capacity_basic () =
  List.iter
    (fun seed ->
      let o = Emulation.run ~seed (Emulation.create (over_cap 3 120) (small 3)) in
      Alcotest.(check int) "all emulators decide" 3
        (List.length o.Emulation.decisions);
      Alcotest.(check bool) "width within (k-1)!" true
        (List.length o.Emulation.distinct_decisions <= 2);
      assert_clean_audits ~extra:[ "same-label-agreement" ] o.Emulation.final)
    [ 0; 1; 2; 3; 4 ]

let test_emulation_staleview_splits () =
  let o = Emulation.run_staleview (Emulation.create (over_cap 4 280) (small 4)) in
  let stats = Emulation.stats o.Emulation.final in
  Alcotest.(check bool) "several groups split" true (stats.Emulation.splits >= 2);
  Alcotest.(check bool) "width within (k-1)!" true
    (List.length o.Emulation.distinct_decisions <= 6);
  Alcotest.(check bool) "width manufactured > 1" true
    (List.length o.Emulation.distinct_decisions > 1);
  assert_clean_audits ~extra:[ "same-label-agreement" ] o.Emulation.final

let test_emulation_cycling_machinery () =
  let alg = Core.Workloads.cycling ~k:3 ~rounds:1 ~num_vps:120 in
  let o = Emulation.run ~seed:3 (Emulation.create alg (small 3)) in
  let stats = Emulation.stats o.Emulation.final in
  Alcotest.(check bool) "attaches happened" true (stats.Emulation.attaches > 0);
  Alcotest.(check bool) "releases happened" true (stats.Emulation.releases > 0);
  assert_clean_audits o.Emulation.final;
  (* Witness runs exist for every leaf label. *)
  List.iter
    (fun (rep : Core.Replay.report) ->
      Alcotest.(check bool)
        (Fmt.str "witness for %s" (Label.to_string rep.Core.Replay.label))
        true rep.Core.Replay.feasible)
    (Core.Replay.check_all_leaves o.Emulation.final)

let test_emulation_vp_timelines () =
  (* Every v-process's response sequence must embed monotonically into
     its run's history — the per-process half of run legality. *)
  List.iter
    (fun (alg, seed) ->
      let o = Emulation.run ~seed (Emulation.create alg (small 3)) in
      match Core.Replay.vp_timelines o.Emulation.final with
      | [] -> ()
      | v :: _ ->
        Alcotest.fail
          (Printf.sprintf "vp %d (label %s) op %d: %s" v.Core.Replay.vp
             (Label.to_string v.Core.Replay.label)
             v.Core.Replay.at v.Core.Replay.reason))
    [
      (Core.Workloads.cycling ~k:3 ~rounds:1 ~num_vps:120, 0);
      (Core.Workloads.cycling ~k:3 ~rounds:1 ~num_vps:120, 5);
      (Core.Workloads.cycling ~k:3 ~rounds:2 ~num_vps:240, 1);
      (over_cap 3 120, 2);
    ]

let test_emulation_cycling_seeds () =
  List.iter
    (fun seed ->
      let alg = Core.Workloads.cycling ~k:3 ~rounds:1 ~num_vps:120 in
      let o = Emulation.run ~seed (Emulation.create alg (small 3)) in
      assert_clean_audits o.Emulation.final;
      List.iter
        (fun rep ->
          Alcotest.(check bool) "witness feasible" true rep.Core.Replay.feasible)
        (Core.Replay.check_all_leaves o.Emulation.final))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_emulation_under_provisioned_stalls () =
  (* Far too few v-processes: the emulation must stall rather than
     fabricate history — the observable face of the space bound. *)
  let alg = Core.Workloads.cycling ~k:3 ~rounds:5 ~num_vps:12 in
  let o = Emulation.run ~seed:0 (Emulation.create alg (small 3)) in
  Alcotest.(check bool) "some emulator stalled or undecided" true
    (o.Emulation.stalled <> [] || List.length o.Emulation.decisions < 3);
  assert_clean_audits o.Emulation.final

let test_emulation_random_staleness () =
  (* Drive the emulation with plan/commit split: every step executes
     against a randomly chosen recent snapshot (up to 3 states old).
     This is a strictly more adversarial interleaving than run/step;
     all mechanical audits must still hold. *)
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let alg = over_cap 3 120 in
      let t0 = Emulation.create alg (small 3) in
      (* Staleness must respect each emulator's own causality: a process
         rereading shared memory always sees its own previous writes, so
         emulator j's view may be any state not older than j's last
         step. *)
      let states = ref [| t0 |] in
      let last = Array.make 3 0 in
      let rec drive t steps =
        if steps = 0 then t
        else
          let pending =
            List.filter_map
              (fun (v : Emulation.emulator_view) ->
                if v.Emulation.decided = None then Some v.Emulation.id else None)
              (Emulation.emulators t)
          in
          match pending with
          | [] -> t
          | _ ->
            let j = List.nth pending (Random.State.int rng (List.length pending)) in
            let newest = Array.length !states - 1 in
            let idx =
              last.(j) + Random.State.int rng (newest - last.(j) + 1)
            in
            let view = !states.(idx) in
            let t' = Emulation.plan view ~emu:j t in
            states := Array.append !states [| t' |];
            last.(j) <- Array.length !states - 1;
            drive t' (steps - 1)
      in
      let final = drive t0 400 in
      List.iter
        (fun (name, violations) ->
          if List.mem name mechanical_audits && violations <> [] then
            Alcotest.fail
              (Fmt.str "seed %d audit %s: %a" seed name
                 Fmt.(list ~sep:(any ", ") Core.Invariants.pp_violation)
                 violations))
        (Core.Invariants.all final);
      (* Width still within the label budget even under maximal
         staleness. *)
      let decided =
        List.filter_map
          (fun (v : Emulation.emulator_view) -> v.Emulation.decided)
          (Emulation.emulators final)
        |> List.sort_uniq Value.compare
      in
      Alcotest.(check bool) "width bounded" true (List.length decided <= 2))
    [ 0; 1; 2; 3; 4 ]

let test_reduction_report () =
  let r =
    Core.Reduction.check ~seed:1 ~schedule:`Stale_view (over_cap 4 280)
      (small 4)
  in
  Alcotest.(check bool) "width <= max" true
    (r.Core.Reduction.width <= r.Core.Reduction.max_width);
  Alcotest.(check bool) "same-label consistent" true
    r.Core.Reduction.same_label_consistent;
  Alcotest.(check bool) "all settled" true r.Core.Reduction.all_settled;
  Alcotest.(check int) "max width = (k-1)!" 6 r.Core.Reduction.max_width

let test_reduction_scales_to_k6 () =
  (* 121 emulators, 2420 v-processes: the reduction's mechanics scale
     and every group still satisfies the budget and agreement. *)
  let r =
    Core.Reduction.check ~seed:0 ~schedule:`Stale_view
      (Core.Workloads.over_capacity_cas_election ~k:6 ~num_vps:2420)
      (Emulation.small_params ~k:6)
  in
  Alcotest.(check int) "m = 121" 121
    (List.length r.Core.Reduction.outcome.Core.Emulation.decisions
    + List.length r.Core.Reduction.outcome.Core.Emulation.stalled
    + List.length
        (List.filter
           (fun (v : Emulation.emulator_view) ->
             v.Emulation.decided = None && not v.Emulation.stalled)
           (Emulation.emulators r.Core.Reduction.outcome.Core.Emulation.final)));
  Alcotest.(check bool) "k-1 groups formed" true
    (r.Core.Reduction.labels_used = 5);
  Alcotest.(check bool) "within budget" true
    (r.Core.Reduction.width <= 120);
  Alcotest.(check bool) "consistent" true
    r.Core.Reduction.same_label_consistent

let test_reduction_schedules_agree_on_bounds () =
  List.iter
    (fun schedule ->
      let r = Core.Reduction.check ~seed:2 ~schedule (over_cap 3 120) (small 3) in
      Alcotest.(check bool) "width bounded" true
        (r.Core.Reduction.width <= r.Core.Reduction.max_width))
    [ `Random; `Round_robin; `Stale_view ]

let () =
  Alcotest.run "core"
    [
      ( "sigma",
        [
          Alcotest.test_case "alphabet" `Quick test_sigma_alphabet;
          Alcotest.test_case "index roundtrip" `Quick test_sigma_index_roundtrip;
          Alcotest.test_case "value roundtrip" `Quick test_sigma_value_roundtrip;
        ] );
      ( "label",
        [
          Alcotest.test_case "basics" `Quick test_label_basics;
          Alcotest.test_case "budget" `Quick test_label_budget;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "closed forms" `Quick test_bounds_closed_forms;
          Alcotest.test_case "thresholds" `Quick test_bounds_threshold;
          Alcotest.test_case "stable weights" `Quick test_bounds_stable_weight;
          Alcotest.test_case "bignum growth" `Quick
            test_upper_bound_string_grows;
        ] );
      ( "history-tree",
        [
          Alcotest.test_case "initial" `Quick test_tree_initial;
          Alcotest.test_case "activate/leaves" `Quick
            test_tree_activate_and_leaves;
          Alcotest.test_case "attach and DFS" `Quick test_tree_attach_and_dfs;
          Alcotest.test_case "sibling order" `Quick test_tree_sibling_order;
          Alcotest.test_case "multi-label history" `Quick
            test_tree_multi_label_history;
        ] );
      ( "excess",
        [
          Alcotest.test_case "weights" `Quick test_excess_weights;
          Alcotest.test_case "transitions" `Quick test_excess_transitions;
          Alcotest.test_case "widest paths" `Quick test_excess_widest_and_paths;
          Alcotest.test_case "debit" `Quick test_excess_debit;
          Alcotest.test_case "cycle to self" `Quick test_excess_cycle_to_self;
        ] );
      ( "vp-graph",
        [
          Alcotest.test_case "lifecycle" `Quick test_vp_graph_lifecycle;
          Alcotest.test_case "label visibility" `Quick
            test_vp_graph_label_visibility;
        ] );
      ( "components",
        [
          Alcotest.test_case "sccs" `Quick test_components_sccs;
          Alcotest.test_case "stability" `Quick test_components_stability;
        ] );
      ( "emulation",
        [
          Alcotest.test_case "over-capacity basic" `Quick
            test_emulation_over_capacity_basic;
          Alcotest.test_case "stale-view splits groups" `Quick
            test_emulation_staleview_splits;
          Alcotest.test_case "cycling exercises machinery" `Quick
            test_emulation_cycling_machinery;
          Alcotest.test_case "vp timelines embed" `Quick
            test_emulation_vp_timelines;
          Alcotest.test_case "cycling audit sweep" `Slow
            test_emulation_cycling_seeds;
          Alcotest.test_case "under-provisioning stalls" `Quick
            test_emulation_under_provisioned_stalls;
          Alcotest.test_case "random staleness keeps invariants" `Quick
            test_emulation_random_staleness;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "report" `Quick test_reduction_report;
          Alcotest.test_case "schedules bounded" `Quick
            test_reduction_schedules_agree_on_bounds;
          Alcotest.test_case "scales to k=6 (121 emulators)" `Slow
            test_reduction_scales_to_k6;
        ] );
    ]
