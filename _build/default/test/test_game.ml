(* Tests for the Lemma 1.1 move/jump game. *)

module Board = Game.Board
module Potential = Game.Potential
module Search = Game.Search

let apply_exn board action =
  match Board.apply board action with
  | Ok b -> b
  | Error e -> Alcotest.fail e

let test_move_paints () =
  let b = Board.create ~m:1 ~k:3 () in
  let b = apply_exn b (Board.Move (0, 1)) in
  Alcotest.(check int) "one move" 1 (Board.moves_made b);
  Alcotest.(check (list (pair int int))) "edge painted" [ (0, 1) ]
    (Board.painted b);
  Alcotest.(check int) "agent moved" 1 (Board.position b 0)

let test_move_to_self_illegal () =
  let b = Board.create ~m:1 ~k:3 () in
  match Board.apply b (Board.Move (0, 0)) with
  | Ok _ -> Alcotest.fail "self move accepted"
  | Error _ -> ()

let test_jump_needs_refresh () =
  let b = Board.create ~m:2 ~k:3 ~positions:[| 0; 2 |] () in
  (* Agent 1 cannot jump to 1 before anyone moved there. *)
  (match Board.apply b (Board.Jump (1, 1)) with
  | Ok _ -> Alcotest.fail "jump without refresh accepted"
  | Error _ -> ());
  (* Agent 0 moves to 1: now agent 1 may jump there. *)
  let b = apply_exn b (Board.Move (0, 1)) in
  Alcotest.(check bool) "eligible" true (Board.eligible b ~agent:1 ~node:1);
  let b = apply_exn b (Board.Jump (1, 1)) in
  Alcotest.(check int) "jumped" 1 (Board.position b 1);
  Alcotest.(check int) "jump does not count as move" 1 (Board.moves_made b);
  (* Eligibility is consumed. *)
  Alcotest.(check bool) "consumed" false (Board.eligible b ~agent:1 ~node:1)

let test_own_move_does_not_enable_self () =
  let b = Board.create ~m:2 ~k:3 () in
  let b = apply_exn b (Board.Move (0, 1)) in
  (* Agent 0's own move to 1 does not let agent 0 jump back later. *)
  Alcotest.(check bool) "not self-enabled" false
    (Board.eligible b ~agent:0 ~node:1)

let test_cycle_detection () =
  let b = Board.create ~m:1 ~k:3 () in
  let b = apply_exn b (Board.Move (0, 1)) in
  Alcotest.(check bool) "acyclic" false (Board.has_cycle b);
  let b = apply_exn b (Board.Move (0, 2)) in
  Alcotest.(check bool) "still acyclic" false (Board.has_cycle b);
  let b = apply_exn b (Board.Move (0, 0)) in
  Alcotest.(check bool) "cycle 0->1->2->0" true (Board.has_cycle b)

let test_topological_order () =
  let b = Board.create ~m:1 ~k:3 () in
  let b = apply_exn b (Board.Move (0, 1)) in
  let b = apply_exn b (Board.Move (0, 2)) in
  match Board.topological_order b with
  | None -> Alcotest.fail "acyclic graph has an order"
  | Some order ->
    (* Edges 0->1, 1->2 must go from higher to lower positions. *)
    Alcotest.(check bool) "0 above 1" true (order.(0) > order.(1));
    Alcotest.(check bool) "1 above 2" true (order.(1) > order.(2))

let test_legal_actions_consistency () =
  let b = Board.create ~m:2 ~k:3 () in
  let actions = Board.legal_actions b in
  List.iter
    (fun a ->
      match Board.apply b a with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Fmt.str "%a: %s" Board.pp_action a e))
    actions;
  (* Initially: each agent can move to 2 nodes, no jumps. *)
  Alcotest.(check int) "4 moves" 4 (List.length actions)

let test_encode_distinguishes () =
  let b = Board.create ~m:2 ~k:3 () in
  let b1 = apply_exn b (Board.Move (0, 1)) in
  Alcotest.(check bool) "different states differ" true
    (Board.encode b <> Board.encode b1);
  Alcotest.(check string) "same state same encoding" (Board.encode b)
    (Board.encode (Board.create ~m:2 ~k:3 ()))

(* --- the Lemma 1.1 bound --- *)

let test_exact_max_within_bound () =
  List.iter
    (fun (m, k) ->
      let exact = Search.max_moves ~m ~k in
      let bound = Potential.weight_bound ~m ~k in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d k=%d: exact %d <= %d" m k exact bound)
        true (exact <= bound);
      Alcotest.(check bool) "positive" true (exact >= 1))
    [ (2, 2); (2, 3); (3, 2); (3, 3); (2, 4) ]

let test_single_agent_longest_path () =
  (* With one agent, no jump is ever enabled: the max is the longest
     repaint-free descent, k-1 (documented m=1 exception to m^k). *)
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "m=1 k=%d" k)
        (k - 1)
        (Search.max_moves ~m:1 ~k))
    [ 2; 3; 4 ]

let test_jumps_add_power () =
  (* Two agents beat one: jumps reuse painted structure. *)
  let one = Search.max_moves ~m:1 ~k:3 in
  let two = Search.max_moves ~m:2 ~k:3 in
  Alcotest.(check bool) "m=2 strictly better" true (two > one)

let test_greedy_below_exact () =
  List.iter
    (fun (m, k) ->
      let greedy, exact, bound = Search.strategy_gap ~m ~k ~seed:17 in
      Alcotest.(check bool) "greedy <= exact" true (greedy <= exact);
      Alcotest.(check bool) "exact <= bound" true (exact <= bound))
    [ (2, 3); (3, 3) ]

let prop_greedy_runs_within_bound =
  QCheck.Test.make ~name:"greedy runs never exceed m^k" ~count:50
    (QCheck.triple (QCheck.int_range 2 3) (QCheck.int_range 2 4)
       (QCheck.int_bound 10_000))
    (fun (m, k, seed) ->
      let run = Search.greedy_run ~m ~k ~seed in
      run.Search.moves <= Potential.weight_bound ~m ~k)

let prop_potential_audit =
  QCheck.Test.make ~name:"potential audit: monotone and amortized" ~count:50
    (QCheck.triple (QCheck.int_range 2 3) (QCheck.int_range 3 4)
       (QCheck.int_bound 10_000))
    (fun (m, k, seed) ->
      let run = Search.greedy_run ~m ~k ~seed in
      match
        Potential.audit_run
          ~init:(Board.create ~m ~k ())
          ~actions:run.Search.actions
      with
      | Ok audit ->
        audit.Potential.monotone && audit.Potential.amortized
        && audit.Potential.initial_phi <= Potential.weight_bound ~m ~k
        && audit.Potential.final_phi >= 0
      | Error e -> QCheck.Test.fail_report e)

let test_best_run_is_optimal_and_audits () =
  List.iter
    (fun (m, k) ->
      let run = Search.best_run ~m ~k in
      Alcotest.(check int)
        (Printf.sprintf "best run reaches the max (m=%d k=%d)" m k)
        (Search.max_moves ~m ~k) run.Search.moves;
      match
        Potential.audit_run ~init:(Board.create ~m ~k ())
          ~actions:run.Search.actions
      with
      | Ok audit ->
        Alcotest.(check bool) "monotone on optimal play" true
          audit.Potential.monotone;
        Alcotest.(check bool) "amortized on optimal play" true
          audit.Potential.amortized
      | Error e -> Alcotest.fail e)
    [ (2, 2); (2, 3); (3, 3); (2, 4) ]

let test_audit_rejects_cyclic_runs () =
  let actions = [ Board.Move (0, 1); Board.Move (0, 0) ] in
  match
    Potential.audit_run ~init:(Board.create ~m:1 ~k:2 ()) ~actions
  with
  | Ok _ -> Alcotest.fail "cyclic run audited"
  | Error _ -> ()

let () =
  Alcotest.run "game"
    [
      ( "board",
        [
          Alcotest.test_case "move paints" `Quick test_move_paints;
          Alcotest.test_case "self move illegal" `Quick
            test_move_to_self_illegal;
          Alcotest.test_case "jump eligibility lifecycle" `Quick
            test_jump_needs_refresh;
          Alcotest.test_case "own move does not self-enable" `Quick
            test_own_move_does_not_enable_self;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "legal actions apply" `Quick
            test_legal_actions_consistency;
          Alcotest.test_case "encode" `Quick test_encode_distinguishes;
        ] );
      ( "lemma-1.1",
        [
          Alcotest.test_case "exact max within m^k" `Slow
            test_exact_max_within_bound;
          Alcotest.test_case "single agent = longest path" `Quick
            test_single_agent_longest_path;
          Alcotest.test_case "jumps add power" `Quick test_jumps_add_power;
          Alcotest.test_case "greedy <= exact <= bound" `Slow
            test_greedy_below_exact;
          QCheck_alcotest.to_alcotest prop_greedy_runs_within_bound;
          QCheck_alcotest.to_alcotest prop_potential_audit;
          Alcotest.test_case "optimal runs audit" `Slow
            test_best_run_is_optimal_and_audits;
          Alcotest.test_case "audit rejects cycles" `Quick
            test_audit_rejects_cyclic_runs;
        ] );
    ]
