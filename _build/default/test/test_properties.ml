(* Property-based tests (qcheck) across the libraries: structural
   invariants that should hold on randomly generated inputs, not just on
   the hand-picked cases of the unit suites. *)

module Value = Memory.Value
module Sigma = Core.Sigma
module Label = Core.Label
module Excess = Core.Excess
module Tree = Core.History_tree

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- Perm --- *)

let prop_rank_monotone_lex =
  QCheck.Test.make ~name:"rank is monotone in lexicographic order" ~count:50
    (QCheck.int_range 2 5) (fun m ->
      let perms = Protocols.Perm.all m in
      let ranks = List.map Protocols.Perm.rank perms in
      ranks = List.init (Protocols.Perm.factorial m) (fun i -> i))

let prop_unrank_distinct =
  QCheck.Test.make ~name:"unrank yields distinct permutations" ~count:20
    (QCheck.int_range 1 5) (fun m ->
      let all =
        List.init (Protocols.Perm.factorial m) (fun r ->
            Protocols.Perm.unrank ~m r)
      in
      List.length (List.sort_uniq compare all) = Protocols.Perm.factorial m)

(* --- Label --- *)

let label_gen =
  QCheck.Gen.(
    let* len = int_bound 3 in
    let* xs = shuffle_l [ 0; 1; 2; 3 ] in
    return (List.filteri (fun i _ -> i < len) xs))

let arb_label = QCheck.make ~print:Label.to_string label_gen

let prop_label_prefix_reflexive =
  QCheck.Test.make ~name:"label prefix is reflexive" ~count:100 arb_label
    (fun l -> Label.is_prefix l l)

let prop_label_compatible_symmetric =
  QCheck.Test.make ~name:"label compatibility is symmetric" ~count:200
    (QCheck.pair arb_label arb_label) (fun (a, b) ->
      Label.compatible a b = Label.compatible b a)

let prop_label_extend_prefix =
  QCheck.Test.make ~name:"extension keeps the old label as prefix" ~count:100
    arb_label (fun l ->
      match List.filter (fun v -> not (Label.mem v l)) [ 0; 1; 2; 3; 4 ] with
      | [] -> true
      | v :: _ ->
        let l' = Label.extend l v in
        Label.is_prefix l l' && Label.compatible l l' && Label.mem v l')

(* --- Excess graph --- *)

let arb_excess =
  let gen =
    QCheck.Gen.(
      let k = 4 in
      let* n_susp = int_range 0 12 in
      let* entries =
        list_repeat n_susp
          (let* a = int_bound (k - 1) in
           let* b = int_bound (k - 1) in
           let* released = bool in
           return (a, b, released))
      in
      let* hist_len = int_bound 6 in
      let* hist_tail =
        list_repeat hist_len (int_bound (k - 1))
      in
      return (k, entries, hist_tail))
  in
  QCheck.make gen

let build_excess (k, entries, hist_tail) =
  let sym i = Sigma.of_index ~k i in
  let suspensions =
    List.mapi
      (fun vp (a, b, released) ->
        {
          Core.Vp_graph.vp;
          edge = (sym a, sym b);
          label = [];
          hist_len = 1;
          released;
        })
      (List.filter (fun (a, b, _) -> a <> b) entries)
  in
  let history = Sigma.Bot :: List.map sym hist_tail in
  (Excess.compute ~k ~suspensions ~history, k)

let prop_widest_path_iff_path =
  QCheck.Test.make
    ~name:"path_with_width succeeds iff widest_path reaches the width"
    ~count:300 arb_excess (fun input ->
      let g, k = build_excess input in
      let syms = Sigma.all ~k in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let w = Excess.widest_path g a b in
              let at w' = Excess.path_with_width g ~min_width:w' a b in
              (w <= 0 || at w <> None)
              && (at (w + 1) = None || Excess.widest_path g a b > w))
            syms)
        syms)

let prop_path_edges_meet_width =
  QCheck.Test.make ~name:"returned paths only use edges of enough width"
    ~count:300 arb_excess (fun input ->
      let g, k = build_excess input in
      let syms = Sigma.all ~k in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              match Excess.path_with_width g ~min_width:1 a b with
              | None -> true
              | Some mids ->
                let nodes = (a :: mids) @ [ b ] in
                let rec edges = function
                  | x :: (y :: _ as rest) -> (x, y) :: edges rest
                  | _ -> []
                in
                List.for_all (fun (x, y) -> Excess.weight g x y >= 1) (edges nodes))
            syms)
        syms)

let prop_debit_is_local =
  QCheck.Test.make ~name:"debit decrements exactly the listed edges"
    ~count:200 arb_excess (fun input ->
      let g, k = build_excess input in
      let syms = Sigma.all ~k in
      let edge = (List.nth syms 0, List.nth syms 1) in
      let g' = Excess.debit g [ edge; edge ] in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let expected =
                if (a, b) = edge then Excess.weight g a b - 2
                else Excess.weight g a b
              in
              Excess.weight g' a b = expected)
            syms)
        syms)

(* --- History tree --- *)

(* Random tree construction: a sequence of attaches to random existing
   nodes (paths kept empty so the alphabet constraint cannot fail). *)
let arb_tree_script =
  QCheck.make
    QCheck.Gen.(
      list_size (int_bound 12)
        (pair (int_bound 20) (int_bound 2)))

let build_tree script =
  let k = 4 in
  List.fold_left
    (fun (t, count) (parent_choice, v) ->
      let tree = Option.get (Tree.tree t Label.root) in
      let parent = parent_choice mod Tree.tree_size tree in
      let t, _ =
        Tree.attach t ~label:Label.root ~parent_node:parent ~emu:0 ~seq:count
          ~value:(Sigma.V (v mod (k - 1)))
          ~from_parent:[] ~to_parent:[]
      in
      (t, count + 1))
    (Tree.create (), 0)
    script
  |> fst

let prop_dfs_full_starts_ends_at_root =
  QCheck.Test.make ~name:"full DFS starts and ends at the root symbol"
    ~count:200 arb_tree_script (fun script ->
      let t = build_tree script in
      let tree = Option.get (Tree.tree t Label.root) in
      let seq = Tree.dfs tree ~full:true in
      match seq with
      | [] -> false
      | first :: _ ->
        Sigma.equal first Sigma.Bot
        && Sigma.equal (List.nth seq (List.length seq - 1)) Sigma.Bot)

let prop_dfs_cut_ends_at_rightmost =
  QCheck.Test.make ~name:"cut DFS ends at the rightmost node's symbol"
    ~count:200 arb_tree_script (fun script ->
      let t = build_tree script in
      let tree = Option.get (Tree.tree t Label.root) in
      let seq = Tree.dfs tree ~full:false in
      let rm = Tree.rightmost tree in
      Sigma.equal
        (List.nth seq (List.length seq - 1))
        (Tree.tree_node tree rm).Tree.value)

let prop_cut_is_prefix_of_full =
  QCheck.Test.make ~name:"cut DFS is a prefix of the full DFS" ~count:200
    arb_tree_script (fun script ->
      let t = build_tree script in
      let tree = Option.get (Tree.tree t Label.root) in
      let full = Tree.dfs tree ~full:true in
      let cut = Tree.dfs tree ~full:false in
      List.length cut <= List.length full
      && List.for_all2
           (fun a b -> Sigma.equal a b)
           cut
           (List.filteri (fun i _ -> i < List.length cut) full))

let prop_ancestors_reach_root =
  QCheck.Test.make ~name:"ancestors end at the root" ~count:200
    arb_tree_script (fun script ->
      let t = build_tree script in
      let tree = Option.get (Tree.tree t Label.root) in
      let rm = Tree.rightmost tree in
      let anc = Tree.ancestors tree rm in
      List.nth anc (List.length anc - 1) = Tree.tree_root tree
      && List.length anc = Tree.depth tree rm + 1)

(* --- Bounds recurrences --- *)

let prop_threshold_recurrence =
  QCheck.Test.make ~name:"lambda_D = lambda_(D-1) + D*m^D" ~count:100
    (QCheck.pair (QCheck.int_range 2 5) (QCheck.int_range 1 6))
    (fun (m, d) ->
      let pow = int_of_float (float_of_int m ** float_of_int d) in
      Core.Bounds.threshold ~m ~depth:d
      = Core.Bounds.threshold ~m ~depth:(d - 1) + (d * pow))

let prop_stable_weight_recurrence =
  QCheck.Test.make ~name:"sigma_x = sigma_(x-1) + m^x (x >= 2)" ~count:100
    (QCheck.pair (QCheck.int_range 2 5) (QCheck.int_range 2 6))
    (fun (m, x) ->
      let pow = int_of_float (float_of_int m ** float_of_int x) in
      Core.Bounds.stable_weight ~m x = Core.Bounds.stable_weight ~m (x - 1) + pow)

(* --- snapshot linearizability on random mixes --- *)

let prop_snapshot_linearizable_random_mix =
  QCheck.Test.make ~name:"AADGMS snapshot linearizable on random op mixes"
    ~count:25
    (QCheck.pair (QCheck.int_bound 1000)
       (QCheck.list_of_size (QCheck.Gen.int_range 1 3) (QCheck.int_bound 1)))
    (fun (seed, shape) ->
      let n = 2 in
      let t =
        Snapshot.Swmr_snapshot.create ~base:"s"
          ~owners:(Array.init n (fun i -> i))
      in
      let hist = "hist" in
      let bindings =
        (hist, Lincheck.History.recorder_spec ())
        :: Snapshot.Swmr_snapshot.registers t
      in
      let prog pid =
        let open Runtime.Program in
        complete
          (let* _ =
             list_fold
               (fun i kind ->
                 let* _ =
                   if kind = 0 then
                     Lincheck.History.bracket hist
                       (Snapshot.Snapshot_obj.update_op ~segment:pid
                          (Value.int ((10 * pid) + i)))
                       (let* () =
                          Snapshot.Swmr_snapshot.update t ~segment:pid
                            (Value.int ((10 * pid) + i))
                        in
                        return Value.unit)
                   else
                     Lincheck.History.bracket hist Snapshot.Snapshot_obj.scan_op
                       (let* v = Snapshot.Swmr_snapshot.scan t in
                        return (Value.list v))
                 in
                 return (i + 1))
               0 shape
           in
           return Value.unit)
      in
      let store = Memory.Store.create bindings in
      let config = Runtime.Engine.init store (List.init n prog) in
      let outcome =
        Runtime.Engine.run ~max_steps:100_000
          ~sched:(Runtime.Sched.random ~seed) config
      in
      outcome.Runtime.Engine.faults = []
      && Lincheck.Checker.is_linearizable
           ~spec:(Snapshot.Snapshot_obj.spec ~segments:n ())
           (Lincheck.History.of_store
              outcome.Runtime.Engine.final.Runtime.Engine.store hist))

(* --- engine-produced register histories are linearizable --- *)

let prop_register_histories_linearizable =
  QCheck.Test.make
    ~name:"recorded register histories are always linearizable" ~count:40
    (QCheck.pair (QCheck.int_bound 1000)
       (QCheck.list_of_size (QCheck.Gen.int_range 1 4) (QCheck.int_bound 4)))
    (fun (seed, writes) ->
      let spec = Objects.Register.mwmr ~init:(Value.int 0) () in
      let bindings =
        [ ("hist", Lincheck.History.recorder_spec ()); ("r", spec) ]
      in
      let prog pid =
        let open Runtime.Program in
        complete
          (let* _ =
             list_fold
               (fun i w ->
                 let op_desc =
                   if (w + pid) mod 2 = 0 then Objects.Register.read_op
                   else Objects.Register.write_op (Value.int ((10 * pid) + i))
                 in
                 let* _ =
                   Lincheck.History.bracket "hist" op_desc
                     (Runtime.Program.op "r" op_desc)
                 in
                 return (i + 1))
               0 writes
           in
           return Value.unit)
      in
      let store = Memory.Store.create bindings in
      let config = Runtime.Engine.init store [ prog 0; prog 1 ] in
      let outcome =
        Runtime.Engine.run ~max_steps:10_000
          ~sched:(Runtime.Sched.random ~seed) config
      in
      outcome.Runtime.Engine.faults = []
      && Lincheck.Checker.is_linearizable ~spec
           (Lincheck.History.of_store
              outcome.Runtime.Engine.final.Runtime.Engine.store "hist"))

(* --- permutation election under random crash patterns, k=3..4 --- *)

let prop_perm_election_random_instances =
  QCheck.Test.make ~name:"perm election correct on random instances"
    ~count:40
    (QCheck.triple (QCheck.int_range 3 4) (QCheck.int_bound 1000)
       (QCheck.int_bound 5))
    (fun (k, seed, n_raw) ->
      let cap = Protocols.Perm.factorial (k - 1) in
      let n = 1 + (n_raw mod cap) in
      let i = Protocols.Permutation_election.instance ~k ~n in
      match Protocols.Election.run_random i ~seed with
      | Ok leader -> leader >= 0 && leader < n
      | Error e -> QCheck.Test.fail_report e)

(* --- multi-register election on random shapes --- *)

let prop_multi_election_random_shapes =
  QCheck.Test.make ~name:"multi election correct on random shapes" ~count:25
    (QCheck.triple
       (QCheck.list_of_size (QCheck.Gen.int_range 1 2) (QCheck.int_range 3 4))
       (QCheck.int_bound 1000) (QCheck.int_bound 10))
    (fun (ks, seed, n_raw) ->
      let cap = Protocols.Multi_election.capacity ~ks in
      let n = 1 + (n_raw mod cap) in
      let i = Protocols.Multi_election.instance ~ks ~n in
      match Protocols.Election.run_random i ~seed with
      | Ok leader -> leader >= 0 && leader < n
      | Error e -> QCheck.Test.fail_report e)

(* --- emulation audits on random seeds and workloads --- *)

let prop_emulation_mechanical_audits =
  QCheck.Test.make ~name:"emulation hard audits clean on random runs"
    ~count:15
    (QCheck.pair (QCheck.int_bound 1000) (QCheck.int_range 0 2))
    (fun (seed, which) ->
      let alg =
        match which with
        | 0 -> Core.Workloads.over_capacity_cas_election ~k:3 ~num_vps:120
        | 1 -> Core.Workloads.cycling ~k:3 ~rounds:1 ~num_vps:120
        | _ -> Core.Workloads.cycling ~k:3 ~rounds:2 ~num_vps:240
      in
      let o =
        Core.Emulation.run ~seed
          (Core.Emulation.create alg (Core.Emulation.small_params ~k:3))
      in
      List.for_all
        (fun (name, violations) ->
          (not
             (List.mem name
                [ "label-budget"; "history-well-formed"; "history-backed";
                  "release-margin"; "reads-justified" ]))
          || violations = [])
        (Core.Invariants.all o.Core.Emulation.final)
      && List.for_all
           (fun rep -> rep.Core.Replay.feasible)
           (Core.Replay.check_all_leaves o.Core.Emulation.final))

let () =
  Alcotest.run "properties"
    [
      ("perm", [ to_alcotest prop_rank_monotone_lex; to_alcotest prop_unrank_distinct ]);
      ( "label",
        [
          to_alcotest prop_label_prefix_reflexive;
          to_alcotest prop_label_compatible_symmetric;
          to_alcotest prop_label_extend_prefix;
        ] );
      ( "excess",
        [
          to_alcotest prop_widest_path_iff_path;
          to_alcotest prop_path_edges_meet_width;
          to_alcotest prop_debit_is_local;
        ] );
      ( "history-tree",
        [
          to_alcotest prop_dfs_full_starts_ends_at_root;
          to_alcotest prop_dfs_cut_ends_at_rightmost;
          to_alcotest prop_cut_is_prefix_of_full;
          to_alcotest prop_ancestors_reach_root;
        ] );
      ( "bounds",
        [
          to_alcotest prop_threshold_recurrence;
          to_alcotest prop_stable_weight_recurrence;
        ] );
      ( "linearizability",
        [
          to_alcotest prop_snapshot_linearizable_random_mix;
          to_alcotest prop_register_histories_linearizable;
        ] );
      ( "elections",
        [
          to_alcotest prop_perm_election_random_instances;
          to_alcotest prop_multi_election_random_shapes;
        ] );
      ("emulation", [ to_alcotest prop_emulation_mechanical_audits ]);
    ]
