test/test_protocols.ml: Alcotest Fmt Hierarchy Lincheck List Memory Objects Printf Protocols QCheck QCheck_alcotest Runtime String
