test/test_memory.ml: Alcotest List Memory QCheck QCheck_alcotest
