test/test_hierarchy.ml: Alcotest Dump Fmt Hierarchy List Memory Objects Protocols Runtime String
