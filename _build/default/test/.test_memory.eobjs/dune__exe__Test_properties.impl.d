test/test_properties.ml: Alcotest Array Core Lincheck List Memory Objects Option Protocols QCheck QCheck_alcotest Runtime Snapshot
