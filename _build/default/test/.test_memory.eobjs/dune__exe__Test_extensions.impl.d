test/test_extensions.ml: Alcotest Array Core Fmt Game List Memory Printf Protocols Runtime String
