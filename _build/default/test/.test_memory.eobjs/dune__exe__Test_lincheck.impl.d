test/test_lincheck.ml: Alcotest Lincheck List Memory Objects Runtime
