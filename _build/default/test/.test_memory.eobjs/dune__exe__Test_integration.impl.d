test/test_integration.ml: Alcotest Core Fmt List Memory Objects Printf Protocols Runtime Universal
