test/test_objects.ml: Alcotest Array List Memory Objects Printf QCheck QCheck_alcotest Runtime
