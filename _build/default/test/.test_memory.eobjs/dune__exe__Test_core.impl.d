test/test_core.ml: Alcotest Array Core Fmt List Memory Option Printf Random String
