test/test_universal.ml: Alcotest Fmt Lincheck List Memory Objects Printf Runtime Universal
