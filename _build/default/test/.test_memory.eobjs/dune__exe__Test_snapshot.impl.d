test/test_snapshot.ml: Alcotest Array Fmt Lincheck List Memory Objects Printf Runtime Snapshot
