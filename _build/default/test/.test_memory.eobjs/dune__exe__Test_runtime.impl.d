test/test_runtime.ml: Alcotest Array List Memory Runtime
