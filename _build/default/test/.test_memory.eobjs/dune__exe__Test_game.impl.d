test/test_game.ml: Alcotest Array Fmt Game List Printf QCheck QCheck_alcotest
