(* Tests for the snapshot substrate: the primitive object and the
   AADGMS construction from SWMR registers, including a linearizability
   comparison between the two. *)

module Value = Memory.Value
module Program = Runtime.Program
module Engine = Runtime.Engine
module Sched = Runtime.Sched

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

(* --- primitive snapshot object --- *)

let test_primitive_update_scan () =
  let open Program in
  let store =
    Memory.Store.create [ ("S", Snapshot.Snapshot_obj.spec ~segments:3 ()) ]
  in
  let prog =
    complete
      (let* () = Snapshot.Snapshot_obj.update "S" ~segment:0 (Value.int 7) in
       let* v = Snapshot.Snapshot_obj.scan "S" in
       return (Value.list v))
  in
  match Program.run_sequential store ~pid:0 prog with
  | Ok (_, v) ->
    Alcotest.check value "scan" (Value.list [ Value.int 7; Value.unit; Value.unit ]) v
  | Error e -> Alcotest.fail e

let test_primitive_ownership () =
  let store =
    Memory.Store.create [ ("S", Snapshot.Snapshot_obj.spec ~segments:2 ()) ]
  in
  (match
     Memory.Store.apply store ~pid:1 "S"
       (Snapshot.Snapshot_obj.update_op ~segment:0 Value.unit)
   with
  | Ok _ -> Alcotest.fail "non-owner update accepted"
  | Error _ -> ());
  match
    Memory.Store.apply store ~pid:1 "S"
      (Snapshot.Snapshot_obj.update_op ~segment:1 Value.unit)
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_primitive_custom_owners () =
  let store =
    Memory.Store.create
      [ ("S", Snapshot.Snapshot_obj.spec ~segments:2 ~owners:[| 5; 6 |] ()) ]
  in
  match
    Memory.Store.apply store ~pid:5 "S"
      (Snapshot.Snapshot_obj.update_op ~segment:0 (Value.int 1))
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* --- AADGMS construction --- *)

let swmr_setup n = Snapshot.Swmr_snapshot.create ~base:"snap" ~owners:(Array.init n (fun i -> i))

let test_swmr_sequential () =
  let open Program in
  let t = swmr_setup 3 in
  let store = Memory.Store.create (Snapshot.Swmr_snapshot.registers t) in
  let prog =
    complete
      (let* () = Snapshot.Swmr_snapshot.update t ~segment:0 (Value.int 1) in
       let* v1 = Snapshot.Swmr_snapshot.scan t in
       let* () = Snapshot.Swmr_snapshot.update t ~segment:0 (Value.int 2) in
       let* v2 = Snapshot.Swmr_snapshot.scan t in
       return (Value.pair (Value.list v1) (Value.list v2)))
  in
  match Program.run_sequential store ~pid:0 prog with
  | Ok (_, v) ->
    Alcotest.check value "two scans"
      (Value.pair
         (Value.list [ Value.int 1; Value.unit; Value.unit ])
         (Value.list [ Value.int 2; Value.unit; Value.unit ]))
      v
  | Error e -> Alcotest.fail e

(* Concurrent runs: capture scans with the history recorder and check
   they are linearizable against the primitive snapshot object. *)
let concurrent_history ~seed =
  let n = 3 in
  let t = swmr_setup n in
  let hist = "hist" in
  let bindings =
    (hist, Lincheck.History.recorder_spec ())
    :: Snapshot.Swmr_snapshot.registers t
  in
  let prog pid =
    let open Program in
    complete
      (let* _ =
         Lincheck.History.bracket hist
           (Snapshot.Snapshot_obj.update_op ~segment:pid (Value.int (100 + pid)))
           (let* () =
              Snapshot.Swmr_snapshot.update t ~segment:pid (Value.int (100 + pid))
            in
            return Value.unit)
       in
       let* _ =
         Lincheck.History.bracket hist Snapshot.Snapshot_obj.scan_op
           (let* v = Snapshot.Swmr_snapshot.scan t in
            return (Value.list v))
       in
       return Value.unit)
  in
  let store = Memory.Store.create bindings in
  let config = Engine.init store (List.init n prog) in
  let outcome = Engine.run ~sched:(Sched.random ~seed) config in
  if outcome.Engine.faults <> [] then
    Alcotest.fail (snd (List.hd outcome.Engine.faults));
  if outcome.Engine.hit_step_limit then Alcotest.fail "step limit";
  Lincheck.History.of_store outcome.Engine.final.Engine.store hist

let test_swmr_linearizable () =
  let spec = Snapshot.Snapshot_obj.spec ~segments:3 () in
  for seed = 0 to 19 do
    let history = concurrent_history ~seed in
    if not (Lincheck.Checker.is_linearizable ~spec history) then
      Alcotest.fail
        (Fmt.str "seed %d not linearizable:@.%a" seed Lincheck.History.pp
           history)
  done

let test_swmr_wait_free_bound () =
  (* A scan terminates within O(n²) reads even under adversarial
     scheduling; check the per-process step bound across seeds. *)
  let n = 3 in
  let t = swmr_setup n in
  let prog pid =
    let open Program in
    complete
      (let* () = Snapshot.Swmr_snapshot.update t ~segment:pid (Value.int pid) in
       let* _ = Snapshot.Swmr_snapshot.scan t in
       return Value.unit)
  in
  let store = Memory.Store.create (Snapshot.Swmr_snapshot.registers t) in
  for seed = 0 to 19 do
    let config = Engine.init store (List.init n prog) in
    let outcome = Engine.run ~sched:(Sched.random ~seed) config in
    Alcotest.(check bool) "terminates" false outcome.Engine.hit_step_limit;
    (* update = scan + write ≤ (2n+1) collects ≈ (2n+1)·n + 2; another
       scan on top: generous bound 4n² + 6n + 4. *)
    let bound = (4 * n * n) + (6 * n) + 4 in
    Alcotest.(check bool)
      (Printf.sprintf "steps within bound (seed %d)" seed)
      true
      (Engine.max_steps_per_proc outcome <= bound)
  done

let test_swmr_borrowed_view () =
  (* Force the borrow path: a scanner interleaved with a fast updater
     must still return a coherent view.  Schedule: p0 starts scanning,
     p1 completes two full updates in between, p0 finishes. *)
  let n = 2 in
  let t = swmr_setup n in
  let scanner =
    let open Program in
    complete
      (let* v = Snapshot.Swmr_snapshot.scan t in
       return (Value.list v))
  in
  let updater =
    let open Program in
    complete
      (let* () = Snapshot.Swmr_snapshot.update t ~segment:1 (Value.int 1) in
       let* () = Snapshot.Swmr_snapshot.update t ~segment:1 (Value.int 2) in
       let* () = Snapshot.Swmr_snapshot.update t ~segment:1 (Value.int 3) in
       return Value.unit)
  in
  let store = Memory.Store.create (Snapshot.Swmr_snapshot.registers t) in
  for seed = 0 to 29 do
    let config = Engine.init store [ scanner; updater ] in
    let outcome = Engine.run ~sched:(Sched.random ~seed) config in
    match List.assoc_opt 0 outcome.Engine.decisions with
    | Some (Value.List [ _; v ]) ->
      Alcotest.(check bool)
        (Printf.sprintf "coherent segment value (seed %d)" seed)
        true
        (List.exists (Value.equal v)
           [ Value.unit; Value.int 1; Value.int 2; Value.int 3 ])
    | _ -> Alcotest.fail "scanner did not decide a 2-segment view"
  done

(* --- MWMR from SWMR (the paper's w.l.o.g. step) --- *)

let test_mwmr_sequential () =
  let t =
    Snapshot.Mwmr_from_swmr.create ~base:"mw" ~writers:[| 0; 1 |]
  in
  let store = Memory.Store.create (Snapshot.Mwmr_from_swmr.registers t) in
  let open Program in
  let prog =
    complete
      (let* v0 = Snapshot.Mwmr_from_swmr.read t in
       let* () = Snapshot.Mwmr_from_swmr.write t ~me:0 (Value.int 5) in
       let* v1 = Snapshot.Mwmr_from_swmr.read t in
       return (Value.pair v0 v1))
  in
  match Program.run_sequential store ~pid:0 prog with
  | Ok (_, v) ->
    Alcotest.check value "before/after" (Value.pair Value.unit (Value.int 5)) v
  | Error e -> Alcotest.fail e

let test_mwmr_linearizable () =
  (* Both processes write then read through the construction; the
     recorded history must linearize against a plain MWMR register. *)
  let spec = Objects.Register.mwmr ~init:Value.unit () in
  for seed = 0 to 24 do
    let t = Snapshot.Mwmr_from_swmr.create ~base:"mw" ~writers:[| 0; 1 |] in
    let hist = "hist" in
    let bindings =
      (hist, Lincheck.History.recorder_spec ())
      :: Snapshot.Mwmr_from_swmr.registers t
    in
    let prog pid =
      let open Program in
      complete
        (let* _ =
           Lincheck.History.bracket hist
             (Objects.Register.write_op (Value.int pid))
             (let* () = Snapshot.Mwmr_from_swmr.write t ~me:pid (Value.int pid) in
              return Value.unit)
         in
         let* _ =
           Lincheck.History.bracket hist Objects.Register.read_op
             (Snapshot.Mwmr_from_swmr.read t)
         in
         let* _ =
           Lincheck.History.bracket hist
             (Objects.Register.write_op (Value.int (10 + pid)))
             (let* () =
                Snapshot.Mwmr_from_swmr.write t ~me:pid (Value.int (10 + pid))
              in
              return Value.unit)
         in
         let* _ =
           Lincheck.History.bracket hist Objects.Register.read_op
             (Snapshot.Mwmr_from_swmr.read t)
         in
         return Value.unit)
    in
    let store = Memory.Store.create bindings in
    let config = Engine.init store [ prog 0; prog 1 ] in
    let outcome = Engine.run ~sched:(Sched.random ~seed) config in
    if outcome.Engine.faults <> [] then
      Alcotest.fail (snd (List.hd outcome.Engine.faults));
    let h = Lincheck.History.of_store outcome.Engine.final.Engine.store hist in
    if not (Lincheck.Checker.is_linearizable ~spec h) then
      Alcotest.fail
        (Fmt.str "seed %d not linearizable:@.%a" seed Lincheck.History.pp h)
  done

let test_mwmr_three_writers () =
  let spec = Objects.Register.mwmr ~init:Value.unit () in
  for seed = 0 to 9 do
    let t =
      Snapshot.Mwmr_from_swmr.create ~base:"mw" ~writers:[| 0; 1; 2 |]
    in
    let hist = "hist" in
    let bindings =
      (hist, Lincheck.History.recorder_spec ())
      :: Snapshot.Mwmr_from_swmr.registers t
    in
    let prog pid =
      let open Program in
      complete
        (let* _ =
           Lincheck.History.bracket hist
             (Objects.Register.write_op (Value.int pid))
             (let* () = Snapshot.Mwmr_from_swmr.write t ~me:pid (Value.int pid) in
              return Value.unit)
         in
         let* _ =
           Lincheck.History.bracket hist Objects.Register.read_op
             (Snapshot.Mwmr_from_swmr.read t)
         in
         return Value.unit)
    in
    let store = Memory.Store.create bindings in
    let config = Engine.init store (List.init 3 prog) in
    let outcome = Engine.run ~sched:(Sched.random ~seed) config in
    if outcome.Engine.faults <> [] then
      Alcotest.fail (snd (List.hd outcome.Engine.faults));
    let h = Lincheck.History.of_store outcome.Engine.final.Engine.store hist in
    if not (Lincheck.Checker.is_linearizable ~spec h) then
      Alcotest.fail (Fmt.str "seed %d not linearizable" seed)
  done

let () =
  Alcotest.run "snapshot"
    [
      ( "primitive",
        [
          Alcotest.test_case "update/scan" `Quick test_primitive_update_scan;
          Alcotest.test_case "ownership" `Quick test_primitive_ownership;
          Alcotest.test_case "custom owners" `Quick test_primitive_custom_owners;
        ] );
      ( "swmr",
        [
          Alcotest.test_case "sequential" `Quick test_swmr_sequential;
          Alcotest.test_case "linearizable vs primitive" `Slow
            test_swmr_linearizable;
          Alcotest.test_case "wait-free step bound" `Quick
            test_swmr_wait_free_bound;
          Alcotest.test_case "borrowed views coherent" `Quick
            test_swmr_borrowed_view;
        ] );
      ( "mwmr-from-swmr",
        [
          Alcotest.test_case "sequential" `Quick test_mwmr_sequential;
          Alcotest.test_case "linearizable (2 writers)" `Slow
            test_mwmr_linearizable;
          Alcotest.test_case "linearizable (3 writers)" `Slow
            test_mwmr_three_writers;
        ] );
    ]
