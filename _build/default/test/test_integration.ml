(* Cross-library integration tests: the reduction applied to real
   election protocols, elections run on top of the universal
   construction's substrate, and end-to-end experiment sanity. *)

module Value = Memory.Value
module Emulation = Core.Emulation

(* --- emulating real election algorithms --- *)

let test_emulate_trivial_cas_election () =
  (* A correct election (n <= k-1): decisions may differ across labels
     (each label is a different constructed run of A, with a different
     solo winner) but must agree within a label, and the total width
     stays within the (k-1)! budget. *)
  let instance = Protocols.Cas_election.instance ~k:4 ~n:3 in
  let alg = Emulation.of_election instance ~k:4 in
  (* batch = 2 > per-emulator vp count: no emulator ever suspends its
     only v-process, so each can always drive an update. *)
  let params = { (Emulation.small_params ~k:4) with Emulation.batch = 2 } in
  let o = Emulation.run ~seed:0 (Emulation.create alg params) in
  Alcotest.(check bool) "some emulator decided" true
    (o.Emulation.decisions <> []);
  Alcotest.(check bool) "width within (k-1)!" true
    (List.length o.Emulation.distinct_decisions <= 6);
  List.iter
    (fun (name, violations) ->
      if List.mem name [ "same-label-agreement"; "label-budget" ] && violations <> []
      then
        Alcotest.fail
          (Fmt.str "audit %s: %a" name
             Fmt.(list ~sep:comma Core.Invariants.pp_violation)
             violations))
    (Core.Invariants.all o.Emulation.final)

let test_emulate_permutation_election () =
  (* The real (k-1)! algorithm as A, emulated: exercises the r/w register
     emulation (claims logs) inside the reduction. *)
  let instance = Protocols.Permutation_election.instance ~k:3 ~n:2 in
  let alg = Emulation.of_election instance ~k:3 in
  let params =
    { (Emulation.small_params ~k:3) with Emulation.batch = 1; simple_burst = 16 }
  in
  let o = Emulation.run ~seed:1 ~max_iterations:50_000 (Emulation.create alg params) in
  (* Register machinery must stay consistent even if the run stalls. *)
  List.iter
    (fun (name, violations) ->
      if
        List.mem name [ "reads-justified"; "history-well-formed"; "label-budget" ]
        && violations <> []
      then
        Alcotest.fail
          (Fmt.str "audit %s: %a" name
             Fmt.(list ~sep:comma Core.Invariants.pp_violation)
             violations))
    (Core.Invariants.all o.Emulation.final);
  let stats = Emulation.stats o.Emulation.final in
  Alcotest.(check bool) "register ops were emulated" true
    (stats.Emulation.simple_ops > 0)

let test_reduction_manufactures_set_consensus () =
  (* The paper's contradiction, end to end: an over-capacity "election"
     is emulated by m = (k-1)!+1 emulators; the decisions form a
     (k-1)-set consensus with more than one value — which a correct
     election could never produce. *)
  let k = 4 in
  let r =
    Core.Reduction.check ~seed:0 ~schedule:`Stale_view
      (Core.Workloads.over_capacity_cas_election ~k ~num_vps:280)
      (Emulation.small_params ~k)
  in
  Alcotest.(check bool) "multiple groups decided differently" true
    (r.Core.Reduction.width >= 2);
  Alcotest.(check bool) "within the (k-1)! budget" true
    (r.Core.Reduction.width <= r.Core.Reduction.max_width);
  Alcotest.(check bool) "per-run agreement held" true
    r.Core.Reduction.same_label_consistent

(* --- election over universal objects --- *)

let test_election_via_universal_sticky () =
  (* Build a leader-election object out of the universal construction
     applied to a sticky register — universality in action — and elect. *)
  let n = 3 in
  let u =
    Universal.create ~name:"ue" ~spec:(Objects.Sticky.spec ()) ~n ~max_ops:16
  in
  let prog pid =
    let open Runtime.Program in
    complete
      (let* w =
         Universal.invoke u ~pid ~seq:0
           (Objects.Sticky.sticky_write_op (Value.int pid))
       in
       return w)
  in
  let store = Memory.Store.create (Universal.bindings u) in
  for seed = 0 to 9 do
    let config = Runtime.Engine.init store (List.init n prog) in
    let outcome =
      Runtime.Engine.run ~max_steps:100_000
        ~sched:(Runtime.Sched.random ~seed) config
    in
    let decisions =
      List.map snd outcome.Runtime.Engine.decisions
      |> List.sort_uniq Value.compare
    in
    Alcotest.(check int)
      (Printf.sprintf "agreement (seed %d)" seed)
      1 (List.length decisions)
  done

(* --- capacity ladder: the paper's refinement, measured --- *)

let test_capacity_ladder () =
  (* For each k: the BCL baseline caps at k-1 while the permutation
     election reaches (k-1)! — bigger registers are strictly stronger,
     and r/w registers amplify the gap. *)
  List.iter
    (fun k ->
      let bcl_cap = k - 1 in
      let perm_cap = Protocols.Perm.factorial (k - 1) in
      let bcl = Protocols.Bcl_election.instance ~k ~n:bcl_cap in
      let perm = Protocols.Permutation_election.instance ~k ~n:perm_cap in
      (match Protocols.Election.run_random bcl ~seed:0 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "bcl k=%d: %s" k e));
      (match Protocols.Election.run_random perm ~seed:0 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "perm k=%d: %s" k e));
      if k >= 4 then
        Alcotest.(check bool)
          (Printf.sprintf "k=%d: (k-1)! > k-1" k)
          true (perm_cap > bcl_cap))
    [ 3; 4; 5 ]

(* --- game vs emulation cross-check --- *)

let test_game_bound_covers_emulation_updates () =
  (* Lemma 1.1 is invoked with m emulators on k values: the number of
     history extensions between splits is bounded by m^k.  Check the
     emulation's attach counts stay under the bound. *)
  let k = 3 in
  let params = Emulation.small_params ~k in
  let alg = Core.Workloads.cycling ~k ~rounds:1 ~num_vps:120 in
  let o = Emulation.run ~seed:3 (Emulation.create alg params) in
  let stats = Emulation.stats o.Emulation.final in
  let bound = Core.Bounds.game_bound ~m:params.Emulation.m ~k in
  Alcotest.(check bool) "attaches within m^k per label era" true
    (stats.Emulation.attaches <= bound * (stats.Emulation.splits + 1))

let () =
  Alcotest.run "integration"
    [
      ( "reduction-on-real-protocols",
        [
          Alcotest.test_case "emulate trivial cas election" `Quick
            test_emulate_trivial_cas_election;
          Alcotest.test_case "emulate permutation election" `Slow
            test_emulate_permutation_election;
          Alcotest.test_case "manufactured set consensus" `Quick
            test_reduction_manufactures_set_consensus;
        ] );
      ( "universality",
        [
          Alcotest.test_case "election via universal sticky" `Slow
            test_election_via_universal_sticky;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "capacity ladder" `Slow test_capacity_ladder;
          Alcotest.test_case "game bound covers updates" `Quick
            test_game_bound_covers_emulation_updates;
        ] );
    ]
