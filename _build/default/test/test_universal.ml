(* Tests for Herlihy's universal construction: sequential behaviour,
   concurrent linearizability against the implemented spec, helping
   under crashes, and the agreed log's structure. *)

module Value = Memory.Value
module Program = Runtime.Program
module Engine = Runtime.Engine
module Sched = Runtime.Sched

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

let counter_spec =
  Memory.Spec.make ~type_name:"counter" ~init:(Value.int 0)
    ~apply:(fun ~pid:_ s op ->
      match op with
      | Value.Sym "incr" -> Ok (Value.int (Value.as_int s + 1), s)
      | Value.Sym "read" -> Ok (s, s)
      | _ -> Error "bad op")

let test_sequential_counter () =
  let u =
    Universal.create ~name:"uc" ~spec:counter_spec ~n:1 ~max_ops:8
  in
  let store = Memory.Store.create (Universal.bindings u) in
  let open Program in
  let prog =
    complete
      (let* a = Universal.invoke u ~pid:0 ~seq:0 (Value.sym "incr") in
       let* b = Universal.invoke u ~pid:0 ~seq:1 (Value.sym "incr") in
       let* c = Universal.invoke u ~pid:0 ~seq:2 (Value.sym "read") in
       return (Value.list [ a; b; c ]))
  in
  match Program.run_sequential store ~pid:0 prog with
  | Ok (store, v) ->
    Alcotest.check value "responses"
      (Value.list [ Value.int 0; Value.int 1; Value.int 2 ])
      v;
    let u_log = Universal.log_of_store u store in
    Alcotest.(check int) "three log entries" 3 (List.length u_log)
  | Error e -> Alcotest.fail e

let concurrent_run ~seed ~n ~spec ~ops_per_proc ~op_of =
  let u =
    Universal.create ~name:"u" ~spec ~n ~max_ops:(n * ops_per_proc * 2)
  in
  let hist = "hist" in
  let bindings = (hist, Lincheck.History.recorder_spec ()) :: Universal.bindings u in
  let prog pid =
    let open Program in
    complete
      (let* _ =
         Program.list_fold
           (fun seq op ->
             let* _ =
               Lincheck.History.bracket hist op
                 (Universal.invoke u ~pid ~seq op)
             in
             return (seq + 1))
           0 (op_of pid)
      in
      return Value.unit)
  in
  let store = Memory.Store.create bindings in
  let config = Engine.init store (List.init n prog) in
  let outcome = Engine.run ~max_steps:500_000 ~sched:(Sched.random ~seed) config in
  (u, outcome, hist)

let test_concurrent_counter_linearizable () =
  for seed = 0 to 14 do
    let _, outcome, hist =
      concurrent_run ~seed ~n:3 ~spec:counter_spec ~ops_per_proc:3
        ~op_of:(fun _ -> [ Value.sym "incr"; Value.sym "read"; Value.sym "incr" ])
    in
    if outcome.Engine.faults <> [] then
      Alcotest.fail (snd (List.hd outcome.Engine.faults));
    let h = Lincheck.History.of_store outcome.Engine.final.Engine.store hist in
    Alcotest.(check int) "9 operations" 9 (List.length h);
    if not (Lincheck.Checker.is_linearizable ~spec:counter_spec h) then
      Alcotest.fail (Fmt.str "seed %d: not linearizable@.%a" seed Lincheck.History.pp h)
  done

let test_concurrent_queue_linearizable () =
  let qspec = Objects.Queue_obj.spec () in
  for seed = 0 to 9 do
    let _, outcome, hist =
      concurrent_run ~seed ~n:3 ~spec:qspec ~ops_per_proc:2
        ~op_of:(fun pid ->
          [ Objects.Queue_obj.enq_op (Value.int pid); Objects.Queue_obj.deq_op ])
    in
    if outcome.Engine.faults <> [] then
      Alcotest.fail (snd (List.hd outcome.Engine.faults));
    let h = Lincheck.History.of_store outcome.Engine.final.Engine.store hist in
    if not (Lincheck.Checker.is_linearizable ~spec:qspec h) then
      Alcotest.fail (Fmt.str "seed %d: not linearizable@.%a" seed Lincheck.History.pp h)
  done

let test_log_has_no_duplicates () =
  for seed = 0 to 9 do
    let u, outcome, _ =
      concurrent_run ~seed ~n:3 ~spec:counter_spec ~ops_per_proc:2
        ~op_of:(fun _ -> [ Value.sym "incr"; Value.sym "incr" ])
    in
    let log = Universal.log_of_store u outcome.Engine.final.Engine.store in
    let keys = List.map (fun (p, s, _) -> (p, s)) log in
    Alcotest.(check int)
      (Printf.sprintf "log size (seed %d)" seed)
      6 (List.length log);
    Alcotest.(check int) "no duplicates" 6
      (List.length (List.sort_uniq compare keys))
  done

let test_crashed_process_does_not_block () =
  (* Crash pid 0 before it takes any step; the others must still finish
     (helping means no one ever waits on a specific process). *)
  let u = Universal.create ~name:"u" ~spec:counter_spec ~n:3 ~max_ops:16 in
  let prog pid =
    let open Program in
    complete
      (let* v = Universal.invoke u ~pid ~seq:0 (Value.sym "incr") in
       return v)
  in
  let store = Memory.Store.create (Universal.bindings u) in
  let config = Engine.init store (List.init 3 prog) in
  let config = Engine.crash config 0 in
  let sched = Sched.crashing ~crashed:[ 0 ] (Sched.random ~seed:5) in
  let outcome = Engine.run ~max_steps:100_000 ~sched config in
  Alcotest.(check int) "two survivors decided" 2
    (List.length outcome.Engine.decisions);
  Alcotest.(check bool) "no faults" true (outcome.Engine.faults = [])

let test_helping_completes_announced_op () =
  (* pid 1 announces and performs exactly one cell round; even if pid 1
     is then starved, pid 0's subsequent operations keep deciding cells,
     and within n cells pid 1's op enters the log via helping. *)
  let u = Universal.create ~name:"u" ~spec:counter_spec ~n:2 ~max_ops:16 in
  let p0 =
    let open Program in
    complete
      (let* _ = Universal.invoke u ~pid:0 ~seq:0 (Value.sym "incr") in
       let* _ = Universal.invoke u ~pid:0 ~seq:1 (Value.sym "incr") in
       let* _ = Universal.invoke u ~pid:0 ~seq:2 (Value.sym "incr") in
       return Value.unit)
  in
  let p1 =
    let open Program in
    complete
      (let* _ = Universal.invoke u ~pid:1 ~seq:0 (Value.sym "incr") in
       return Value.unit)
  in
  let store = Memory.Store.create (Universal.bindings u) in
  let config = Engine.init store [ p0; p1 ] in
  (* Let pid 1 announce and propose once, then starve it. *)
  let config = Engine.step (Engine.step config 1) 1 in
  let outcome =
    Engine.run ~max_steps:100_000 ~sched:(Sched.prioritize [ 0; 1 ]) config
  in
  ignore outcome;
  let log = Universal.log_of_store u outcome.Engine.final.Engine.store in
  Alcotest.(check bool) "pid 1's op is in the log" true
    (List.exists (fun (p, _, _) -> p = 1) log)

let () =
  Alcotest.run "universal"
    [
      ( "universal",
        [
          Alcotest.test_case "sequential counter" `Quick test_sequential_counter;
          Alcotest.test_case "concurrent counter linearizable" `Slow
            test_concurrent_counter_linearizable;
          Alcotest.test_case "concurrent queue linearizable" `Slow
            test_concurrent_queue_linearizable;
          Alcotest.test_case "log has no duplicates" `Quick
            test_log_has_no_duplicates;
          Alcotest.test_case "crashed process does not block" `Quick
            test_crashed_process_does_not_block;
          Alcotest.test_case "helping completes announced ops" `Quick
            test_helping_completes_announced_op;
        ] );
    ]
