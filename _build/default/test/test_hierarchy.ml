(* Tests for the hierarchy machinery: the consensus-number classifier
   against published ground truth, the synthesized 2-consensus
   protocols, and the bivalency adversary. *)

module Value = Memory.Value
module Cons_number = Hierarchy.Cons_number
module Separation = Hierarchy.Separation
module Bivalency = Hierarchy.Bivalency
module Consensus = Protocols.Consensus

let expect_level_one (entry : Objects.Zoo.entry) =
  match Cons_number.classify entry.Objects.Zoo.spec ~ops:entry.Objects.Zoo.ops () with
  | Cons_number.Level_one -> ()
  | c ->
    Alcotest.fail
      (Fmt.str "%s should be level 1, got %a" entry.Objects.Zoo.name
         Cons_number.pp_classification c)

let expect_at_least_two (entry : Objects.Zoo.entry) =
  match Cons_number.classify entry.Objects.Zoo.spec ~ops:entry.Objects.Zoo.ops () with
  | Cons_number.At_least_two _ -> ()
  | c ->
    Alcotest.fail
      (Fmt.str "%s should be >= 2, got %a" entry.Objects.Zoo.name
         Cons_number.pp_classification c)

let test_rw_is_level_one () = expect_level_one Objects.Zoo.rw_register

let test_strong_objects_at_least_two () =
  List.iter expect_at_least_two
    [
      Objects.Zoo.test_and_set;
      Objects.Zoo.swap;
      Objects.Zoo.fetch_add_mod 4;
      Objects.Zoo.queue;
      Objects.Zoo.sticky_bit;
      Objects.Zoo.cas 3;
      Objects.Zoo.cas 4;
    ]

let test_table_matches_published () =
  List.iter
    (fun (row : Separation.row) ->
      let expected_level_one = String.equal row.Separation.published "1" in
      let got_level_one = row.Separation.verdict = Cons_number.Level_one in
      Alcotest.(check bool)
        (row.Separation.object_name ^ " classification direction")
        expected_level_one got_level_one)
    (Separation.table ())

let test_derived_protocols_verified () =
  List.iter
    (fun (row : Separation.row) ->
      match row.Separation.derived_protocol_ok with
      | Some ok ->
        Alcotest.(check bool)
          (row.Separation.object_name ^ " derived 2-consensus")
          true ok
      | None -> ())
    (Separation.table ())

let test_derived_consensus_from_witness () =
  match
    Cons_number.classify (Objects.Testset.spec ())
      ~ops:[ Objects.Testset.test_and_set_op; Value.sym "read" ]
      ()
  with
  | Cons_number.At_least_two w -> (
    let instance =
      Cons_number.derived_two_consensus (Objects.Testset.spec ()) w
        ~inputs:[ Value.int 1; Value.int 2 ]
    in
    match Consensus.explore_all instance ~max_steps:50 with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e)
  | c ->
    Alcotest.fail (Fmt.str "expected decider, got %a" Cons_number.pp_classification c)

let test_testset_three_fails () =
  match
    Consensus.explore_all Separation.test_and_set_three_candidate ~max_steps:80
  with
  | Ok _ -> Alcotest.fail "3-process test&set candidate unexpectedly correct"
  | Error _ -> ()

(* --- Kleinberg-Mullainathan bound --- *)

let test_km_binary_consensus_exhaustive () =
  (* Every input combination, every schedule, for k = 5 (2 processes)
     and k = 7 (3 processes). *)
  List.iter
    (fun (k, inputs) ->
      let i = Hierarchy.Km_bound.from_bcl_register ~k ~inputs in
      match Consensus.explore_all i ~max_steps:40 with
      | Ok _ -> ()
      | Error e ->
        Alcotest.fail
          (Fmt.str "k=%d inputs=%a: %s" k Fmt.(Dump.list bool) inputs e))
    [
      (5, [ false; false ]);
      (5, [ false; true ]);
      (5, [ true; false ]);
      (5, [ true; true ]);
      (7, [ true; false; true ]);
      (7, [ false; false; true ]);
      (7, [ true; true; true ]);
    ]

let test_km_capacity_guard () =
  Alcotest.(check bool) "too many processes rejected" true
    (try
       ignore
         (Hierarchy.Km_bound.from_bcl_register ~k:5
            ~inputs:[ true; false; true ]);
       false
     with Invalid_argument _ -> true)

let test_km_single_operation () =
  (* The whole consensus costs one RMW operation per process — the
     register alone carries it, matching [16]'s "without any other
     registers" hypothesis. *)
  let i = Hierarchy.Km_bound.from_bcl_register ~k:7 ~inputs:[ true; false; true ] in
  match Consensus.run_random i ~seed:3 with
  | Ok _ -> Alcotest.(check int) "one binding" 1 (List.length i.Consensus.bindings)
  | Error e -> Alcotest.fail e

(* --- robustness probes --- *)

let test_compose_level_one_closed () =
  (* Level 1 is closed under products: two r/w registers together are
     still consensus number 1. *)
  match
    Hierarchy.Robustness.composite_classification Objects.Zoo.rw_register
      Objects.Zoo.rw_register
  with
  | Cons_number.Level_one -> ()
  | c ->
    Alcotest.fail (Fmt.str "rw x rw: %a" Cons_number.pp_classification c)

let test_compose_strong_component_detected () =
  List.iter
    (fun (a, b, name) ->
      match Hierarchy.Robustness.composite_classification a b with
      | Cons_number.At_least_two _ -> ()
      | c -> Alcotest.fail (Fmt.str "%s: %a" name Cons_number.pp_classification c))
    [
      (Objects.Zoo.rw_register, Objects.Zoo.test_and_set, "rw x t&s");
      (Objects.Zoo.test_and_set, Objects.Zoo.queue, "t&s x queue");
      (Objects.Zoo.queue, Objects.Zoo.rw_register, "queue x rw");
    ]

let test_compose_semantics () =
  (* Operations act on their component only. *)
  let spec =
    Hierarchy.Robustness.compose (Objects.Testset.spec ())
      (Objects.Queue_obj.spec ())
  in
  let open Runtime.Program in
  let store = Memory.Store.create [ ("c", spec) ] in
  let prog =
    complete
      (let* r1 = op "c" (Hierarchy.Robustness.left Objects.Testset.test_and_set_op) in
       let* () =
         let* _ =
           op "c"
             (Hierarchy.Robustness.right (Objects.Queue_obj.enq_op (Value.int 5)))
         in
         return ()
       in
       let* r2 = op "c" (Hierarchy.Robustness.right Objects.Queue_obj.deq_op) in
       return (Value.pair r1 r2))
  in
  match Runtime.Program.run_sequential store ~pid:0 prog with
  | Ok (_, v) ->
    Alcotest.(check bool) "t&s won and queue served" true
      (Value.equal v
         (Value.pair (Value.bool false) (Value.option (Some (Value.int 5)))))
  | Error e -> Alcotest.fail e

let test_tands_plus_queue_no_three_consensus () =
  match
    Consensus.explore_all Hierarchy.Robustness.three_consensus_candidate
      ~max_steps:300
  with
  | Ok _ -> Alcotest.fail "t&s + queue 3-consensus unexpectedly correct"
  | Error _ -> ()

(* --- bivalency --- *)

let inputs = [ Value.int 1; Value.int 2 ]

let test_bivalency_critical_on_strong_object () =
  match Bivalency.drive (Consensus.two_from_test_and_set ~inputs) with
  | Bivalency.Critical { pending; successor_valence; _ } ->
    (* Herlihy's theorem: at the critical configuration both pending
       operations target the same strong object. *)
    Alcotest.(check (list (pair int string)))
      "both pending on the test&set"
      [ (0, "cons.T"); (1, "cons.T") ]
      (List.sort compare pending);
    let valences = List.map snd successor_valence in
    Alcotest.(check bool) "successors commit to different values" true
      (match valences with
      | [ a; b ] -> not (Value.equal a b)
      | _ -> false)
  | Bivalency.Never_bivalent _ -> Alcotest.fail "should start bivalent"
  | Bivalency.Still_bivalent_at_bound _ -> Alcotest.fail "should reach critical"

let test_bivalency_queue_protocol () =
  match Bivalency.drive (Consensus.two_from_queue ~inputs) with
  | Bivalency.Critical { pending; _ } ->
    Alcotest.(check (list (pair int string)))
      "both pending on the queue"
      [ (0, "cons.Q"); (1, "cons.Q") ]
      (List.sort compare pending)
  | _ -> Alcotest.fail "expected a critical configuration"

let test_bivalency_same_inputs_univalent () =
  let i = Consensus.two_from_test_and_set ~inputs:[ Value.int 7; Value.int 7 ] in
  match Bivalency.drive i with
  | Bivalency.Never_bivalent [ v ] ->
    Alcotest.(check bool) "only value 7" true (Value.equal v (Value.int 7))
  | _ -> Alcotest.fail "identical inputs must be univalent"

let test_decision_values () =
  let i = Consensus.two_from_test_and_set ~inputs in
  let config = Consensus.config i in
  let vs = Bivalency.decision_values i config in
  Alcotest.(check int) "both outcomes reachable initially" 2 (List.length vs)

let test_naive_rw_disagreement_found () =
  match Consensus.explore_all (Consensus.naive_rw ~inputs) ~max_steps:50 with
  | Ok _ -> Alcotest.fail "naive r/w passed"
  | Error e ->
    Alcotest.(check bool) "agreement violation reported" true
      (String.length e > 0)

let () =
  Alcotest.run "hierarchy"
    [
      ( "classifier",
        [
          Alcotest.test_case "r/w register is level 1" `Quick
            test_rw_is_level_one;
          Alcotest.test_case "strong objects >= 2" `Quick
            test_strong_objects_at_least_two;
          Alcotest.test_case "table matches published" `Quick
            test_table_matches_published;
          Alcotest.test_case "derived protocols verified" `Quick
            test_derived_protocols_verified;
          Alcotest.test_case "witness -> working consensus" `Quick
            test_derived_consensus_from_witness;
          Alcotest.test_case "test&set cannot do 3" `Quick
            test_testset_three_fails;
        ] );
      ( "km-bound",
        [
          Alcotest.test_case "binary consensus exhaustive" `Quick
            test_km_binary_consensus_exhaustive;
          Alcotest.test_case "capacity guard" `Quick test_km_capacity_guard;
          Alcotest.test_case "single operation, single object" `Quick
            test_km_single_operation;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "level 1 closed under products" `Quick
            test_compose_level_one_closed;
          Alcotest.test_case "strong components detected" `Quick
            test_compose_strong_component_detected;
          Alcotest.test_case "composite semantics" `Quick test_compose_semantics;
          Alcotest.test_case "t&s + queue cannot do 3" `Quick
            test_tands_plus_queue_no_three_consensus;
        ] );
      ( "bivalency",
        [
          Alcotest.test_case "critical config on test&set" `Quick
            test_bivalency_critical_on_strong_object;
          Alcotest.test_case "critical config on queue" `Quick
            test_bivalency_queue_protocol;
          Alcotest.test_case "same inputs univalent" `Quick
            test_bivalency_same_inputs_univalent;
          Alcotest.test_case "decision values" `Quick test_decision_values;
          Alcotest.test_case "naive r/w disagreement" `Quick
            test_naive_rw_disagreement_found;
        ] );
    ]
