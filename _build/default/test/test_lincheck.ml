(* Tests for the linearizability checker: hand-built positive and
   negative histories, plus the recorder roundtrip. *)

module Value = Memory.Value
module History = Lincheck.History
module Checker = Lincheck.Checker

let op ~pid ~op ~result ~inv ~res =
  {
    History.pid;
    op;
    result;
    inv_time = inv;
    res_time = res;
  }

let register_spec = Objects.Register.mwmr ~init:(Value.int 0) ()
let queue_spec = Objects.Queue_obj.spec ()
let read_op = Objects.Register.read_op
let write v = Objects.Register.write_op (Value.int v)

let test_empty_history () =
  Alcotest.(check bool) "empty linearizable" true
    (Checker.is_linearizable ~spec:register_spec [])

let test_sequential_history () =
  let h =
    [
      op ~pid:0 ~op:(write 1) ~result:Value.unit ~inv:0 ~res:1;
      op ~pid:0 ~op:read_op ~result:(Value.int 1) ~inv:2 ~res:3;
    ]
  in
  Alcotest.(check bool) "sequential" true
    (Checker.is_linearizable ~spec:register_spec h)

let test_stale_read_rejected () =
  (* A read that returns 0 strictly after a write of 1 completed. *)
  let h =
    [
      op ~pid:0 ~op:(write 1) ~result:Value.unit ~inv:0 ~res:1;
      op ~pid:1 ~op:read_op ~result:(Value.int 0) ~inv:2 ~res:3;
    ]
  in
  Alcotest.(check bool) "stale read rejected" false
    (Checker.is_linearizable ~spec:register_spec h)

let test_concurrent_read_both_ok () =
  (* A read overlapping the write may return either value. *)
  let overlapping result =
    [
      op ~pid:0 ~op:(write 1) ~result:Value.unit ~inv:0 ~res:3;
      op ~pid:1 ~op:read_op ~result ~inv:1 ~res:2;
    ]
  in
  Alcotest.(check bool) "reads 0" true
    (Checker.is_linearizable ~spec:register_spec (overlapping (Value.int 0)));
  Alcotest.(check bool) "reads 1" true
    (Checker.is_linearizable ~spec:register_spec (overlapping (Value.int 1)))

let test_queue_classic_violation () =
  (* Two sequential enqueues followed by a dequeue of the second item:
     FIFO forbids it. *)
  let enq v = Objects.Queue_obj.enq_op (Value.int v) in
  let deq = Objects.Queue_obj.deq_op in
  let h =
    [
      op ~pid:0 ~op:(enq 1) ~result:Value.unit ~inv:0 ~res:1;
      op ~pid:0 ~op:(enq 2) ~result:Value.unit ~inv:2 ~res:3;
      op ~pid:1 ~op:deq ~result:(Value.option (Some (Value.int 2))) ~inv:4
        ~res:5;
    ]
  in
  Alcotest.(check bool) "fifo violation rejected" false
    (Checker.is_linearizable ~spec:queue_spec h)

let test_queue_concurrent_enqueues () =
  (* Concurrent enqueues may linearize in either order. *)
  let enq v = Objects.Queue_obj.enq_op (Value.int v) in
  let deq = Objects.Queue_obj.deq_op in
  let h =
    [
      op ~pid:0 ~op:(enq 1) ~result:Value.unit ~inv:0 ~res:3;
      op ~pid:1 ~op:(enq 2) ~result:Value.unit ~inv:1 ~res:2;
      op ~pid:1 ~op:deq ~result:(Value.option (Some (Value.int 2))) ~inv:4
        ~res:5;
    ]
  in
  Alcotest.(check bool) "either order allowed" true
    (Checker.is_linearizable ~spec:queue_spec h)

let test_witness_order_is_legal () =
  let h =
    [
      op ~pid:0 ~op:(write 5) ~result:Value.unit ~inv:0 ~res:1;
      op ~pid:1 ~op:read_op ~result:(Value.int 5) ~inv:2 ~res:3;
    ]
  in
  match Checker.check ~spec:register_spec h with
  | Checker.Linearizable order ->
    Alcotest.(check int) "order covers all ops" 2 (List.length order);
    Alcotest.(check int) "write first" 0 (List.hd order).History.pid
  | Checker.Not_linearizable -> Alcotest.fail "should be linearizable"

(* --- recorder --- *)

let test_recorder_roundtrip () =
  let open Runtime.Program in
  let store =
    Memory.Store.create
      [
        ("h", History.recorder_spec ());
        ("r", Objects.Register.mwmr ~init:(Value.int 0) ());
      ]
  in
  let prog =
    complete
      (let* _ =
         History.bracket "h" (write 9)
           (let* () = Objects.Register.write "r" (Value.int 9) in
            return Value.unit)
       in
       let* _ =
         History.bracket "h" read_op (Objects.Register.read "r")
       in
       return Value.unit)
  in
  match Runtime.Program.run_sequential store ~pid:0 prog with
  | Error e -> Alcotest.fail e
  | Ok (store, _) ->
    let h = History.of_store store "h" in
    Alcotest.(check int) "two operations" 2 (List.length h);
    Alcotest.(check bool) "linearizable" true
      (Checker.is_linearizable ~spec:register_spec h);
    let times = List.concat_map (fun o -> [ o.History.inv_time; o.History.res_time ]) h in
    Alcotest.(check (list int)) "marker times" [ 0; 1; 2; 3 ] times

let test_incomplete_dropped () =
  let open Runtime.Program in
  let store = Memory.Store.create [ ("h", History.recorder_spec ()) ] in
  let prog =
    complete
      (let* () = History.invoke "h" read_op in
       (* never responds *)
       return Value.unit)
  in
  match Runtime.Program.run_sequential store ~pid:0 prog with
  | Error e -> Alcotest.fail e
  | Ok (store, _) ->
    Alcotest.(check int) "pending op dropped" 0
      (List.length (History.of_store store "h"))

let () =
  Alcotest.run "lincheck"
    [
      ( "checker",
        [
          Alcotest.test_case "empty" `Quick test_empty_history;
          Alcotest.test_case "sequential" `Quick test_sequential_history;
          Alcotest.test_case "stale read rejected" `Quick
            test_stale_read_rejected;
          Alcotest.test_case "concurrent read both ok" `Quick
            test_concurrent_read_both_ok;
          Alcotest.test_case "queue FIFO violation" `Quick
            test_queue_classic_violation;
          Alcotest.test_case "queue concurrent enqueues" `Quick
            test_queue_concurrent_enqueues;
          Alcotest.test_case "witness order" `Quick test_witness_order_is_legal;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "roundtrip" `Quick test_recorder_roundtrip;
          Alcotest.test_case "incomplete ops dropped" `Quick
            test_incomplete_dropped;
        ] );
    ]
