(* Tests for the protocols library: permutations, elections (cas / BCL /
   permutation-chain), consensus and set-consensus. *)

module Value = Memory.Value
module Perm = Protocols.Perm
module Election = Protocols.Election
module Consensus = Protocols.Consensus

(* --- Perm --- *)

let test_factorial () =
  List.iter
    (fun (n, f) -> Alcotest.(check int) (Printf.sprintf "%d!" n) f (Perm.factorial n))
    [ (0, 1); (1, 1); (2, 2); (3, 6); (4, 24); (6, 720) ]

let test_all_perms () =
  Alcotest.(check int) "3! perms" 6 (List.length (Perm.all 3));
  Alcotest.(check (list (list int))) "lex order of all 2"
    [ [ 0; 1 ]; [ 1; 0 ] ]
    (Perm.all 2);
  let perms = Perm.all 4 in
  Alcotest.(check int) "4! perms" 24 (List.length perms);
  Alcotest.(check bool) "all distinct" true
    (List.length (List.sort_uniq compare perms) = 24)

let test_rank_unrank_examples () =
  Alcotest.(check int) "rank of identity" 0 (Perm.rank [ 0; 1; 2 ]);
  Alcotest.(check int) "rank of reverse" 5 (Perm.rank [ 2; 1; 0 ]);
  Alcotest.(check (list int)) "unrank 0" [ 0; 1; 2 ] (Perm.unrank ~m:3 0);
  Alcotest.(check (list int)) "unrank 5" [ 2; 1; 0 ] (Perm.unrank ~m:3 5)

let prop_rank_unrank_roundtrip =
  QCheck.Test.make ~name:"unrank . rank = id" ~count:200
    (QCheck.make
       (QCheck.Gen.map
          (fun (m, r) -> (m, r mod Perm.factorial m))
          QCheck.Gen.(pair (int_range 1 6) (int_bound 719))))
    (fun (m, r) ->
      let p = Perm.unrank ~m r in
      Perm.rank p = r && Perm.is_permutation ~m p)

let test_is_prefix () =
  Alcotest.(check bool) "empty prefix" true (Perm.is_prefix [] [ 1; 2 ]);
  Alcotest.(check bool) "proper prefix" true (Perm.is_prefix [ 1 ] [ 1; 2 ]);
  Alcotest.(check bool) "not prefix" false (Perm.is_prefix [ 2 ] [ 1; 2 ]);
  Alcotest.(check bool) "longer" false (Perm.is_prefix [ 1; 2; 3 ] [ 1; 2 ])

(* --- cas election --- *)

let test_cas_election_exhaustive () =
  let i = Protocols.Cas_election.instance ~k:4 ~n:3 in
  match Election.explore_all i ~max_steps:50 with
  | Ok terminals -> Alcotest.(check int) "3! schedules" 6 terminals
  | Error e -> Alcotest.fail e

let test_cas_election_capacity_guard () =
  Alcotest.(check bool) "n = k rejected" true
    (try
       ignore (Protocols.Cas_election.instance ~k:3 ~n:3);
       false
     with Invalid_argument _ -> true)

let test_cas_election_crash () =
  let i = Protocols.Cas_election.instance ~k:5 ~n:4 in
  match Election.run_with_crashes i ~seed:1 ~crashed:[ 0; 1 ] with
  | Ok leader -> Alcotest.(check bool) "survivor won" true (leader >= 2)
  | Error e -> Alcotest.fail e

(* --- BCL election --- *)

let test_bcl_capacity () =
  List.iter
    (fun k ->
      let i = Protocols.Bcl_election.instance ~k ~n:(k - 1) in
      match Election.explore_all i ~max_steps:50 with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "k=%d: %s" k e))
    [ 2; 3; 4; 5 ]

let test_bcl_overloaded_fails () =
  List.iter
    (fun k ->
      let i = Protocols.Bcl_election.overloaded_instance ~k in
      match Election.explore_all i ~max_steps:50 with
      | Ok _ ->
        Alcotest.fail
          (Printf.sprintf "k=%d: overloaded instance unexpectedly correct" k)
      | Error _ -> ())
    [ 2; 3; 4 ]

let test_bcl_single_op () =
  (* Each process performs exactly one shared-memory operation: the BCL
     "written at most once" regime. *)
  let i = Protocols.Bcl_election.instance ~k:4 ~n:3 in
  match Election.run i ~sched:(Runtime.Sched.random ~seed:3) with
  | Ok outcome ->
    Alcotest.(check int) "3 ops total" 3 outcome.Runtime.Engine.steps
  | Error e -> Alcotest.fail e

(* --- permutation election --- *)

let test_perm_election_reconstruct_chain () =
  let claim source dest position =
    { Protocols.Permutation_election.source; dest; position }
  in
  let bot = Objects.Cas_k.bottom in
  (* True chain ⊥ → 0 → 1 → 2 with a failed early intent (0 → 2, pos 1). *)
  let claims =
    [
      claim bot 0 0;
      claim (Value.int 0) 1 1;
      claim (Value.int 0) 2 1;
      claim (Value.int 1) 2 2;
    ]
  in
  (match
     Protocols.Permutation_election.reconstruct ~k:4 ~cur:(Value.int 2) ~claims
   with
  | Some chain -> Alcotest.(check (list int)) "full chain" [ 0; 1; 2 ] chain
  | None -> Alcotest.fail "no chain found");
  (* Same claims but register still at 1: prefix. *)
  (match
     Protocols.Permutation_election.reconstruct ~k:4 ~cur:(Value.int 1) ~claims
   with
  | Some chain -> Alcotest.(check (list int)) "prefix chain" [ 0; 1 ] chain
  | None -> Alcotest.fail "no prefix chain");
  (* Empty register. *)
  match Protocols.Permutation_election.reconstruct ~k:4 ~cur:bot ~claims:[] with
  | Some [] -> ()
  | _ -> Alcotest.fail "bottom should reconstruct to empty"

let test_perm_election_solo () =
  let i = Protocols.Permutation_election.instance ~k:4 ~n:1 in
  match Election.run_random i ~seed:0 with
  | Ok 0 -> ()
  | Ok l -> Alcotest.fail (Printf.sprintf "solo elected %d" l)
  | Error e -> Alcotest.fail e

let test_perm_election_random_sweep () =
  List.iter
    (fun (k, n) ->
      let i = Protocols.Permutation_election.instance ~k ~n in
      for seed = 0 to 30 do
        match Election.run_random i ~seed with
        | Ok _ -> ()
        | Error e ->
          Alcotest.fail (Printf.sprintf "k=%d n=%d seed=%d: %s" k n seed e)
      done)
    [ (3, 2); (4, 6); (5, 24) ]

let test_perm_election_full_capacity_k5 () =
  let i = Protocols.Permutation_election.instance ~k:5 ~n:24 in
  match Election.run_random i ~seed:11 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let prop_perm_election_crash_subsets =
  QCheck.Test.make ~name:"perm election survives crash subsets" ~count:40
    (QCheck.pair (QCheck.int_bound 1000)
       (QCheck.list_of_size (QCheck.Gen.int_range 0 4) (QCheck.int_bound 5)))
    (fun (seed, crashed) ->
      let i = Protocols.Permutation_election.instance ~k:4 ~n:6 in
      let crashed = List.sort_uniq compare crashed in
      if List.length crashed >= 6 then true
      else
        match Election.run_with_crashes i ~seed ~crashed with
        | Ok leader -> not (List.mem leader crashed)
        | Error e -> QCheck.Test.fail_report e)

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_perm_duplicate_validity_violation () =
  (* With one extra process sharing permutation 0, a run where only that
     process participates elects the absent owner: validity breaks. *)
  let fact = Perm.factorial 3 in
  let i = Protocols.Permutation_election.duplicate_instance ~k:4 ~n:(fact + 1) in
  let crashed = List.init fact (fun q -> q) in
  match Election.run_with_crashes i ~seed:1 ~crashed with
  | Ok _ -> Alcotest.fail "expected a validity violation"
  | Error e ->
    Alcotest.(check bool) "validity mentioned" true (string_contains e "validity")

(* --- consensus --- *)

let inputs2 = [ Value.int 10; Value.int 20 ]

let test_consensus_exhaustive_suite () =
  List.iter
    (fun instance ->
      match Consensus.explore_all instance ~max_steps:60 with
      | Ok _ -> ()
      | Error e ->
        Alcotest.fail (Printf.sprintf "%s: %s" instance.Consensus.name e))
    [
      Consensus.from_cas ~inputs:inputs2;
      Consensus.from_sticky ~inputs:inputs2;
      Consensus.two_from_test_and_set ~inputs:inputs2;
      Consensus.two_from_queue ~inputs:inputs2;
    ]

let test_naive_rw_fails () =
  match Consensus.explore_all (Consensus.naive_rw ~inputs:inputs2) ~max_steps:60 with
  | Ok _ -> Alcotest.fail "naive r/w consensus unexpectedly correct"
  | Error _ -> ()

let test_consensus_from_cas_n4 () =
  let inputs = [ Value.int 1; Value.int 2; Value.int 3; Value.int 4 ] in
  let i = Consensus.from_cas ~inputs in
  match Consensus.explore_all i ~max_steps:60 with
  | Ok terminals -> Alcotest.(check int) "4! schedules" 24 terminals
  | Error e -> Alcotest.fail e

let test_consensus_crash_tolerance () =
  let inputs = [ Value.int 1; Value.int 2; Value.int 3 ] in
  let i = Consensus.from_cas ~inputs in
  match Consensus.run_with_crashes i ~seed:4 ~crashed:[ 0 ] with
  | Ok (Some v) ->
    Alcotest.(check bool) "valid decision" true
      (List.exists (Value.equal v) inputs)
  | Ok None -> Alcotest.fail "no survivor decided"
  | Error e -> Alcotest.fail e

(* --- set consensus --- *)

let test_trivial_set_consensus () =
  let i =
    Protocols.Set_consensus.trivial ~k:3
      ~inputs:[ Value.int 1; Value.int 2; Value.int 3 ]
  in
  match Protocols.Set_consensus.run_random i ~seed:0 with
  | Ok vs -> Alcotest.(check int) "three decisions" 3 (List.length vs)
  | Error e -> Alcotest.fail e

let test_trivial_guard () =
  Alcotest.(check bool) "n > k rejected" true
    (try
       ignore
         (Protocols.Set_consensus.trivial ~k:2
            ~inputs:[ Value.int 1; Value.int 2; Value.int 3 ]);
       false
     with Invalid_argument _ -> true)

let test_group_set_consensus () =
  let inputs = List.init 7 (fun i -> Value.int (100 + i)) in
  let i = Protocols.Set_consensus.from_groups ~k:3 ~inputs in
  for seed = 0 to 20 do
    match Protocols.Set_consensus.run_random i ~seed with
    | Ok vs ->
      Alcotest.(check bool)
        (Printf.sprintf "width <= 3 (seed %d)" seed)
        true
        (List.length vs <= 3)
    | Error e -> Alcotest.fail e
  done

let test_group_set_consensus_exhaustive () =
  let inputs = [ Value.int 1; Value.int 2; Value.int 3 ] in
  let i = Protocols.Set_consensus.from_groups ~k:2 ~inputs in
  match Protocols.Set_consensus.explore_all i ~max_steps:50 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* --- safe agreement (the BG simulation's building block, [4]) --- *)

let sa_inputs = [ Value.int 1; Value.int 2 ]

let test_safe_agreement_crash_free () =
  let i = Protocols.Safe_agreement.make ~inputs:sa_inputs in
  for seed = 0 to 29 do
    match Protocols.Safe_agreement.run_random i ~seed with
    | Ok ([ v ], false) ->
      Alcotest.(check bool)
        (Printf.sprintf "valid decision (seed %d)" seed)
        true
        (List.exists (Value.equal v) sa_inputs)
    | Ok (ds, limit) ->
      Alcotest.fail
        (Printf.sprintf "seed %d: %d decisions, limit=%b" seed
           (List.length ds) limit)
    | Error e -> Alcotest.fail e
  done

let test_safe_agreement_safety_exhaustive () =
  (* Agreement + validity over every complete schedule within the step
     bound (termination is a fairness property, deliberately not
     checked — see the mli). *)
  let i = Protocols.Safe_agreement.make ~inputs:sa_inputs in
  match Protocols.Safe_agreement.explore_all i ~max_steps:26 with
  | Ok complete -> Alcotest.(check bool) "schedules explored" true (complete > 0)
  | Error e -> Alcotest.fail e

let test_safe_agreement_blocks_on_window_crash () =
  (* The non-wait-free face: a crash inside the unsafe window blocks
     every survivor — the reason the BG simulation is t-resilient while
     the paper's emulation (which partitions v-processes instead of
     agreeing step-by-step) stays wait-free. *)
  List.iter
    (fun (inputs, seed) ->
      let i = Protocols.Safe_agreement.make ~inputs in
      Alcotest.(check bool) "survivors blocked" true
        (Protocols.Safe_agreement.run_with_window_crash i ~seed))
    [
      (sa_inputs, 0);
      (sa_inputs, 5);
      ([ Value.int 1; Value.int 2; Value.int 3 ], 7);
    ]

(* --- rw-implementable objects: counter and max register --- *)

let test_counter_sequential () =
  let t = Protocols.Rw_objects.counter ~base:"cnt" ~n:2 in
  let store = Memory.Store.create (Protocols.Rw_objects.counter_bindings t) in
  let open Runtime.Program in
  let prog =
    complete
      (let* () = Protocols.Rw_objects.incr t ~me:0 in
       let* () = Protocols.Rw_objects.incr t ~me:0 in
       let* v = Protocols.Rw_objects.counter_read t in
       return (Value.int v))
  in
  match Runtime.Program.run_sequential store ~pid:0 prog with
  | Ok (_, v) -> Alcotest.(check int) "two increments" 2 (Value.as_int v)
  | Error e -> Alcotest.fail e

let run_lincheck_object ~seeds ~bindings ~prog ~spec =
  for seed = 0 to seeds - 1 do
    let all = ("hist", Lincheck.History.recorder_spec ()) :: bindings in
    let store = Memory.Store.create all in
    let config = Runtime.Engine.init store (List.init 3 prog) in
    let outcome =
      Runtime.Engine.run ~max_steps:50_000
        ~sched:(Runtime.Sched.random ~seed) config
    in
    if outcome.Runtime.Engine.faults <> [] then
      Alcotest.fail (snd (List.hd outcome.Runtime.Engine.faults));
    let h =
      Lincheck.History.of_store outcome.Runtime.Engine.final.Runtime.Engine.store
        "hist"
    in
    if not (Lincheck.Checker.is_linearizable ~spec h) then
      Alcotest.fail (Fmt.str "seed %d not linearizable:@.%a" seed Lincheck.History.pp h)
  done

let test_counter_linearizable () =
  let t = Protocols.Rw_objects.counter ~base:"cnt" ~n:3 in
  let prog pid =
    let open Runtime.Program in
    complete
      (let* _ =
         Lincheck.History.bracket "hist" Protocols.Rw_objects.counter_incr_op
           (let* () = Protocols.Rw_objects.incr t ~me:pid in
            return Value.unit)
       in
       let* _ =
         Lincheck.History.bracket "hist" Protocols.Rw_objects.counter_read_op
           (let* v = Protocols.Rw_objects.counter_read t in
            return (Value.int v))
       in
       let* _ =
         Lincheck.History.bracket "hist" Protocols.Rw_objects.counter_incr_op
           (let* () = Protocols.Rw_objects.incr t ~me:pid in
            return Value.unit)
       in
       return Value.unit)
  in
  run_lincheck_object ~seeds:20
    ~bindings:(Protocols.Rw_objects.counter_bindings t)
    ~prog ~spec:Protocols.Rw_objects.counter_seq_spec

let test_max_register_linearizable () =
  let t = Protocols.Rw_objects.max_reg ~base:"mx" ~n:3 in
  let prog pid =
    let open Runtime.Program in
    complete
      (let* _ =
         Lincheck.History.bracket "hist"
           (Protocols.Rw_objects.max_write_op (10 + pid))
           (let* () = Protocols.Rw_objects.max_write t ~me:pid (10 + pid) in
            return Value.unit)
       in
       let* _ =
         Lincheck.History.bracket "hist" Protocols.Rw_objects.max_read_op
           (let* v = Protocols.Rw_objects.max_read t in
            return (Value.int v))
       in
       return Value.unit)
  in
  run_lincheck_object ~seeds:20
    ~bindings:(Protocols.Rw_objects.max_bindings t)
    ~prog ~spec:Protocols.Rw_objects.max_seq_spec

let test_counter_and_max_classified_level_one () =
  (* Both objects' algebras are commute/overwrite, so Herlihy's
     classifier certifies them at level 1 — consistent with their being
     r/w-implementable (the classifier needs a bounded state space, so
     we bound the counter at a modulus for the check). *)
  let bounded_counter =
    Memory.Spec.make ~type_name:"counter-mod" ~init:(Value.int 0)
      ~apply:(fun ~pid:_ s op ->
        match op with
        | Value.Sym "incr" ->
          Ok (Value.int ((Value.as_int s + 1) mod 8), Value.unit)
        | Value.Sym "read" -> Ok (s, s)
        | _ -> Error "bad op")
  in
  (match
     Hierarchy.Cons_number.classify bounded_counter
       ~ops:[ Value.sym "incr"; Value.sym "read" ]
       ()
   with
  | Hierarchy.Cons_number.Level_one -> ()
  | c ->
    Alcotest.fail
      (Fmt.str "counter: %a" Hierarchy.Cons_number.pp_classification c));
  let bounded_max =
    Memory.Spec.make ~type_name:"max-mod" ~init:(Value.int 0)
      ~apply:(fun ~pid:_ s op ->
        match op with
        | Value.Pair (Value.Sym "max-write", Value.Int v) ->
          Ok (Value.int (max (Value.as_int s) (v mod 4)), Value.unit)
        | Value.Sym "read" -> Ok (s, s)
        | _ -> Error "bad op")
  in
  match
    Hierarchy.Cons_number.classify bounded_max
      ~ops:
        [
          Protocols.Rw_objects.max_write_op 1;
          Protocols.Rw_objects.max_write_op 2;
          Value.sym "read";
        ]
      ()
  with
  | Hierarchy.Cons_number.Level_one -> ()
  | c ->
    Alcotest.fail (Fmt.str "max: %a" Hierarchy.Cons_number.pp_classification c)

let () =
  Alcotest.run "protocols"
    [
      ( "perm",
        [
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "all permutations" `Quick test_all_perms;
          Alcotest.test_case "rank/unrank examples" `Quick
            test_rank_unrank_examples;
          QCheck_alcotest.to_alcotest prop_rank_unrank_roundtrip;
          Alcotest.test_case "is_prefix" `Quick test_is_prefix;
        ] );
      ( "cas-election",
        [
          Alcotest.test_case "exhaustive" `Quick test_cas_election_exhaustive;
          Alcotest.test_case "capacity guard" `Quick
            test_cas_election_capacity_guard;
          Alcotest.test_case "crash tolerance" `Quick test_cas_election_crash;
        ] );
      ( "bcl-election",
        [
          Alcotest.test_case "capacity k-1 (exhaustive)" `Quick
            test_bcl_capacity;
          Alcotest.test_case "n = k fails (exhaustive)" `Quick
            test_bcl_overloaded_fails;
          Alcotest.test_case "single RMW op per process" `Quick
            test_bcl_single_op;
        ] );
      ( "perm-election",
        [
          Alcotest.test_case "reconstruct chains" `Quick
            test_perm_election_reconstruct_chain;
          Alcotest.test_case "solo run" `Quick test_perm_election_solo;
          Alcotest.test_case "random sweep" `Slow test_perm_election_random_sweep;
          Alcotest.test_case "full capacity k=5" `Quick
            test_perm_election_full_capacity_k5;
          QCheck_alcotest.to_alcotest prop_perm_election_crash_subsets;
          Alcotest.test_case "duplicate perm breaks validity" `Quick
            test_perm_duplicate_validity_violation;
        ] );
      ( "consensus",
        [
          Alcotest.test_case "all protocols exhaustive" `Quick
            test_consensus_exhaustive_suite;
          Alcotest.test_case "naive r/w fails" `Quick test_naive_rw_fails;
          Alcotest.test_case "from_cas n=4" `Quick test_consensus_from_cas_n4;
          Alcotest.test_case "crash tolerance" `Quick
            test_consensus_crash_tolerance;
        ] );
      ( "safe-agreement",
        [
          Alcotest.test_case "crash-free runs decide" `Quick
            test_safe_agreement_crash_free;
          Alcotest.test_case "safety exhaustive" `Slow
            test_safe_agreement_safety_exhaustive;
          Alcotest.test_case "window crash blocks" `Quick
            test_safe_agreement_blocks_on_window_crash;
        ] );
      ( "rw-objects",
        [
          Alcotest.test_case "counter sequential" `Quick test_counter_sequential;
          Alcotest.test_case "counter linearizable" `Slow
            test_counter_linearizable;
          Alcotest.test_case "max register linearizable" `Slow
            test_max_register_linearizable;
          Alcotest.test_case "classified level 1" `Quick
            test_counter_and_max_classified_level_one;
        ] );
      ( "set-consensus",
        [
          Alcotest.test_case "trivial" `Quick test_trivial_set_consensus;
          Alcotest.test_case "trivial guard" `Quick test_trivial_guard;
          Alcotest.test_case "groups width bound" `Quick
            test_group_set_consensus;
          Alcotest.test_case "groups exhaustive" `Quick
            test_group_set_consensus_exhaustive;
        ] );
    ]
