(* The paper's reduction, end to end: emulate a (hypothetical,
   over-capacity) leader-election algorithm A with m = (k-1)!+1
   emulators that communicate only through r/w-implementable operations,
   and watch the emulators extract a (k-1)!-set-consensus — the
   impossible object at the heart of Theorem 1.

   Run with:  dune exec examples/emulation_reduction.exe *)

let show_emulators final =
  List.iter
    (fun (v : Core.Emulation.emulator_view) ->
      Printf.printf "  emulator %d: label %s, %s after %d iterations\n"
        v.Core.Emulation.id
        (Core.Label.to_string v.Core.Emulation.label)
        (match v.Core.Emulation.decided with
        | Some d -> "decided " ^ Memory.Value.to_string d
        | None -> if v.Core.Emulation.stalled then "stalled" else "undecided")
        v.Core.Emulation.iterations)
    (Core.Emulation.emulators final)

let () =
  let k = 4 in
  let m = Core.Bounds.emulators ~k in
  Printf.printf "k = %d: m = (k-1)!+1 = %d emulators, label budget (k-1)! = %d\n\n"
    k m (Core.Label.max_labels ~k);

  Printf.printf
    "Subject A: an over-capacity election where every process races\n\
     c&s(bottom -> id mod %d) — the kind of algorithm Theorem 1 forbids.\n\n"
    (k - 1);

  let alg = Core.Workloads.over_capacity_cas_election ~k ~num_vps:280 in
  let params = Core.Emulation.small_params ~k in

  Printf.printf "Adversarial (stale-view) schedule — concurrent first-use\n";
  Printf.printf "updates split the emulators into groups:\n";
  let r = Core.Reduction.check ~seed:0 ~schedule:`Stale_view alg params in
  show_emulators r.Core.Reduction.outcome.Core.Emulation.final;
  Format.printf "@.%a@.@." Core.Reduction.pp_report r;

  Printf.printf
    "The %d emulators decided %d distinct values: a %d-set consensus over\n\
     r/w registers among %d processes, impossible for a correct A by\n\
     Borowsky-Gafni / Herlihy-Shavit / Saks-Zaharoglou.  Hence no correct\n\
     election for that many processes exists.\n\n"
    m r.Core.Reduction.width r.Core.Reduction.max_width m;

  (* Show the deep machinery on a value-revisiting workload. *)
  Printf.printf "Cycling workload (values revisited: releases + in-tree attaches):\n";
  let alg = Core.Workloads.cycling ~k:3 ~rounds:1 ~num_vps:120 in
  let params = Core.Emulation.small_params ~k:3 in
  let o = Core.Emulation.run ~seed:3 (Core.Emulation.create alg params) in
  let s = Core.Emulation.stats o.Core.Emulation.final in
  Printf.printf
    "  %d iterations: %d simple ops, %d suspensions, %d releases,\n\
     \  %d in-tree attaches, %d label splits, %d stall events\n"
    s.Core.Emulation.iterations s.Core.Emulation.simple_ops
    s.Core.Emulation.suspensions s.Core.Emulation.releases
    s.Core.Emulation.attaches s.Core.Emulation.splits
    s.Core.Emulation.stall_events;
  List.iter
    (fun rep ->
      Format.printf "  witness run: %a@." Core.Replay.pp_report rep)
    (Core.Replay.check_all_leaves o.Core.Emulation.final)
