(* The capacity ladder: how many processes can elect a leader with a
   size-k compare&swap, with and without read/write registers?

   Reproduces the quantitative heart of the paper as a table:
     - BCL baseline (register alone): k-1          [Burns-Cruz-Loui]
     - trivial one-shot cas election: k-1
     - permutation-chain election:    (k-1)!       [Afek-Stupp FOCS'93]
     - Theorem 1 upper bound:         O(k^(k^2+3)) [this paper]

   Every positive capacity is demonstrated by running the protocol at
   exactly that size and checking agreement/validity/wait-freedom; the
   negative sides are demonstrated by the violation witnesses in the
   test suite.

   Run with:  dune exec examples/election_tournament.exe *)

let verify name instance seeds =
  let failures = ref 0 in
  for seed = 0 to seeds - 1 do
    match Protocols.Election.run_random instance ~seed with
    | Ok _ -> ()
    | Error e ->
      incr failures;
      Printf.printf "  !! %s seed %d: %s\n" name seed e
  done;
  !failures = 0

let () =
  Printf.printf "%-4s %-12s %-12s %-14s %-22s\n" "k" "BCL (alone)"
    "cas one-shot" "perm-chain" "Theorem 1 upper bound";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter
    (fun k ->
      let bcl_cap = k - 1 in
      let perm_cap = Protocols.Perm.factorial (k - 1) in
      let bcl_ok =
        verify "bcl" (Protocols.Bcl_election.instance ~k ~n:bcl_cap) 10
      in
      let cas_ok =
        verify "cas" (Protocols.Cas_election.instance ~k ~n:(k - 1)) 10
      in
      let perm_ok =
        verify "perm"
          (Protocols.Permutation_election.instance ~k ~n:perm_cap)
          (if perm_cap > 100 then 3 else 10)
      in
      Printf.printf "%-4d %-12s %-12s %-14s O(%s)\n" k
        (Printf.sprintf "%d %s" bcl_cap (if bcl_ok then "[ok]" else "[FAIL]"))
        (Printf.sprintf "%d %s" (k - 1) (if cas_ok then "[ok]" else "[FAIL]"))
        (Printf.sprintf "%d %s" perm_cap (if perm_ok then "[ok]" else "[FAIL]"))
        (Core.Bounds.upper_bound_string ~k))
    [ 3; 4; 5; 6 ];
  Printf.printf
    "\nEvery [ok] is a protocol actually run at that capacity under random\n\
     schedules with full property checking.  The gap between (k-1)! and\n\
     k^(k^2+3) is the paper's open conjecture (n_k = Theta(k!)).\n"
