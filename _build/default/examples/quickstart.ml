(* Quickstart: elect a leader among (k-1)! processes using one bounded
   compare&swap-(k) register plus read/write registers — the algorithm
   whose capacity the paper's Theorem 1 upper-bounds.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let k = 5 in
  let n = Protocols.Perm.factorial (k - 1) in
  Printf.printf
    "Leader election with a compare&swap-(%d) register (%d values)\n" k k;
  Printf.printf "Capacity: (k-1)! = %d processes\n\n" n;

  (* Build the protocol instance: one cas(k) register at "C" plus one
     single-writer claim log per process. *)
  let instance = Protocols.Permutation_election.instance ~k ~n in

  (* Run it under a random schedule. *)
  (match Protocols.Election.run_random instance ~seed:42 with
  | Ok leader -> Printf.printf "All %d processes elected process %d.\n" n leader
  | Error e -> Printf.printf "Protocol violation: %s\n" e);

  (* Crash most of the processes: the survivors still elect (wait-free). *)
  let crashed = List.init (n - 3) (fun i -> i) in
  (match Protocols.Election.run_with_crashes instance ~seed:7 ~crashed with
  | Ok leader ->
    Printf.printf
      "With processes 0..%d crashed before their first step, the %d \
       survivors elected %d.\n"
      (n - 4) 3 leader
  | Error e -> Printf.printf "Protocol violation under crashes: %s\n" e);

  (* The same register without the r/w helpers (Burns-Cruz-Loui model)
     caps at k-1 processes. *)
  let bcl = Protocols.Bcl_election.instance ~k ~n:(k - 1) in
  (match Protocols.Election.run_random bcl ~seed:1 with
  | Ok leader ->
    Printf.printf
      "\nBaseline: the same %d-valued register alone elects among at most \
       %d processes (leader here: %d).\n"
      k (k - 1) leader
  | Error e -> Printf.printf "BCL violation: %s\n" e);

  Printf.printf
    "\nTheorem 1 bound: no algorithm elects among more than O(k^(k^2+3)) = \
     O(%s) processes with this register.\n"
    (Core.Bounds.upper_bound_string ~k)
