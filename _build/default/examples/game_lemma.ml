(* Lemma 1.1's move/jump game (due to Noga Alon): m agents on a complete
   directed k-graph; moves paint edges, jumps need another agent's move;
   at most m^k moves before the painted edges contain a cycle.

   Run with:  dune exec examples/game_lemma.exe *)

let () =
  print_endline "Lemma 1.1: the move/jump game";
  Printf.printf "%-8s %-8s %-10s %-10s %-10s\n" "m" "k" "greedy" "exact" "m^k";
  print_endline (String.make 50 '-');
  List.iter
    (fun (m, k) ->
      let greedy, exact, bound = Game.Search.strategy_gap ~m ~k ~seed:42 in
      Printf.printf "%-8d %-8d %-10d %-10d %-10d\n" m k greedy exact bound)
    [ (2, 2); (2, 3); (2, 4); (3, 2); (3, 3) ];

  print_endline "";
  print_endline "Potential-function audit of a greedy adversary run (m=3, k=4):";
  let m = 3 and k = 4 in
  let run = Game.Search.greedy_run ~m ~k ~seed:7 in
  (match
     Game.Potential.audit_run
       ~init:(Game.Board.create ~m ~k ())
       ~actions:run.Game.Search.actions
   with
  | Ok audit ->
    Printf.printf
      "  initial potential %d (bound m^k = %d), %d moves made,\n\
       \  every move decreased phi: %b; phi + moves never exceeded phi_0: %b\n"
      audit.Game.Potential.initial_phi audit.Game.Potential.bound
      audit.Game.Potential.moves audit.Game.Potential.monotone
      audit.Game.Potential.amortized
  | Error e -> Printf.printf "  audit error: %s\n" e);

  print_endline "";
  print_endline
    "Why this matters: in the emulation, agents are emulators and nodes\n\
     are register values; a move is a history extension and a painted\n\
     cycle is the suspended-process loop that lets every extension be\n\
     backed by a real run of A.  The m^k bound caps how long emulators\n\
     can extend a history before the excess graph must contain a cycle."
