examples/election_tournament.ml: Core List Printf Protocols String
