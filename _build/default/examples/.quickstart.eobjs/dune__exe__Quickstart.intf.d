examples/quickstart.mli:
