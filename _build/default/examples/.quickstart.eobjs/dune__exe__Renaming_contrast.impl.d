examples/renaming_contrast.ml: List Memory Printf Protocols String
