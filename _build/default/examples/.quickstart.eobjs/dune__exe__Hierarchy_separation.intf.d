examples/hierarchy_separation.mli:
