examples/game_lemma.ml: Game List Printf String
