examples/emulation_reduction.ml: Core Format List Memory Printf
