examples/hierarchy_separation.ml: Format Hierarchy List Memory Printf Protocols String
