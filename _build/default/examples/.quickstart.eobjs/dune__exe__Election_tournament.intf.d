examples/election_tournament.mli:
