examples/emulation_reduction.mli:
