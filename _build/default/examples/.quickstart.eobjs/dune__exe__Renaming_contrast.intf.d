examples/renaming_contrast.mli:
