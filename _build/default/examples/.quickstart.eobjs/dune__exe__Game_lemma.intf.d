examples/game_lemma.mli:
