examples/quickstart.ml: Core List Printf Protocols
