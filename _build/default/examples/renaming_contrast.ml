(* The boundary of r/w power, from both sides.

   Below the hierarchy's level 2 nothing can elect: wait-free 2-process
   consensus (and hence leader election) is impossible from r/w
   registers alone — we exhibit the failure of a candidate protocol on
   an exhaustively-found schedule.  Yet r/w registers are not useless:
   one-shot renaming into n(n+1)/2 names is wait-free solvable with a
   grid of Moir-Anderson splitters, and we run it.

   This is the backdrop against which the paper's question is asked: the
   interesting power lives in the strong objects, and the paper shows
   exactly how much of it a *bounded* strong object can deliver.

   Run with:  dune exec examples/renaming_contrast.exe *)

let () =
  print_endline "1. What r/w registers cannot do: elect (even for n = 2)";
  let inputs = [ Memory.Value.int 1; Memory.Value.int 2 ] in
  (match
     Protocols.Consensus.explore_all
       (Protocols.Consensus.naive_rw ~inputs)
       ~max_steps:60
   with
  | Ok _ -> print_endline "   unexpectedly correct?!"
  | Error e ->
    Printf.printf "   candidate protocol broken, witness schedule found:\n";
    String.split_on_char '\n' e
    |> List.iteri (fun i line -> if i < 6 then Printf.printf "   | %s\n" line));

  print_endline "";
  print_endline "2. What r/w registers can do: renaming (Moir-Anderson splitters)";
  List.iter
    (fun n ->
      let instance = Protocols.Splitter.renaming ~n in
      match Protocols.Splitter.run_random instance ~seed:n with
      | Ok names ->
        Printf.printf
          "   n=%d: names %s acquired (distinct, within %d = n(n+1)/2)\n" n
          (String.concat ", " (List.map string_of_int names))
          instance.Protocols.Splitter.name_space
      | Error e -> Printf.printf "   n=%d: VIOLATION %s\n" n e)
    [ 2; 3; 4; 5 ];

  print_endline "";
  print_endline "3. And what one bounded strong object adds on top:";
  let k = 4 in
  let n = Protocols.Perm.factorial (k - 1) in
  (match
     Protocols.Election.run_random
       (Protocols.Permutation_election.instance ~k ~n)
       ~seed:3
   with
  | Ok leader ->
    Printf.printf
      "   one compare&swap-(%d) + r/w: leader election among %d processes \
       (elected %d)\n"
      k n leader
  | Error e -> Printf.printf "   violation: %s\n" e);
  let ks = [ 4; 3 ] in
  let cap = Protocols.Multi_election.capacity ~ks in
  match
    Protocols.Election.run_random
      (Protocols.Multi_election.instance ~ks ~n:cap)
      ~seed:3
  with
  | Ok leader ->
    Printf.printf
      "   two registers (sizes 4 and 3): capacity (4-1)!*(3-1)! = %d \
       (elected %d)\n"
      cap leader
  | Error e -> Printf.printf "   violation: %s\n" e
