(* Herlihy's hierarchy, executably: classify the object zoo, synthesize
   2-consensus protocols from discovered deciders, and drive the
   bivalency adversary to the critical configuration.

   Run with:  dune exec examples/hierarchy_separation.exe *)

let () =
  print_endline "Consensus-number analysis of the object zoo:";
  print_endline (String.make 78 '-');
  List.iter
    (fun row -> Format.printf "%a@." Hierarchy.Separation.pp_row row)
    (Hierarchy.Separation.table ());

  print_endline "";
  print_endline "Bivalency adversary vs the test&set 2-consensus protocol:";
  let inputs = [ Memory.Value.int 1; Memory.Value.int 2 ] in
  (match
     Hierarchy.Bivalency.drive (Protocols.Consensus.two_from_test_and_set ~inputs)
   with
  | Hierarchy.Bivalency.Critical { path; pending; successor_valence } ->
    Printf.printf
      "  critical configuration after %d adversary steps;\n  pending operations: %s\n"
      (List.length path)
      (String.concat ", "
         (List.map (fun (p, l) -> Printf.sprintf "p%d -> %s" p l) pending));
    Printf.printf "  successor valences: %s\n"
      (String.concat ", "
         (List.map
            (fun (p, v) ->
              Printf.sprintf "step p%d => decide %s" p (Memory.Value.to_string v))
            successor_valence));
    print_endline
      "  (both pending operations hit the test&set object — exactly where\n\
       \   Herlihy's critical-configuration argument says the consensus\n\
       \   power must reside)"
  | _ -> print_endline "  unexpected: no critical configuration");

  print_endline "";
  print_endline "Negative controls (exhaustively checked failures):";
  let show name instance =
    match Protocols.Consensus.explore_all instance ~max_steps:80 with
    | Ok _ -> Printf.printf "  %s: UNEXPECTEDLY CORRECT\n" name
    | Error _ -> Printf.printf "  %s: violation found, as the theory demands\n" name
  in
  show "2-consensus from r/w registers only"
    (Protocols.Consensus.naive_rw ~inputs);
  show "3-consensus from one test&set"
    Hierarchy.Separation.test_and_set_three_candidate
