(* lepower: command-line driver for the library's experiments.

   Subcommands:
     elect      run a leader-election protocol and report the outcome
     emulate    run the Afek-Stupp reduction on a workload
     hierarchy  print the consensus-number table
     game       play the Lemma 1.1 move/jump game
     bounds     print the paper's closed-form bounds for a range of k *)

open Cmdliner

let k_arg =
  Arg.(value & opt int 4 & info [ "k" ] ~doc:"Compare&swap register size.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Scheduler random seed.")

(* --- elect --- *)

let elect_protocol =
  Arg.(
    value
    & opt
        (enum
           [ ("perm", `Perm); ("cas", `Cas); ("bcl", `Bcl); ("multi", `Multi) ])
        `Perm
    & info [ "protocol" ]
        ~doc:"Election protocol: perm, cas, bcl or multi (two registers of \
              sizes k and k-1).")

let elect_n =
  Arg.(
    value & opt (some int) None
    & info [ "n" ] ~doc:"Process count (default: the protocol's capacity).")

let elect_crash =
  Arg.(
    value & opt int 0
    & info [ "crash" ] ~doc:"Crash the lowest-numbered $(docv) processes."
        ~docv:"COUNT")

let elect k seed protocol n crash =
  let instance =
    match protocol with
    | `Perm ->
      let n = Option.value ~default:(Protocols.Perm.factorial (k - 1)) n in
      Protocols.Permutation_election.instance ~k ~n
    | `Cas ->
      let n = Option.value ~default:(k - 1) n in
      Protocols.Cas_election.instance ~k ~n
    | `Bcl ->
      let n = Option.value ~default:(k - 1) n in
      Protocols.Bcl_election.instance ~k ~n
    | `Multi ->
      let ks = [ k; max 2 (k - 1) ] in
      let n =
        Option.value ~default:(Protocols.Multi_election.capacity ~ks) n
      in
      Protocols.Multi_election.instance ~ks ~n
  in
  Printf.printf "protocol: %s\n" instance.Protocols.Election.name;
  let result =
    if crash = 0 then Protocols.Election.run_random instance ~seed
    else
      Protocols.Election.run_with_crashes instance ~seed
        ~crashed:(List.init crash (fun i -> i))
  in
  match result with
  | Ok leader ->
    Printf.printf "leader: %d\n" leader;
    0
  | Error e ->
    Printf.printf "violation: %s\n" e;
    1

let elect_cmd =
  Cmd.v
    (Cmd.info "elect" ~doc:"Run a leader-election protocol.")
    Term.(const elect $ k_arg $ seed_arg $ elect_protocol $ elect_n $ elect_crash)

(* --- emulate --- *)

let emulate_workload =
  Arg.(
    value
    & opt (enum [ ("overcap", `Overcap); ("cycling", `Cycling) ]) `Overcap
    & info [ "workload" ]
        ~doc:"Emulated algorithm A: overcap (over-capacity election) or \
              cycling (value-revisiting stress).")

let emulate_vps =
  Arg.(value & opt int 280 & info [ "vps" ] ~doc:"Total virtual processes.")

let emulate_schedule =
  Arg.(
    value
    & opt
        (enum
           [ ("random", `Random); ("rr", `Round_robin); ("stale", `Stale_view) ])
        `Stale_view
    & info [ "schedule" ] ~doc:"Emulator schedule: random, rr or stale.")

let emulate_dump_tree =
  Arg.(
    value & flag
    & info [ "dump-tree" ]
        ~doc:"Print the final history structure T (Fig. 1) after the run.")

let emulate k seed workload vps schedule dump_tree =
  let alg =
    match workload with
    | `Overcap -> Core.Workloads.over_capacity_cas_election ~k ~num_vps:vps
    | `Cycling -> Core.Workloads.cycling ~k ~rounds:1 ~num_vps:vps
  in
  let params = Core.Emulation.small_params ~k in
  let r = Core.Reduction.check ~seed ~schedule alg params in
  Format.printf "%a@." Core.Reduction.pp_report r;
  let s = Core.Emulation.stats r.Core.Reduction.outcome.Core.Emulation.final in
  Printf.printf
    "stats: %d iterations, %d simple ops, %d suspensions, %d releases, %d \
     attaches, %d splits, %d stalls\n"
    s.Core.Emulation.iterations s.Core.Emulation.simple_ops
    s.Core.Emulation.suspensions s.Core.Emulation.releases
    s.Core.Emulation.attaches s.Core.Emulation.splits
    s.Core.Emulation.stall_events;
  List.iter
    (fun (name, violations) ->
      List.iter
        (fun v -> Format.printf "audit %s: %a@." name Core.Invariants.pp_violation v)
        violations)
    (Core.Invariants.all r.Core.Reduction.outcome.Core.Emulation.final);
  if dump_tree then
    Format.printf "@.history structure T:@.%a" Core.History_tree.pp
      (Core.Emulation.shared_tree r.Core.Reduction.outcome.Core.Emulation.final);
  if r.Core.Reduction.width <= r.Core.Reduction.max_width then 0 else 1

let emulate_cmd =
  Cmd.v
    (Cmd.info "emulate" ~doc:"Run the Afek-Stupp reduction on a workload.")
    Term.(
      const emulate $ k_arg $ seed_arg $ emulate_workload $ emulate_vps
      $ emulate_schedule $ emulate_dump_tree)

(* --- hierarchy --- *)

let hierarchy () =
  List.iter
    (fun row -> Format.printf "%a@." Hierarchy.Separation.pp_row row)
    (Hierarchy.Separation.table ());
  0

let hierarchy_cmd =
  Cmd.v
    (Cmd.info "hierarchy" ~doc:"Print the consensus-number analysis table.")
    Term.(const hierarchy $ const ())

(* --- game --- *)

let game_m = Arg.(value & opt int 2 & info [ "m" ] ~doc:"Number of agents.")

let game m k seed =
  let greedy, exact, bound = Game.Search.strategy_gap ~m ~k ~seed in
  Printf.printf "m=%d k=%d: greedy=%d exact=%d bound(m^k)=%d\n" m k greedy
    exact bound;
  if exact <= bound || m = 1 then 0 else 1

let game_cmd =
  Cmd.v
    (Cmd.info "game" ~doc:"Play the Lemma 1.1 move/jump game.")
    Term.(const game $ game_m $ k_arg $ seed_arg)

(* --- rename --- *)

let rename_n =
  Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of processes.")

let rename n seed =
  let instance = Protocols.Splitter.renaming ~n in
  match Protocols.Splitter.run_random instance ~seed with
  | Ok names ->
    Printf.printf "names (by pid): %s  (space: %d)\n"
      (String.concat ", " (List.map string_of_int names))
      instance.Protocols.Splitter.name_space;
    0
  | Error e ->
    Printf.printf "violation: %s\n" e;
    1

let rename_cmd =
  Cmd.v
    (Cmd.info "rename"
       ~doc:"One-shot renaming from r/w registers (Moir-Anderson splitters).")
    Term.(const rename $ rename_n $ seed_arg)

(* --- bounds --- *)

let bounds () =
  Printf.printf "%-4s %-14s %-14s %-10s %s\n" "k" "lower (k-1)!" "emulators m"
    "batch" "upper bound k^(k^2+3)";
  List.iter
    (fun k ->
      let m = Core.Bounds.emulators ~k in
      Printf.printf "%-4d %-14d %-14d %-10d %s\n" k
        (Core.Bounds.election_lower_bound ~k)
        m
        (Core.Bounds.suspension_batch ~k ~m)
        (Core.Bounds.upper_bound_string ~k))
    [ 3; 4; 5; 6; 7; 8 ];
  0

let bounds_cmd =
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the paper's closed-form bounds.")
    Term.(const bounds $ const ())

let () =
  let info =
    Cmd.info "lepower" ~version:"1.0.0"
      ~doc:
        "Delimiting the power of bounded size synchronization objects \
         (Afek & Stupp, PODC 1994) — executable reproduction."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            elect_cmd; emulate_cmd; hierarchy_cmd; game_cmd; rename_cmd;
            bounds_cmd;
          ]))
