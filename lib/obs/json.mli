(** A minimal JSON tree, printer and parser.

    The observability layer must emit machine-readable artifacts (JSONL
    event streams, Chrome-trace files, metrics snapshots) and the test
    suite must round-trip them, without adding a dependency the container
    may not have.  This module is deliberately small: a value tree, a
    compact printer, and a strict recursive-descent parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats render as
    [null] — JSON has no NaN/infinity. *)

val to_channel : out_channel -> t -> unit
val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document: trailing garbage, trailing
    commas and unterminated constructs are errors.  [\uXXXX] escapes are
    decoded to UTF-8 (surrogate pairs included). *)

val equal : t -> t -> bool
(** Structural equality; [Obj] field order is significant. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the value bound to [key], if any;
    [None] on non-objects. *)
