let span_to_chrome (s : Span.completed) =
  Json.Obj
    [
      ("name", Json.String s.Span.name);
      ("cat", Json.String "span");
      ("ph", Json.String "X");
      ("ts", Json.Float s.Span.start_us);
      ("dur", Json.Float s.Span.dur_us);
      ("pid", Json.Int 0);
      ("tid", Json.Int s.Span.tid);
      ("args", Json.Obj s.Span.args);
    ]

let chrome_of_events ?(extra = []) events =
  Json.Obj
    (("traceEvents", Json.List events)
    :: ("displayTimeUnit", Json.String "ms")
    :: extra)

let chrome_of_spans spans = chrome_of_events (List.map span_to_chrome spans)

let span_to_json (s : Span.completed) =
  Json.Obj
    [
      ("type", Json.String "span");
      ("name", Json.String s.Span.name);
      ("ts_us", Json.Float s.Span.start_us);
      ("dur_us", Json.Float s.Span.dur_us);
      ("tid", Json.Int s.Span.tid);
      ("args", Json.Obj s.Span.args);
    ]

let jsonl_of_spans spans = List.map span_to_json spans

let metrics_json ?(meta = []) () =
  match Metrics.snapshot_to_json (Metrics.snapshot ()) with
  | Json.Obj fields ->
    if meta = [] then Json.Obj fields
    else Json.Obj (("meta", Json.Obj meta) :: fields)
  | other -> other

let write_json path json =
  Out_channel.with_open_text path (fun oc ->
      Json.to_channel oc json;
      output_char oc '\n')

let write_jsonl path jsons =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun json ->
          Json.to_channel oc json;
          output_char oc '\n')
        jsons)
