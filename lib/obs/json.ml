type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* "%g" may print an integral float without '.' or 'e'; that is still
       a valid JSON number, so no fixup is needed. *)
    Printf.sprintf "%.12g" f

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> add_escaped buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)
let pp ppf v = Format.pp_print_string ppf (to_string v)
let equal (a : t) (b : t) = a = b

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- parsing --- *)

exception Fail of string * int

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input"
    else begin
      let c = s.[!pos] in
      incr pos;
      c
    end
  in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let hex4 () =
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = next () in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d
    done;
    !v
  in
  let parse_string () =
    (* Opening quote already consumed. *)
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        (match next () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let cp = hex4 () in
          let cp =
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              (* High surrogate: require a low-surrogate continuation. *)
              if next () <> '\\' || next () <> 'u' then
                fail "unpaired surrogate in \\u escape";
              let lo = hex4 () in
              if lo < 0xDC00 || lo > 0xDFFF then
                fail "invalid low surrogate in \\u escape";
              0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
            end
            else cp
          in
          add_utf8 buf cp
        | _ -> fail "unknown escape");
        go ())
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let is_float = ref false in
    let rec scan () =
      match peek () with
      | Some ('0' .. '9') ->
        incr pos;
        scan ()
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
        is_float := true;
        incr pos;
        scan ()
      | _ -> ()
    in
    scan ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail ("bad number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' ->
      incr pos;
      String (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          expect '"';
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> fields ((key, v) :: acc)
          | '}' -> Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> items (v :: acc)
          | ']' -> List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Fail (msg, p) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)
