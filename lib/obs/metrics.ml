type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

let num_buckets = 33 (* <=1, <=2, ..., <=2^31, overflow *)

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let on = ref false
let enable () = on := true
let disable () = on := false
let is_enabled () = !on

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add counters name c;
    c

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0. } in
    Hashtbl.add gauges name g;
    g

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_count = 0;
        h_sum = 0.;
        h_min = 0.;
        h_max = 0.;
        h_buckets = Array.make num_buckets 0;
      }
    in
    Hashtbl.add histograms name h;
    h

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.;
      h.h_min <- 0.;
      h.h_max <- 0.;
      Array.fill h.h_buckets 0 num_buckets 0)
    histograms

let incr ?(by = 1) c = if !on then c.c_value <- c.c_value + by
let set g v = if !on then g.g_value <- v

let bucket_index v =
  let rec go i bound =
    if i >= num_buckets - 1 || v <= bound then i else go (i + 1) (bound *. 2.)
  in
  go 0 1.0

let observe h v =
  if !on then begin
    if h.h_count = 0 || v < h.h_min then h.h_min <- v;
    if h.h_count = 0 || v > h.h_max then h.h_max <- v;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    let i = bucket_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1
  end

let value c = c.c_value
let gauge_value g = g.g_value

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

let histogram_stats h =
  let buckets = ref [] in
  for i = num_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      let bound =
        if i = num_buckets - 1 then infinity else Float.of_int (1 lsl i)
      in
      buckets := (bound, h.h_buckets.(i)) :: !buckets
  done;
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    buckets = !buckets;
  }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun _ x acc -> f x :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  {
    counters = sorted_bindings counters (fun c -> (c.c_name, c.c_value));
    gauges = sorted_bindings gauges (fun g -> (g.g_name, g.g_value));
    histograms =
      sorted_bindings histograms (fun h -> (h.h_name, histogram_stats h));
  }

let histogram_stats_to_json (s : histogram_stats) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Float s.sum);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ( "mean",
        if s.count = 0 then Json.Null
        else Json.Float (s.sum /. Float.of_int s.count) );
      ( "buckets",
        Json.List
          (List.map
             (fun (bound, count) ->
               Json.Obj
                 [
                   ( "le",
                     if Float.is_finite bound then Json.Float bound
                     else Json.String "+inf" );
                   ("count", Json.Int count);
                 ])
             s.buckets) );
    ]

let snapshot_to_json (s : snapshot) =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) s.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Float v)) s.gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (name, st) -> (name, histogram_stats_to_json st))
             s.histograms) );
    ]
