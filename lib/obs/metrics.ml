(* Domain-safety: counters and gauges are [Atomic.t] cells, histograms
   take a per-histogram mutex, and the find-or-create registry takes a
   global one.  Explore's Domain workers (and any future parallel
   driver) may therefore hit the same instruments concurrently without
   losing increments; the only remaining cross-domain laxity is the
   [on] flag itself, whose reads are monotonic-enough (a worker that
   races an enable/disable merely skips or records a few mutations). *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

let num_buckets = 33 (* <=1, <=2, ..., <=2^31, overflow *)

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let on = ref false
let enable () = on := true
let disable () = on := false
let is_enabled () = !on

let registry_lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let find_or_create tbl name create =
  with_registry (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some x -> x
      | None ->
        let x = create () in
        Hashtbl.add tbl name x;
        x)

let counter name =
  find_or_create counters name (fun () ->
      { c_name = name; c_value = Atomic.make 0 })

let gauge name =
  find_or_create gauges name (fun () ->
      { g_name = name; g_value = Atomic.make 0. })

let histogram name =
  find_or_create histograms name (fun () ->
      {
        h_name = name;
        h_lock = Mutex.create ();
        h_count = 0;
        h_sum = 0.;
        h_min = 0.;
        h_max = 0.;
        h_buckets = Array.make num_buckets 0;
      })

let reset () =
  with_registry (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_value 0.) gauges;
      Hashtbl.iter
        (fun _ h ->
          Mutex.lock h.h_lock;
          h.h_count <- 0;
          h.h_sum <- 0.;
          h.h_min <- 0.;
          h.h_max <- 0.;
          Array.fill h.h_buckets 0 num_buckets 0;
          Mutex.unlock h.h_lock)
        histograms)

let incr ?(by = 1) c = if !on then ignore (Atomic.fetch_and_add c.c_value by)
let set g v = if !on then Atomic.set g.g_value v

let bucket_index v =
  let rec go i bound =
    if i >= num_buckets - 1 || v <= bound then i else go (i + 1) (bound *. 2.)
  in
  go 0 1.0

let observe h v =
  if !on then begin
    Mutex.lock h.h_lock;
    if h.h_count = 0 || v < h.h_min then h.h_min <- v;
    if h.h_count = 0 || v > h.h_max then h.h_max <- v;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    let i = bucket_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1;
    Mutex.unlock h.h_lock
  end

let value c = Atomic.get c.c_value
let gauge_value g = Atomic.get g.g_value

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

let histogram_stats h =
  Mutex.lock h.h_lock;
  let buckets = ref [] in
  for i = num_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      let bound =
        if i = num_buckets - 1 then infinity else Float.of_int (1 lsl i)
      in
      buckets := (bound, h.h_buckets.(i)) :: !buckets
  done;
  let stats =
    {
      count = h.h_count;
      sum = h.h_sum;
      min = h.h_min;
      max = h.h_max;
      buckets = !buckets;
    }
  in
  Mutex.unlock h.h_lock;
  stats

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun _ x acc -> f x :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  (* Take the table bindings under the registry lock, then read each
     instrument with its own synchronization (atomic get / histogram
     mutex) outside it — lock order stays registry > instrument. *)
  let cs, gs, hs =
    with_registry (fun () ->
        ( sorted_bindings counters (fun c -> (c.c_name, c)),
          sorted_bindings gauges (fun g -> (g.g_name, g)),
          sorted_bindings histograms (fun h -> (h.h_name, h)) ))
  in
  {
    counters = List.map (fun (name, c) -> (name, value c)) cs;
    gauges = List.map (fun (name, g) -> (name, gauge_value g)) gs;
    histograms = List.map (fun (name, h) -> (name, histogram_stats h)) hs;
  }

let histogram_stats_to_json (s : histogram_stats) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Float s.sum);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ( "mean",
        if s.count = 0 then Json.Null
        else Json.Float (s.sum /. Float.of_int s.count) );
      ( "buckets",
        Json.List
          (List.map
             (fun (bound, count) ->
               Json.Obj
                 [
                   ( "le",
                     if Float.is_finite bound then Json.Float bound
                     else Json.String "+inf" );
                   ("count", Json.Int count);
                 ])
             s.buckets) );
    ]

let snapshot_to_json (s : snapshot) =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) s.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Float v)) s.gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (name, st) -> (name, histogram_stats_to_json st))
             s.histograms) );
    ]
