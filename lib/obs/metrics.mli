(** Counters, gauges and histograms — zero cost when disabled.

    The paper's claims are quantitative (step counts, schedule-space
    sizes, capacity ladders), so the runtime's hot paths carry permanent
    instrumentation points.  Each metric is a registered mutable cell;
    every mutation first reads one global flag, so with the subsystem
    disabled (the default) an instrumented hot path costs a load and a
    branch — nothing is allocated, formatted or stored.

    Metrics live in a global registry keyed by name: requesting an
    existing name returns the same cell, so modules can declare their
    instruments at top level and tests can look the values up by name.

    All mutation is {b domain-safe}: counters and gauges are atomic
    cells, histograms serialize observations behind a per-histogram
    mutex, and find-or-create takes a registry lock — instruments hit
    concurrently from Domain workers (e.g. the parallel explorer's
    [engine.*] counters) lose nothing.  [enable]/[disable] are plain
    flag writes: a worker racing the flip may skip or record a handful
    of mutations, never corrupt state. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create the counter registered under this name. *)

val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Global switch} *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool
(** Guard for instrumentation whose {e argument computation} is not free
    (e.g. classifying an operation before picking a counter).  Plain
    [incr]/[set]/[observe] already check the flag themselves. *)

val reset : unit -> unit
(** Zero every registered metric (the registry itself is kept). *)

(** {1 Mutation — no-ops while disabled} *)

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Reading} *)

val value : counter -> int
val gauge_value : gauge -> float

type histogram_stats = {
  count : int;
  sum : float;
  min : float;  (** 0 when empty *)
  max : float;
  buckets : (float * int) list;
      (** (inclusive upper bound, observations <= bound), powers of two
          starting at 1.0; the last bucket is [infinity] (overflow). Only
          non-empty buckets are listed. *)
}

val histogram_stats : histogram -> histogram_stats

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}

val snapshot : unit -> snapshot
val snapshot_to_json : snapshot -> Json.t
