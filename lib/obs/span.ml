type completed = {
  name : string;
  start_us : float;
  dur_us : float;
  tid : int;
  args : (string * Json.t) list;
}

type sink = completed -> unit

let on = ref false
let enable () = on := true
let disable () = on := false
let is_enabled () = !on

let buffer : completed list ref = ref [] (* newest first *)
let custom_sink : sink option ref = ref None
let set_sink s = custom_sink := s

let epoch = Unix.gettimeofday ()

(* One lock covers the monotone-clock state and the buffer, so spans
   completed in Domain workers neither tear the buffer list nor step the
   clock backwards relative to each other. *)
let lock = Mutex.create ()

let now_us =
  let last = ref 0. in
  fun () ->
    let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
    Mutex.lock lock;
    if t > !last then last := t;
    let t = !last in
    Mutex.unlock lock;
    t

let emit span =
  match !custom_sink with
  | Some f -> f span
  | None ->
    Mutex.lock lock;
    buffer := span :: !buffer;
    Mutex.unlock lock

let with_span ?(tid = 0) ?(args = []) name f =
  if not !on then f ()
  else begin
    let start_us = now_us () in
    let finish () =
      emit { name; start_us; dur_us = now_us () -. start_us; tid; args }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let instant ?(tid = 0) ?(args = []) name =
  if !on then emit { name; start_us = now_us (); dur_us = 0.; tid; args }

let completed () =
  List.sort
    (fun a b -> Float.compare a.start_us b.start_us)
    (List.rev !buffer)

let reset () = buffer := []
