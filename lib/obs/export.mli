(** Exporters: Chrome trace format, JSONL event streams, and metrics
    snapshots.

    Chrome trace output is the JSON-object form
    [{"traceEvents": [...], ...}] with complete ("ph":"X") events, loadable
    in [chrome://tracing] or [https://ui.perfetto.dev].  JSONL output is
    one compact JSON document per line — trivially parseable back with
    {!Json.of_string} line by line. *)

val span_to_chrome : Span.completed -> Json.t
(** One complete ("X") trace event, [pid] 0 (the wall-clock lane). *)

val chrome_of_events : ?extra:(string * Json.t) list -> Json.t list -> Json.t
(** Wrap pre-rendered trace events as a Chrome trace document; [extra]
    fields are appended to the top-level object (e.g. metadata). *)

val chrome_of_spans : Span.completed list -> Json.t

val span_to_json : Span.completed -> Json.t
(** JSONL form: [{"type":"span","name":...,"ts_us":...,"dur_us":...,
    "tid":...,"args":{...}}]. *)

val jsonl_of_spans : Span.completed list -> Json.t list

val metrics_json : ?meta:(string * Json.t) list -> unit -> Json.t
(** A snapshot of the global metrics registry as one JSON object:
    [{"meta":{...},"counters":{...},"gauges":{...},"histograms":{...}}]. *)

val write_json : string -> Json.t -> unit
(** Write one compact document (plus a trailing newline) to the path. *)

val write_jsonl : string -> Json.t list -> unit
(** Write one compact document per line to the path. *)
