(** Span tracing: wall-clock intervals around long-running phases
    ([Engine.run], [Explore.explore], emulation rounds, linearizability
    checks), exportable to Chrome trace format.

    Like {!Metrics}, spans are zero cost when disabled: [with_span]
    reads one flag and tail-calls its thunk.  When enabled, completed
    spans go to the installed {e sink} — by default an in-memory buffer
    drained with {!completed}; [set_sink] redirects the stream (e.g. to
    an incremental JSONL writer).

    Timestamps are microseconds since the process loaded this module,
    forced monotone (non-decreasing) so spans and Chrome traces stay
    well-ordered even if the wall clock steps backwards.

    The default buffering sink and the monotone clock are mutex-guarded,
    so spans may complete concurrently in Domain workers; a custom
    [set_sink] function must bring its own synchronization. *)

type completed = {
  name : string;
  start_us : float;  (** microseconds since program start *)
  dur_us : float;
  tid : int;  (** Chrome-trace thread lane; 0 unless the caller says *)
  args : (string * Json.t) list;
}

type sink = completed -> unit

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val set_sink : sink option -> unit
(** [Some f] routes every completed span to [f] instead of the buffer;
    [None] restores the default buffering sink. *)

val now_us : unit -> float
(** The monotone clock spans are stamped with. *)

val with_span :
  ?tid:int -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Time the thunk.  The span is recorded even if the thunk raises.
    When disabled this is just [f ()]. *)

val instant : ?tid:int -> ?args:(string * Json.t) list -> string -> unit
(** A zero-duration marker event. *)

val completed : unit -> completed list
(** The buffered spans so far, sorted by start time (the buffer is kept;
    use {!reset} to drop it).  Empty while a custom sink is installed. *)

val reset : unit -> unit
(** Drop all buffered spans. *)
