module Value = Memory.Value
module Program = Runtime.Program

let read_op = Op_codec.read_op
let write_op = Op_codec.write_op

let apply_rw ~check_writer ~pid state op =
  match Op_codec.classify op with
  | Op_codec.Read -> Ok (state, state)
  | Op_codec.Write v -> (
    match check_writer pid with
    | Ok () -> Ok (v, Value.unit)
    | Error _ as e -> e)
  | _ -> Error ("register: bad operation " ^ Value.to_string op)

let mwmr ?(init = Value.unit) () =
  Memory.Spec.make ~type_name:"mwmr-reg" ~init
    ~apply:(apply_rw ~check_writer:(fun _ -> Ok ()))

let swmr ~owner ?(init = Value.unit) () =
  let check_writer pid =
    if pid = owner then Ok ()
    else
      Error (Printf.sprintf "swmr register owned by %d written by %d" owner pid)
  in
  Memory.Spec.make ~type_name:"swmr-reg" ~init ~apply:(apply_rw ~check_writer)

let read loc = Program.op loc read_op

let write loc v =
  let open Program in
  let* _ = op loc (write_op v) in
  return ()
