module Value = Memory.Value
module Program = Runtime.Program

let swap_op = Op_codec.swap_op

let spec ?(init = Value.unit) () =
  let apply ~pid:_ state op =
    match Op_codec.classify op with
    | Op_codec.Swap v -> Ok (v, state)
    | Op_codec.Read -> Ok (state, state)
    | _ -> Error ("swap: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:"swap" ~init ~apply

let swap loc v = Program.op loc (swap_op v)
let read loc = Program.op loc Op_codec.read_op
