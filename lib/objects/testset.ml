module Value = Memory.Value
module Program = Runtime.Program

let test_and_set_op = Op_codec.test_and_set_op
let reset_op = Op_codec.reset_op

let spec () =
  let apply ~pid:_ state op =
    match Op_codec.classify op with
    | Op_codec.Test_and_set -> Ok (Value.bool true, state)
    | Op_codec.Reset -> Ok (Value.bool false, Value.unit)
    | Op_codec.Read -> Ok (state, state)
    | _ -> Error ("test&set: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:"test&set" ~init:(Value.bool false) ~apply

let test_and_set loc =
  let open Program in
  let* old = op loc test_and_set_op in
  return (not (Value.as_bool old))

let reset loc =
  let open Program in
  let* _ = op loc reset_op in
  return ()

let read loc =
  let open Program in
  let* v = op loc Op_codec.read_op in
  return (Value.as_bool v)
