module Value = Memory.Value
module Program = Runtime.Program

let bottom = Value.sym "_|_"
let value i = Value.int i

let alphabet ~k =
  if k < 1 then invalid_arg "Cas_k.alphabet: k must be >= 1";
  bottom :: List.init (k - 1) value

let cas_op = Op_codec.cas_op

let generic_spec ~values ~init =
  let k = List.length values in
  let in_sigma v = List.exists (Value.equal v) values in
  if not (in_sigma init) then
    invalid_arg "Cas_k.generic_spec: init outside the alphabet";
  let apply ~pid:_ state op =
    match Op_codec.decode_cas op with
    | Some (expected, desired) ->
      if not (in_sigma expected && in_sigma desired) then
        Error
          (Printf.sprintf "cas(%d): value outside the alphabet in %s" k
             (Value.to_string op))
      else if Value.equal state expected then Ok (desired, state)
      else Ok (state, state)
    | None -> Error ("cas: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:(Printf.sprintf "cas(%d)" k) ~init ~apply

let spec ~k = generic_spec ~values:(alphabet ~k) ~init:bottom

let cas loc ~expected ~desired = Program.op loc (cas_op ~expected ~desired)
let read loc = cas loc ~expected:bottom ~desired:bottom

let succeeded ~previous ~expected ~desired =
  Value.equal previous expected && not (Value.equal expected desired)
