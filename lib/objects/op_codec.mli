(** The shared wire format of object operations.

    Every object in the zoo describes an invocation as a {!Memory.Value.t}
    and each module used to hand-roll both the encoder and the pattern
    match decoding it.  This module centralizes the encoding: the object
    specs decode through {!classify}, and the analysis layer
    ([Lepower_check], [Lepower_static]) classifies trace events and step
    programs with the very same decoder, so an object and its lint can
    never disagree about what an operation means. *)

module Value := Memory.Value

(** {1 Encoders} *)

val read_op : Value.t
val write_op : Value.t -> Value.t
val cas_op : expected:Value.t -> desired:Value.t -> Value.t
val swap_op : Value.t -> Value.t
val sticky_write_op : Value.t -> Value.t
val rmw_op : string -> Value.t
val ll_op : Value.t
val sc_op : Value.t -> Value.t
val enq_op : Value.t -> Value.t
val deq_op : Value.t
val test_and_set_op : Value.t
val reset_op : Value.t
val fetch_add_op : int -> Value.t

(** {1 Decoding} *)

(** The decoded shape of an operation. *)
type kind =
  | Read
  | Write of Value.t
  | Cas of { expected : Value.t; desired : Value.t }
  | Swap of Value.t
  | Sticky_write of Value.t
  | Rmw of string
  | Ll  (** load-linked: returns the value and links the caller *)
  | Sc of Value.t  (** store-conditional of the value *)
  | Enq of Value.t
  | Deq
  | Test_and_set
  | Reset
  | Fetch_add of int
  | Other  (** not one of the standard encodings *)

val classify : Value.t -> kind

val decode_write : Value.t -> Value.t option
val decode_cas : Value.t -> (Value.t * Value.t) option
(** [(expected, desired)] of a compare&swap invocation. *)

val decode_swap : Value.t -> Value.t option
val decode_sticky_write : Value.t -> Value.t option
val decode_rmw : Value.t -> string option
val decode_sc : Value.t -> Value.t option
val decode_enq : Value.t -> Value.t option
val decode_fetch_add : Value.t -> int option
val is_read : Value.t -> bool

val is_mutation : kind -> bool
(** Can the operation change the object's state?  [Read] cannot; [Ll]
    can (it mutates the link set); [Other] conservatively can. *)

val kind_name : kind -> string
(** Short tag for reports: ["read"], ["write"], ["cas"], … *)

val family_name : kind -> string
(** The operation family a mutation commits its location to, for the
    op-type lint: paired operations of one object type share a family
    ([Ll]/[Sc] are both ["ll/sc"], [Enq]/[Deq] both ["queue"],
    [Test_and_set]/[Reset] both ["test&set"]); every other kind's family
    is its {!kind_name}. *)

val written_value : kind -> Value.t option
(** The value the invocation syntactically carries and may install
    ([Write]/[Cas]'s desired/[Swap]/[Sticky_write]/[Sc]/[Enq]); [None]
    when the written value is state-dependent ([Rmw], [Fetch_add], …) or
    the operation writes nothing. *)
