(** The shared wire format of object operations.

    Every object in the zoo describes an invocation as a {!Memory.Value.t}
    and each module used to hand-roll both the encoder and the pattern
    match decoding it.  This module centralizes the encoding: the object
    specs decode through {!classify}, and the analysis layer
    ([Lepower_check]) classifies trace events with the very same decoder,
    so an object and its lint can never disagree about what an operation
    means. *)

module Value := Memory.Value

(** {1 Encoders} *)

val read_op : Value.t
val write_op : Value.t -> Value.t
val cas_op : expected:Value.t -> desired:Value.t -> Value.t
val swap_op : Value.t -> Value.t
val sticky_write_op : Value.t -> Value.t
val rmw_op : string -> Value.t

(** {1 Decoding} *)

(** The decoded shape of an operation. *)
type kind =
  | Read
  | Write of Value.t
  | Cas of { expected : Value.t; desired : Value.t }
  | Swap of Value.t
  | Sticky_write of Value.t
  | Rmw of string
  | Other  (** not one of the standard encodings (e.g. LL/SC, queue ops) *)

val classify : Value.t -> kind

val decode_write : Value.t -> Value.t option
val decode_cas : Value.t -> (Value.t * Value.t) option
(** [(expected, desired)] of a compare&swap invocation. *)

val decode_swap : Value.t -> Value.t option
val decode_sticky_write : Value.t -> Value.t option
val decode_rmw : Value.t -> string option
val is_read : Value.t -> bool

val is_mutation : kind -> bool
(** Can the operation change the object's state?  [Read] cannot; [Other]
    conservatively can. *)

val kind_name : kind -> string
(** Short tag for reports: ["read"], ["write"], ["cas"], … *)
