module Value = Memory.Value
module Program = Runtime.Program

let fetch_add_op = Op_codec.fetch_add_op

let spec ?modulus () =
  let reduce v =
    match modulus with None -> v | Some m -> ((v mod m) + m) mod m
  in
  let type_name =
    match modulus with
    | None -> "fetch&add"
    | Some m -> Printf.sprintf "fetch&add(mod %d)" m
  in
  let apply ~pid:_ state op =
    match Op_codec.classify op with
    | Op_codec.Fetch_add n ->
      let current = Value.as_int state in
      Ok (Value.int (reduce (current + n)), state)
    | Op_codec.Read -> Ok (state, state)
    | _ -> Error ("fetch&add: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name ~init:(Value.int 0) ~apply

let fetch_add loc n =
  let open Program in
  let* old = op loc (fetch_add_op n) in
  return (Value.as_int old)

let read loc =
  let open Program in
  let* v = op loc Op_codec.read_op in
  return (Value.as_int v)
