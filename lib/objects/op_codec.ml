module Value = Memory.Value

(* Encoders.  These are the single source of truth for the wire format of
   every operation the object zoo speaks; the per-object modules and the
   analysis layer both go through here, so an encoding change cannot
   desynchronize an object from its lint. *)

let read_op = Value.sym "read"
let write_op v = Value.pair (Value.sym "write") v
let cas_op ~expected ~desired = Value.triple (Value.sym "cas") expected desired
let swap_op v = Value.pair (Value.sym "swap") v
let sticky_write_op v = Value.pair (Value.sym "sticky-write") v
let rmw_op name = Value.pair (Value.sym "rmw") (Value.sym name)
let ll_op = Value.sym "ll"
let sc_op v = Value.pair (Value.sym "sc") v
let enq_op v = Value.pair (Value.sym "enq") v
let deq_op = Value.sym "deq"
let test_and_set_op = Value.sym "test&set"
let reset_op = Value.sym "reset"
let fetch_add_op n = Value.pair (Value.sym "fetch&add") (Value.int n)

type kind =
  | Read
  | Write of Value.t
  | Cas of { expected : Value.t; desired : Value.t }
  | Swap of Value.t
  | Sticky_write of Value.t
  | Rmw of string
  | Ll
  | Sc of Value.t
  | Enq of Value.t
  | Deq
  | Test_and_set
  | Reset
  | Fetch_add of int
  | Other

let classify op =
  match op with
  | Value.Sym "read" -> Read
  | Value.Pair (Value.Sym "write", v) -> Write v
  | Value.Pair (Value.Sym "cas", Value.Pair (expected, desired)) ->
    Cas { expected; desired }
  | Value.Pair (Value.Sym "swap", v) -> Swap v
  | Value.Pair (Value.Sym "sticky-write", v) -> Sticky_write v
  | Value.Pair (Value.Sym "rmw", Value.Sym name) -> Rmw name
  | Value.Sym "ll" -> Ll
  | Value.Pair (Value.Sym "sc", v) -> Sc v
  | Value.Pair (Value.Sym "enq", v) -> Enq v
  | Value.Sym "deq" -> Deq
  | Value.Sym "test&set" -> Test_and_set
  | Value.Sym "reset" -> Reset
  | Value.Pair (Value.Sym "fetch&add", Value.Int n) -> Fetch_add n
  | _ -> Other

let decode_write op = match classify op with Write v -> Some v | _ -> None

let decode_cas op =
  match classify op with
  | Cas { expected; desired } -> Some (expected, desired)
  | _ -> None

let decode_swap op = match classify op with Swap v -> Some v | _ -> None

let decode_sticky_write op =
  match classify op with Sticky_write v -> Some v | _ -> None

let decode_rmw op = match classify op with Rmw name -> Some name | _ -> None
let decode_sc op = match classify op with Sc v -> Some v | _ -> None
let decode_enq op = match classify op with Enq v -> Some v | _ -> None

let decode_fetch_add op =
  match classify op with Fetch_add n -> Some n | _ -> None

(* Direct match, not [classify]: [classify] allocates a [kind] payload
   for every mutation op, and [is_read] sits on per-event paths (POR
   independence checks, trace lints over millions of events).  Must stay
   equivalent to [classify op = Read]. *)
let is_read op = match op with Value.Sym "read" -> true | _ -> false

let is_mutation = function
  | Read -> false
  | Write _ | Cas _ | Swap _ | Sticky_write _ | Rmw _ -> true
  (* [Ll] mutates the link set even though the value is untouched. *)
  | Ll | Sc _ | Enq _ | Deq | Test_and_set | Reset | Fetch_add _ -> true
  | Other -> true

let kind_name = function
  | Read -> "read"
  | Write _ -> "write"
  | Cas _ -> "cas"
  | Swap _ -> "swap"
  | Sticky_write _ -> "sticky-write"
  | Rmw _ -> "rmw"
  | Ll -> "ll"
  | Sc _ -> "sc"
  | Enq _ -> "enq"
  | Deq -> "deq"
  | Test_and_set -> "test&set"
  | Reset -> "reset"
  | Fetch_add _ -> "fetch&add"
  | Other -> "other"

let family_name = function
  | Ll | Sc _ -> "ll/sc"
  | Enq _ | Deq -> "queue"
  | Test_and_set | Reset -> "test&set"
  | k -> kind_name k

(* The operation's argument value, when the invocation syntactically
   carries the value it wants to install: what a static effect summary
   can claim about written values without running the spec. *)
let written_value = function
  | Write v | Cas { desired = v; _ } | Swap v | Sticky_write v | Sc v
  | Enq v ->
    Some v
  | Read | Rmw _ | Ll | Deq | Test_and_set | Reset | Fetch_add _ | Other ->
    None
