module Value = Memory.Value

(* Encoders.  These are the single source of truth for the wire format of
   every operation the object zoo speaks; the per-object modules and the
   analysis layer both go through here, so an encoding change cannot
   desynchronize an object from its lint. *)

let read_op = Value.sym "read"
let write_op v = Value.pair (Value.sym "write") v
let cas_op ~expected ~desired = Value.triple (Value.sym "cas") expected desired
let swap_op v = Value.pair (Value.sym "swap") v
let sticky_write_op v = Value.pair (Value.sym "sticky-write") v
let rmw_op name = Value.pair (Value.sym "rmw") (Value.sym name)

type kind =
  | Read
  | Write of Value.t
  | Cas of { expected : Value.t; desired : Value.t }
  | Swap of Value.t
  | Sticky_write of Value.t
  | Rmw of string
  | Other

let classify op =
  match op with
  | Value.Sym "read" -> Read
  | Value.Pair (Value.Sym "write", v) -> Write v
  | Value.Pair (Value.Sym "cas", Value.Pair (expected, desired)) ->
    Cas { expected; desired }
  | Value.Pair (Value.Sym "swap", v) -> Swap v
  | Value.Pair (Value.Sym "sticky-write", v) -> Sticky_write v
  | Value.Pair (Value.Sym "rmw", Value.Sym name) -> Rmw name
  | _ -> Other

let decode_write op = match classify op with Write v -> Some v | _ -> None

let decode_cas op =
  match classify op with
  | Cas { expected; desired } -> Some (expected, desired)
  | _ -> None

let decode_swap op = match classify op with Swap v -> Some v | _ -> None

let decode_sticky_write op =
  match classify op with Sticky_write v -> Some v | _ -> None

let decode_rmw op = match classify op with Rmw name -> Some name | _ -> None
let is_read op = match classify op with Read -> true | _ -> false

let is_mutation = function
  | Read -> false
  | Write _ | Cas _ | Swap _ | Sticky_write _ | Rmw _ -> true
  | Other -> true

let kind_name = function
  | Read -> "read"
  | Write _ -> "write"
  | Cas _ -> "cas"
  | Swap _ -> "swap"
  | Sticky_write _ -> "sticky-write"
  | Rmw _ -> "rmw"
  | Other -> "other"
