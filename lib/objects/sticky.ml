module Value = Memory.Value
module Program = Runtime.Program

let bottom = Value.sym "_|_"
let sticky_write_op = Op_codec.sticky_write_op

let spec () =
  let apply ~pid:_ state op =
    match Op_codec.classify op with
    | Op_codec.Sticky_write v ->
      if Value.equal state bottom then Ok (v, v) else Ok (state, state)
    | Op_codec.Read -> Ok (state, state)
    | _ -> Error ("sticky: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:"sticky" ~init:bottom ~apply

let sticky_write loc v = Program.op loc (sticky_write_op v)
let read loc = Program.op loc Op_codec.read_op
let elect loc ~me = sticky_write loc me
