module Value = Memory.Value
module Program = Runtime.Program

let ll_op = Op_codec.ll_op
let sc_op = Op_codec.sc_op

(* State: (value, linked pids).  A successful sc invalidates every link
   (including the writer's). *)
let encode value linked = Value.pair value (Value.list (List.map Value.int linked))

let decode state =
  let value, linked = Value.as_pair state in
  (value, List.map Value.as_int (Value.as_list linked))

let spec ?values ~init () =
  let in_domain v =
    match values with
    | None -> true
    | Some vs -> List.exists (Value.equal v) vs
  in
  if not (in_domain init) then invalid_arg "Llsc.spec: init outside domain";
  let apply ~pid state op =
    let value, linked = decode state in
    match Op_codec.classify op with
    | Op_codec.Ll ->
      let linked = if List.mem pid linked then linked else pid :: linked in
      Ok (encode value linked, value)
    | Op_codec.Read -> Ok (state, value)
    | Op_codec.Sc v ->
      if not (in_domain v) then
        Error ("ll/sc: value outside the domain: " ^ Value.to_string v)
      else if List.mem pid linked then Ok (encode v [], Value.bool true)
      else Ok (state, Value.bool false)
    | _ -> Error ("ll/sc: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:"ll/sc" ~init:(encode init []) ~apply

let ll loc = Program.op loc ll_op

let sc loc v =
  let open Program in
  let* r = op loc (sc_op v) in
  return (Value.as_bool r)

let read loc = Program.op loc Op_codec.read_op
