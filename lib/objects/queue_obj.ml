module Value = Memory.Value
module Program = Runtime.Program

let enq_op = Op_codec.enq_op
let deq_op = Op_codec.deq_op

let spec ?(init = []) () =
  let apply ~pid:_ state op =
    let items = Value.as_list state in
    match Op_codec.classify op with
    | Op_codec.Enq v -> Ok (Value.list (items @ [ v ]), Value.unit)
    | Op_codec.Deq -> (
      match items with
      | [] -> Ok (state, Value.option None)
      | x :: rest -> Ok (Value.list rest, Value.option (Some x)))
    | _ -> Error ("queue: bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name:"queue" ~init:(Value.list init) ~apply

let enq loc v =
  let open Program in
  let* _ = op loc (enq_op v) in
  return ()

let deq loc =
  let open Program in
  let* r = op loc deq_op in
  return (Value.as_option r)
