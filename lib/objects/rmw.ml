module Value = Memory.Value
module Program = Runtime.Program

type op = { name : string; transform : Value.t -> Value.t }

let op_encoding = Op_codec.rmw_op

let spec ~type_name ~values ~init ~ops =
  let in_values v = List.exists (Value.equal v) values in
  if not (in_values init) then
    invalid_arg (type_name ^ ": init outside the declared value set");
  let apply ~pid:_ state op =
    match Op_codec.classify op with
    | Op_codec.Rmw name -> (
      match List.find_opt (fun o -> String.equal o.name name) ops with
      | None -> Error (type_name ^ ": unknown rmw op " ^ name)
      | Some { transform; _ } ->
        let state' = transform state in
        if in_values state' then Ok (state', state)
        else
          Error
            (Printf.sprintf "%s: op %s escaped the value set (%s)" type_name
               name (Value.to_string state')))
    | Op_codec.Read -> Ok (state, state)
    | _ -> Error (type_name ^ ": bad operation " ^ Value.to_string op)
  in
  Memory.Spec.make ~type_name ~init ~apply

let invoke loc name = Program.op loc (op_encoding name)
let read loc = Program.op loc (Value.sym "read")
