module Value = Memory.Value
module Engine = Runtime.Engine
module Sched = Runtime.Sched

type instance = {
  name : string;
  n : int;
  bindings : (string * Memory.Spec.t) list;
  program : int -> Runtime.Program.prim;
  step_bound : int;
}

let config t =
  let store = Memory.Store.create t.bindings in
  Engine.init store (List.init t.n t.program)

module View = Runtime.Engine.Config_view

(* Both checkers read the final state through the backend-neutral view:
   statuses, decisions, step counts — all O(1)/O(procs) flat-array reads
   on the arena backend, no per-terminal materialization.  The old
   validity test scanned the trace for the leader's pid; [View.stepped]
   (steps > 0) is equivalent — both backends record an event exactly
   when they increment a step count — and order-insensitive. *)
let check_config t view =
  let faults = View.faults view in
  (* First-decider order, no sort: this runs on every terminal of a
     checked walk, so the happy path must not allocate more than the
     decision list itself.  The violation report below re-sorts. *)
  let distinct = View.distinct_decisions view in
  let over_bound = View.over_step_bound view t.step_bound in
  match (faults, View.has_running view, distinct, over_bound) with
  | (pid, m) :: _, _, _, _ ->
    Error (Printf.sprintf "process %d faulty: %s" pid m)
  | [], true, _, _ ->
    Error "some live process did not decide (run incomplete?)"
  | [], false, [], _ ->
    (* Everyone crashed before deciding: vacuously fine. *)
    Ok ()
  | [], false, _ :: _ :: _, _ ->
    Error
      (Fmt.str "agreement violated: decisions %a"
         Fmt.(list ~sep:(any ", ") Value.pp)
         (List.sort Value.compare distinct))
  | [], false, [ _ ], Some (pid, steps) ->
    Error
      (Printf.sprintf
         "wait-freedom bound exceeded: process %d took %d > %d steps"
         pid steps t.step_bound)
  | [], false, [ leader ], None ->
    let pid =
      match leader with Value.Int i -> i | _ -> -1
    in
    if pid < 0 || pid >= t.n then
      Error (Fmt.str "elected identity %a is not a process id" Value.pp leader)
    else if not (View.stepped view pid) then
      Error
        (Printf.sprintf "validity violated: leader %d never took a step" pid)
    else Ok ()

let check_partial t view =
  (* For judging replayed schedule prefixes (Runtime.Repro shrinking):
     a still-running process is an incomplete run, not a violation, so
     only what has already happened may fail — faults, disagreement,
     budget overruns.  Completed configurations get the full check. *)
  if not (View.has_running view) then check_config t view
  else
    let fault =
      match View.faults view with
      | (pid, m) :: _ -> Some (Printf.sprintf "process %d faulty: %s" pid m)
      | [] -> None
    in
    let distinct = View.distinct_decisions view in
    let over =
      match View.over_step_bound view t.step_bound with
      | Some (pid, steps) ->
        Some
          (Printf.sprintf
             "wait-freedom bound exceeded: process %d took %d > %d steps"
             pid steps t.step_bound)
      | None -> None
    in
    match (fault, distinct, over) with
    | Some m, _, _ -> Error m
    | None, _ :: _ :: _, _ ->
      Error
        (Fmt.str "agreement violated: decisions %a"
           Fmt.(list ~sep:(any ", ") Value.pp)
           (List.sort Value.compare distinct))
    | None, _, Some m -> Error m
    | None, ([] | [ _ ]), None -> Ok ()

let check_outcome t (outcome : Engine.outcome) =
  if outcome.Engine.hit_step_limit then
    Error "run hit the global step limit (livelock or bound too small)"
  else check_config t (View.of_config outcome.Engine.final)

let run t ~sched =
  let outcome =
    Engine.run ~max_steps:(t.step_bound * t.n * 2 + 1000) ~sched (config t)
  in
  match check_outcome t outcome with
  | Ok () -> Ok outcome
  | Error _ as e -> e

let leader_of (outcome : Engine.outcome) =
  match outcome.Engine.decisions with
  | [] -> None
  | (_, v) :: _ -> Some v

let leader_int_exn outcome =
  match leader_of outcome with
  | Some (Value.Int i) -> i
  | _ -> failwith "no leader decided"

let run_random t ~seed =
  Result.map leader_int_exn (run t ~sched:(Sched.random ~seed))

let run_with_crashes_outcome t ~seed ~crashed =
  let sched = Sched.crashing ~crashed (Sched.random ~seed) in
  let config =
    List.fold_left (fun c pid -> Engine.crash c pid) (config t) crashed
  in
  let outcome =
    Engine.run ~max_steps:(t.step_bound * t.n * 2 + 1000) ~sched config
  in
  match check_outcome t outcome with
  | Ok () -> Ok outcome
  | Error _ as e -> e

let run_with_crashes t ~seed ~crashed =
  match run_with_crashes_outcome t ~seed ~crashed with
  | Error _ as e -> e
  | Ok outcome -> (
    match leader_of outcome with
    | Some (Value.Int i) -> Ok i
    | Some _ | None -> Error "no survivor decided")

(* [check_config] only inspects final statuses, decisions and per-pid
   trace projections — trace-order-insensitive, so every reduction is
   sound to request here (see Runtime.Explore). *)
let explore_repro ?(options = Runtime.Explore.Options.default) ?subject t
    ~max_steps =
  let options = { options with Runtime.Explore.Options.max_steps } in
  match Runtime.Explore.check_all ~options (config t) (check_config t) with
  | Ok stats -> Ok stats
  | Error v ->
    let cert =
      Runtime.Repro.of_decisions ?subject ~sched:"explore" ~max_steps
        ~message:v.Runtime.Explore.message (config t)
        v.Runtime.Explore.decisions
    in
    Error (v, cert)

let fuzz ?runs ?seed ?max_steps ?plan ?kind ?shrink ?subject ?backend ?progress
    t =
  let max_steps =
    Option.value ~default:((t.step_bound * t.n * 2) + 1000) max_steps
  in
  (* [check_partial], not [check_config]: a fuzz run may end with
     processes crashed or stalled mid-protocol, and under fault
     injection that is the interesting case — only genuine disagreement,
     faults, or budget overruns should count as violations. *)
  let failing view =
    match check_partial t view with Ok () -> None | Error m -> Some m
  in
  Runtime.Fuzz.campaign ?runs ?seed ~max_steps ?plan ?kind ?shrink ?subject
    ?backend ?progress ~failing (fun () -> config t)

let explore_stats ?options t ~max_steps =
  match explore_repro ?options t ~max_steps with
  | Ok stats -> Ok stats
  | Error (v, _) ->
    Error
      (Fmt.str "%s@.counterexample schedule:@.%a" v.Runtime.Explore.message
         Runtime.Trace.pp v.Runtime.Explore.trace)

let explore_all t ~max_steps =
  Result.map
    (fun (stats : Runtime.Explore.stats) -> stats.Runtime.Explore.terminals)
    (explore_stats t ~max_steps)
