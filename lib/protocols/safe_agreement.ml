module Value = Memory.Value
module Program = Runtime.Program
module Register = Objects.Register
module Engine = Runtime.Engine

type instance = {
  n : int;
  inputs : Value.t array;
  bindings : (string * Memory.Spec.t) list;
  program : int -> Runtime.Program.prim;
}

let val_loc i = Printf.sprintf "sa.val.%d" i
let level_loc i = Printf.sprintf "sa.level.%d" i

let make ~inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let collect_levels =
    Program.list_map
      (fun j -> Program.map Value.as_int (Register.read (level_loc j)))
      (List.init n (fun j -> j))
  in
  let program pid =
    let open Program in
    complete
      (* Enter the unsafe window. *)
      (let* () = Register.write (val_loc pid) inputs.(pid) in
       let* () = Register.write (level_loc pid) (Value.int 1) in
       let* levels = collect_levels in
       let* () =
         if List.exists (fun l -> l = 2) levels then
           Register.write (level_loc pid) (Value.int 0)
         else Register.write (level_loc pid) (Value.int 2)
       in
       (* Decide phase: spin until the window is empty, then take the
          value of the smallest process at level 2.  This loop is the
          non-wait-free part: a crash at level 1 blocks it forever. *)
       let* winner =
         repeat_until (fun () ->
             let* levels = collect_levels in
             if List.exists (fun l -> l = 1) levels then return None
             else
               let rec first j = function
                 | [] -> None
                 | 2 :: _ -> Some j
                 | _ :: rest -> first (j + 1) rest
               in
               return (Option.map (fun j -> `Winner j) (first 0 levels)))
       in
       match winner with
       | `Winner j -> Register.read (val_loc j))
  in
  {
    n;
    inputs;
    bindings =
      List.concat_map
        (fun i ->
          [
            (val_loc i, Register.swmr ~owner:i ());
            (level_loc i, Register.swmr ~owner:i ~init:(Value.int 0) ());
          ])
        (List.init n (fun i -> i));
    program;
  }

let config t =
  Engine.init (Memory.Store.create t.bindings) (List.init t.n t.program)

let decisions_of (outcome : Engine.outcome) =
  List.sort_uniq Value.compare (List.map snd outcome.Engine.decisions)

module View = Runtime.Engine.Config_view

let check_crash_free t view =
  if View.faults view <> [] then Error "faulty process"
  else if View.has_running view then
    Error "undecided process in a crash-free run"
  else
    let ds = List.sort_uniq Value.compare (View.decision_values view) in
    match ds with
    | [ v ] when Array.exists (Value.equal v) t.inputs -> Ok ()
    | [ _ ] -> Error "validity violated"
    | _ -> Error "agreement violated"

let run_random t ~seed =
  let outcome =
    Engine.run ~max_steps:2000 ~sched:(Runtime.Sched.random ~seed) (config t)
  in
  if outcome.Engine.faults <> [] then Error "faulty process"
  else Ok (decisions_of outcome, outcome.Engine.hit_step_limit)

let run_with_window_crash t ~seed =
  (* Let process 0 write its value and enter level 1 (two steps), then
     fail-stop it and run the others. *)
  let c = config t in
  let c = Engine.step (Engine.step c 0) 0 in
  let c = Engine.crash c 0 in
  let sched = Runtime.Sched.crashing ~crashed:[ 0 ] (Runtime.Sched.random ~seed) in
  let outcome = Engine.run ~max_steps:2000 ~sched c in
  outcome.Engine.hit_step_limit && outcome.Engine.decisions = []

let explore_all t ~max_steps =
  (* Safety only: safe agreement's liveness needs fairness (that is the
     point — it is not wait-free), so schedules cut off by the step
     bound (a process starved mid-spin) are expected, not violations.
     Complete schedules must satisfy agreement + validity. *)
  let failure = ref None in
  let on_terminal view =
    if !failure = None then
      match check_crash_free t view with
      | Ok () -> ()
      | Error msg -> failure := Some msg
  in
  let stats =
    Runtime.Explore.explore
      ~options:
        {
          Runtime.Explore.Options.default with
          max_steps;
          on_terminal = Some on_terminal;
        }
      (config t)
  in
  match !failure with
  | Some msg -> Error msg
  | None -> Ok stats.Runtime.Explore.terminals
