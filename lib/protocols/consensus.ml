module Value = Memory.Value
module Program = Runtime.Program
module Engine = Runtime.Engine
module Sched = Runtime.Sched
module Register = Objects.Register
module Cas_k = Objects.Cas_k

type instance = {
  name : string;
  n : int;
  inputs : Value.t array;
  bindings : (string * Memory.Spec.t) list;
  program : int -> Runtime.Program.prim;
  step_bound : int;
}

let config t =
  let store = Memory.Store.create t.bindings in
  Engine.init store (List.init t.n t.program)

module View = Runtime.Engine.Config_view

let check_config t view =
  match View.faults view with
  | (pid, m) :: _ -> Error (Printf.sprintf "process %d faulty: %s" pid m)
  | [] ->
    if View.has_running view then Error "some live process did not decide"
    else
      let distinct =
        List.sort_uniq Value.compare (View.decision_values view)
      in
      let is_input v = Array.exists (Value.equal v) t.inputs in
      let over = View.over_step_bound view t.step_bound in
      (match (distinct, over) with
      | _ :: _ :: _, _ ->
        Error
          (Fmt.str "agreement violated: decisions %a"
             Fmt.(list ~sep:(any ", ") Value.pp)
             distinct)
      | _, Some (pid, steps) ->
        Error
          (Printf.sprintf "wait-freedom bound exceeded: pid %d took %d > %d"
             pid steps t.step_bound)
      | [ v ], None ->
        if is_input v then Ok ()
        else
          Error (Fmt.str "validity violated: %a is no one's input" Value.pp v)
      | [], None -> Ok ())

let check_outcome t (outcome : Engine.outcome) =
  if outcome.Engine.hit_step_limit then Error "run hit the global step limit"
  else check_config t (View.of_config outcome.Engine.final)

let max_run_steps t = (t.step_bound * t.n) + 1000

let run_random t ~seed =
  let outcome =
    Engine.run ~max_steps:(max_run_steps t) ~sched:(Sched.random ~seed)
      (config t)
  in
  match check_outcome t outcome with
  | Error _ as e -> e
  | Ok () -> (
    match outcome.Engine.decisions with
    | (_, v) :: _ -> Ok v
    | [] -> Error "no process decided")

let run_with_crashes t ~seed ~crashed =
  let sched = Sched.crashing ~crashed (Sched.random ~seed) in
  let config =
    List.fold_left (fun c pid -> Engine.crash c pid) (config t) crashed
  in
  let outcome = Engine.run ~max_steps:(max_run_steps t) ~sched config in
  match check_outcome t outcome with
  | Error _ as e -> e
  | Ok () -> (
    match outcome.Engine.decisions with
    | (_, v) :: _ -> Ok (Some v)
    | [] -> Ok None)

let explore_all t ~max_steps =
  match
    Runtime.Explore.check_all
      ~options:{ Runtime.Explore.Options.default with max_steps }
      (config t) (check_config t)
  with
  | Ok stats -> Ok stats.Runtime.Explore.terminals
  | Error v ->
    Error
      (Fmt.str "%s@.counterexample schedule:@.%a" v.Runtime.Explore.message
         Runtime.Trace.pp v.Runtime.Explore.trace)

(* --- Protocols --- *)

let cas_loc = "cons.C"
let input_loc pid = Printf.sprintf "cons.in.%d" pid

let from_cas ~inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let distinct = List.sort_uniq Value.compare (Array.to_list inputs) in
  let program pid =
    let open Program in
    let mine = inputs.(pid) in
    complete
      (let* prev = Cas_k.cas cas_loc ~expected:Cas_k.bottom ~desired:mine in
       if Value.equal prev Cas_k.bottom then return mine else return prev)
  in
  {
    name = Printf.sprintf "consensus-from-cas(n=%d)" n;
    n;
    inputs;
    bindings =
      [
        ( cas_loc,
          Cas_k.generic_spec
            ~values:(Cas_k.bottom :: distinct)
            ~init:Cas_k.bottom );
      ];
    program;
    step_bound = 1;
  }

let from_sticky ~inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let program pid =
    let open Program in
    complete (Objects.Sticky.elect "cons.S" ~me:inputs.(pid))
  in
  {
    name = Printf.sprintf "consensus-from-sticky(n=%d)" n;
    n;
    inputs;
    bindings = [ ("cons.S", Objects.Sticky.spec ()) ];
    program;
    step_bound = 1;
  }

let two_inputs inputs =
  match inputs with
  | [ a; b ] -> (Array.of_list inputs, a, b)
  | _ -> invalid_arg "2-process consensus needs exactly two inputs"

let two_from_test_and_set ~inputs =
  let inputs, _, _ = two_inputs inputs in
  let program pid =
    let open Program in
    let other = 1 - pid in
    complete
      (let* () = Register.write (input_loc pid) inputs.(pid) in
       let* won = Objects.Testset.test_and_set "cons.T" in
       if won then return inputs.(pid) else Register.read (input_loc other))
  in
  {
    name = "consensus2-from-test&set";
    n = 2;
    inputs;
    bindings =
      [
        ("cons.T", Objects.Testset.spec ());
        (input_loc 0, Register.swmr ~owner:0 ());
        (input_loc 1, Register.swmr ~owner:1 ());
      ];
    program;
    step_bound = 3;
  }

let two_from_queue ~inputs =
  let inputs, _, _ = two_inputs inputs in
  let win = Value.sym "win" and lose = Value.sym "lose" in
  let program pid =
    let open Program in
    let other = 1 - pid in
    complete
      (let* () = Register.write (input_loc pid) inputs.(pid) in
       let* token = Objects.Queue_obj.deq "cons.Q" in
       match token with
       | Some t when Value.equal t win -> return inputs.(pid)
       | _ -> Register.read (input_loc other))
  in
  {
    name = "consensus2-from-queue";
    n = 2;
    inputs;
    bindings =
      [
        ("cons.Q", Objects.Queue_obj.spec ~init:[ win; lose ] ());
        (input_loc 0, Register.swmr ~owner:0 ());
        (input_loc 1, Register.swmr ~owner:1 ());
      ];
    program;
    step_bound = 3;
  }

let naive_rw ~inputs =
  let inputs, _, _ = two_inputs inputs in
  let unwritten = Value.sym "unwritten" in
  let program pid =
    let open Program in
    let other = 1 - pid in
    complete
      (let* () = Register.write (input_loc pid) inputs.(pid) in
       let* theirs = Register.read (input_loc other) in
       if Value.equal theirs unwritten then return inputs.(pid)
       else
         (* Both wrote: deterministically prefer process 0's input. *)
         return (if pid = 0 then inputs.(0) else theirs))
  in
  {
    name = "naive-rw-consensus (expected to fail)";
    n = 2;
    inputs;
    bindings =
      [
        (input_loc 0, Register.swmr ~owner:0 ~init:unwritten ());
        (input_loc 1, Register.swmr ~owner:1 ~init:unwritten ());
      ];
    program;
    step_bound = 2;
  }
