module Value = Memory.Value
module Program = Runtime.Program
module Engine = Runtime.Engine
module Sched = Runtime.Sched
module Cas_k = Objects.Cas_k

type instance = {
  name : string;
  n : int;
  k : int;
  inputs : Value.t array;
  bindings : (string * Memory.Spec.t) list;
  program : int -> Runtime.Program.prim;
  step_bound : int;
}

let config t =
  let store = Memory.Store.create t.bindings in
  Engine.init store (List.init t.n t.program)

module View = Runtime.Engine.Config_view

let check_config t view =
  match View.faults view with
  | (pid, m) :: _ -> Error (Printf.sprintf "process %d faulty: %s" pid m)
  | [] ->
    if View.has_running view then Error "some live process did not decide"
    else
      let distinct =
        List.sort_uniq Value.compare (View.decision_values view)
      in
      let is_input v = Array.exists (Value.equal v) t.inputs in
      if List.length distinct > t.k then
        Error
          (Fmt.str "consistency violated: %d > %d distinct decisions: %a"
             (List.length distinct) t.k
             Fmt.(list ~sep:(any ", ") Value.pp)
             distinct)
      else if not (List.for_all is_input distinct) then
        Error "validity violated: some decision is no one's input"
      else
        match View.over_step_bound view t.step_bound with
        | Some (pid, steps) ->
          Error
            (Printf.sprintf "wait-freedom bound exceeded: pid %d took %d > %d"
               pid steps t.step_bound)
        | None -> Ok ()

let check_outcome t (outcome : Engine.outcome) =
  if outcome.Engine.hit_step_limit then Error "run hit the global step limit"
  else check_config t (View.of_config outcome.Engine.final)

let run_random t ~seed =
  let outcome =
    Engine.run
      ~max_steps:((t.step_bound * t.n) + 1000)
      ~sched:(Sched.random ~seed) (config t)
  in
  match check_outcome t outcome with
  | Error _ as e -> e
  | Ok () ->
    Ok
      (List.sort_uniq Value.compare (List.map snd outcome.Engine.decisions))

let explore_all t ~max_steps =
  match
    Runtime.Explore.check_all
      ~options:{ Runtime.Explore.Options.default with max_steps }
      (config t) (check_config t)
  with
  | Ok stats -> Ok stats.Runtime.Explore.terminals
  | Error v ->
    Error
      (Fmt.str "%s@.counterexample schedule:@.%a" v.Runtime.Explore.message
         Runtime.Trace.pp v.Runtime.Explore.trace)

let trivial ~k ~inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  if n > k then
    invalid_arg "Set_consensus.trivial: needs n <= k (that is the theorem!)";
  {
    name = Printf.sprintf "trivial-%d-set(n=%d)" k n;
    n;
    k;
    inputs;
    bindings = [];
    program = (fun pid -> Program.Done inputs.(pid));
    step_bound = 0;
  }

let group_loc g = Printf.sprintf "setcons.group%d" g

let from_groups ~k ~inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let distinct = List.sort_uniq Value.compare (Array.to_list inputs) in
  let group_of pid = pid mod k in
  let program pid =
    let open Program in
    let mine = inputs.(pid) in
    let loc = group_loc (group_of pid) in
    complete
      (let* prev = Cas_k.cas loc ~expected:Cas_k.bottom ~desired:mine in
       if Value.equal prev Cas_k.bottom then return mine else return prev)
  in
  {
    name = Printf.sprintf "group-%d-set(n=%d)" k n;
    n;
    k;
    inputs;
    bindings =
      List.init (min k n) (fun g ->
          ( group_loc g,
            Cas_k.generic_spec
              ~values:(Cas_k.bottom :: distinct)
              ~init:Cas_k.bottom ));
    program;
    step_bound = 1;
  }
