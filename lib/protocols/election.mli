(** Common harness for leader-election protocols.

    The paper's leader election task (§2): every participating process
    proposes its own identity; all processes must elect one common
    identity.  Required properties:

    - {b Consistent}: distinct processes never elect distinct identities;
    - {b Wait-free}: each process elects after a finite number of its own
      steps, regardless of other processes' speed or crashes;
    - {b Valid}: the elected identity belongs to a process that proposed
      itself (took at least one step).

    An {!instance} packages a protocol for [n] processes; the checkers
    validate outcomes against the three properties, under sampled random
    schedules, crash adversaries, and (for small instances) every
    interleaving. *)

module Value := Memory.Value

type instance = {
  name : string;
  n : int;  (** number of processes *)
  bindings : (string * Memory.Spec.t) list;  (** shared objects *)
  program : int -> Runtime.Program.prim;  (** code of process [pid] *)
  step_bound : int;
      (** wait-freedom certificate: max shared-memory operations any single
          process may need *)
}

val config : instance -> Runtime.Engine.config

val check_outcome :
  instance -> Runtime.Engine.outcome -> (unit, string) result
(** Agreement + validity + per-process step bound + no faulty processes.
    Crashed processes are exempt from deciding; all others must decide the
    same pid, and that pid must appear in the trace (validity). *)

val check_config :
  instance -> Runtime.Engine.Config_view.t -> (unit, string) result
(** The terminal-state form of {!check_outcome}: what {!explore_all}
    runs on every complete schedule.  Takes the backend-neutral
    {!Runtime.Engine.Config_view.t}, reading only statuses, decisions
    and step counts (order-insensitive flat-array accessors — zero-copy
    on the arena backend, and sound under every explorer reduction).
    Expects a finished run — still-running processes are reported as
    incomplete. *)

val check_partial :
  instance -> Runtime.Engine.Config_view.t -> (unit, string) result
(** Like {!check_config} but tolerant of still-running processes: only
    faults, disagreement among decisions already made, and budget
    overruns fail.  This is the failure predicate replayed schedule
    {e prefixes} are judged by ({!Runtime.Repro.shrink} candidates — an
    incomplete run must not count as a violation, or shrinking would
    trivialize). *)

val run :
  instance -> sched:Runtime.Sched.t -> (Runtime.Engine.outcome, string) result
(** Run to completion under the scheduler and check the outcome. *)

val run_random : instance -> seed:int -> (int, string) result
(** Run under a seeded uniform scheduler; returns the elected leader. *)

val run_with_crashes :
  instance -> seed:int -> crashed:int list -> (int, string) result
(** Crash the given pids at the start (they never take a step); the
    survivors must still elect among themselves. *)

val run_with_crashes_outcome :
  instance ->
  seed:int ->
  crashed:int list ->
  (Runtime.Engine.outcome, string) result
(** Like {!run_with_crashes} but returning the whole checked outcome —
    the CLI uses it to export the execution trace. *)

val explore_all : instance -> max_steps:int -> (int, string) result
(** Exhaustively check every interleaving (small instances only).
    Returns the number of complete executions enumerated. *)

val explore_stats :
  ?options:Runtime.Explore.Options.t ->
  instance ->
  max_steps:int ->
  (Runtime.Explore.stats, string) result
(** Like {!explore_all} but returning the full exploration statistics
    (terminals, truncations, choice points, configurations visited).
    [options] carries the explorer knobs ([options.max_steps] is
    overridden by the required [max_steps]); its [analyze] hook runs on
    every terminal configuration (see {!Runtime.Explore.explore}) — the
    hook [Lepower_check] uses to lint every complete trace of the
    protocol.

    [options.crash_faults] additionally lets the adversary fail-stop
    processes at every choice point.  [dedup]/[por]/[domains] request the
    explorer's opt-in reductions; the election predicate is
    trace-order-insensitive (final statuses, decisions, per-pid
    projections only), so they preserve the verdict exactly. *)

val explore_repro :
  ?options:Runtime.Explore.Options.t ->
  ?subject:Lepower_obs.Json.t ->
  instance ->
  max_steps:int ->
  ( Runtime.Explore.stats,
    Runtime.Explore.violation * Runtime.Repro.t )
  result
(** Like {!explore_stats} but a failing verdict carries the structured
    {!Runtime.Explore.violation} {e and} a replayable schedule
    certificate built from the explorer's decision path ([sched] field
    ["explore"]).  [subject] is stored opaquely in the certificate so
    [lepower replay] can rebuild the instance. *)

val fuzz :
  ?runs:int ->
  ?seed:int ->
  ?max_steps:int ->
  ?plan:Runtime.Faults.plan ->
  ?kind:Runtime.Fuzz.sched_kind ->
  ?shrink:bool ->
  ?subject:Lepower_obs.Json.t ->
  ?backend:Runtime.Engine.backend ->
  ?progress:(Runtime.Fuzz.progress -> unit) ->
  instance ->
  Runtime.Fuzz.outcome
(** Fuzz the instance with {!Runtime.Fuzz.campaign}: adversarial
    schedules (and, with a non-trivial [plan], injected faults) against
    {!check_partial} — so crashed or stalled processes are fine and only
    genuine disagreement, faulty processes, or budget overruns count as
    violations.  Note that under fault injection a {e correct} protocol
    may legitimately fail (a lost write breaks real protocols — that is
    the point of the robustness harness); the emitted certificate
    replays the faults along with the schedule.  [max_steps] defaults to
    the crash-run cap ([step_bound * n * 2 + 1000]); other defaults
    follow {!Runtime.Fuzz.campaign}. *)

val leader_of : Runtime.Engine.outcome -> Value.t option
(** The common decision, if any process decided. *)
