module Value = Memory.Value
module Program = Runtime.Program
module Register = Objects.Register
module Engine = Runtime.Engine

type outcome = Stop | Right | Down

let x_loc name = name ^ ".X"
let door_loc name = name ^ ".door"

let splitter_bindings name =
  [
    (x_loc name, Register.mwmr ~init:(Value.sym "nobody") ());
    (door_loc name, Register.mwmr ~init:(Value.bool false) ());
  ]

let enter name ~me =
  let open Program in
  let* () = Register.write (x_loc name) me in
  let* door = Register.read (door_loc name) in
  if Value.as_bool door then return Right
  else
    let* () = Register.write (door_loc name) (Value.bool true) in
    let* x = Register.read (x_loc name) in
    if Value.equal x me then return Stop else return Down

(* --- renaming grid --- *)

type instance = {
  n : int;
  bindings : (string * Memory.Spec.t) list;
  program : int -> Runtime.Program.prim;
  name_space : int;
  step_bound : int;
}

let cell_name r d = Printf.sprintf "split.%d.%d" r d

(* Triangular enumeration of the grid cells reachable with at most n-1
   moves: cell (r, d) gets name r + (r+d)(r+d+1)/2 restricted to the
   diagonal band; we simply enumerate all cells with r + d <= n-1. *)
let cell_id ~n r d =
  ignore n;
  let diag = r + d in
  (diag * (diag + 1) / 2) + r

let renaming ~n =
  let cells =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun d -> if r + d <= n - 1 then Some (r, d) else None)
          (List.init n (fun d -> d)))
      (List.init n (fun r -> r))
  in
  let bindings =
    List.concat_map (fun (r, d) -> splitter_bindings (cell_name r d)) cells
  in
  let program pid =
    let open Program in
    let me = Value.int pid in
    let rec walk r d =
      if r + d > n - 1 then failwith "renaming: walked off the grid"
      else
        let* o = enter (cell_name r d) ~me in
        match o with
        | Stop -> decide (Value.int (cell_id ~n r d))
        | Right -> walk (r + 1) d
        | Down -> walk r (d + 1)
    in
    complete (walk 0 0)
  in
  {
    n;
    bindings;
    program;
    name_space = n * (n + 1) / 2;
    step_bound = 4 * n;
  }

let config t =
  Engine.init (Memory.Store.create t.bindings) (List.init t.n t.program)

module View = Runtime.Engine.Config_view

let check_config t view =
  match View.faults view with
  | (_, m) :: _ -> Error ("faulty process: " ^ m)
  | [] ->
    if View.has_running view then Error "undecided process"
    else
      let ints = List.map Value.as_int (View.decision_values view) in
      if List.exists (fun i -> i < 0 || i >= t.name_space) ints then
        Error "name outside the name space"
      else if List.length (List.sort_uniq compare ints) <> List.length ints
      then Error "duplicate names acquired"
      else Ok ()

let check_outcome t (outcome : Engine.outcome) =
  if outcome.Engine.hit_step_limit then Error "hit step limit"
  else check_config t (View.of_config outcome.Engine.final)

let run_random t ~seed =
  let outcome =
    Engine.run
      ~max_steps:((t.step_bound * t.n) + 100)
      ~sched:(Runtime.Sched.random ~seed) (config t)
  in
  match check_outcome t outcome with
  | Error _ as e -> e
  | Ok () ->
    Ok (List.map (fun (_, v) -> Value.as_int v) outcome.Engine.decisions)

let explore_all t ~max_steps =
  match
    Runtime.Explore.check_all
      ~options:{ Runtime.Explore.Options.default with max_steps }
      (config t) (check_config t)
  with
  | Ok stats -> Ok stats.Runtime.Explore.terminals
  | Error v ->
    Error
      (Fmt.str "%s@.%a" v.Runtime.Explore.message Runtime.Trace.pp
         v.Runtime.Explore.trace)
