(** Periodic campaign telemetry: a rate-limited stream of snapshot
    objects ([{"type":"heartbeat","seq":…,"t_s":…,…}]) emitted as strict
    {!Lepower_obs.Json} values, one per line when written to a JSONL
    sink.

    The driver loop calls {!tick} at convenient points (the explorer
    does so every few thousand configurations); the heartbeat decides —
    from its configured interval — whether a beat is due, and only then
    runs the caller's field thunk.  A tick that is not due costs one
    clock read, so ticking from a hot loop is safe.  With
    [~interval_s:0.] every tick beats (useful in tests). *)

type t

val create : ?interval_s:float -> emit:(Lepower_obs.Json.t -> unit) -> unit -> t
(** [interval_s] defaults to 1 second.  [emit] receives each snapshot
    object; it is called from whichever domain ticked, so a shared sink
    must synchronize. *)

val elapsed_s : t -> float
(** Seconds since {!create} — the denominator for rates and ETA. *)

val tick : ?force:bool -> t -> (unit -> (string * Lepower_obs.Json.t) list) -> unit
(** Emit a snapshot if at least the configured interval has passed since
    the last one (or [force] is set, e.g. for a final beat).  The thunk
    supplies the payload fields appended after [type]/[seq]/[t_s]. *)

val pp_line : Format.formatter -> Lepower_obs.Json.t -> unit
(** Render a heartbeat object as a single [key=value] line for
    [--progress] on stderr. *)
