(** Flamegraph export: collapse completed {!Lepower_obs.Span} intervals
    into Brendan Gregg's folded-stack format — one
    ["outer;inner;leaf <self_us>"] line per distinct stack, suitable for
    [flamegraph.pl] or any folded-stack viewer.

    Nesting is reconstructed per span lane ([tid]) from the recorded
    intervals; weights are {e self} microseconds (a span's duration
    minus its children's), so the flamegraph widths sum to real wall
    time.  Ill-nested input — overlapping spans, unbalanced
    instrumentation — is clipped rather than rejected: self times are
    clamped at zero and overlap is attributed to the still-open span.

    Output is deterministic: identical stacks are merged and lines are
    sorted lexicographically, so a fixture round-trips byte-for-byte. *)

val collapse : Lepower_obs.Span.completed list -> (string * int) list
(** [(stack, self_us)] pairs, stacks [;]-joined root-first, sorted. *)

val to_lines : Lepower_obs.Span.completed list -> string list
(** The folded lines, ["stack self_us"]. *)

val write : string -> Lepower_obs.Span.completed list -> unit
(** Write the folded lines to a file, newline-terminated. *)
