module Json = Lepower_obs.Json

(* Every input — heartbeat/metrics/phase JSONL streams and the
   single-line BENCH_*.json artifacts — is read the same way: one JSON
   document per non-empty line, classified by shape.  The report is
   whatever sections the ingested documents can support; nothing is
   required except (optionally) a phase table. *)

type doc = { d_file : string; d_json : Json.t }

type ingested = {
  phases : Json.t option; (* last phase table seen wins *)
  heartbeats : Json.t list; (* in stream order *)
  metrics : Json.t option; (* last snapshot wins *)
  benches : (string * Json.t) list; (* (file, doc), in argument order *)
  other : int;
}

let empty =
  { phases = None; heartbeats = []; metrics = None; benches = []; other = 0 }

let classify acc { d_file; d_json } =
  match d_json with
  | Json.Obj fields -> (
    match List.assoc_opt "type" fields with
    | Some (Json.String "heartbeat") ->
      { acc with heartbeats = d_json :: acc.heartbeats }
    | Some (Json.String "phases") -> { acc with phases = Some d_json }
    | _ ->
      if List.mem_assoc "counters" fields then
        { acc with metrics = Some d_json }
      else if
        List.mem_assoc "benchmarks" fields || List.mem_assoc "experiment" fields
      then { acc with benches = (d_file, d_json) :: acc.benches }
      else { acc with other = acc.other + 1 })
  | _ -> { acc with other = acc.other + 1 }

let ingest_file acc path =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  List.fold_left
    (fun acc line ->
      match acc with
      | Error _ as e -> e
      | Ok (acc, n) ->
        if String.trim line = "" then Ok (acc, n)
        else (
          match Json.of_string line with
          | Ok j -> Ok (classify acc { d_file = path; d_json = j }, n + 1)
          | Error e ->
            Error (Printf.sprintf "%s:%d: not strict JSON: %s" path (n + 1) e)))
    acc lines

let ingest paths =
  match
    List.fold_left
      (fun acc path ->
        match acc with
        | Error _ as e -> e
        | Ok (ing, _) -> (
          match ingest_file (Ok (ing, 0)) path with
          | Ok (ing, _) -> Ok (ing, 0)
          | Error _ as e -> e))
      (Ok (empty, 0))
      paths
  with
  | Error e -> Error e
  | Ok (ing, _) ->
    Ok
      {
        ing with
        heartbeats = List.rev ing.heartbeats;
        benches = List.rev ing.benches;
      }

(* --- rendering helpers --- *)

let num = function
  | Json.Int i -> Some (Float.of_int i)
  | Json.Float f -> Some f
  | _ -> None

let mem name j = Json.member name j

let pp_num ppf f =
  if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.0f" f
  else if Float.abs f >= 100. then Fmt.pf ppf "%.1f" f
  else Fmt.pf ppf "%.4g" f

let section ppf title = Fmt.pf ppf "@.== %s ==@." title

(* --- phases --- *)

let phase_rows doc =
  match mem "rows" doc with
  | Some (Json.List rows) ->
    List.filter_map
      (fun r ->
        match
          ( mem "name" r,
            mem "calls" r,
            Option.bind (mem "self_us" r) num,
            Option.bind (mem "total_us" r) num )
        with
        | Some (Json.String name), Some (Json.Int calls), Some s, Some t ->
          let words k =
            match Option.bind (mem k r) num with
            | Some w -> Int.of_float w
            | None -> 0
          in
          Some (name, calls, s, t, words "minor_words", words "major_words")
        | _ -> None)
      rows
  | _ -> []

let render_phases ppf doc =
  let rows = phase_rows doc in
  let wall =
    match Option.bind (mem "wall_us" doc) num with
    | Some w when w > 0. -> w
    | _ ->
      Float.max 1e-9
        (List.fold_left (fun acc (_, _, s, _, _, _) -> acc +. s) 0. rows)
  in
  section ppf "Per-phase cost";
  Fmt.pf ppf "%-24s %10s %12s %12s %6s %12s %10s@." "phase" "calls" "self(ms)"
    "total(ms)" "self%" "minor(w)" "major(w)";
  List.iter
    (fun (name, calls, self_us, total_us, minor, major) ->
      Fmt.pf ppf "%-24s %10d %12.3f %12.3f %5.1f%% %12d %10d@." name calls
        (self_us /. 1e3) (total_us /. 1e3)
        (100. *. self_us /. wall)
        minor major)
    rows;
  let covered = List.fold_left (fun a (_, _, s, _, _, _) -> a +. s) 0. rows in
  Fmt.pf ppf "profiled %.1f%% of %.3f ms wall@."
    (100. *. covered /. wall)
    (wall /. 1e3);
  List.length rows

(* --- heartbeats --- *)

let render_heartbeats ppf beats =
  section ppf
    (Printf.sprintf "Throughput (%d heartbeats)" (List.length beats));
  (* Columns: numeric scalar keys present in the final beat, in its
     field order — the final beat carries the campaign's full vitals. *)
  let keys =
    match List.rev beats with
    | Json.Obj fields :: _ ->
      List.filter_map
        (fun (k, v) ->
          if k = "type" || k = "seq" then None
          else Option.map (fun _ -> k) (num v))
        fields
    | _ -> []
  in
  Fmt.pf ppf "%6s" "seq";
  List.iter (fun k -> Fmt.pf ppf " %14s" k) keys;
  Fmt.pf ppf "@.";
  let n = List.length beats in
  let want = 12 in
  let step = Int.max 1 ((n + want - 1) / want) in
  List.iteri
    (fun i beat ->
      if i mod step = 0 || i = n - 1 then begin
        let seq =
          match Option.bind (mem "seq" beat) num with
          | Some s -> Int.of_float s
          | None -> i + 1
        in
        Fmt.pf ppf "%6d" seq;
        List.iter
          (fun k ->
            match Option.bind (mem k beat) num with
            | Some v -> Fmt.pf ppf " %14s" (Fmt.str "%a" pp_num v)
            | None -> Fmt.pf ppf " %14s" "-")
          keys;
        Fmt.pf ppf "@."
      end)
    beats

(* --- metrics --- *)

let render_metrics ppf doc =
  match mem "counters" doc with
  | Some (Json.Obj counters) ->
    section ppf "Top counters";
    let sorted =
      List.filter_map (fun (k, v) -> Option.map (fun n -> (k, n)) (num v))
        counters
      |> List.sort (fun (ka, a) (kb, b) ->
             match Float.compare b a with
             | 0 -> String.compare ka kb
             | c -> c)
    in
    List.iteri
      (fun i (k, v) ->
        if i < 12 then Fmt.pf ppf "%-32s %a@." k pp_num v)
      sorted
  | _ -> ()

(* --- benches --- *)

let rec flatten prefix doc acc =
  match doc with
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        let key = if prefix = "" then k else prefix ^ "." ^ k in
        flatten key v acc)
      acc fields
  | Json.Int i -> (prefix, Float.of_int i) :: acc
  | Json.Float f -> (prefix, f) :: acc
  | _ -> acc

let render_benches ppf benches =
  section ppf "Bench trajectory";
  (* Group by experiment tag (fallback: the file name); with two or more
     snapshots of the same experiment, show first -> last deltas. *)
  let tag (file, doc) =
    match mem "experiment" doc with
    | Some (Json.String e) -> e
    | _ -> Filename.basename file
  in
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun b ->
      let t = tag b in
      if not (Hashtbl.mem groups t) then order := t :: !order;
      Hashtbl.replace groups t
        (Option.value ~default:[] (Hashtbl.find_opt groups t) @ [ b ]))
    benches;
  List.iter
    (fun t ->
      let docs = Hashtbl.find groups t in
      match docs with
      | [ (file, doc) ] ->
        Fmt.pf ppf "%s (%s)@." t (Filename.basename file);
        List.iter
          (fun (k, v) -> Fmt.pf ppf "  %-40s %a@." k pp_num v)
          (List.rev (flatten "" doc []))
      | (file0, first) :: rest ->
        let fileN, last = List.nth rest (List.length rest - 1) in
        Fmt.pf ppf "%s (%s -> %s, %d snapshots)@." t
          (Filename.basename file0) (Filename.basename fileN)
          (List.length docs);
        let old_vals = List.rev (flatten "" first []) in
        let new_vals = List.rev (flatten "" last []) in
        List.iter
          (fun (k, v_new) ->
            match List.assoc_opt k old_vals with
            | Some v_old when v_old <> v_new ->
              let delta =
                if v_old = 0. then Float.infinity
                else 100. *. (v_new -. v_old) /. Float.abs v_old
              in
              Fmt.pf ppf "  %-40s %a -> %a (%+.1f%%)@." k pp_num v_old pp_num
                v_new delta
            | Some _ | None -> ())
          new_vals
      | [] -> ())
    (List.rev !order)

let run ?(require_phases = false) ppf paths =
  match ingest paths with
  | Error e -> Error e
  | Ok ing -> (
    Fmt.pf ppf "lepower report: %d file%s@." (List.length paths)
      (if List.length paths = 1 then "" else "s");
    let phase_count =
      match ing.phases with Some doc -> render_phases ppf doc | None -> 0
    in
    if ing.heartbeats <> [] then render_heartbeats ppf ing.heartbeats;
    (match ing.metrics with Some doc -> render_metrics ppf doc | None -> ());
    if ing.benches <> [] then render_benches ppf ing.benches;
    if
      phase_count = 0 && ing.heartbeats = [] && ing.metrics = None
      && ing.benches = []
    then Fmt.pf ppf "(nothing recognizable: %d unclassified lines)@." ing.other;
    if require_phases && phase_count = 0 then
      Error "no phase rows found (expected a {\"type\":\"phases\"} document)"
    else Ok ())
