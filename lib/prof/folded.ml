module Span = Lepower_obs.Span

(* Rebuild the span tree from completed intervals with a sweep: sort by
   start (ties: longer first, i.e. parent before child), keep a stack of
   still-open spans, pop everything that ended before the next span
   starts.  Overlap that is not proper nesting — possible with
   unbalanced or cross-cutting spans — is clipped: the later span is
   treated as a child of whatever is still open, and self times are
   clamped at zero, so malformed input degrades gracefully instead of
   corrupting the tree. *)

type node = {
  n_path : string;
  n_fin : float;
  n_dur : float;
  mutable n_child : float;
}

let collapse (spans : Span.completed list) =
  let acc : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let add path self_us =
    let v = Option.value ~default:0 (Hashtbl.find_opt acc path) in
    Hashtbl.replace acc path (v + self_us)
  in
  let by_tid : (int, Span.completed list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Span.completed) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_tid s.Span.tid) in
      Hashtbl.replace by_tid s.Span.tid (s :: l))
    spans;
  let tids =
    Hashtbl.fold (fun k _ acc -> k :: acc) by_tid [] |> List.sort compare
  in
  List.iter
    (fun tid ->
      let sorted =
        List.sort
          (fun (a : Span.completed) (b : Span.completed) ->
            match Float.compare a.Span.start_us b.Span.start_us with
            | 0 -> Float.compare b.Span.dur_us a.Span.dur_us
            | c -> c)
          (Hashtbl.find by_tid tid)
      in
      let stack = ref [] in
      let rec pop_until start =
        match !stack with
        | top :: rest when top.n_fin <= start ->
          stack := rest;
          add top.n_path
            (Int.of_float
               (Float.round (Float.max 0. (top.n_dur -. top.n_child))));
          (match rest with
          | parent :: _ -> parent.n_child <- parent.n_child +. top.n_dur
          | [] -> ());
          pop_until start
        | _ -> ()
      in
      List.iter
        (fun (s : Span.completed) ->
          pop_until s.Span.start_us;
          let path =
            match !stack with
            | [] -> s.Span.name
            | top :: _ -> top.n_path ^ ";" ^ s.Span.name
          in
          stack :=
            {
              n_path = path;
              n_fin = s.Span.start_us +. s.Span.dur_us;
              n_dur = s.Span.dur_us;
              n_child = 0.;
            }
            :: !stack)
        sorted;
      pop_until infinity)
    tids;
  Hashtbl.fold (fun path v acc -> (path, v) :: acc) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_lines spans =
  List.map (fun (path, v) -> Printf.sprintf "%s %d" path v) (collapse spans)

let write path spans =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun line ->
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n')
        (to_lines spans))
