(** Phase attribution: scoped timers plus [Gc.quick_stat] deltas around
    the runtime's hot phases, aggregated into a per-phase table of wall
    time, allocation and call counts.

    A {e phase} is a named slot declared once at module level with
    {!make}; the hot path brackets work with {!enter}/{!leave} (or
    {!with_phase}).  Slots aggregate {e self} time and allocation —
    total minus whatever nested phases claimed — so coarse phases
    ([explore.walk]) can enclose fine ones ([engine.step],
    [explore.fingerprint]) and the table still sums to at most 100% of
    wall time.  Nesting is tracked per domain (in domain-local state);
    the aggregate adds are atomic, so parallel explorer workers profile
    concurrently without losing counts.

    Cost model: when disabled (the default), {!enter} is one flag load
    returning a static token and {!leave} is one comparison — nothing is
    allocated or timed, keeping instrumented hot paths within the E12
    overhead budget.  When enabled, each enter/leave pair costs two
    clock reads and two [Gc.quick_stat] calls.

    Robustness: {!leave} tolerates unbalanced usage.  Leaving a frame
    that has open children closes the children first (innermost first);
    leaving twice is a no-op.  Allocation deltas come from
    [Gc.quick_stat] and are approximate under parallel collection. *)

type slot

val make : string -> slot
(** Find-or-create the phase slot registered under this name. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Zero every slot (the registry itself is kept). *)

(** {1 Bracketing} *)

type token

val enter : slot -> token
val leave : token -> unit

val with_phase : slot -> (unit -> 'a) -> 'a
(** [enter]/[leave] around the thunk; the phase is closed even if the
    thunk raises.  When disabled this is just [f ()]. *)

(** {1 Reading} *)

type row = {
  r_name : string;
  r_calls : int;
  r_self_ns : int;  (** time in this phase, excluding nested phases *)
  r_total_ns : int;  (** time in this phase, including nested phases *)
  r_minor_words : int;  (** self minor-heap allocation, words *)
  r_major_words : int;  (** self major-heap allocation, words *)
}

val rows : unit -> row list
(** Non-empty slots, sorted by self time (descending). *)

val self_total_ns : unit -> int
(** Sum of self time over all slots — the profiled share of wall time. *)

val to_json : ?wall_us:float -> unit -> Lepower_obs.Json.t
(** The table as one strict-JSON object
    ([{"type":"phases","rows":[...]}]), suitable for a JSONL stream and
    for [lepower report]. *)

val pp_table : ?wall_us:float -> Format.formatter -> unit -> unit
(** Render the table human-readably; [wall_us] supplies the denominator
    for the self%% column (defaults to the profiled total). *)
