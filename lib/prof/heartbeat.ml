module Json = Lepower_obs.Json

type t = {
  interval_s : float;
  started : float;
  emit : Json.t -> unit;
  mutable last : float;
  mutable seq : int;
}

let create ?(interval_s = 1.0) ~emit () =
  let now = Unix.gettimeofday () in
  { interval_s; started = now; emit; last = now; seq = 0 }

let elapsed_s hb = Unix.gettimeofday () -. hb.started

let beat hb fields =
  let now = Unix.gettimeofday () in
  hb.last <- now;
  hb.seq <- hb.seq + 1;
  hb.emit
    (Json.Obj
       (("type", Json.String "heartbeat")
       :: ("seq", Json.Int hb.seq)
       :: ("t_s", Json.Float (now -. hb.started))
       :: fields ()))

let tick ?(force = false) hb fields =
  if force || Unix.gettimeofday () -. hb.last >= hb.interval_s then
    beat hb fields

(* One-line renderer for --progress on stderr: "hb #3 t=2.1s configs=52417
   rate=24961/s ...".  Keys keep stream order; nested values are skipped
   (the JSONL stream is the full-fidelity channel). *)
let pp_line ppf doc =
  match doc with
  | Json.Obj fields ->
    let seq =
      match List.assoc_opt "seq" fields with
      | Some (Json.Int i) -> i
      | _ -> 0
    in
    Fmt.pf ppf "hb #%d" seq;
    List.iter
      (fun (k, v) ->
        if k <> "type" && k <> "seq" then
          match v with
          | Json.Int i -> Fmt.pf ppf " %s=%d" k i
          | Json.Float f ->
            if Float.is_integer f && Float.abs f < 1e15 then
              Fmt.pf ppf " %s=%.0f" k f
            else Fmt.pf ppf " %s=%.2f" k f
          | Json.String s -> Fmt.pf ppf " %s=%s" k s
          | Json.Bool b -> Fmt.pf ppf " %s=%b" k b
          | Json.Null | Json.List _ | Json.Obj _ -> ())
      fields
  | _ -> Fmt.pf ppf "hb %s" (Json.to_string doc)
