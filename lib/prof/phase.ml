module Json = Lepower_obs.Json

(* A phase slot aggregates across all domains with atomic adds; the
   nesting bookkeeping (who is whose child right now) is purely
   per-domain, kept in a DLS stack, so concurrent explorer workers never
   contend except on the final fetch_and_add per leave. *)

type slot = {
  name : string;
  calls : int Atomic.t;
  self_ns : int Atomic.t;
  total_ns : int Atomic.t;
  minor_words : int Atomic.t;
  major_words : int Atomic.t;
}

let on = ref false
let enable () = on := true
let disable () = on := false
let is_enabled () = !on

let registry_lock = Mutex.create ()
let slots : (string, slot) Hashtbl.t = Hashtbl.create 16

let make name =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt slots name with
      | Some s -> s
      | None ->
        let s =
          {
            name;
            calls = Atomic.make 0;
            self_ns = Atomic.make 0;
            total_ns = Atomic.make 0;
            minor_words = Atomic.make 0;
            major_words = Atomic.make 0;
          }
        in
        Hashtbl.add slots name s;
        s)

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ s ->
      Atomic.set s.calls 0;
      Atomic.set s.self_ns 0;
      Atomic.set s.total_ns 0;
      Atomic.set s.minor_words 0;
      Atomic.set s.major_words 0)
    slots;
  Mutex.unlock registry_lock

let now_ns () = Int.of_float (Unix.gettimeofday () *. 1e9)

type frame = {
  f_slot : slot;
  f_start_ns : int;
  f_start_minor : float;
  f_start_major : float;
  mutable f_child_ns : int;
  mutable f_child_minor : float;
  mutable f_child_major : float;
}

type token = frame option

(* Each domain keeps its own stack of open frames; self time/allocation
   is total minus what nested phases already claimed. *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let enter slot : token =
  if not !on then None
  else begin
    (* [Gc.minor_words] reads the live allocation pointer;
       [quick_stat].minor_words only refreshes at minor collections, so
       it reads 0 across any phase that doesn't trigger one. *)
    let st = Gc.quick_stat () in
    let f =
      {
        f_slot = slot;
        f_start_ns = now_ns ();
        f_start_minor = Gc.minor_words ();
        f_start_major = st.Gc.major_words;
        f_child_ns = 0;
        f_child_minor = 0.;
        f_child_major = 0.;
      }
    in
    let stack = Domain.DLS.get stack_key in
    stack := f :: !stack;
    Some f
  end

let close_frame stack f =
  let total_ns = now_ns () - f.f_start_ns in
  let st = Gc.quick_stat () in
  let minor = Gc.minor_words () -. f.f_start_minor in
  let major = st.Gc.major_words -. f.f_start_major in
  let self_ns = Int.max 0 (total_ns - f.f_child_ns) in
  let self_minor = Float.max 0. (minor -. f.f_child_minor) in
  let self_major = Float.max 0. (major -. f.f_child_major) in
  let s = f.f_slot in
  ignore (Atomic.fetch_and_add s.calls 1);
  ignore (Atomic.fetch_and_add s.self_ns self_ns);
  ignore (Atomic.fetch_and_add s.total_ns (Int.max 0 total_ns));
  ignore (Atomic.fetch_and_add s.minor_words (Int.of_float self_minor));
  ignore (Atomic.fetch_and_add s.major_words (Int.of_float self_major));
  (match !stack with
  | parent :: _ ->
    parent.f_child_ns <- parent.f_child_ns + Int.max 0 total_ns;
    parent.f_child_minor <- parent.f_child_minor +. Float.max 0. minor;
    parent.f_child_major <- parent.f_child_major +. Float.max 0. major
  | [] -> ())

let leave (tok : token) =
  match tok with
  | None -> ()
  | Some f ->
    let stack = Domain.DLS.get stack_key in
    (* Pop until we find our own frame.  Frames above it were entered
       after us and never left (unbalanced usage, or a thunk that
       escaped via an exception without its own leave): close them too,
       innermost first, so the aggregate stays consistent instead of
       corrupting later nesting. *)
    let rec pop () =
      match !stack with
      | [] -> () (* already left (double leave): ignore *)
      | top :: rest ->
        stack := rest;
        close_frame stack top;
        if top != f then pop ()
    in
    if List.memq f !stack then pop ()

let with_phase slot f =
  if not !on then f ()
  else begin
    let tok = enter slot in
    match f () with
    | v ->
      leave tok;
      v
    | exception e ->
      leave tok;
      raise e
  end

type row = {
  r_name : string;
  r_calls : int;
  r_self_ns : int;
  r_total_ns : int;
  r_minor_words : int;
  r_major_words : int;
}

let rows () =
  Mutex.lock registry_lock;
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) slots [] in
  Mutex.unlock registry_lock;
  all
  |> List.filter_map (fun s ->
         let calls = Atomic.get s.calls in
         if calls = 0 then None
         else
           Some
             {
               r_name = s.name;
               r_calls = calls;
               r_self_ns = Atomic.get s.self_ns;
               r_total_ns = Atomic.get s.total_ns;
               r_minor_words = Atomic.get s.minor_words;
               r_major_words = Atomic.get s.major_words;
             })
  |> List.sort (fun a b ->
         match compare b.r_self_ns a.r_self_ns with
         | 0 -> String.compare a.r_name b.r_name
         | c -> c)

let self_total_ns () =
  List.fold_left (fun acc r -> acc + r.r_self_ns) 0 (rows ())

let row_to_json r =
  Json.Obj
    [
      ("name", Json.String r.r_name);
      ("calls", Json.Int r.r_calls);
      ("self_us", Json.Float (Float.of_int r.r_self_ns /. 1e3));
      ("total_us", Json.Float (Float.of_int r.r_total_ns /. 1e3));
      ("minor_words", Json.Int r.r_minor_words);
      ("major_words", Json.Int r.r_major_words);
    ]

let to_json ?wall_us () =
  let base =
    [
      ("type", Json.String "phases");
      ("rows", Json.List (List.map row_to_json (rows ())));
    ]
  in
  match wall_us with
  | None -> Json.Obj base
  | Some w -> Json.Obj (base @ [ ("wall_us", Json.Float w) ])

let pp_table ?wall_us ppf () =
  let rs = rows () in
  let us ns = Float.of_int ns /. 1e3 in
  let wall =
    match wall_us with
    | Some w when w > 0. -> w
    | _ -> Float.max 1e-9 (us (self_total_ns ()))
  in
  Fmt.pf ppf "%-24s %10s %12s %12s %6s %12s %10s@." "phase" "calls" "self(ms)"
    "total(ms)" "self%" "minor(w)" "major(w)";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-24s %10d %12.3f %12.3f %5.1f%% %12d %10d@." r.r_name
        r.r_calls
        (us r.r_self_ns /. 1e3)
        (us r.r_total_ns /. 1e3)
        (100. *. us r.r_self_ns /. wall)
        r.r_minor_words r.r_major_words)
    rs;
  Fmt.pf ppf "%-24s %10s %12.3f %33s@." "(sum of self)" ""
    (us (self_total_ns ()) /. 1e3)
    (Fmt.str "= %.1f%% of %.3f ms wall"
       (100. *. us (self_total_ns ()) /. wall)
       (wall /. 1e3))
