(** Campaign reports: ingest any mix of telemetry artifacts — heartbeat
    and phase-table JSONL from [--progress-out], metrics snapshots from
    [--metrics-out], and the single-line [BENCH_*.json] files — and
    render a human-readable summary.

    Every input file is read as one strict-JSON document per non-empty
    line and classified by shape: [{"type":"heartbeat"}] rows feed the
    throughput table, [{"type":"phases"}] the per-phase cost table (last
    one wins), objects with a ["counters"] member the top-counter list,
    and objects with ["benchmarks"]/["experiment"] members the
    bench-trajectory section (two or more snapshots of the same
    experiment render first-to-last deltas).  Sections whose inputs are
    absent are simply omitted. *)

val run :
  ?require_phases:bool ->
  Format.formatter ->
  string list ->
  (unit, string) result
(** Render a report over the given files.  [Error _] on an unreadable
    or non-JSON input line, or — with [require_phases] (used by the CI
    smoke) — when no phase table with at least one row was found. *)
