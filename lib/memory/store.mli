(** The shared memory: a persistent map from locations to object states.

    The store is immutable; applying an operation returns a new store.  This
    makes configurations of the whole system first-class values, so the
    exhaustive explorer can branch over interleavings without copying.

    {!Arena} is the mutable twin: the same locations and specs in flat
    arrays, mutated in place with an explicit undo journal.  The engine's
    compiled backend ([Engine.Machine]) runs on it; this persistent type
    stays the reference implementation, and the two are cross-checked
    state-for-state in the test suite and behind the explorer's
    [verify_backend] debug flag. *)

type t

val empty : t

val add : t -> string -> Spec.t -> t
(** [add store loc spec] installs a fresh object at [loc].  Replaces any
    previous object at the same location. *)

val create : (string * Spec.t) list -> t

val apply : t -> pid:int -> string -> Value.t -> (t * Value.t, string) result
(** [apply store ~pid loc op] applies [op] atomically to the object at
    [loc].  [Error _] when the location is unknown or the object rejects
    the operation. *)

val peek : t -> string -> Value.t option
(** Current state of the object at a location (for checkers and tests;
    protocols must go through {!apply}). *)

val poke : t -> string -> Value.t -> t
(** Forcibly set an object's state (test/adversary use only). *)

val freeze : t -> string -> t
(** Stuck-at fault (adversary move): the object at the location keeps its
    current state forever.  Subsequent operations compute their responses
    against the frozen state through the original spec — a successful-
    looking compare&swap included — but the state never changes.  The
    spec's [type_name] is wrapped as ["stuck(...)"] so checkers can see
    the fault.  Idempotent.  @raise Invalid_argument on an unknown
    location (like {!poke}). *)

val spec_of : t -> string -> Spec.t option

val locs : t -> string list
(** All locations, sorted.  Served from a key array cached at {!add}
    time — [apply]/[poke]/[freeze] never change the location set — so
    per-decision callers (the fuzz fault roller) do not re-walk the
    map. *)

val compare_states : t -> t -> int
(** Compare the two stores' states location-wise (specs are assumed equal);
    used to key visited-set entries in exhaustive exploration. *)

val state_bindings : t -> (string * Value.t) list
(** Every location's current state, sorted by location.  The canonical
    store component of the explorer's configuration fingerprint. *)

val fold_states : (string -> Value.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the state bindings in sorted-location order without
    materializing the binding list — the allocation-free variant of
    {!state_bindings} for hashing passes. *)

val pp : Format.formatter -> t -> unit

(** Mutable arena backing: the same objects in flat arrays indexed by
    interned location ids (id order = sorted location order), with an
    explicit undo journal.  [mark]/[undo_to] give O(1)-amortized
    snapshot/undo, so a depth-first explorer mutates on descent and pops
    the journal on backtrack instead of threading persistent maps.

    Not thread-safe; one arena per domain. *)
module Arena : sig
  type store := t

  type t

  val of_store : store -> t
  (** Freeze a persistent store into a fresh arena (empty journal). *)

  val to_store : t -> store
  (** Materialize the arena's current specs and states as a persistent
      store.  [to_store (of_store s)] is state- and spec-identical to
      [s]; after mutations it reflects the arena's current state. *)

  val n_locs : t -> int

  val loc_name : t -> int -> string
  (** The location interned as id [i]; ids are [0 .. n_locs - 1] in
      sorted-location order. *)

  val mem : t -> string -> bool

  val state_at : t -> int -> Value.t
  (** Current state of the object with interned id [i]. *)

  val spec_at : t -> int -> Spec.t
  (** Current spec of the object with interned id [i].  The arena only
      replaces a spec via {!freeze} (journaled), so callers caching
      derived data can use physical equality of the spec as a validity
      witness. *)

  val id_of_loc : t -> string -> int option
  (** Interned id of a location name, if bound. *)

  val apply : t -> pid:int -> string -> Value.t -> (Value.t, string) result
  (** Like the persistent [apply], but mutates in place and journals the
      overwritten state.  Same error strings. *)

  val apply_id : t -> pid:int -> int -> Value.t -> (Value.t, string) result
  (** [apply] by interned id, skipping the name lookup. *)

  val commit_state : t -> int -> Value.t -> Value.t -> unit
  (** [commit_state a i old state'] records the transition [old ->
      state'] of object [i] exactly as {!apply_id}'s success branch
      would — journal entry, in-place write, last-delta scratch —
      without consulting the spec.  For callers (the engine's
      transition memo) that have already validated the transition
      against the object's spec; [old] must be [state_at a i]. *)

  val write_state : t -> int -> Value.t -> unit
  (** Raw in-place write of object [i]'s state, {e not} journaled: a
      subsequent {!undo_to} will not restore the overwritten value.
      Only for callers that save and restore the old state themselves
      (the engine's stack-undo naive walk); everything else should use
      {!apply}/{!apply_id}/{!commit_state}. *)

  val states_view : t -> Value.t array
  (** The live, id-indexed states array itself — the hot-loop
      counterpart of {!state_at}.  Reads are always fine; writes bypass
      the journal exactly like {!write_state} and carry the same
      obligation. *)

  val specs_view : t -> Spec.t array
  (** The live, id-indexed specs array (hot-loop counterpart of
      {!spec_at}).  Read-only by convention: spec replacement must go
      through {!freeze} so it is journaled. *)

  val peek : t -> string -> Value.t option

  val poke : t -> string -> Value.t -> unit
  (** Journaled, like {!apply}.  @raise Invalid_argument on an unknown
      location (same message as the persistent [poke]). *)

  val freeze : t -> string -> unit
  (** Stuck-at fault, same semantics as the persistent [freeze]
      (idempotent; the spec replacement is journaled and undone by
      {!undo_to}). *)

  val mark : t -> int
  (** The current journal position — an O(1) snapshot token. *)

  val undo_to : t -> int -> unit
  (** Pop the journal back to a {!mark}, restoring every state and spec
      overwritten since.  Cost: O(entries popped); each entry was O(1)
      to record, so a DFS pays O(1) amortized per step. *)

  val state_bindings : t -> (string * Value.t) list
  (** Current bindings in id (= sorted-location) order — list-identical
      to the persistent [state_bindings] of {!to_store}, built by one
      pass over the preallocated arrays (no sort, no map walk). *)

  val iter_states : (string -> Value.t -> unit) -> t -> unit

  val last_id : t -> int
  (** Interned id of the location the most recent successful {!apply}
      touched ([-1] before the first).  With {!last_old_state} and
      {!state_at}, callers maintaining incremental digests read the
      single-binding delta of a step without re-deriving it. *)

  val last_old_state : t -> Value.t
  (** The overwritten state of that location, as it was {e before} the
      most recent successful {!apply}. *)
end
