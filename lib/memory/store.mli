(** The shared memory: a persistent map from locations to object states.

    The store is immutable; applying an operation returns a new store.  This
    makes configurations of the whole system first-class values, so the
    exhaustive explorer can branch over interleavings without copying. *)

type t

val empty : t

val add : t -> string -> Spec.t -> t
(** [add store loc spec] installs a fresh object at [loc].  Replaces any
    previous object at the same location. *)

val create : (string * Spec.t) list -> t

val apply : t -> pid:int -> string -> Value.t -> (t * Value.t, string) result
(** [apply store ~pid loc op] applies [op] atomically to the object at
    [loc].  [Error _] when the location is unknown or the object rejects
    the operation. *)

val peek : t -> string -> Value.t option
(** Current state of the object at a location (for checkers and tests;
    protocols must go through {!apply}). *)

val poke : t -> string -> Value.t -> t
(** Forcibly set an object's state (test/adversary use only). *)

val freeze : t -> string -> t
(** Stuck-at fault (adversary move): the object at the location keeps its
    current state forever.  Subsequent operations compute their responses
    against the frozen state through the original spec — a successful-
    looking compare&swap included — but the state never changes.  The
    spec's [type_name] is wrapped as ["stuck(...)"] so checkers can see
    the fault.  Idempotent.  @raise Invalid_argument on an unknown
    location (like {!poke}). *)

val spec_of : t -> string -> Spec.t option
val locs : t -> string list
val compare_states : t -> t -> int
(** Compare the two stores' states location-wise (specs are assumed equal);
    used to key visited-set entries in exhaustive exploration. *)

val state_bindings : t -> (string * Value.t) list
(** Every location's current state, sorted by location.  The canonical
    store component of the explorer's configuration fingerprint. *)

val pp : Format.formatter -> t -> unit
