(** The universe of values stored in shared objects and exchanged as
    operation arguments and results.

    Every shared object in the simulated system holds a [Value.t] as its
    state, takes a [Value.t] as an operation description and returns a
    [Value.t] as the operation's response.  Keeping a single closed universe
    makes configurations comparable, which the exhaustive interleaving
    explorer ({!Runtime.Explore}) relies on. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Sym of string  (** symbolic atom, used for operation names and labels *)
  | Pair of t * t
  | List of t list

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Structural hash visiting {e every} node (unlike [Hashtbl.hash], which
    samples a bounded prefix and collides badly on deep [Pair]/[List]
    structures).  Consistent with {!equal}:
    [equal a b] implies [hash a = hash b].  Always non-negative. *)

val hash_fold : int -> t -> int
(** [hash_fold seed v] folds [v]'s structural hash into an accumulator, so
    composite keys (the explorer's configuration fingerprints) can chain
    value hashes without intermediate allocation.  [hash] is
    [hash_fold] from a fixed seed, masked non-negative. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val sym : string -> t
val pair : t -> t -> t
val list : t list -> t
val triple : t -> t -> t -> t
val option : t option -> t
(** [option v] encodes [None] as [Sym "none"] and [Some x] as
    [Pair (Sym "some", x)]. *)

(** {1 Destructors}

    All destructors raise {!Type_error} when the value has the wrong shape;
    the execution engine turns that exception into a faulty-process status,
    so a protocol bug can never corrupt the simulation. *)

exception Type_error of string * t

val as_unit : t -> unit
val as_bool : t -> bool
val as_int : t -> int
val as_sym : t -> string
val as_pair : t -> t * t
val as_triple : t -> t * t * t
val as_list : t -> t list
val as_option : t -> t option
