module Smap = Map.Make (String)

type t = {
  specs : Spec.t Smap.t;
  states : Value.t Smap.t;
  keys : string array;
      (* The locations in sorted order, cached at [add] time.  [apply]/
         [poke]/[freeze] never change the location set, so the hot paths
         ([locs], the fingerprint folds) read this array instead of
         re-walking the map spine. *)
}

let empty = { specs = Smap.empty; states = Smap.empty; keys = [||] }

let add t loc spec =
  let specs = Smap.add loc spec t.specs in
  {
    specs;
    states = Smap.add loc spec.Spec.init t.states;
    keys = Array.of_seq (Seq.map fst (Smap.to_seq specs));
  }

let create bindings =
  List.fold_left (fun t (loc, spec) -> add t loc spec) empty bindings

let apply t ~pid loc op =
  match Smap.find_opt loc t.specs with
  | None -> Error (Printf.sprintf "unknown location %S" loc)
  | Some spec -> (
    let state = Smap.find loc t.states in
    match Spec.apply spec ~pid state op with
    | Error _ as e -> e
    | Ok (state', res) -> Ok ({ t with states = Smap.add loc state' t.states }, res))

let peek t loc = Smap.find_opt loc t.states

let poke t loc v =
  if Smap.mem loc t.specs then { t with states = Smap.add loc v t.states }
  else invalid_arg (Printf.sprintf "Store.poke: unknown location %S" loc)

(* Shared between the persistent and arena [freeze]: the stuck-at wrapper
   keeps the frozen state forever but still computes responses against it
   through the original spec. *)
let is_stuck spec =
  String.length spec.Spec.type_name >= 6
  && String.sub spec.Spec.type_name 0 6 = "stuck("

let frozen_spec spec =
  Spec.make
    ~type_name:(Printf.sprintf "stuck(%s)" spec.Spec.type_name)
    ~init:spec.Spec.init
    ~apply:(fun ~pid state op ->
      match Spec.apply spec ~pid state op with
      | Error _ as e -> e
      | Ok (_discarded, res) -> Ok (state, res))

let freeze t loc =
  match Smap.find_opt loc t.specs with
  | None -> invalid_arg (Printf.sprintf "Store.freeze: unknown location %S" loc)
  | Some spec ->
    if is_stuck spec then t
    else { t with specs = Smap.add loc (frozen_spec spec) t.specs }

let spec_of t loc = Smap.find_opt loc t.specs
let locs t = Array.to_list t.keys
let compare_states a b = Smap.compare Value.compare a.states b.states
let state_bindings t = Smap.bindings t.states
let fold_states f t acc = Smap.fold f t.states acc

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (loc, v) -> Fmt.pf ppf "%s = %a" loc Value.pp v))
    (Smap.bindings t.states)

(* ------------------------------------------------------------------ *)
(* Mutable arena backing with an O(1)-amortized undo journal.          *)

module Arena = struct
  type store = t

  type entry = J_state of int * Value.t | J_spec of int * Spec.t

  type t = {
    names : string array;  (* sorted — id order IS sorted-location order *)
    index : (string, int) Hashtbl.t;
    specs : Spec.t array;
    states : Value.t array;
    mutable journal : entry array;
    mutable jlen : int;
    (* Scratch describing the most recent successful [apply], so callers
       maintaining incremental digests can read the single-location delta
       without re-deriving which location the operation touched. *)
    mutable last_id : int;
    mutable last_old : Value.t;
  }

  let of_store (s : store) =
    let names = Array.copy s.keys in
    let n = Array.length names in
    let index = Hashtbl.create (max 8 (2 * n)) in
    Array.iteri (fun i name -> Hashtbl.replace index name i) names;
    {
      names;
      index;
      specs = Array.map (fun name -> Smap.find name s.specs) names;
      states = Array.map (fun name -> Smap.find name s.states) names;
      journal = Array.make 64 (J_state (0, Value.Unit));
      jlen = 0;
      last_id = -1;
      last_old = Value.Unit;
    }

  let to_store a =
    let specs = ref Smap.empty and states = ref Smap.empty in
    Array.iteri
      (fun i name ->
        specs := Smap.add name a.specs.(i) !specs;
        states := Smap.add name a.states.(i) !states)
      a.names;
    { specs = !specs; states = !states; keys = Array.copy a.names }

  let n_locs a = Array.length a.names
  let loc_name a i = a.names.(i)
  let mem a loc = Hashtbl.mem a.index loc
  let state_at a i = a.states.(i)
  let spec_at a i = a.specs.(i)

  let id_of_loc a loc =
    match Hashtbl.find a.index loc with
    | exception Not_found -> None
    | i -> Some i

  let last_id a = a.last_id
  let last_old_state a = a.last_old

  let push a e =
    (if a.jlen = Array.length a.journal then begin
       let j = Array.make (2 * a.jlen) a.journal.(0) in
       Array.blit a.journal 0 j 0 a.jlen;
       a.journal <- j
     end);
    a.journal.(a.jlen) <- e;
    a.jlen <- a.jlen + 1

  let mark a = a.jlen

  let undo_to a m =
    while a.jlen > m do
      a.jlen <- a.jlen - 1;
      match a.journal.(a.jlen) with
      | J_state (i, v) -> a.states.(i) <- v
      | J_spec (i, s) -> a.specs.(i) <- s
    done

  let apply_id a ~pid i op =
    match Spec.apply a.specs.(i) ~pid a.states.(i) op with
    | Error _ as e -> e
    | Ok (state', res) ->
      let old = a.states.(i) in
      push a (J_state (i, old));
      a.states.(i) <- state';
      a.last_id <- i;
      a.last_old <- old;
      Ok res

  (* Journal + scratch exactly as [apply_id]'s Ok branch, with the spec
     transition already decided by the caller (the engine's memoized
     transition fast path).  [old] must be the current state of [i]. *)
  let commit_state a i old state' =
    push a (J_state (i, old));
    a.states.(i) <- state';
    a.last_id <- i;
    a.last_old <- old

  (* Unjournaled raw write — for callers that save and restore the old
     state themselves (the engine's stack-undo naive walk). *)
  let write_state a i v = a.states.(i) <- v

  let states_view a = a.states
  let specs_view a = a.specs

  let apply a ~pid loc op =
    match Hashtbl.find a.index loc with
    | exception Not_found -> Error (Printf.sprintf "unknown location %S" loc)
    | i -> apply_id a ~pid i op

  let peek a loc =
    match Hashtbl.find a.index loc with
    | exception Not_found -> None
    | i -> Some a.states.(i)

  let poke a loc v =
    match Hashtbl.find a.index loc with
    | exception Not_found ->
      invalid_arg (Printf.sprintf "Store.poke: unknown location %S" loc)
    | i ->
      push a (J_state (i, a.states.(i)));
      a.states.(i) <- v

  let freeze a loc =
    match Hashtbl.find a.index loc with
    | exception Not_found ->
      invalid_arg (Printf.sprintf "Store.freeze: unknown location %S" loc)
    | i ->
      let spec = a.specs.(i) in
      if not (is_stuck spec) then begin
        push a (J_spec (i, spec));
        a.specs.(i) <- frozen_spec spec
      end

  let state_bindings a =
    let acc = ref [] in
    for i = Array.length a.names - 1 downto 0 do
      acc := (a.names.(i), a.states.(i)) :: !acc
    done;
    !acc

  let iter_states f a =
    Array.iteri (fun i name -> f name a.states.(i)) a.names
end
