module Smap = Map.Make (String)

type t = { specs : Spec.t Smap.t; states : Value.t Smap.t }

let empty = { specs = Smap.empty; states = Smap.empty }

let add t loc spec =
  {
    specs = Smap.add loc spec t.specs;
    states = Smap.add loc spec.Spec.init t.states;
  }

let create bindings =
  List.fold_left (fun t (loc, spec) -> add t loc spec) empty bindings

let apply t ~pid loc op =
  match Smap.find_opt loc t.specs with
  | None -> Error (Printf.sprintf "unknown location %S" loc)
  | Some spec -> (
    let state = Smap.find loc t.states in
    match Spec.apply spec ~pid state op with
    | Error _ as e -> e
    | Ok (state', res) -> Ok ({ t with states = Smap.add loc state' t.states }, res))

let peek t loc = Smap.find_opt loc t.states

let poke t loc v =
  if Smap.mem loc t.specs then { t with states = Smap.add loc v t.states }
  else invalid_arg (Printf.sprintf "Store.poke: unknown location %S" loc)

let freeze t loc =
  match Smap.find_opt loc t.specs with
  | None -> invalid_arg (Printf.sprintf "Store.freeze: unknown location %S" loc)
  | Some spec ->
    let already = String.length spec.Spec.type_name >= 6
                  && String.sub spec.Spec.type_name 0 6 = "stuck(" in
    if already then t
    else
      let frozen =
        Spec.make
          ~type_name:(Printf.sprintf "stuck(%s)" spec.Spec.type_name)
          ~init:spec.Spec.init
          ~apply:(fun ~pid state op ->
            match Spec.apply spec ~pid state op with
            | Error _ as e -> e
            | Ok (_discarded, res) -> Ok (state, res))
      in
      { t with specs = Smap.add loc frozen t.specs }

let spec_of t loc = Smap.find_opt loc t.specs
let locs t = List.map fst (Smap.bindings t.specs)
let compare_states a b = Smap.compare Value.compare a.states b.states
let state_bindings t = Smap.bindings t.states

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (loc, v) -> Fmt.pf ppf "%s = %a" loc Value.pp v))
    (Smap.bindings t.states)
