type t =
  | Unit
  | Bool of bool
  | Int of int
  | Sym of string
  | Pair of t * t
  | List of t list

(* Physical equality first: the explorer's hot paths compare values that
   are very often the same heap block (unchanged states, shared op
   encodings), and [==] can never contradict structural equality here. *)
let rec equal a b =
  a == b
  ||
  match a, b with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Sym x, Sym y -> String.equal x y
  | Pair (x1, y1), Pair (x2, y2) -> equal x1 x2 && equal y1 y2
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Unit | Bool _ | Int _ | Sym _ | Pair _ | List _), _ -> false

let rec compare a b =
  if a == b then 0
  else
  let tag = function
    | Unit -> 0
    | Bool _ -> 1
    | Int _ -> 2
    | Sym _ -> 3
    | Pair _ -> 4
    | List _ -> 5
  in
  match a, b with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Sym x, Sym y -> String.compare x y
  | Pair (x1, y1), Pair (x2, y2) ->
    let c = compare x1 x2 in
    if c <> 0 then c else compare y1 y2
  | List xs, List ys -> List.compare compare xs ys
  | _, _ -> Int.compare (tag a) (tag b)

(* FNV-1a-style mixing.  [Hashtbl.hash] is depth- and width-limited (it
   samples at most ~10 "meaningful" nodes), so on the deep [Pair]/[List]
   values the protocols build it collapses structurally distinct values
   onto the same hash with high probability — fatal for the explorer's
   visited-set, which keys millions of configurations on value hashes.
   This hash visits every node, so [equal a b] implies [hash a = hash b]
   and unequal deep values almost surely differ. *)
let mix h x = (h * 0x01000193) lxor x

let rec hash_fold h = function
  | Unit -> mix h 0x11
  | Bool false -> mix h 0x23
  | Bool true -> mix h 0x37
  | Int i -> mix (mix h 0x41) i
  | Sym s -> String.fold_left (fun h c -> mix h (Char.code c)) (mix h 0x53) s
  | Pair (a, b) -> hash_fold (hash_fold (mix h 0x61) a) b
  | List vs -> List.fold_left hash_fold (mix h 0x79) vs

let hash v = hash_fold 0x811c9dc5 v land max_int

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Sym s -> Fmt.pf ppf ":%s" s
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | List vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp) vs

let to_string v = Fmt.str "%a" pp v

let unit = Unit
let bool b = Bool b
let int i = Int i
let sym s = Sym s
let pair a b = Pair (a, b)
let list vs = List vs
let triple a b c = Pair (a, Pair (b, c))

let option = function
  | None -> Sym "none"
  | Some v -> Pair (Sym "some", v)

exception Type_error of string * t

let type_error expected v = raise (Type_error (expected, v))

let as_unit = function Unit -> () | v -> type_error "unit" v
let as_bool = function Bool b -> b | v -> type_error "bool" v
let as_int = function Int i -> i | v -> type_error "int" v
let as_sym = function Sym s -> s | v -> type_error "sym" v
let as_pair = function Pair (a, b) -> (a, b) | v -> type_error "pair" v

let as_triple = function
  | Pair (a, Pair (b, c)) -> (a, b, c)
  | v -> type_error "triple" v

let as_list = function List vs -> vs | v -> type_error "list" v

let as_option = function
  | Sym "none" -> None
  | Pair (Sym "some", v) -> Some v
  | v -> type_error "option" v
