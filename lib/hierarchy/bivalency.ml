module Value = Memory.Value
module Engine = Runtime.Engine

module Vset = Set.Make (Value)

let decision_values _instance config =
  let acc = ref Vset.empty in
  let on_terminal view =
    List.iter
      (fun v -> acc := Vset.add v !acc)
      (Engine.Config_view.decision_values view)
  in
  ignore
    (Runtime.Explore.explore
       ~options:
         {
           Runtime.Explore.Options.default with
           on_terminal = Some on_terminal;
         }
       config);
  Vset.elements !acc

let pending_locations (config : Engine.config) =
  Array.to_list config.Engine.procs
  |> List.filter_map (fun (p : Runtime.Proc.t) ->
         match p.Runtime.Proc.status, p.Runtime.Proc.prog with
         | Runtime.Proc.Running, Runtime.Program.Step (loc, _, _) ->
           Some (p.Runtime.Proc.pid, loc)
         | _ -> None)

type verdict =
  | Critical of {
      path : int list;
      pending : (int * string) list;
      successor_valence : (int * Value.t) list;
    }
  | Never_bivalent of Value.t list
  | Still_bivalent_at_bound of int

let drive ?(max_depth = 200) instance =
  let valence config = decision_values instance config in
  let rec go config path depth =
    if depth >= max_depth then Still_bivalent_at_bound depth
    else
      let enabled = Engine.enabled config in
      let successors =
        List.map (fun pid -> (pid, Engine.step config pid)) enabled
      in
      let bivalent_succ =
        List.find_opt
          (fun (_, c) -> List.length (valence c) >= 2)
          successors
      in
      match bivalent_succ with
      | Some (pid, c) -> go c (pid :: path) (depth + 1)
      | None ->
        (* Every successor is univalent: this is the critical
           configuration. *)
        let successor_valence =
          List.map
            (fun (pid, c) ->
              match valence c with
              | [ v ] -> (pid, v)
              | _ -> (pid, Value.sym "?"))
            successors
        in
        Critical
          {
            path = List.rev path;
            pending = pending_locations config;
            successor_valence;
          }
  in
  let config = Protocols.Consensus.config instance in
  match valence config with
  | [] | [ _ ] -> Never_bivalent (valence config)
  | _ :: _ :: _ -> go config [] 0
