(** Schedulers: the adversary controlling the interleaving.

    A scheduler sees the global time and the set of processes that still
    have a pending step and picks which one moves next.

    {b Oblivious-adversary contract.}  A scheduler sees {e nothing} of the
    shared state: [choose] receives only the time and the enabled pid set,
    and [observe] only the pid that actually moved.  The contents of
    memory, pending operations and decision values are not inputs, which
    keeps these schedulers oblivious; content-aware adversaries (e.g. the
    bivalency adversary) drive {!Engine.step} directly instead.  This is
    what makes a recorded pid sequence a complete schedule certificate
    ({!Repro}): replaying the same choices from the same initial
    configuration reproduces the run bit for bit.

    {b Protocol with the engine.}  For each executed step the engine calls
    [choose] exactly once and then, if the returned pid was executed,
    [observe] exactly once with that pid.  Wrappers (decision logging in
    {!Repro.recording}, fail-stop filtering in {!crashing}) therefore
    compose without shadowing each other's state: a layer that keeps a
    cursor commits it in [observe] — which always reports the {e actual}
    schedule — rather than in [choose], whose proposal an outer layer may
    veto.  [choose] may also return {!halt} to end the run with every
    remaining process left in its current status. *)

type t = {
  name : string;
  choose : time:int -> enabled:int list -> int;
      (** Called with a non-empty [enabled] list; must return a member of
          it or {!halt}.  Any other value is treated as {!halt} by the
          engine (defensive: a stray pid would otherwise spin forever on
          a no-op step). *)
  observe : time:int -> pid:int -> unit;
      (** Notification that [pid] actually moved at [time] — called once
          per executed step, after [choose].  Stateful schedulers commit
          cursors here; wrappers must forward to the wrapped scheduler. *)
}

val halt : int
(** Sentinel (negative, never a pid) a scheduler returns from [choose] to
    end the run: the engine stops without stepping or crashing anyone and
    reports the outcome of the current configuration. *)

val make : ?observe:(time:int -> pid:int -> unit) -> name:string ->
  (time:int -> enabled:int list -> int) -> t
(** Build a scheduler; [observe] defaults to a no-op. *)

val round_robin : unit -> t
(** Cycles through process ids in order.  Fresh internal cursor per call;
    the cursor follows the {e observed} schedule, so a wrapper that vetoes
    a proposal does not desynchronize it. *)

val random : seed:int -> t
(** Uniform choice among enabled processes, deterministic in [seed]. *)

val fixed : int list -> t
(** Follows the given pid sequence while its entries are enabled (skipping
    disabled ones); falls back to round-robin when exhausted. *)

val prioritize : int list -> t
(** Always runs the enabled process that appears earliest in the list;
    processes not listed are starved until all listed ones finish.  This is
    the "solo run" adversary used in wait-freedom tests. *)

val pct : seed:int -> ?depth:int -> max_steps:int -> unit -> t
(** Probabilistic concurrency testing (Burckhardt et al., ASPLOS 2010):
    every process gets a random-but-fixed priority derived from
    [(seed, pid)], the highest-priority enabled process always runs, and
    [depth - 1] priority-change points are sampled over [\[0, max_steps)]
    — when the executed-step counter crosses one, the process that moved
    is demoted below every base priority.  A schedule-dependent bug of
    depth [d] is found with probability ≥ 1/(n·k{^ d-1}) per run.
    Deterministic in [seed]; demotions and the step counter commit in
    [observe], so wrappers that veto proposals do not skew them.
    [depth] defaults to 3. *)

val starve : victim:int -> stall:int -> t -> t
(** Starvation adversary: wraps a scheduler so that [victim] is not
    scheduled during the first [stall] executed steps of the run (it runs
    anyway if it is the only enabled process, since an oblivious adversary
    gains nothing by halting the whole run).  After the stall expires the
    wrapped scheduler sees the full enabled set again. *)

val crashing : crashed:int list -> t -> t
(** Wraps a scheduler so that the given pids are never scheduled
    (fail-stop).  When only crashed pids remain enabled the wrapper
    returns {!halt} — it never consults the underlying scheduler with a
    pid it promised not to run — so the run ends with the crashed
    processes still in their last status. *)
