module Value = Memory.Value

let mix h x = (h * 0x01000193) lxor x

(* Hash-chained persistent history.  Sharing matters: sibling branches of
   the exploration extend the same tail, so the spine (and its hashes) is
   computed once per event, not once per configuration. *)
type history =
  | Nil
  | Ev of { loc : string; op : Value.t; result : Value.t; h : int; tl : history }

let history_empty = Nil
let history_hash = function Nil -> 0x2545f491 | Ev e -> e.h

let history_extend_op tl ~loc ~op ~result =
  (* [time] and [pid] deliberately excluded: the fingerprint must be
     invariant under reorderings of other processes' events. *)
  let h =
    String.fold_left
      (fun h c -> mix h (Char.code c))
      (mix (history_hash tl) 0x1f) loc
  in
  let h = Value.hash_fold (Value.hash_fold h op) result in
  Ev { loc; op; result; h; tl }

let history_extend tl (e : Trace.event) =
  history_extend_op tl ~loc:e.Trace.loc ~op:e.Trace.op ~result:e.Trace.result

(* Hash-consed extension.  Exploration revisits the same configuration
   along many interleavings; without consing each route rebuilds its own
   structurally-equal history spine, and every visited-set hit then pays
   a full structural walk to prove equality.  Consing on
   (physical tail, event) makes re-derived histories physically equal —
   programs are deterministic, so re-extending the same tail in the same
   state appends the same event — and [history_equal]'s [==] shortcut
   turns hit-side comparison into a pointer check.  The table is scoped
   by the caller (one per walk): consing is an optimization, never a
   semantic requirement, and un-consed histories still compare fine. *)
type hcons = { mutable hc_buckets : history list array; mutable hc_count : int }

let hcons_create size = { hc_buckets = Array.make (max 16 size) []; hc_count = 0 }

let history_extend_hc hc tl ~loc ~op ~result =
  let h =
    String.fold_left
      (fun h c -> mix h (Char.code c))
      (mix (history_hash tl) 0x1f) loc
  in
  let h = Value.hash_fold (Value.hash_fold h op) result in
  let idx = h land max_int mod Array.length hc.hc_buckets in
  let rec scan = function
    | (Ev e as ev) :: rest ->
      if
        e.h = h && e.tl == tl
        && String.equal e.loc loc
        && Value.equal e.op op
        && Value.equal e.result result
      then Some ev
      else scan rest
    | (Nil :: _ | []) -> None
  in
  match scan hc.hc_buckets.(idx) with
  | Some ev -> ev
  | None ->
    (if hc.hc_count >= 2 * Array.length hc.hc_buckets then begin
       let bs = Array.make (2 * Array.length hc.hc_buckets) [] in
       Array.iter
         (List.iter (fun ev ->
              let i =
                (match ev with Ev e -> e.h | Nil -> 0) land max_int
                mod Array.length bs
              in
              bs.(i) <- ev :: bs.(i)))
         hc.hc_buckets;
       hc.hc_buckets <- bs
     end);
    let ev = Ev { loc; op; result; h; tl } in
    let idx = h land max_int mod Array.length hc.hc_buckets in
    hc.hc_buckets.(idx) <- ev :: hc.hc_buckets.(idx);
    hc.hc_count <- hc.hc_count + 1;
    ev

let rec history_equal a b =
  a == b
  ||
  match (a, b) with
  | Nil, Nil -> true
  | Ev x, Ev y ->
    x.h = y.h
    && String.equal x.loc y.loc
    && Value.equal x.op y.op
    && Value.equal x.result y.result
    && history_equal x.tl y.tl
  | (Nil | Ev _), _ -> false

let status_hash = function
  | Proc.Running -> 0x3d
  | Proc.Decided v -> Value.hash_fold 0x47 v
  | Proc.Crashed -> 0x59
  | Proc.Faulty m ->
    String.fold_left (fun h c -> mix h (Char.code c)) 0x6b m

let status_equal a b =
  match (a, b) with
  | Proc.Running, Proc.Running | Proc.Crashed, Proc.Crashed -> true
  | Proc.Decided x, Proc.Decided y -> Value.equal x y
  | Proc.Faulty x, Proc.Faulty y -> String.equal x y
  | (Proc.Running | Proc.Decided _ | Proc.Crashed | Proc.Faulty _), _ -> false

type t = {
  hash : int;
  store : (string * Value.t) list;  (** canonical: sorted by location *)
  procs : (Proc.status * history) array;
}

(* The hash is a pair of {e commutative} sums — one term per store
   binding, one term per process — mixed together at the end.  Summing
   (native wrap-around [+]) instead of chaining costs nothing in
   collision resistance we care about (each term is already a deep FNV
   hash, and [equal] rechecks structurally), and buys incrementality:
   replacing one binding's term is [sum - old_term + new_term], so the
   arena-backed explorer maintains the configuration hash in O(1) per
   step instead of rehashing every binding and process. *)

let store_seed loc =
  String.fold_left (fun h c -> mix h (Char.code c)) (mix 0x811c9dc5 0x7f) loc

let store_binding_hash loc v = Value.hash_fold (store_seed loc) v

let proc_hash ~pid status hist =
  mix (mix (mix 0x9e3779b9 (pid + 1)) (status_hash status)) (history_hash hist)

let combine ~store_sum ~proc_sum =
  mix (mix 0x811c9dc5 store_sum) proc_sum land max_int

let sums (config : Engine.config) histories =
  let store_sum =
    Memory.Store.fold_states
      (fun loc v acc -> acc + store_binding_hash loc v)
      config.Engine.store 0
  in
  let proc_sum = ref 0 in
  Array.iteri
    (fun pid (p : Proc.t) ->
      proc_sum := !proc_sum + proc_hash ~pid p.Proc.status histories.(pid))
    config.Engine.procs;
  (store_sum, !proc_sum)

let of_parts ~store_sum ~proc_sum ~store ~procs =
  { hash = combine ~store_sum ~proc_sum; store; procs }

let make (config : Engine.config) histories =
  let store = Memory.Store.state_bindings config.Engine.store in
  let store_sum =
    List.fold_left (fun acc (loc, v) -> acc + store_binding_hash loc v) 0 store
  in
  let procs =
    Array.init (Array.length config.Engine.procs) (fun pid ->
        (config.Engine.procs.(pid).Proc.status, histories.(pid)))
  in
  let proc_sum = ref 0 in
  Array.iteri
    (fun pid (status, hist) ->
      proc_sum := !proc_sum + proc_hash ~pid status hist)
    procs;
  { hash = combine ~store_sum ~proc_sum:!proc_sum; store; procs }

let hash t = t.hash

let equal a b =
  a.hash = b.hash
  && Array.length a.procs = Array.length b.procs
  && (let rec stores xs ys =
        match (xs, ys) with
        | [], [] -> true
        | (la, va) :: xs, (lb, vb) :: ys ->
          String.equal la lb && Value.equal va vb && stores xs ys
        | _, _ -> false
      in
      stores a.store b.store)
  &&
  let n = Array.length a.procs in
  let rec procs i =
    i >= n
    ||
    let sa, ha = a.procs.(i) and sb, hb = b.procs.(i) in
    status_equal sa sb && history_equal ha hb && procs (i + 1)
  in
  procs 0

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* ------------------------------------------------------------------ *)
(* Replay digests.                                                     *)

(* Unlike [make] — which deliberately forgets the global interleaving so
   commuting schedules collide — a replay digest must pin the {e exact}
   execution: store bindings, every process's status and step count, and
   the full trace in order, [time]/[pid] stamps included.  Two chained
   FNV-style accumulators with distinct multipliers keep accidental
   collisions out of reach of the schedule spaces we explore. *)
let digest (config : Engine.config) =
  let mix2 m h x = (h * m) lxor x in
  let fold_string m h s =
    String.fold_left (fun h c -> mix2 m h (Char.code c)) (mix2 m h 0x1f) s
  in
  let fold_value m h v = mix2 m (Value.hash_fold h v) 0x2b in
  let fold m seed =
    let h = mix2 m seed config.Engine.time in
    let h =
      List.fold_left
        (fun h (loc, v) -> fold_value m (fold_string m h loc) v)
        h
        (Memory.Store.state_bindings config.Engine.store)
    in
    let h =
      Array.fold_left
        (fun h (p : Proc.t) ->
          mix2 m (mix2 m h (status_hash p.Proc.status)) p.Proc.steps)
        h config.Engine.procs
    in
    List.fold_left
      (fun h (e : Trace.event) ->
        let h = mix2 m (mix2 m h e.Trace.time) e.Trace.pid in
        fold_value m (fold_value m (fold_string m h e.Trace.loc) e.Trace.op)
          e.Trace.result)
      h
      (List.rev config.Engine.trace)
  in
  Printf.sprintf "%08x%08x"
    (fold 0x01000193 0x811c9dc5 land 0xffffffff)
    (fold 0x01000197 0x0b4711d5 land 0xffffffff)
