(** Deterministic reproduction: schedule certificates, replay, and
    counterexample shrinking.

    The paper's reduction argument hinges on bad runs being
    {e reconstructible}: an execution of the emulated algorithm must be
    recoverable from the shared-register state alone.  This module gives
    every failure our tools surface the same property.  Because programs
    are deterministic ({!Program}'s purity requirement) and schedulers are
    oblivious ({!Sched}'s contract), a run is fully determined by its
    initial configuration plus the sequence of adversary decisions — which
    process stepped, who was crashed, which faults were injected and
    where.  A {b schedule certificate}
    ({!type-t}) records exactly that, bracketed by two {!Fingerprint.digest}
    values, and is serialized as one strict {!Lepower_obs.Json} document:

    - {!record} wraps any {!Sched.t} in a decision logger and captures a
      certificate from a live {!Engine.run};
    - {!Explore.check_all} captures the DFS path to each violation, which
      {!of_decisions} turns into a certificate;
    - {!replay} re-executes a certificate against a freshly rebuilt
      configuration and verifies both digests bit for bit;
    - {!shrink} minimizes a failing certificate by delta debugging
      (chunk-removal ddmin, crash-removal and whole-pid-removal passes),
      validating every candidate by replay against a user predicate.

    Certificates carry an opaque [subject] JSON describing how to rebuild
    the instance; the runtime never interprets it — resolvers live above
    (see [Lepower_check.Repro_subject] and the [lepower replay] CLI). *)

(** Faults are first-class adversary decisions: a fuzz run that injects a
    lost write or freezes a register logs the injection in the same
    decision stream as the scheduling choices, so replaying the stream
    re-injects the faults at exactly the same points and the final
    fingerprint still matches bit for bit.  Certificates without fault
    decisions are unaffected (the format version stays 1; the alphabet
    grew, the encoding of the old letters did not change). *)
type decision =
  | Step of int  (** the adversary let this pid take its pending step *)
  | Crash of int  (** the adversary fail-stopped this pid *)
  | Lose of int
      (** the adversary let this pid step but discarded the store effect
          (lost-write fault, {!Engine.step_lost}) *)
  | Stick of string
      (** the adversary froze the object at this location at its current
          state (stuck-at fault, {!Memory.Store.freeze}) *)

module Decision : sig
  type t = decision

  val pid : t -> int option
  (** The process a decision concerns; [None] for {!Stick}, which targets
      a location, not a process. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  val to_json : t -> Lepower_obs.Json.t
  (** Compact encoding: [Step 3] is ["s3"], [Crash 0] is ["c0"],
      [Lose 2] is ["l2"], [Stick "R"] is ["k:R"]. *)

  val of_json : Lepower_obs.Json.t -> (t, string) result
end

(** A schedule certificate.  [initial]/[final] are {!Fingerprint.digest}
    values of the configuration before the first and after the last
    decision; [subject] is the resolver-owned instance descriptor
    ([Null] when unknown); [version] is a best-effort [git describe] of
    the code that recorded it (informational — replay does not gate on
    it); [seed]/[sched]/[max_steps] document the producing run. *)
type t = {
  format : int;  (** certificate format version, currently 1 *)
  subject : Lepower_obs.Json.t;
  sched : string;
  seed : int option;
  max_steps : int;
  message : string;  (** what failed, as reported by the producer *)
  version : string;
  initial : string;
  final : string;
  decisions : decision list;
}

val with_message : t -> string -> t
val with_subject : t -> Lepower_obs.Json.t -> t

val git_version : unit -> string
(** [$LEPOWER_GIT_DESCRIBE] if set, else [git describe --always --dirty],
    else ["unknown"].  Computed once per process. *)

(** {1 Recording} *)

val recording : Sched.t -> Sched.t * (unit -> decision list)
(** [recording sched] is a scheduler behaving exactly like [sched] plus a
    function returning the decisions executed so far (oldest first).  The
    log is fed by the engine's [observe] notifications, so it records the
    {e actual} schedule even when further wrappers veto proposals. *)

val record :
  ?subject:Lepower_obs.Json.t ->
  ?seed:int ->
  ?max_steps:int ->
  sched:Sched.t ->
  Engine.config ->
  Engine.outcome * t
(** Run the configuration to completion under the scheduler (via
    {!Engine.run}) while logging every decision; returns the outcome and
    a certificate with an empty [message] (attach one with
    {!with_message}). *)

val of_decisions :
  ?subject:Lepower_obs.Json.t ->
  ?sched:string ->
  ?seed:int ->
  ?max_steps:int ->
  message:string ->
  Engine.config ->
  decision list ->
  t
(** Certify an explicit decision list (e.g. an explorer DFS path): the
    list is strictly replayed from the configuration to compute both
    digests.  @raise Invalid_argument if some decision is inapplicable —
    that means the decisions do not describe a run of this
    configuration. *)

(** {1 Replay} *)

type applied = {
  final : Engine.config;
  applied : decision list;  (** decisions actually executed, oldest first *)
  skipped : int;  (** inapplicable decisions dropped (lenient mode only) *)
}

val apply :
  ?strict:bool ->
  ?backend:Engine.backend ->
  Engine.config ->
  decision list ->
  (applied, string) result
(** Drive a configuration along a decision list.  [strict] (default
    [true]) fails on the first inapplicable decision — a
    [Step]/[Crash]/[Lose] of a pid that is not running, or a [Stick] of
    an unknown location — naming its index; with [~strict:false]
    inapplicable decisions are skipped and counted, which is what the
    shrinker's candidate evaluation uses.  [backend] (default
    [Persistent]) selects the executor; both run the same applicability
    logic and step semantics, so the outcome — including error
    strings — is identical. *)

val replay :
  ?backend:Engine.backend -> t -> Engine.config -> (Engine.config, string) result
(** [replay cert config] verifies [config]'s digest against
    [cert.initial], strictly applies the decisions, and verifies the
    resulting digest against [cert.final].  [Ok] returns the final
    configuration — the caller re-checks its predicate on it; [Error]
    names the first mismatch (a corrupted or mis-resolved certificate
    never replays silently).  Because the digest gates are bit-for-bit,
    a certificate recorded on either backend replays on either: the
    cross-backend test matrix relies on exactly this. *)

(** {1 Shrinking} *)

type shrink_stats = {
  attempts : int;  (** candidate replays performed *)
  original : int;  (** decision count before shrinking *)
  shrunk : int;  (** decision count after shrinking *)
}

val shrink :
  ?budget:int ->
  failing:(Engine.Config_view.t -> bool) ->
  config0:Engine.config ->
  t ->
  t * shrink_stats
(** Minimize the certificate's decision list while [failing] holds of a
    view of the replayed final configuration.  Three passes run to a fixpoint:
    adversary-removal (drop each [Crash]/[Lose]/[Stick] decision — so the
    surviving fault set is one the failure actually needs), pid-merge
    (drop {e all} decisions of one process), and chunk-removal ddmin down to
    granularity 1 — so the result is 1-minimal: removing any single
    decision no longer fails (up to the replay [budget], default 4000
    candidate replays).  Candidates replay leniently; the returned
    certificate is re-certified strictly from [config0], so it replays
    with {!replay} like any recorded one.  If the original certificate
    does not fail under [failing], it is returned unchanged.

    Observability: wrapped in a ["repro.shrink"] span; maintains
    [repro.replays] and [repro.shrink_attempts] counters. *)

(** {1 Serialization} *)

val to_json : t -> Lepower_obs.Json.t
val of_json : Lepower_obs.Json.t -> (t, string) result
val save : string -> t -> unit
val load : string -> (t, string) result
