type t = {
  name : string;
  choose : time:int -> enabled:int list -> int;
  observe : time:int -> pid:int -> unit;
}

let halt = -1
let no_observe ~time:_ ~pid:_ = ()
let make ?(observe = no_observe) ~name choose = { name; choose; observe }

let hd_exn = function
  | [] -> invalid_arg "Sched: empty enabled set"
  | pid :: _ -> pid

let round_robin () =
  (* The cursor is committed in [observe], not [choose]: under a wrapper
     that vetoes proposals (e.g. [crashing]) it tracks the schedule that
     actually ran instead of drifting on discarded choices. *)
  let last = ref (-1) in
  let choose ~time:_ ~enabled =
    match List.find_opt (fun pid -> pid > !last) enabled with
    | Some pid -> pid
    | None -> hd_exn enabled
  in
  let observe ~time:_ ~pid = last := pid in
  { name = "round-robin"; choose; observe }

let random ~seed =
  let state = Random.State.make [| seed |] in
  let choose ~time:_ ~enabled =
    List.nth enabled (Random.State.int state (List.length enabled))
  in
  make ~name:(Printf.sprintf "random(%d)" seed) choose

let fixed pids =
  let remaining = ref pids in
  let fallback = round_robin () in
  let rec choose ~time ~enabled =
    match !remaining with
    | [] -> fallback.choose ~time ~enabled
    | pid :: rest ->
      remaining := rest;
      if List.mem pid enabled then pid else choose ~time ~enabled
  in
  { name = "fixed"; choose; observe = fallback.observe }

let prioritize order =
  let choose ~time:_ ~enabled =
    match List.find_opt (fun pid -> List.mem pid enabled) order with
    | Some pid -> pid
    | None -> hd_exn enabled
  in
  make ~name:"prioritize" choose

let crashing ~crashed inner =
  let choose ~time ~enabled =
    match List.filter (fun pid -> not (List.mem pid crashed)) enabled with
    | [] -> halt
    | alive -> inner.choose ~time ~enabled:alive
  in
  let observe ~time ~pid = inner.observe ~time ~pid in
  { name = inner.name ^ "+crash"; choose; observe }
