type t = {
  name : string;
  choose : time:int -> enabled:int list -> int;
  observe : time:int -> pid:int -> unit;
}

let halt = -1
let no_observe ~time:_ ~pid:_ = ()
let make ?(observe = no_observe) ~name choose = { name; choose; observe }

let hd_exn = function
  | [] -> invalid_arg "Sched: empty enabled set"
  | pid :: _ -> pid

let round_robin () =
  (* The cursor is committed in [observe], not [choose]: under a wrapper
     that vetoes proposals (e.g. [crashing]) it tracks the schedule that
     actually ran instead of drifting on discarded choices. *)
  let last = ref (-1) in
  let choose ~time:_ ~enabled =
    match List.find_opt (fun pid -> pid > !last) enabled with
    | Some pid -> pid
    | None -> hd_exn enabled
  in
  let observe ~time:_ ~pid = last := pid in
  { name = "round-robin"; choose; observe }

let random ~seed =
  let state = Random.State.make [| seed |] in
  let choose ~time:_ ~enabled =
    List.nth enabled (Random.State.int state (List.length enabled))
  in
  make ~name:(Printf.sprintf "random(%d)" seed) choose

let fixed pids =
  let remaining = ref pids in
  let fallback = round_robin () in
  let rec choose ~time ~enabled =
    match !remaining with
    | [] -> fallback.choose ~time ~enabled
    | pid :: rest ->
      remaining := rest;
      if List.mem pid enabled then pid else choose ~time ~enabled
  in
  { name = "fixed"; choose; observe = fallback.observe }

let prioritize order =
  let choose ~time:_ ~enabled =
    match List.find_opt (fun pid -> List.mem pid enabled) order with
    | Some pid -> pid
    | None -> hd_exn enabled
  in
  make ~name:"prioritize" choose

let pct ~seed ?(depth = 3) ~max_steps () =
  (* Priorities are keyed on (seed, pid) rather than assigned on first
     sight: a wrapper that vetoes a [choose] proposal must not perturb
     the priority of a pid we merely looked at.  The step counter and
     demotions commit in [observe], i.e. against the actual schedule. *)
  let base = Hashtbl.create 8 in
  let base_priority pid =
    match Hashtbl.find_opt base pid with
    | Some p -> p
    | None ->
      let st = Random.State.make [| 0x50c7; seed; pid |] in
      let p = Random.State.int st 0x3fffffff in
      Hashtbl.add base pid p;
      p
  in
  let change_points = Hashtbl.create 8 in
  let () =
    let st = Random.State.make [| 0x9c7; seed |] in
    for level = 1 to max 0 (depth - 1) do
      let at = Random.State.int st (max 1 max_steps) in
      if not (Hashtbl.mem change_points at) then
        Hashtbl.add change_points at level
    done
  in
  let demoted = Hashtbl.create 8 in
  let steps = ref 0 in
  let priority pid =
    match Hashtbl.find_opt demoted pid with
    | Some level -> level - 0x40000000 (* below every base priority *)
    | None -> base_priority pid
  in
  let choose ~time:_ ~enabled =
    match enabled with
    | [] -> invalid_arg "Sched: empty enabled set"
    | pid :: rest ->
      List.fold_left
        (fun best p ->
          let bp = priority best and pp = priority p in
          if pp > bp || (pp = bp && p < best) then p else best)
        pid rest
  in
  let observe ~time:_ ~pid =
    (match Hashtbl.find_opt change_points !steps with
    | Some level -> Hashtbl.replace demoted pid level
    | None -> ());
    incr steps
  in
  { name = Printf.sprintf "pct(seed=%d,d=%d)" seed depth; choose; observe }

let starve ~victim ~stall inner =
  let remaining = ref stall in
  let choose ~time ~enabled =
    if !remaining <= 0 then inner.choose ~time ~enabled
    else
      match List.filter (fun pid -> pid <> victim) enabled with
      | [] -> victim (* sole survivor: stalling further would stall the run *)
      | others -> inner.choose ~time ~enabled:others
  in
  let observe ~time ~pid =
    if !remaining > 0 then decr remaining;
    inner.observe ~time ~pid
  in
  { name = Printf.sprintf "%s+starve(%d,%d)" inner.name victim stall;
    choose; observe }

let crashing ~crashed inner =
  let choose ~time ~enabled =
    match List.filter (fun pid -> not (List.mem pid crashed)) enabled with
    | [] -> halt
    | alive -> inner.choose ~time ~enabled:alive
  in
  let observe ~time ~pid = inner.observe ~time ~pid in
  { name = inner.name ^ "+crash"; choose; observe }
