(** Exhaustive interleaving exploration.

    Depth-first enumeration of {e every} schedule of a configuration, up to
    a step bound.  Because configurations are immutable values, branching
    is cheap.  This is the strongest correctness evidence we can produce
    for agreement properties on small instances: a property checked by
    [explore] holds under all adversaries, not just sampled ones.

    Optionally explores crash steps too ([crash_faults]), modelling the
    wait-free (n-1)-resilient adversary. *)

type stats = {
  terminals : int;  (** complete executions enumerated *)
  truncated : int;  (** executions cut off by the step bound *)
  max_depth : int;
  choice_points : int;
      (** configurations where the adversary had more than one move
          (≥ 2 enabled processes, or any enabled process when
          [crash_faults] adds the step/crash alternative) *)
  configs_visited : int;
      (** total configurations visited by the depth-first walk, interior
          and terminal — the size of the explored schedule tree *)
}

val explore :
  ?max_steps:int ->
  ?crash_faults:bool ->
  ?analyze:(Engine.config -> unit) ->
  ?on_terminal:(Engine.config -> unit) ->
  ?on_truncated:(Engine.config -> unit) ->
  Engine.config ->
  stats
(** [max_steps] bounds each execution's length (default 10_000 — effectively
    unbounded for wait-free protocols on small instances).  When
    [crash_faults] is true (default false), at every choice point each
    running process may also crash, multiplying the schedule space.

    [analyze] is the analysis hook: it runs on every {e terminal}
    configuration, before [on_terminal].  It exists so whole-space
    checkers layered on top of this module ([check_all], the protocol
    harnesses) can still feed each complete trace to an external analysis
    pass — e.g. [Lepower_check]'s trace discipline and bounded-value
    lints — without claiming the [on_terminal] callback for themselves.

    Observability: wrapped in an ["explore.explore"]
    {!Lepower_obs.Span}; maintains the [explore.*] counters
    (configs_visited, choice_points, terminals, truncated) when
    {!Lepower_obs.Metrics} is enabled. *)

(** {1 Ready-made whole-space checks} *)

type violation = {
  trace : Trace.t;
  message : string;
}

val check_all :
  ?max_steps:int ->
  ?crash_faults:bool ->
  ?analyze:(Engine.config -> unit) ->
  Engine.config ->
  (Engine.config -> (unit, string) result) ->
  (stats, violation) result
(** Run the predicate on every terminal configuration; stop at the first
    violation and report its schedule.  A truncated execution is itself a
    violation (non-termination under some schedule); its [message] names
    the truncation depth and the truncated trace's last event.  [analyze]
    is passed through to {!explore}. *)

val decision_sets :
  ?max_steps:int -> Engine.config -> Memory.Value.t list list
(** All distinct decision multisets (sorted within a run, deduplicated
    across runs) reachable from the configuration.  Small instances only. *)
