(** Exhaustive interleaving exploration.

    Depth-first enumeration of {e every} schedule of a configuration, up to
    a step bound.  Because configurations are immutable values, branching
    is cheap.  This is the strongest correctness evidence we can produce
    for agreement properties on small instances: a property checked by
    [explore] holds under all adversaries, not just sampled ones.

    Optionally explores crash steps too ({!Options.t.crash_faults}),
    modelling the wait-free (n-1)-resilient adversary.

    All knobs live in one {!Options.t} record — build one with record
    update on {!Options.default}:
    {[
      Explore.explore
        ~options:{ Explore.Options.default with crash_faults = true }
        config
    ]}

    {2 Reductions (opt-in)}

    The naive walk revisits the same configuration through every
    commuting interleaving, which is what caps instance sizes.  Three
    opt-in throughput layers — all {b off by default}, so the default
    walk remains the exhaustive-schedule semantic reference the
    paper-facing claims are stated against:

    - [dedup = true] memoizes visited configurations under their
      {!Fingerprint} (store state + per-process status and operation
      history — {e not} the global trace order) and prunes revisits.
    - [por = true] enables sleep-set partial-order reduction over a sound
      independence relation: moves of distinct processes commute when
      they touch distinct locations, or both read the same location, or
      at least one touches no location (crashes, decide steps).
    - [domains = n] splits the top of the schedule tree over [n] OCaml 5
      domains, each running the sequential explorer; statistics merge
      deterministically (static work split, no cross-domain sharing).

    Every mode preserves: the set of reachable terminal configurations
    up to trace-order (hence [check_all] verdicts for trace-{e order}-
    insensitive predicates — predicates depending only on final store,
    statuses, decisions, or per-process trace projections), the
    existence of bound-exceeding executions, and {!decision_sets}
    exactly.  Reductions are {b not} sound for predicates that inspect
    the global interleaving order of the trace — {!check_all} {b fails
    loudly} ({!Unsound_predicate}) when a predicate does so under
    [dedup]/[por], using {!Engine.Config_view.order_accessed}.  With
    [domains = n > 1] the [on_terminal]/[on_truncated]/[analyze]
    callbacks run in worker domains, serialized by a mutex; terminal
    visit order is nondeterministic (the stats are not).

    {2 The checker API}

    Every checker-facing hook — {!Options.t.analyze},
    {!Options.t.on_terminal}, {!Options.t.on_truncated}, and the
    {!check_all} predicate — takes an {!Engine.Config_view.t}: a
    backend-neutral read-only view served zero-copy from the arena
    machine's flat arrays (or trivially from a persistent
    configuration).  Predicates that stick to the view's O(1)/O(procs)
    accessors cost nothing per terminal on the arena backend; calling
    {!Engine.Config_view.config} materializes the old full
    configuration as a slow fallback.  (The pre-view
    [Engine.config]-taking entry points survived one release as
    deprecated [*_legacy] shims and have been removed.) *)

type stats = {
  terminals : int;  (** complete executions enumerated *)
  truncated : int;  (** executions cut off by the step bound *)
  max_depth : int;
  choice_points : int;
      (** configurations where the adversary had more than one move
          (≥ 2 enabled processes, or any enabled process when
          [crash_faults] adds the step/crash alternative) *)
  configs_visited : int;
      (** total configurations visited by the depth-first walk, interior
          and terminal — the size of the explored schedule tree *)
  configs_deduped : int;
      (** revisits pruned by [dedup] memoization (0 unless enabled) *)
  por_pruned : int;
      (** sibling moves skipped by [por] sleep sets (0 unless enabled) *)
  por_checks : int;
      (** independence queries the [por] sleep-set filter made (0 unless
          enabled) *)
  por_fast_hits : int;
      (** queries answered by the summary-seeded commutation matrix alone
          — no per-move decoding (0 unless {!Options.t.footprints} given) *)
  domains_used : int;  (** worker domains that actually ran (1 if serial) *)
}

exception Stop_exploration

(** Live progress for long campaigns, delivered to
    {!Options.t.progress}: the running totals, globally merged under
    [domains].  Parallel readers may see momentarily lagging counts; the
    final {!stats} never do. *)
type progress = {
  p_configs : int;
  p_terminals : int;
  p_truncated : int;
  p_deduped : int;
  p_pruned : int;
  p_max_depth : int;
  p_domains : int;
}

(** The exploration configuration, consolidated — the {e only} way to
    configure this module.  Prefer [{ Options.default with ... }] over
    spelling out all fields. *)
module Options : sig
  type t = {
    max_steps : int;
        (** bound on each execution's length (default 10_000 —
            effectively unbounded for wait-free protocols on small
            instances) *)
    crash_faults : bool;
        (** when [true] (default [false]), at every choice point each
            running process may also crash, multiplying the schedule
            space *)
    dedup : bool;  (** fingerprint memoization (default [false]) *)
    por : bool;  (** sleep-set partial-order reduction (default [false]) *)
    domains : int;  (** worker domains (default [1] = sequential) *)
    backend : Engine.backend;
        (** which executor runs the DFS (default [Persistent]).
            [Arena] lowers each DFS root into an {!Engine.Machine} —
            compiled programs, mutable store, O(1) snapshot/undo on
            backtrack, incremental fingerprint sums — and is
            substantially faster; verdicts, statistics, decision sets
            and reported witness paths are identical.  With [dedup]
            and/or [por] the walk is journal-free between choice
            points: per-move undo lives in stack frames
            ({!Engine.Machine.step_frame}), sleep sets are int bitsets,
            and the dedup key is maintained incrementally from each
            step's store delta, so no full configuration is ever
            materialized on the hot path (see DESIGN.md §7 for the
            contract).  A program whose compiled form outgrows its node
            budget transparently falls back to closure interpretation
            (see {!Program.Compiled}/[on_lowering]); the frontier split
            under [domains] stays persistent either way (it is shallow
            and exact). *)
    verify_backend : bool;
        (** debug flag (default [false], [Arena] only): shadow every
            machine step with the persistent reference and [failwith] on
            the first divergence ({!Engine.config_equal} after every
            move).  Orders of magnitude slower; for test suites and
            bug hunts, not for campaigns. *)
    footprints : (string list * string list) array;
        (** per-pid static (may-read, may-write) location lists, indexed
            by pid — seeds a pairwise commutation matrix giving [por] a
            fast path: processes whose footprints never conflict (no
            may-write meets the other's footprint) commute at every
            configuration, so their independence queries skip the
            per-move program decoding.  {b Soundness requirement}: each
            entry must {e over}-approximate every location that process
            can ever touch / mutate (e.g. {!Lepower_static.Summary}'s
            [footprints] of a [complete] analysis); the matrix is used as
            a sufficient condition only, so a [false] entry merely falls
            back to the exact check.  [[||]] (the default) disables the
            fast path; verdicts, decision sets, and pruning decisions are
            identical either way. *)
    analyze : (Engine.Config_view.t -> unit) option;
        (** analysis hook: runs on every {e terminal} view, before
            [on_terminal] (the two hooks share one view per terminal).
            It exists so whole-space checkers layered on top of this
            module ([check_all], the protocol harnesses) can still feed
            each complete trace to an external analysis pass — e.g.
            [Lepower_check]'s trace discipline and bounded-value lints —
            without claiming the [on_terminal] callback for themselves.
            With [dedup]/[por] only a representative interleaving per
            equivalence class reaches the hook. *)
    on_terminal : (Engine.Config_view.t -> unit) option;
        (** runs on every terminal view.  The view borrows the
            executing machine's live state: read what you need inside
            the callback; do not retain the view. *)
    on_truncated : (Engine.Config_view.t -> unit) option;
    on_lowering : (Program.Compiled.report array -> unit) option;
        (** [Arena] only: called once per DFS item (once total when
            [domains <= 1]) with the per-pid lowering reports of that
            item's machine — how many instructions were interned,
            edge-table hit/miss counts, and whether the process bailed
            to the closure fallback.  Serialized by a mutex under
            [domains].  The CLI's [--backend arena] aggregates these
            into its lowering summary (default [None]). *)
    progress : (progress -> unit) option;
        (** called every 8192 configurations (per worker domain, merged
            globally and serialized by a mutex under [domains]) with the
            running totals — drive heartbeats from here (default
            [None]). *)
  }

  val default : t
  (** [{max_steps = 10_000; crash_faults = false; dedup = false;
      por = false; domains = 1; backend = Persistent;
      verify_backend = false; footprints = [||]; analyze = None;
      on_terminal = None; on_truncated = None; on_lowering = None;
      progress = None}] — the naive exhaustive walk, exactly. *)
end

val explore : ?options:Options.t -> Engine.config -> stats
(** Walk every schedule under the given {!Options.t} (default
    {!Options.default}).

    Observability: wrapped in an ["explore.explore"]
    {!Lepower_obs.Span}; maintains the [explore.*] counters
    (configs_visited, choice_points, terminals, truncated,
    configs_deduped, por_pruned) when {!Lepower_obs.Metrics} is enabled —
    updated once from the merged totals, so they are deterministic and
    race-free under [domains]. *)

(** {1 Ready-made whole-space checks} *)

(** A failed check: the witness schedule, what went wrong, and the exact
    adversary decisions from the initial configuration to the witness —
    ready to certify with {!Repro.of_decisions} and replay anywhere.
    Even under [dedup]/[por]/[domains] the decisions are a genuine
    root-to-leaf path of the search (pruned revisits never report). *)
type violation = {
  trace : Trace.t;
  message : string;
  decisions : Repro.decision list;
}

exception Unsound_predicate of string
(** Raised by {!check_all} when the predicate (or the shared [analyze]
    hook) read the global trace order ({!Engine.Config_view.trace},
    [last_event] or [config]) on a {e satisfying} terminal while
    [dedup] or [por] was enabled — the reductions prune interleavings
    that only differ in that order, so the verdict would be unsound.
    Violations are exempt: their witness schedule genuinely executed. *)

val check_all :
  ?options:Options.t ->
  Engine.config ->
  (Engine.Config_view.t -> (unit, string) result) ->
  (stats, violation) result
(** Run the predicate on every terminal view; stop at the first
    violation and report its schedule.  A truncated execution is itself a
    violation (non-termination under some schedule); its [message] names
    the truncation depth and the truncated trace's last event.
    [options.analyze] is honored (it shares the predicate's view);
    [options.on_terminal] and [options.on_truncated] are {b ignored} —
    [check_all] claims both hooks for the predicate and truncation
    reporting.

    On the arena backend the view reads the machine's live flat arrays:
    a predicate built from the O(1)/O(procs) accessors adds no
    per-terminal materialization cost (E17's checked rows measure
    this).  {!Engine.Config_view.config} is available as the slow
    fallback and counts as an order access.

    [dedup]/[por]/[domains] may be requested {b only} for predicates
    insensitive to the global trace order (see {!explore}) — enforced
    at runtime via {!Unsound_predicate}; the Ok/Error verdict is then
    identical to the naive walk's, though the particular witness
    schedule reported may be a different member of the same commutation
    class.

    Under [domains = n > 1] the predicate runs {b concurrently} in the
    worker domains (it must be — and, being a function of a read-only
    view, naturally is — pure); serializing it would serialize the
    whole search.  [analyze] and violation recording remain
    mutex-protected. *)

val decision_sets :
  ?options:Options.t -> Engine.config -> Memory.Value.t list list
(** All distinct decision multisets (sorted within a run, deduplicated
    across runs, output sorted) reachable from the configuration.  Small
    instances only.  Decision multisets are trace-order-insensitive, so
    the reductions are always sound here and the output is byte-identical
    across all modes.  [options.on_terminal] (if any) still runs after
    the internal recording; other callbacks pass through unchanged. *)

