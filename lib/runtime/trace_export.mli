(** Serialize execution traces ({!Trace.t}) to JSONL and Chrome trace
    format.

    {b Ordering contract}: every function here consumes a {!Trace.t} in
    the {e oldest-first} (chronological) order produced by
    {!Engine.trace}.  Do {b not} feed the raw [Engine.config.trace]
    field — that accumulator is newest-first, and serializing it
    directly would emit a time-reversed trace.

    In Chrome trace output, shared-memory operations are placed in
    process lane [pid = 1] ("logical time": [ts] is the global step
    number, one microsecond per step, [dur = 1]) with one thread lane
    [tid] per process.  Wall-clock {!Lepower_obs.Span} events live in
    lane [pid = 0].  The two clocks are unrelated; the lanes keep them
    visually separate in [chrome://tracing]. *)

val chrome_event : Trace.event -> Lepower_obs.Json.t
(** One complete ("X") trace event in lane [pid = 1]. *)

val jsonl_event : Trace.event -> Lepower_obs.Json.t
(** JSONL form: [{"type":"op","time":...,"pid":...,"loc":...,
    "op":...,"result":...}].  [op] and [result] use
    {!Memory.Value.to_string} notation. *)

val jsonl : Trace.t -> Lepower_obs.Json.t list
(** One document per event, chronological. *)

val chrome :
  ?spans:Lepower_obs.Span.completed list -> Trace.t -> Lepower_obs.Json.t
(** A full Chrome trace document combining the execution's
    shared-memory operations with any collected spans. *)

val write_chrome :
  ?spans:Lepower_obs.Span.completed list -> string -> Trace.t -> unit

val write_jsonl : string -> Trace.t -> unit
