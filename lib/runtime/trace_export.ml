module Json = Lepower_obs.Json
module Value = Memory.Value

let chrome_event (e : Trace.event) =
  Json.Obj
    [
      ("name", Json.String e.Trace.loc);
      ("cat", Json.String "op");
      ("ph", Json.String "X");
      ("ts", Json.Float (Float.of_int e.Trace.time));
      ("dur", Json.Float 1.);
      ("pid", Json.Int 1);
      ("tid", Json.Int e.Trace.pid);
      ( "args",
        Json.Obj
          [
            ("op", Json.String (Value.to_string e.Trace.op));
            ("result", Json.String (Value.to_string e.Trace.result));
            ("time", Json.Int e.Trace.time);
          ] );
    ]

let jsonl_event (e : Trace.event) =
  Json.Obj
    [
      ("type", Json.String "op");
      ("time", Json.Int e.Trace.time);
      ("pid", Json.Int e.Trace.pid);
      ("loc", Json.String e.Trace.loc);
      ("op", Json.String (Value.to_string e.Trace.op));
      ("result", Json.String (Value.to_string e.Trace.result));
    ]

let jsonl t = List.map jsonl_event t

let chrome ?(spans = []) t =
  Lepower_obs.Export.chrome_of_events
    (List.map chrome_event t
    @ List.map Lepower_obs.Export.span_to_chrome spans)

let write_chrome ?spans path t =
  Lepower_obs.Export.write_json path (chrome ?spans t)

let write_jsonl path t = Lepower_obs.Export.write_jsonl path (jsonl t)
