(** The fault plane: adversary moves between the engine and the store.

    Three fault primitives sit between {!Engine} and [Memory.Store]:

    - {b fail-stop crash} mid-iteration ({!Engine.crash});
    - {b lost write}: a process takes its step but the store keeps its
      pre-step states ({!Engine.step_lost});
    - {b stuck-at register}: an object is frozen at its current state;
      operations still compute responses, nothing changes
      ([Memory.Store.freeze]).

    Every injected fault is a first-class {!Repro.decision}
    ([Crash]/[Lose]/[Stick]) in the same stream as the scheduling
    choices, so a certificate recorded by a faulty run replays bit for
    bit with the faults re-injected at the same points — {!Repro.apply}
    executes fault decisions itself.  The fourth adversary weapon of the
    issue, stall injection, needs no store hook: it is pure schedule
    shaping and lives in {!Sched.starve}.

    [Fuzz] owns the campaign loop; this module owns the per-decision
    policy ({!decide}) and execution ({!apply}). *)

(** Injection rates and budgets.  Probabilities are per adversary
    decision point: at each point one roll in [\[0, 1)] selects crash
    ([\[0, crash_p)]), stuck-at ([\[crash_p, crash_p + stick_p)]), lost
    write (the next [lose_p]-wide band) or a normal step (the rest).  A
    band whose budget is exhausted — [max_crashes] crashes,
    [max_faults] lost writes + stuck-ats — falls through to a normal
    step, as does a crash that would kill the last live process. *)
type plan = {
  crash_p : float;
  lose_p : float;
  stick_p : float;
  max_crashes : int;  (** at most this many fail-stops per run *)
  max_faults : int;  (** at most this many lost writes + stuck-ats per run *)
}

val default : plan
(** Mild chaos: 2% crash, 5% lost write, 1% stuck-at per decision point;
    one crash, eight register faults per run. *)

val none : plan
(** All rates and budgets zero: every decision is a normal step. *)

val decide :
  plan:plan ->
  rng:Random.State.t ->
  crashes:int ->
  faults:int ->
  sched:Sched.t ->
  time:int ->
  enabled:int list ->
  locs:string list ->
  Repro.decision option
(** One adversary decision, deterministic in [rng].  [crashes]/[faults]
    are the injection counts so far (budget enforcement); [locs] is the
    store's location list, fixed for the whole run (faults never add or
    remove objects), so the policy is backend-agnostic and callers
    compute it once.  The scheduler is consulted only when the decision
    schedules a process (step or lost write), so its internal state
    advances exactly with the executed schedule; [None] means the
    scheduler returned {!Sched.halt}.  The caller must notify
    [sched.observe] for [Step]/[Lose] decisions it executes, exactly as
    {!Engine.run} would. *)

val apply : Engine.config -> Repro.decision -> Engine.config
(** Execute one decision (the same semantics {!Repro.apply} uses),
    bumping the [faults.injected] counter for the fault decisions. *)

val apply_machine : Engine.Machine.t -> Repro.decision -> unit
(** {!apply} on the arena-backed machine: same semantics, same counter.
    [Stick] uses {!Engine.Machine.freeze}, which is safe here because
    fault-driven executions never backtrack. *)

val is_fault : Repro.decision -> bool
(** [true] for [Crash]/[Lose]/[Stick], [false] for [Step]. *)
