(** The execution engine: interleaves process steps under a scheduler.

    A {!config} is a complete instantaneous description of the system —
    shared memory plus every process's remaining program.  [step] advances
    one process by one atomic operation; [run] drives a whole execution. *)

type config = {
  store : Memory.Store.t;
  procs : Proc.t array;
  time : int;
  trace : Trace.event list;
      (** {b Reverse} chronological order — the event consed by the most
          recent [step] is at the head.  This is the raw accumulator;
          every consumer that wants the linearization order (pretty
          printers, {!Trace_export}'s JSONL/Chrome writers, checkers)
          must go through {!trace}, which reverses it. *)
}

(** Which implementation executes steps.  [Persistent] is the reference:
    pure functions over {!config}.  [Arena] is the hot path: a
    {!Machine} over a mutable {!Memory.Store.Arena} with compiled
    programs and an undo journal.  The two are step-for-step
    equivalent; [Explore]/[Fuzz]/[Repro] take a backend option and
    guarantee identical verdicts, decision sets, and replay digests. *)
type backend = Persistent | Arena

val backend_name : backend -> string
(** ["persistent"] / ["arena"] (the CLI flag spelling). *)

val init : Memory.Store.t -> Program.prim list -> config
(** Processes get pids [0 .. n-1] in list order. *)

val enabled : config -> int list
(** Pids that are still [Running]. *)

val step : config -> int -> config
(** Advance process [pid] by one shared-memory operation.  A process whose
    operation is rejected by the store, or whose continuation raises,
    becomes [Faulty].  Stepping a non-running process is a no-op. *)

val crash : config -> int -> config
(** Fail-stop a process (adversary move). *)

val step_lost : config -> int -> config
(** Lost-write fault (adversary move): like {!step}, except the store
    keeps its pre-step states.  The process observes the response its
    operation would have produced against the pre-state — consistent,
    since a read linearized just before the lost write sees exactly that
    state — advances its continuation, and cannot tell its effect
    evaporated.  The trace event is recorded as usual.  The other
    register-fault primitive, stuck-at, lives in
    {!Memory.Store.freeze}; both are driven by [Faults]. *)

val trace : config -> Trace.t
(** The linearization order, {b oldest first} (chronological) — the
    reverse of the [trace] field's accumulation order.  This is the
    order {!Trace_export} serializes. *)

(** Result of a completed run. *)
type outcome = {
  final : config;
  decisions : (int * Memory.Value.t) list;  (** pid, decision; pid order *)
  faults : (int * string) list;
  crashes : int list;
  steps : int;  (** total shared-memory operations performed *)
  hit_step_limit : bool;
}

val run : ?max_steps:int -> sched:Sched.t -> config -> outcome
(** Drive the configuration until no process is running, the scheduler
    returns {!Sched.halt} (or any non-enabled pid — treated as halt), or
    [max_steps] (default 1_000_000) operations have been performed.
    Hitting the limit with live processes sets [hit_step_limit] — for a
    wait-free protocol under a fair scheduler this indicates a bug and
    tests treat it as failure.  After each executed step the scheduler's
    [observe] hook is notified with the pid that moved, which is what
    {!Repro.recording} uses to capture schedule certificates.

    Observability: the whole run is wrapped in a ["engine.run"]
    {!Lepower_obs.Span}, and [step] maintains the [engine.*] counters
    (steps, store ops, cas successes/failures, faults) plus the
    [engine.steps_per_proc] histogram — all no-ops unless
    {!Lepower_obs.Metrics.enable} / {!Lepower_obs.Span.enable} ran. *)

val distinct_decisions : outcome -> Memory.Value.t list
(** Deduplicated decision values, in first-decided order. *)

val max_steps_per_proc : outcome -> int
(** Maximum number of operations any single process performed: the
    empirical wait-freedom bound of the run. *)

val config_equal : config -> config -> bool
(** Structural equality of everything a backend can disagree on: store
    states (specs assumed equal), per-process status and step counts,
    the clock, and the full trace with [time]/[pid] stamps.  Process
    programs — closures — are {e not} compared; by program determinism
    equal traces imply equal continuations.  Used by the explorer's
    [verify_backend] lockstep mode and the cross-backend tests. *)

(** The mutable execution machine: the [Arena] backend.

    A machine is a {!config} lowered for speed — the store becomes a
    {!Memory.Store.Arena}, each process's program a
    {!Program.Compiled.t}, statuses and step counts flat arrays — plus
    an undo journal so a depth-first explorer can {!mark}, take steps,
    and {!undo_to} in O(1) amortized per step instead of keeping
    persistent copies.

    Step semantics are {e identical} to the persistent {!step}: the
    same store errors, type-error messages, status transitions, trace
    events, and metric counters, in the same order.  Materializing with
    {!config} after any step sequence yields a configuration
    [config_equal] to the one the persistent engine reaches through the
    same moves.

    Not thread-safe; one machine per domain. *)
module Machine : sig
  type t

  val of_config : ?max_nodes:int -> config -> t
  (** Lower a configuration.  [max_nodes] caps each process's compiled
      instruction graph (default {!Program.Compiled.default_max_nodes});
      processes that outgrow it transparently continue on the closure
      interpreter ({!reports} says which). *)

  val n_procs : t -> int
  val time : t -> int
  val status : t -> int -> Proc.status
  val is_running : t -> int -> bool

  val enabled : t -> int list
  (** Pids still [Running], ascending — same as the persistent
      {!Engine.enabled}. *)

  val mem_loc : t -> string -> bool
  val state_bindings : t -> (string * Memory.Value.t) list

  val step : t -> int -> unit
  (** Advance process [pid] by one operation, journaling enough to undo.
      Same semantics as the persistent {!Engine.step}. *)

  val crash : t -> int -> unit
  val step_lost : t -> int -> unit

  val freeze : t -> string -> unit
  (** Stuck-at fault.  Journaled in the {e arena} but not as a machine
      step, so only replay/fuzz (which never backtrack) may use it;
      a machine {!undo_to} across a freeze would not restore it. *)

  val mark : t -> int
  (** O(1) snapshot token: the machine journal position. *)

  val undo_to : t -> int -> unit
  (** Rewind to a {!mark}: statuses, pcs, step counts, clock, trace and
      store all return to their state at the mark. *)

  type walk_stats = {
    mutable w_configs : int;
    mutable w_terminals : int;
    mutable w_truncated : int;
    mutable w_max_depth : int;
    mutable w_choice_points : int;
  }

  val walk_naive :
    ?tick:(walk_stats -> unit) ->
    crash_faults:bool ->
    max_steps:int ->
    depth0:int ->
    walk_stats ->
    t ->
    unit
  (** Exhaustive naive enumeration (every interleaving; with
      [crash_faults], every crash placement), counting into
      [walk_stats] — the machine's raw hot path.  Because the caller
      observes no configurations, each move's undo data lives in the
      DFS stack frame: memoized transitions bypass the journal entirely
      and the walk allocates nothing once the per-instruction
      transition memos are warm.  Traversal order and counter semantics
      match the {!Explore} naive DFS; [tick] fires every 8192nd
      configuration counted from [w_configs]'s initial value.  Steps
      are not phase-attributed; metrics counters are fed as usual.
      The machine is back in its pre-walk state on return. *)

  val access : t -> int -> (string * bool) option
  (** [(loc, is_read)] of the operation process [pid] is about to
      perform; [None] if its program is done.  Status-independent, like
      the explorer's persistent move-access probe; [is_read] is the
      literal [:read] check the POR independence relation uses. *)

  (** {2 Last-step delta}

      After a {!step} that performed a store operation, these expose
      its single-binding effect without allocation, so the explorer
      maintains incremental {!Fingerprint} sums.  Valid only until the
      next step or undo ({!last_step_event} says whether they are). *)

  val last_step_event : t -> bool
  (** Whether the most recent {!step} performed a store operation (false
      after a decide step, a store-rejected fault, or an undo). *)

  val last_loc : t -> string
  val last_op : t -> Memory.Value.t
  val last_result : t -> Memory.Value.t

  val last_old_state : t -> Memory.Value.t
  (** State of [last_loc]'s object before the operation. *)

  val last_new_state : t -> Memory.Value.t
  (** Its state now.  After {!step_lost} this equals {!last_old_state}
      (the write evaporated), which keeps incremental store sums
      correct with no special case. *)

  val config : t -> config
  (** Materialize the current state as a persistent configuration
      (store, procs with [prim] programs, clock, full reverse-chron
      trace).  O(locs + procs + events since [of_config]). *)

  val run : ?max_steps:int -> sched:Sched.t -> t -> outcome
  (** Drive the machine like the persistent {!Engine.run} — same
      scheduler protocol, halt rules, span, and metrics — returning the
      same outcome the persistent engine would. *)

  val reports : t -> Program.Compiled.report array
  (** Per-process lowering reports (indexed by pid). *)
end
