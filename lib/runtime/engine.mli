(** The execution engine: interleaves process steps under a scheduler.

    A {!config} is a complete instantaneous description of the system —
    shared memory plus every process's remaining program.  [step] advances
    one process by one atomic operation; [run] drives a whole execution. *)

type config = {
  store : Memory.Store.t;
  procs : Proc.t array;
  time : int;
  trace : Trace.event list;
      (** {b Reverse} chronological order — the event consed by the most
          recent [step] is at the head.  This is the raw accumulator;
          every consumer that wants the linearization order (pretty
          printers, {!Trace_export}'s JSONL/Chrome writers, checkers)
          must go through {!trace}, which reverses it. *)
}

val init : Memory.Store.t -> Program.prim list -> config
(** Processes get pids [0 .. n-1] in list order. *)

val enabled : config -> int list
(** Pids that are still [Running]. *)

val step : config -> int -> config
(** Advance process [pid] by one shared-memory operation.  A process whose
    operation is rejected by the store, or whose continuation raises,
    becomes [Faulty].  Stepping a non-running process is a no-op. *)

val crash : config -> int -> config
(** Fail-stop a process (adversary move). *)

val step_lost : config -> int -> config
(** Lost-write fault (adversary move): like {!step}, except the store
    keeps its pre-step states.  The process observes the response its
    operation would have produced against the pre-state — consistent,
    since a read linearized just before the lost write sees exactly that
    state — advances its continuation, and cannot tell its effect
    evaporated.  The trace event is recorded as usual.  The other
    register-fault primitive, stuck-at, lives in
    {!Memory.Store.freeze}; both are driven by [Faults]. *)

val trace : config -> Trace.t
(** The linearization order, {b oldest first} (chronological) — the
    reverse of the [trace] field's accumulation order.  This is the
    order {!Trace_export} serializes. *)

(** Result of a completed run. *)
type outcome = {
  final : config;
  decisions : (int * Memory.Value.t) list;  (** pid, decision; pid order *)
  faults : (int * string) list;
  crashes : int list;
  steps : int;  (** total shared-memory operations performed *)
  hit_step_limit : bool;
}

val run : ?max_steps:int -> sched:Sched.t -> config -> outcome
(** Drive the configuration until no process is running, the scheduler
    returns {!Sched.halt} (or any non-enabled pid — treated as halt), or
    [max_steps] (default 1_000_000) operations have been performed.
    Hitting the limit with live processes sets [hit_step_limit] — for a
    wait-free protocol under a fair scheduler this indicates a bug and
    tests treat it as failure.  After each executed step the scheduler's
    [observe] hook is notified with the pid that moved, which is what
    {!Repro.recording} uses to capture schedule certificates.

    Observability: the whole run is wrapped in a ["engine.run"]
    {!Lepower_obs.Span}, and [step] maintains the [engine.*] counters
    (steps, store ops, cas successes/failures, faults) plus the
    [engine.steps_per_proc] histogram — all no-ops unless
    {!Lepower_obs.Metrics.enable} / {!Lepower_obs.Span.enable} ran. *)

val distinct_decisions : outcome -> Memory.Value.t list
(** Deduplicated decision values, in first-decided order. *)

val max_steps_per_proc : outcome -> int
(** Maximum number of operations any single process performed: the
    empirical wait-freedom bound of the run. *)
