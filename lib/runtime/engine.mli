(** The execution engine: interleaves process steps under a scheduler.

    A {!config} is a complete instantaneous description of the system —
    shared memory plus every process's remaining program.  [step] advances
    one process by one atomic operation; [run] drives a whole execution. *)

type config = {
  store : Memory.Store.t;
  procs : Proc.t array;
  time : int;
  trace : Trace.event list;
      (** {b Reverse} chronological order — the event consed by the most
          recent [step] is at the head.  This is the raw accumulator;
          every consumer that wants the linearization order (pretty
          printers, {!Trace_export}'s JSONL/Chrome writers, checkers)
          must go through {!trace}, which reverses it. *)
}

(** Which implementation executes steps.  [Persistent] is the reference:
    pure functions over {!config}.  [Arena] is the hot path: a
    {!Machine} over a mutable {!Memory.Store.Arena} with compiled
    programs and an undo journal.  The two are step-for-step
    equivalent; [Explore]/[Fuzz]/[Repro] take a backend option and
    guarantee identical verdicts, decision sets, and replay digests. *)
type backend = Persistent | Arena

val backend_name : backend -> string
(** ["persistent"] / ["arena"] (the CLI flag spelling). *)

val init : Memory.Store.t -> Program.prim list -> config
(** Processes get pids [0 .. n-1] in list order. *)

val enabled : config -> int list
(** Pids that are still [Running]. *)

val step : config -> int -> config
(** Advance process [pid] by one shared-memory operation.  A process whose
    operation is rejected by the store, or whose continuation raises,
    becomes [Faulty].  Stepping a non-running process is a no-op. *)

val crash : config -> int -> config
(** Fail-stop a process (adversary move). *)

val step_lost : config -> int -> config
(** Lost-write fault (adversary move): like {!step}, except the store
    keeps its pre-step states.  The process observes the response its
    operation would have produced against the pre-state — consistent,
    since a read linearized just before the lost write sees exactly that
    state — advances its continuation, and cannot tell its effect
    evaporated.  The trace event is recorded as usual.  The other
    register-fault primitive, stuck-at, lives in
    {!Memory.Store.freeze}; both are driven by [Faults]. *)

val trace : config -> Trace.t
(** The linearization order, {b oldest first} (chronological) — the
    reverse of the [trace] field's accumulation order.  This is the
    order {!Trace_export} serializes. *)

(** Result of a completed run. *)
type outcome = {
  final : config;
  decisions : (int * Memory.Value.t) list;  (** pid, decision; pid order *)
  faults : (int * string) list;
  crashes : int list;
  steps : int;  (** total shared-memory operations performed *)
  hit_step_limit : bool;
}

val run : ?max_steps:int -> sched:Sched.t -> config -> outcome
(** Drive the configuration until no process is running, the scheduler
    returns {!Sched.halt} (or any non-enabled pid — treated as halt), or
    [max_steps] (default 1_000_000) operations have been performed.
    Hitting the limit with live processes sets [hit_step_limit] — for a
    wait-free protocol under a fair scheduler this indicates a bug and
    tests treat it as failure.  After each executed step the scheduler's
    [observe] hook is notified with the pid that moved, which is what
    {!Repro.recording} uses to capture schedule certificates.

    Observability: the whole run is wrapped in a ["engine.run"]
    {!Lepower_obs.Span}, and [step] maintains the [engine.*] counters
    (steps, store ops, cas successes/failures, faults) plus the
    [engine.steps_per_proc] histogram — all no-ops unless
    {!Lepower_obs.Metrics.enable} / {!Lepower_obs.Span.enable} ran. *)

val distinct_decisions : outcome -> Memory.Value.t list
(** Deduplicated decision values, in first-decided order. *)

val max_steps_per_proc : outcome -> int
(** Maximum number of operations any single process performed: the
    empirical wait-freedom bound of the run. *)

val config_equal : config -> config -> bool
(** Structural equality of everything a backend can disagree on: store
    states (specs assumed equal), per-process status and step counts,
    the clock, and the full trace with [time]/[pid] stamps.  Process
    programs — closures — are {e not} compared; by program determinism
    equal traces imply equal continuations.  Used by the explorer's
    [verify_backend] lockstep mode and the cross-backend tests. *)

(** The mutable execution machine: the [Arena] backend.

    A machine is a {!config} lowered for speed — the store becomes a
    {!Memory.Store.Arena}, each process's program a
    {!Program.Compiled.t}, statuses and step counts flat arrays — plus
    an undo journal so a depth-first explorer can {!mark}, take steps,
    and {!undo_to} in O(1) amortized per step instead of keeping
    persistent copies.

    Step semantics are {e identical} to the persistent {!step}: the
    same store errors, type-error messages, status transitions, trace
    events, and metric counters, in the same order.  Materializing with
    {!config} after any step sequence yields a configuration
    [config_equal] to the one the persistent engine reaches through the
    same moves.

    Not thread-safe; one machine per domain. *)
module Machine : sig
  type t

  val of_config : ?max_nodes:int -> config -> t
  (** Lower a configuration.  [max_nodes] caps each process's compiled
      instruction graph (default {!Program.Compiled.default_max_nodes});
      processes that outgrow it transparently continue on the closure
      interpreter ({!reports} says which). *)

  val n_procs : t -> int
  val time : t -> int
  val status : t -> int -> Proc.status
  val is_running : t -> int -> bool

  val enabled : t -> int list
  (** Pids still [Running], ascending — same as the persistent
      {!Engine.enabled}. *)

  val mem_loc : t -> string -> bool
  val state_bindings : t -> (string * Memory.Value.t) list

  val step : t -> int -> unit
  (** Advance process [pid] by one operation, journaling enough to undo.
      Same semantics as the persistent {!Engine.step}. *)

  val crash : t -> int -> unit
  val step_lost : t -> int -> unit

  val freeze : t -> string -> unit
  (** Stuck-at fault.  Journaled in the {e arena} but not as a machine
      step, so only replay/fuzz (which never backtrack) may use it;
      a machine {!undo_to} across a freeze would not restore it. *)

  val mark : t -> int
  (** O(1) snapshot token: the machine journal position. *)

  val undo_to : t -> int -> unit
  (** Rewind to a {!mark}: statuses, pcs, step counts, clock, trace and
      store all return to their state at the mark. *)

  type walk_stats = {
    mutable w_configs : int;
    mutable w_terminals : int;
    mutable w_truncated : int;
    mutable w_max_depth : int;
    mutable w_choice_points : int;
  }

  val walk_naive :
    ?tick:(walk_stats -> unit) ->
    crash_faults:bool ->
    max_steps:int ->
    depth0:int ->
    walk_stats ->
    t ->
    unit
  (** Exhaustive naive enumeration (every interleaving; with
      [crash_faults], every crash placement), counting into
      [walk_stats] — the machine's raw hot path.  Because the caller
      observes no configurations, each move's undo data lives in the
      DFS stack frame: memoized transitions bypass the journal entirely
      and the walk allocates nothing once the per-instruction
      transition memos are warm.  Traversal order and counter semantics
      match the {!Explore} naive DFS; [tick] fires every 8192nd
      configuration counted from [w_configs]'s initial value.  Steps
      are not phase-attributed; metrics counters are fed as usual.
      The machine is back in its pre-walk state on return. *)

  val walk_naive_checked :
    ?tick:(walk_stats -> unit) ->
    crash_faults:bool ->
    max_steps:int ->
    depth0:int ->
    path:int array ->
    on_terminal:(int -> unit) ->
    on_truncated:(int -> unit) ->
    walk_stats ->
    t ->
    unit
  (** {!walk_naive} with per-leaf hooks: the same traversal, counters
      and allocation-free memoized hot path, but every move is recorded
      into [path] — a step of process [p] as [p], a crash of [p] as
      [-p-1] — and [on_terminal] (resp. [on_truncated]) fires at each
      terminal (resp. step-bound-truncated) leaf with the number of
      moves currently recorded.  [path] must have at least
      [max_steps + n_procs + 1] slots: at most [max_steps] step moves
      plus one crash per process on any branch.  Because memoized
      transitions bypass the journal, the machine's journal does not
      cover the schedule at a leaf — hooks needing the trace must
      replay [path] from the walk's root configuration (which is what
      {!Config_view.of_machine_flat} arranges).  Hooks observe the
      machine live, mid-walk, and must not step or undo it. *)

  val access : t -> int -> (string * bool) option
  (** [(loc, is_read)] of the operation process [pid] is about to
      perform; [None] if its program is done.  Status-independent, like
      the explorer's persistent move-access probe; [is_read] is the
      literal [:read] check the POR independence relation uses. *)

  val access_enc : t -> int -> int
  (** {!access} as an int, allocation-free, for commutation checks in
      hot loops: [-1] if the program is done, [-2] if the pending
      access names a location the store does not intern (fall back to
      {!access} and compare names), else [2 * slot lor is_read] with
      [slot] the arena location id — equal slots iff equal location
      names. *)

  (** {2 Last-step delta}

      After a {!step} that performed a store operation, these expose
      its single-binding effect without allocation, so the explorer
      maintains incremental {!Fingerprint} sums.  Valid only until the
      next step or undo ({!last_step_event} says whether they are). *)

  val last_step_event : t -> bool
  (** Whether the most recent {!step} performed a store operation (false
      after a decide step, a store-rejected fault, or an undo). *)

  val last_loc : t -> string
  val last_op : t -> Memory.Value.t
  val last_result : t -> Memory.Value.t

  val last_old_state : t -> Memory.Value.t
  (** State of [last_loc]'s object before the operation. *)

  val last_new_state : t -> Memory.Value.t
  (** Its state now.  After {!step_lost} this equals {!last_old_state}
      (the write evaporated), which keeps incremental store sums
      correct with no special case. *)

  (** {2 Journal-free single-step frames}

      The building block of the reduced (dedup / sleep-set POR) arena
      walk: one move's undo data packaged in the caller's stack frame
      instead of the journal.  {!step_frame} takes the same memoized
      fast path as {!walk_naive} — direct array writes, no journal
      entry, no allocation — and records the exact inverse in the
      frame; a first visit or non-memoizable step falls back to the
      journaled step with the frame holding only the journal mark.
      The [frame_*] accessors expose the step's single-binding store
      delta uniformly across both paths, so callers can maintain
      incremental {!Fingerprint} sums without touching the machine's
      {!last_step_event} scratch.  Frames are reusable; undo them in
      strict LIFO order. *)

  type frame
  (** Mutable undo record for one step.  Reusable across moves at the
      same stack depth; contents are valid from a {!step_frame} until
      the matching {!undo_frame}. *)

  val frame : unit -> frame
  (** A fresh (blank) frame. *)

  val step_frame : t -> int -> frame -> unit
  (** [step_frame m pid f] steps [pid] exactly like {!step} (same
      memoization, same metrics, same fault semantics) but records the
      undo in [f]: memo hits bypass the journal entirely; slow-path
      steps are journaled and [f] keeps the mark.  [pid] must be
      running. *)

  val undo_frame : t -> frame -> unit
  (** Exact inverse of the matching {!step_frame}.  Frames must be
      undone in reverse order of their steps (LIFO). *)

  val frame_step_event : t -> frame -> bool
  (** Whether the frame's step performed a store operation (memo hits
      always do; a slow-path decide step or store-rejected fault does
      not).  The frame analogue of {!last_step_event}. *)

  val frame_loc : t -> frame -> string
  (** Location the frame's step operated on. *)

  val frame_loc_id : t -> frame -> int
  (** The same location as its interned arena slot id — lets callers
      index per-location precomputed data (e.g. fingerprint seeds)
      without re-interning the name. *)

  val frame_op : t -> frame -> Memory.Value.t
  (** The operation value. *)

  val frame_result : t -> frame -> Memory.Value.t
  (** The operation's response. *)

  val frame_old_state : t -> frame -> Memory.Value.t
  (** State of {!frame_loc}'s object before the operation. *)

  val frame_new_state : t -> frame -> Memory.Value.t
  (** Its state after the operation. *)

  val crash_frame : t -> int -> unit
  (** Unjournaled crash: flips the (running) process to crashed, for
      frame-based walks.  Pair with {!uncrash_frame} on backtrack. *)

  val uncrash_frame : t -> int -> unit
  (** Undo a {!crash_frame}: flips the process back to running. *)

  (** {2 Machine snapshots}

      The structural payload a visited-set entry stores to disambiguate
      hash collisions: store states in arena slot order plus per-process
      status, {e without} location names — within one exploration the
      arena layout is fixed, so slotwise value comparison makes exactly
      the distinctions {!Fingerprint.equal} makes on the sorted binding
      list.  Process histories are not included; they live in the
      explorer, which compares them alongside. *)

  type snapshot

  val snapshot : t -> snapshot
  (** Capture the current store states and process statuses.
      O(locs + procs), two small array copies — no journal walk, no
      binding-list or [config] materialization. *)

  val snapshot_equal : t -> snapshot -> bool
  (** Compare a stored snapshot against the {e live} machine — the
      machine side materializes nothing, so a visited-set probe that
      hits allocates nothing.  Only meaningful between a snapshot and a
      machine of the same exploration (same arena layout and process
      count); mismatched shapes compare unequal. *)

  val config : t -> config
  (** Materialize the current state as a persistent configuration
      (store, procs with [prim] programs, clock, full reverse-chron
      trace).  O(locs + procs + events since [of_config]). *)

  val run : ?max_steps:int -> sched:Sched.t -> t -> outcome
  (** Drive the machine like the persistent {!Engine.run} — same
      scheduler protocol, halt rules, span, and metrics — returning the
      same outcome the persistent engine would. *)

  val reports : t -> Program.Compiled.report array
  (** Per-process lowering reports (indexed by pid). *)
end

(** Backend-neutral read-only view of a terminal (or intermediate)
    configuration — the one type every checker-facing hook takes.

    A view over a persistent {!config} just reads the record.  A view
    over an arena {!Machine} serves every accessor below straight from
    the machine's flat arrays and arena store — {b no} journal walk, no
    store rebuild — except the explicitly materializing ones
    ({!Config_view.trace}, {!Config_view.last_event},
    {!Config_view.config}), which are the slow fallback.

    Cost contract (arena-backed view; persistent is O(1)/O(procs)
    throughout):
    - O(1): {!Config_view.n_procs}, {!Config_view.time},
      {!Config_view.status}, {!Config_view.is_running},
      {!Config_view.steps}, {!Config_view.stepped},
      {!Config_view.decision}, {!Config_view.store_state},
      {!Config_view.mem_loc}.
    - O(procs): {!Config_view.has_running}, {!Config_view.decisions},
      {!Config_view.decision_values}, {!Config_view.distinct_decisions},
      {!Config_view.faults}, {!Config_view.over_step_bound},
      {!Config_view.max_steps_per_proc}.
    - O(locs): {!Config_view.state_bindings}.
    - O(events): {!Config_view.trace_length}, {!Config_view.events_of}.
    - Materializing (O(events + locs + procs), allocates):
      {!Config_view.trace}, {!Config_view.last_event},
      {!Config_view.config} — cached after the first call.

    Order tracking: {!Config_view.trace}, {!Config_view.last_event} and
    {!Config_view.config} expose the global interleaving order and mark
    the view ({!Config_view.order_accessed}).  {!Explore.check_all}
    uses that mark to fail loudly when an order-inspecting predicate
    runs under [dedup]/[por], where only order-insensitive predicates
    are sound.  {!Config_view.events_of} (a single pid's projection)
    and {!Config_view.trace_length} are order-insensitive and do not
    mark the view.

    A view borrows its backing state: an arena-backed view is valid
    only until the machine's next [step]/[undo_to].  Explorer hooks
    receive a fresh view per terminal and must not retain it. *)
module Config_view : sig
  type t

  val of_config : config -> t
  (** Trivial persistent view ({!Config_view.config} returns the
      argument itself). *)

  val of_machine : Machine.t -> t
  (** Zero-copy arena view.  Borrow: valid until the machine moves. *)

  val of_machine_flat : Machine.t -> replay:(unit -> config) -> t
  (** Zero-copy view over a machine driven by
      {!Machine.walk_naive_checked}, whose journal does not cover
      memo-hit steps.  Flat accessors (statuses, decisions, steps,
      store state) read the machine arrays directly; trace-shaped
      accessors ({!trace}, {!last_event}, {!config}, {!trace_length},
      {!events_of}) materialize a persistent configuration by calling
      [replay] — typically the explorer replaying the walk's recorded
      move path from its root configuration — once, cached.  Same
      borrow discipline as {!of_machine}. *)

  val n_procs : t -> int
  val time : t -> int
  val status : t -> int -> Proc.status
  val is_running : t -> int -> bool

  val has_running : t -> bool
  (** Whether any process is still [Running] (i.e. the configuration is
      not terminal). *)

  val steps : t -> int -> int
  (** Shared-memory operations process [pid] has performed. *)

  val stepped : t -> int -> bool
  (** [steps v pid > 0] — equivalently, whether [pid] has a trace
      event: both backends record an event exactly when they increment
      the step count. *)

  val max_steps_per_proc : t -> int
  (** The empirical wait-freedom bound, like {!Engine.max_steps_per_proc}. *)

  val over_step_bound : t -> int -> (int * int) option
  (** First (lowest-pid) process whose step count exceeds the bound, as
      [(pid, steps)]. *)

  val decision : t -> int -> Memory.Value.t option

  val decisions : t -> (int * Memory.Value.t) list
  (** [(pid, decision)] for every decided process, pid order — matches
      {!outcome}'s [decisions] field. *)

  val decision_values : t -> Memory.Value.t list
  (** Decision values in pid order (with duplicates). *)

  val distinct_decisions : t -> Memory.Value.t list
  (** Deduplicated decision values, first-pid order. *)

  val faults : t -> (int * string) list
  (** [(pid, message)] for every faulty process, pid order. *)

  val store_state : t -> string -> Memory.Value.t option
  (** Current state of one shared object, like {!Memory.Store.peek}. *)

  val mem_loc : t -> string -> bool
  val state_bindings : t -> (string * Memory.Value.t) list

  val trace_length : t -> int
  (** Number of trace events.  Order-insensitive; does not mark the
      view. *)

  val events_of : t -> int -> Trace.event list
  (** Process [pid]'s own operations, chronological.  Order-insensitive
      (a pid's events keep their relative order under commutation of
      independent steps), so this does not mark the view. *)

  val order_accessed : t -> bool
  (** Whether {!trace}, {!last_event} or {!config} ran on this view. *)

  val trace : t -> Trace.t
  (** Full trace, oldest first — like {!Engine.trace}.  Materializes on
      an arena view (cached) and marks the view as order-accessed. *)

  val last_event : t -> Trace.event option
  (** Most recent trace event.  Marks the view as order-accessed. *)

  val config : t -> config
  (** Materialize the whole configuration (the slow fallback; cached).
      Marks the view as order-accessed. *)
end
