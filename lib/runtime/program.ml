module Value = Memory.Value

type prim =
  | Done of Value.t
  | Step of string * Value.t * (Value.t -> prim)

type 'a t = ('a -> prim) -> prim

let return x k = k x
let bind m f k = m (fun a -> f a k)
let map f m k = m (fun a -> k (f a))
let ( let* ) = bind
let ( let+ ) m f = map f m
let op loc o k = Step (loc, o, k)
let decide v _k = Done v

let rec list_iter f = function
  | [] -> return ()
  | x :: xs ->
    let* () = f x in
    list_iter f xs

let rec list_map f = function
  | [] -> return []
  | x :: xs ->
    let* y = f x in
    let* ys = list_map f xs in
    return (y :: ys)

let rec list_fold f acc = function
  | [] -> return acc
  | x :: xs ->
    let* acc = f acc x in
    list_fold f acc xs

let rec repeat_until body =
  let* r = body () in
  match r with Some x -> return x | None -> repeat_until body

let complete m = m (fun v -> Done v)

(* ------------------------------------------------------------------ *)
(* Compiled representation: a flat instruction array.                  *)
(*                                                                     *)
(* [prim] programs are closures, so the engine allocates one           *)
(* continuation application per step.  But the purity requirement (see *)
(* the .mli header) makes [(instruction, response) -> next instruction]*)
(* a deterministic function, so a program can be lowered once into a   *)
(* growing array of instructions whose op nodes carry branch tables    *)
(* keyed by decoded response.  Lowering is demand-driven: the first    *)
(* traversal of an edge calls the stored continuation and interns the  *)
(* resulting instruction; every later traversal is a table hit that    *)
(* allocates nothing.  A program whose reachable instruction set       *)
(* exceeds [max_nodes] (an unbounded local loop, data-dependent        *)
(* blow-up) stops interning and falls back transparently to the        *)
(* closure interpreter via [O_inline]; [report] says which path the    *)
(* process took.                                                       *)

module Compiled = struct
  module Vtbl = Hashtbl.Make (struct
    type t = Value.t

    let equal = Value.equal
    let hash = Value.hash
  end)

  type inst =
    | I_done of Value.t
    | I_op of {
        loc : string;
        op : Value.t;
        read : bool;
        k : Value.t -> prim;
        edges : int Vtbl.t;  (* response -> interned next instruction *)
        faults : string Vtbl.t;  (* response -> type-error message *)
      }

  type t = {
    mutable insts : inst array;
    mutable len : int;
    max_nodes : int;
    mutable hits : int;
    mutable misses : int;
    mutable bailed : bool;
  }

  let default_max_nodes = 1 lsl 16
  let read_sym = Value.Sym "read"

  let intern c prim =
    if c.len >= c.max_nodes then begin
      c.bailed <- true;
      -1
    end
    else begin
      (if c.len = Array.length c.insts then begin
         let insts = Array.make (max 8 (2 * c.len)) c.insts.(0) in
         Array.blit c.insts 0 insts 0 c.len;
         c.insts <- insts
       end);
      let inst =
        match prim with
        | Done v -> I_done v
        | Step (loc, op, k) ->
          I_op
            {
              loc;
              op;
              read = Value.equal op read_sym;
              k;
              edges = Vtbl.create 4;
              faults = Vtbl.create 1;
            }
      in
      c.insts.(c.len) <- inst;
      c.len <- c.len + 1;
      c.len - 1
    end

  let compile ?(max_nodes = default_max_nodes) prim =
    let c =
      {
        insts = Array.make 8 (I_done Value.Unit);
        len = 0;
        max_nodes = max 1 max_nodes;
        hits = 0;
        misses = 0;
        bailed = false;
      }
    in
    ignore (intern c prim : int);
    c

  let entry (_ : t) = 0
  let is_done c id = match c.insts.(id) with I_done _ -> true | I_op _ -> false

  let decided_value c id =
    match c.insts.(id) with
    | I_done v -> v
    | I_op _ -> invalid_arg "Program.Compiled.decided_value: op instruction"

  let op_inst c id =
    match c.insts.(id) with
    | I_op _ as i -> i
    | I_done _ -> invalid_arg "Program.Compiled: done instruction"

  let loc_at c id = match op_inst c id with I_op n -> n.loc | I_done _ -> assert false
  let op_value_at c id = match op_inst c id with I_op n -> n.op | I_done _ -> assert false
  let read_at c id = match op_inst c id with I_op n -> n.read | I_done _ -> assert false

  let prim_at c id =
    match c.insts.(id) with
    | I_done v -> Done v
    | I_op { loc; op; k; _ } -> Step (loc, op, k)

  type outcome = O_next of int | O_inline of prim | O_fault of string

  let advance c id result =
    match c.insts.(id) with
    | I_done _ -> invalid_arg "Program.Compiled.advance: done instruction"
    | I_op n -> (
      match Vtbl.find n.edges result with
      | id' ->
        c.hits <- c.hits + 1;
        O_next id'
      | exception Not_found -> (
        match Vtbl.find n.faults result with
        | msg ->
          c.hits <- c.hits + 1;
          O_fault msg
        | exception Not_found -> (
          c.misses <- c.misses + 1;
          match n.k result with
          | exception Value.Type_error (want, got) ->
            let msg =
              Printf.sprintf "type error: expected %s, got %s" want
                (Value.to_string got)
            in
            Vtbl.replace n.faults result msg;
            O_fault msg
          | next ->
            let id' = intern c next in
            if id' < 0 then O_inline next
            else begin
              Vtbl.replace n.edges result id';
              O_next id'
            end)))

  type report = { nodes : int; hits : int; misses : int; bailed : bool }
  let report c = { nodes = c.len; hits = c.hits; misses = c.misses; bailed = c.bailed }
end

let run_sequential store ~pid prim =
  let rec go store = function
    | Done v -> Ok (store, v)
    | Step (loc, o, k) -> (
      match Memory.Store.apply store ~pid loc o with
      | Error _ as e -> e
      | Ok (store, res) -> (
        match k res with
        | exception Value.Type_error (want, got) ->
          Error
            (Printf.sprintf "type error: expected %s, got %s" want
               (Value.to_string got))
        | next -> go store next))
  in
  go store prim
