(** Protocol programs.

    A process's code is a sequence of atomic shared-memory operations with
    local computation between them.  We represent it as a resumable step
    machine ({!prim}) and provide a continuation monad ({!type-t}) for
    writing protocols in direct style:

    {[
      let open Runtime.Program in
      let* v = op "r" (Objects.Register.read_op) in
      if Memory.Value.as_int v = 0 then decide (Memory.Value.int 1)
      else return ()
    ]}

    The execution engine owns all scheduling: a program only advances when
    the scheduler grants it a step, and each [op] is applied atomically.

    {b Purity requirement.}  Continuations must not capture mutable state:
    the exhaustive explorer ({!Explore}) resumes the same continuation
    along many interleaving branches, so captured refs would leak state
    between alternative schedules.  Thread loop state through recursion
    arguments instead. *)

module Value := Memory.Value

(** A resumable program: either finished with a decision value, or blocked
    on one shared-memory operation with a continuation awaiting the
    response. *)
type prim =
  | Done of Value.t
  | Step of string * Value.t * (Value.t -> prim)
      (** [Step (loc, op, k)] invokes [op] on the object at [loc]. *)

type 'a t
(** Monadic protocol fragment returning an ['a]. *)

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t

val op : string -> Value.t -> Value.t t
(** [op loc o] performs one atomic operation on the shared object at [loc]
    and returns its response. *)

val decide : Value.t -> 'a t
(** Terminate the whole program immediately with the given decision value,
    discarding the continuation. *)

val list_iter : ('a -> unit t) -> 'a list -> unit t
val list_map : ('a -> 'b t) -> 'a list -> 'b list t
val list_fold : ('acc -> 'a -> 'acc t) -> 'acc -> 'a list -> 'acc t

val repeat_until : (unit -> 'a option t) -> 'a t
(** [repeat_until body] runs [body] repeatedly until it returns [Some x].
    The loop itself consumes no steps; only the [op]s inside [body] do. *)

val complete : Value.t t -> prim
(** Close a program: its result becomes the decision value. *)

val run_sequential : Memory.Store.t -> pid:int -> prim ->
  (Memory.Store.t * Value.t, string) result
(** Run a program to completion alone against a store (no concurrency).
    Used by tests and by the replay checker. *)

(** Programs lowered to a flat instruction array.

    The purity requirement above makes [(instruction, response) -> next
    instruction] deterministic, so a {!prim} can be lowered into an array
    of instructions whose op nodes memoize, per decoded response, the id
    of the next instruction (or the fault message a response provokes).
    Lowering is demand-driven: the first traversal of an edge calls the
    stored continuation and interns the result; later traversals are
    table hits that allocate nothing.  A program whose reachable
    instruction set exceeds [max_nodes] stops interning and transparently
    falls back to closure interpretation via {!outcome.O_inline};
    {!report} says which path a process took. *)
module Compiled : sig
  type t

  val default_max_nodes : int
  (** 65536. *)

  val compile : ?max_nodes:int -> prim -> t
  (** Lower a program.  Only the entry instruction is interned eagerly;
      the rest of the graph materializes as {!advance} explores it. *)

  val entry : t -> int
  (** Instruction id of the program's initial state (always [0]). *)

  val is_done : t -> int -> bool

  val decided_value : t -> int -> Value.t
  (** @raise Invalid_argument if the instruction is an op. *)

  val loc_at : t -> int -> string
  (** Location of an op instruction.  @raise Invalid_argument on done. *)

  val op_value_at : t -> int -> Value.t

  val read_at : t -> int -> bool
  (** Whether the op is the literal read operation ([:read]) — the POR
      independence check, precomputed at intern time. *)

  val prim_at : t -> int -> prim
  (** Rebuild the {!prim} view of an instruction (for materializing a
      machine state back into a persistent configuration). *)

  (** Result of feeding a response to an op instruction. *)
  type outcome =
    | O_next of int  (** next interned instruction *)
    | O_inline of prim
        (** instruction cap hit: continue on the closure interpreter *)
    | O_fault of string  (** the continuation raised a type error *)

  val advance : t -> int -> Value.t -> outcome
  (** [advance c id response] follows (and on first traversal, builds)
      the edge out of op instruction [id] labelled [response].
      @raise Invalid_argument if [id] is a done instruction. *)

  type report = { nodes : int; hits : int; misses : int; bailed : bool }
  (** [nodes] interned instructions; [hits]/[misses] edge-table hits and
      first-traversal continuation calls; [bailed] whether the cap was
      ever hit (some steps ran on the closure fallback). *)

  val report : t -> report
end
