module Obs = Lepower_obs

let m_injected = Obs.Metrics.counter "faults.injected"

type plan = {
  crash_p : float;
  lose_p : float;
  stick_p : float;
  max_crashes : int;
  max_faults : int;
}

let default =
  { crash_p = 0.02; lose_p = 0.05; stick_p = 0.01; max_crashes = 1;
    max_faults = 8 }

let none =
  { crash_p = 0.0; lose_p = 0.0; stick_p = 0.0; max_crashes = 0;
    max_faults = 0 }

let apply config decision =
  match decision with
  | Repro.Step pid -> Engine.step config pid
  | Repro.Crash pid ->
    Obs.Metrics.incr m_injected;
    Engine.crash config pid
  | Repro.Lose pid ->
    Obs.Metrics.incr m_injected;
    Engine.step_lost config pid
  | Repro.Stick loc ->
    Obs.Metrics.incr m_injected;
    { config with Engine.store = Memory.Store.freeze config.Engine.store loc }

let apply_machine m decision =
  match decision with
  | Repro.Step pid -> Engine.Machine.step m pid
  | Repro.Crash pid ->
    Obs.Metrics.incr m_injected;
    Engine.Machine.crash m pid
  | Repro.Lose pid ->
    Obs.Metrics.incr m_injected;
    Engine.Machine.step_lost m pid
  | Repro.Stick loc ->
    Obs.Metrics.incr m_injected;
    Engine.Machine.freeze m loc

(* One adversary decision, deterministic in [rng].  The scheduler is only
   consulted for decisions that schedule a process (Step/Lose), so its
   own state advances exactly with the executed schedule.  Taking the
   location list (fixed for a run — faults never add or remove objects)
   instead of a config keeps the decision policy backend-agnostic. *)
let decide ~plan ~rng ~crashes ~faults ~sched ~time ~enabled ~locs =
  let roll = Random.State.float rng 1.0 in
  let in_band lo width = width > 0.0 && roll >= lo && roll < lo +. width in
  let crash_ok = crashes < plan.max_crashes && List.length enabled > 1 in
  let fault_ok = faults < plan.max_faults in
  if crash_ok && in_band 0.0 plan.crash_p then
    Some (Repro.Crash (List.nth enabled (Random.State.int rng (List.length enabled))))
  else if fault_ok && in_band plan.crash_p plan.stick_p && locs <> [] then
    Some (Repro.Stick (List.nth locs (Random.State.int rng (List.length locs))))
  else
    let pid = sched.Sched.choose ~time ~enabled in
    if not (List.mem pid enabled) then None (* Sched.halt *)
    else if fault_ok && in_band (plan.crash_p +. plan.stick_p) plan.lose_p
    then Some (Repro.Lose pid)
    else Some (Repro.Step pid)

let is_fault = function
  | Repro.Crash _ | Repro.Lose _ | Repro.Stick _ -> true
  | Repro.Step _ -> false
