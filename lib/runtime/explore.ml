type stats = {
  terminals : int;
  truncated : int;
  max_depth : int;
  choice_points : int;
  configs_visited : int;
  configs_deduped : int;
  por_pruned : int;
  por_checks : int;
  por_fast_hits : int;
  domains_used : int;
}

exception Stop_exploration

let m_configs = Lepower_obs.Metrics.counter "explore.configs_visited"
let m_choice_points = Lepower_obs.Metrics.counter "explore.choice_points"
let m_terminals = Lepower_obs.Metrics.counter "explore.terminals"
let m_truncated = Lepower_obs.Metrics.counter "explore.truncated"
let m_deduped = Lepower_obs.Metrics.counter "explore.configs_deduped"
let m_por_pruned = Lepower_obs.Metrics.counter "explore.por_pruned"
let m_por_checks = Lepower_obs.Metrics.counter "explore.por_checks"
let m_por_fast_hits = Lepower_obs.Metrics.counter "explore.por_fast_hits"

(* Phase attribution (no-ops unless Lepower_prof.Phase is enabled):
   [explore.walk] carries the traversal residual; fingerprint/dedup and
   POR commutation checks are nested phases, so their cost is charged to
   themselves and subtracted from the walk's self time. *)
let ph_walk = Lepower_prof.Phase.make "explore.walk"
let ph_fingerprint = Lepower_prof.Phase.make "explore.fingerprint"
let ph_por = Lepower_prof.Phase.make "explore.por"
let ph_frontier = Lepower_prof.Phase.make "explore.frontier"

(* Live progress for long campaigns: a rate-limited callback (every 8192
   configurations per worker) with the running totals — globally merged
   under [domains], via relaxed atomics.  The counts a parallel reader
   sees momentarily lag the workers; the final stats do not. *)
type progress = {
  p_configs : int;
  p_terminals : int;
  p_truncated : int;
  p_deduped : int;
  p_pruned : int;
  p_max_depth : int;
  p_domains : int;
}

(* ------------------------------------------------------------------ *)
(* Options.                                                           *)

module Options = struct
  type t = {
    max_steps : int;
    crash_faults : bool;
    dedup : bool;
    por : bool;
    domains : int;
    backend : Engine.backend;
    verify_backend : bool;
    footprints : (string list * string list) array;
    analyze : (Engine.Config_view.t -> unit) option;
    on_terminal : (Engine.Config_view.t -> unit) option;
    on_truncated : (Engine.Config_view.t -> unit) option;
    on_lowering : (Program.Compiled.report array -> unit) option;
    progress : (progress -> unit) option;
  }

  let default =
    {
      max_steps = 10_000;
      crash_faults = false;
      dedup = false;
      por = false;
      domains = 1;
      backend = Engine.Persistent;
      verify_backend = false;
      footprints = [||];
      analyze = None;
      on_terminal = None;
      on_truncated = None;
      on_lowering = None;
      progress = None;
    }
end

(* ------------------------------------------------------------------ *)
(* Adversary moves and the independence relation (POR).               *)

type move = Step_m of int | Crash_m of int

let move_pid = function Step_m pid | Crash_m pid -> pid

let move_equal a b =
  match (a, b) with
  | Step_m x, Step_m y | Crash_m x, Crash_m y -> x = y
  | (Step_m _ | Crash_m _), _ -> false

let decision_of_move = function
  | Step_m pid -> Repro.Step pid
  | Crash_m pid -> Repro.Crash pid

(* What a move touches at [config]: [None] when it accesses no shared
   location (a crash, or a decide step of a [Done] program); otherwise
   the location and whether the operation is a pure read.  The read
   encoding is [Op_codec.read_op = Sym "read"] — the one wire format the
   whole object zoo shares; [test_explore] cross-checks the two against
   each other so they cannot drift apart. *)
let move_access (config : Engine.config) = function
  | Crash_m _ -> None
  | Step_m pid -> (
    match config.Engine.procs.(pid).Proc.prog with
    | Program.Done _ -> None
    | Program.Step (loc, op, _) ->
      Some (loc, Memory.Value.equal op (Memory.Value.Sym "read")))

(* Two moves commute (their order is unobservable up to global trace
   order) when they belong to distinct processes and do not conflict on
   a location: ops on distinct locations commute, and read-read on the
   same location commutes.  Moves touching no location (crashes, decide
   steps) commute with every other process's moves.  In this model a
   process's enabledness depends only on its own status, so independent
   moves can never enable or disable one another. *)
let independent config m1 m2 =
  move_pid m1 <> move_pid m2
  &&
  match (move_access config m1, move_access config m2) with
  | None, _ | _, None -> true
  | Some (l1, r1), Some (l2, r2) -> (not (String.equal l1 l2)) || (r1 && r2)

(* Summary-seeded commutation matrix (the POR fast path): [m.(p).(q)] is
   [true] when processes [p] and [q] commute at {e every} configuration —
   neither's static may-write set meets the other's footprint, so any
   location both touch is read by both.  A sufficient condition only:
   [false] entries fall back to the per-move [independent] check, so an
   over-approximating footprint can cost precision but never soundness. *)
let fast_matrix footprints =
  let n = Array.length footprints in
  if n = 0 then None
  else
    let module Ss = Set.Make (String) in
    let writes = Array.map (fun (_, w) -> Ss.of_list w) footprints in
    let foot =
      Array.mapi (fun i (r, _) -> Ss.union (Ss.of_list r) writes.(i)) footprints
    in
    Some
      (Array.init n (fun p ->
           Array.init n (fun q ->
               p <> q
               && Ss.is_empty (Ss.inter writes.(p) foot.(q))
               && Ss.is_empty (Ss.inter writes.(q) foot.(p)))))

let sleep_mem m sleep = List.exists (move_equal m) sleep
let sleep_subset a b = List.for_all (fun m -> sleep_mem m b) a
let sleep_inter a b = List.filter (fun m -> sleep_mem m b) a

(* ------------------------------------------------------------------ *)
(* Internal knobs and mutable accumulators.                           *)

type opts = {
  o_max_steps : int;
  o_crash_faults : bool;
  o_dedup : bool;
  o_por : bool;
  o_backend : Engine.backend;
  o_verify : bool;
  o_reduced : bool;
      (* Arena + (dedup or por), no lockstep shadow, and the move
         alphabet fits an int bitset: dispatch reduced exploration to
         the journal-free bitset walk. *)
  o_fast : bool array array option;
}

let opts_of (options : Options.t) ~n_procs =
  {
    o_max_steps = options.Options.max_steps;
    o_crash_faults = options.Options.crash_faults;
    o_dedup = options.Options.dedup;
    o_por = options.Options.por;
    o_backend = options.Options.backend;
    o_verify = options.Options.verify_backend;
    o_reduced =
      options.Options.backend = Engine.Arena
      && (options.Options.dedup || options.Options.por)
      && (not options.Options.verify_backend)
      && 2 * n_procs <= 62;
    o_fast = fast_matrix options.Options.footprints;
  }

type acc = {
  mutable a_terminals : int;
  mutable a_truncated : int;
  mutable a_max_depth : int;
  mutable a_choice_points : int;
  mutable a_configs : int;
  mutable a_deduped : int;
  mutable a_pruned : int;
  mutable a_por_checks : int;
  mutable a_fast : int;
}

let acc_create () =
  {
    a_terminals = 0;
    a_truncated = 0;
    a_max_depth = 0;
    a_choice_points = 0;
    a_configs = 0;
    a_deduped = 0;
    a_pruned = 0;
    a_por_checks = 0;
    a_fast = 0;
  }

let acc_merge into from =
  into.a_terminals <- into.a_terminals + from.a_terminals;
  into.a_truncated <- into.a_truncated + from.a_truncated;
  into.a_max_depth <- max into.a_max_depth from.a_max_depth;
  into.a_choice_points <- into.a_choice_points + from.a_choice_points;
  into.a_configs <- into.a_configs + from.a_configs;
  into.a_deduped <- into.a_deduped + from.a_deduped;
  into.a_pruned <- into.a_pruned + from.a_pruned;
  into.a_por_checks <- into.a_por_checks + from.a_por_checks;
  into.a_fast <- into.a_fast + from.a_fast

(* The reduced walk's visited table.  [Fingerprint.Tbl] would force the
   walk to materialize a full fingerprint record (sorted binding list +
   procs array) per lookup just so [Hashtbl] has a key to hash and
   compare — on the dedup-heavy workloads that costs more than the walk
   itself (three lookups per stored config on cas k=8 n=7).  Instead
   each entry keeps a compact {!Engine.Machine.snapshot} plus the
   history array, and a probe compares entries against the *live*
   machine — a hit allocates nothing; only a miss (first visit) pays
   the snapshot.  Same hash ({!Fingerprint.combine} of the incremental
   sums) and the same structural distinctions as [Fingerprint.equal],
   so hit/miss decisions — and therefore every stat — stay
   byte-identical with the reference walk. *)
type rentry = {
  re_hash : int;
  re_snap : Engine.Machine.snapshot;
  re_hists : Fingerprint.history array;
  mutable re_sleep : int;  (** bitset sleep set stored at first visit *)
}

type rtbl = { mutable r_buckets : rentry list array; mutable r_count : int }

let rtbl_create size = { r_buckets = Array.make (max 16 size) []; r_count = 0 }

let rtbl_find tbl m histories h =
  let bs = tbl.r_buckets in
  let n = Array.length histories in
  let rec scan = function
    | [] -> None
    | e :: rest ->
      if
        e.re_hash = h
        (* histories first: hash-consing makes the usual hit a run of
           pointer equalities, cheaper than the snapshot's value
           comparisons *)
        && (let rec hists i =
              i >= n
              || (Fingerprint.history_equal e.re_hists.(i) histories.(i)
                 && hists (i + 1))
            in
            hists 0)
        && Engine.Machine.snapshot_equal m e.re_snap
      then Some e
      else scan rest
  in
  scan bs.(h mod Array.length bs)

let rtbl_add tbl m histories h sleep =
  (if tbl.r_count >= 2 * Array.length tbl.r_buckets then begin
     let bs' = Array.make (2 * Array.length tbl.r_buckets) [] in
     Array.iter
       (List.iter (fun e ->
            let i = e.re_hash mod Array.length bs' in
            bs'.(i) <- e :: bs'.(i)))
       tbl.r_buckets;
     tbl.r_buckets <- bs'
   end);
  let i = h mod Array.length tbl.r_buckets in
  tbl.r_buckets.(i) <-
    {
      re_hash = h;
      re_snap = Engine.Machine.snapshot m;
      re_hists = Array.copy histories;
      re_sleep = sleep;
    }
    :: tbl.r_buckets.(i);
  tbl.r_count <- tbl.r_count + 1

(* Visited-set representation, fixed per run by [opts]: the reference
   walks ([explore_seq], [explore_seq_arena]) store the sleep set at
   first visit as a move list keyed by full fingerprints; the reduced
   arena walk uses the snapshot table above.  Dispatch depends on
   [opts] alone — never on a particular DFS item — so workers can pick
   the representation before seeing any work and share one table
   across their frontier items. *)
type visited_tbl =
  | V_lists of move list Fingerprint.Tbl.t
  | V_bits of rtbl

let visited_create opts size =
  if not opts.o_dedup then None
  else if opts.o_reduced then Some (V_bits (rtbl_create size))
  else Some (V_lists (Fingerprint.Tbl.create size))

let visited_lists = function Some (V_lists t) -> Some t | _ -> None
let visited_bits = function Some (V_bits t) -> Some t | _ -> None

let initial_histories (config : Engine.config) =
  Array.make (Array.length config.Engine.procs) Fingerprint.history_empty

(* Step process [pid] and, when memoizing, extend its fingerprint history
   with the event the step appended (decide steps and store-rejected
   faults append none — physical trace identity detects that). *)
let step_with_history opts (config : Engine.config) histories pid =
  let config' = Engine.step config pid in
  let histories' =
    if not opts.o_dedup then histories
    else if config'.Engine.trace != config.Engine.trace then
      match config'.Engine.trace with
      | e :: _ ->
        let h = Array.copy histories in
        h.(pid) <- Fingerprint.history_extend h.(pid) e;
        h
      | [] -> histories
    else histories
  in
  (config', histories')

let moves_of opts pids =
  (* Same traversal order as the historical naive walk: for each enabled
     pid in ascending order, its step move then (with crash faults) its
     crash move. *)
  List.concat_map
    (fun pid ->
      if opts.o_crash_faults then [ Step_m pid; Crash_m pid ]
      else [ Step_m pid ])
    pids

(* ------------------------------------------------------------------ *)
(* The sequential core: DFS with optional visited-set memoization and  *)
(* sleep-set partial-order reduction.                                  *)
(*                                                                     *)
(* Every node carries [rpath], the root-to-node adversary decisions in  *)
(* reverse; callbacks receive it so leaves are replayable certificates  *)
(* for free.  With [dedup]/[por] a pruned revisit reports nothing, so   *)
(* any path that does reach a callback is a genuine schedule.           *)
(*                                                                     *)
(* Memoization: a configuration's fingerprint determines its reachable *)
(* futures AND its depth (depth = per-proc events + decided + faulted, *)
(* all fingerprint-determined), so pruning a revisit can never cut off *)
(* budget the first visit did not have.                                *)
(*                                                                     *)
(* Sleep sets (Godefroid): after exploring move [m] at a node, [m] is  *)
(* put to sleep for the remaining sibling subtrees, and a child's      *)
(* sleep set keeps only moves independent of the move just taken.      *)
(* Combined with the visited set, a revisit may only be pruned when    *)
(* the stored sleep set is a subset of the current one; otherwise the  *)
(* node is re-explored with the intersection (state-space caching      *)
(* discipline), which keeps the combination sound.                     *)

let explore_seq ~opts ~acc ?tick ~visited ~analyze ~on_terminal ~on_truncated
    (config0, histories0, depth0, rpath0) =
  let rec go config histories depth rpath sleep =
    if depth > acc.a_max_depth then acc.a_max_depth <- depth;
    let enabled = Engine.enabled config in
    let leaf = enabled = [] || depth >= opts.o_max_steps in
    let proceed sleep =
      acc.a_configs <- acc.a_configs + 1;
      (* Rate-limited so a no-op tick costs one mask and branch. *)
      if acc.a_configs land 8191 = 0 then
        (match tick with Some f -> f acc | None -> ());
      match enabled with
      | [] ->
        (match (analyze, on_terminal) with
        | None, None -> acc.a_terminals <- acc.a_terminals + 1
        | _ ->
          (* One view per terminal, shared by both hooks, so the
             soundness guard sees every access the leaf performed. *)
          let view = Engine.Config_view.of_config config in
          let path () = rpath in
          (match analyze with None -> () | Some f -> f view path);
          acc.a_terminals <- acc.a_terminals + 1;
          (match on_terminal with None -> () | Some f -> f view path))
      | _ when depth >= opts.o_max_steps ->
        acc.a_truncated <- acc.a_truncated + 1;
        (match on_truncated with
        | None -> ()
        | Some f -> f (Engine.Config_view.of_config config) (fun () -> rpath))
      | pids ->
        (* A choice point is a configuration where the adversary has more
           than one move: several enabled processes, or (with crash
           faults) the step/crash alternative for even a single one. *)
        if (match pids with _ :: _ :: _ -> true | _ -> opts.o_crash_faults)
        then acc.a_choice_points <- acc.a_choice_points + 1;
        let rec loop sleep explored = function
          | [] -> ()
          | m :: rest ->
            if sleep_mem m sleep then begin
              acc.a_pruned <- acc.a_pruned + 1;
              loop sleep explored rest
            end
            else begin
              let child_sleep =
                if opts.o_por then begin
                  let tok = Lepower_prof.Phase.enter ph_por in
                  let kept =
                    List.filter
                      (fun m' ->
                        acc.a_por_checks <- acc.a_por_checks + 1;
                        let p = move_pid m' and q = move_pid m in
                        match opts.o_fast with
                        | Some fast
                          when p <> q
                               && p < Array.length fast
                               && q < Array.length fast
                               && fast.(p).(q) ->
                          acc.a_fast <- acc.a_fast + 1;
                          true
                        | _ -> independent config m' m)
                      (List.rev_append explored sleep)
                  in
                  Lepower_prof.Phase.leave tok;
                  kept
                end
                else []
              in
              let rpath' = decision_of_move m :: rpath in
              (match m with
              | Step_m pid ->
                let config', histories' =
                  step_with_history opts config histories pid
                in
                go config' histories' (depth + 1) rpath' child_sleep
              | Crash_m pid ->
                go (Engine.crash config pid) histories depth rpath' child_sleep);
              loop sleep (if opts.o_por then m :: explored else explored) rest
            end
        in
        loop sleep [] (moves_of opts pids)
    in
    match visited with
    | None -> proceed sleep
    | Some tbl -> (
      let tok = Lepower_prof.Phase.enter ph_fingerprint in
      let action =
        let key = Fingerprint.make config histories in
        match Fingerprint.Tbl.find_opt tbl key with
        | None ->
          Fingerprint.Tbl.add tbl key (if leaf then [] else sleep);
          `Proceed sleep
        | Some stored when leaf || sleep_subset stored sleep ->
          (* Everything this node would explore was already explored
             under a sleep set no larger than the current one. *)
          `Dedup
        | Some stored ->
          (* Revisit with moves awake that slept last time: re-explore
             under the intersection so no transition is lost. *)
          let sleep = sleep_inter sleep stored in
          Fingerprint.Tbl.replace tbl key sleep;
          `Proceed sleep
      in
      Lepower_prof.Phase.leave tok;
      match action with
      | `Dedup -> acc.a_deduped <- acc.a_deduped + 1
      | `Proceed sleep -> proceed sleep)
  in
  go config0 histories0 depth0 rpath0 []

(* ------------------------------------------------------------------ *)
(* The same DFS on the arena backend: one Engine.Machine per frontier  *)
(* item, mutated on descent and journal-popped on backtrack.  Every    *)
(* counter, callback, traversal order and pruning decision is the same *)
(* as [explore_seq]'s — the two must agree config-for-config, which    *)
(* the cross-backend tests and the [verify_backend] lockstep shadow    *)
(* enforce.  Configurations are only materialized at leaves that have  *)
(* callbacks; fingerprint sums are maintained incrementally from the   *)
(* machine's step deltas.                                              *)

let move_access_m m = function
  | Crash_m _ -> None
  | Step_m pid -> Engine.Machine.access m pid

let independent_m m m1 m2 =
  move_pid m1 <> move_pid m2
  &&
  match (move_access_m m m1, move_access_m m m2) with
  | None, _ | _, None -> true
  | Some (l1, r1), Some (l2, r2) -> (not (String.equal l1 l2)) || (r1 && r2)

let explore_seq_arena ~opts ~acc ?tick ~visited ~analyze ~on_terminal
    ~on_truncated (config0, histories0, depth0, rpath0) =
  let m = Engine.Machine.of_config config0 in
  let n = Engine.Machine.n_procs m in
  (* Frame-local save/restore instead of [explore_seq]'s copy-per-step:
     one histories array for the whole item. *)
  let histories = Array.copy histories0 in
  let store_sum = ref 0 and proc_sum = ref 0 in
  (if opts.o_dedup then begin
     let s, p = Fingerprint.sums config0 histories0 in
     store_sum := s;
     proc_sum := p
   end);
  let verify shadow =
    match shadow with
    | None -> ()
    | Some c ->
      if not (Engine.config_equal c (Engine.Machine.config m)) then
        failwith
          (Printf.sprintf
             "Explore: arena backend diverged from the persistent reference \
              at time %d (verify_backend)"
             (Engine.Machine.time m))
  in
  let rec go depth rpath sleep shadow =
    verify shadow;
    if depth > acc.a_max_depth then acc.a_max_depth <- depth;
    let enabled = Engine.Machine.enabled m in
    let leaf = enabled = [] || depth >= opts.o_max_steps in
    let proceed sleep =
      acc.a_configs <- acc.a_configs + 1;
      if acc.a_configs land 8191 = 0 then
        (match tick with Some f -> f acc | None -> ());
      match enabled with
      | [] ->
        (match (analyze, on_terminal) with
        | None, None -> acc.a_terminals <- acc.a_terminals + 1
        | _ ->
          (* Zero-copy: the hooks read the machine's live state through
             the view; nothing is materialized unless they ask. *)
          let view = Engine.Config_view.of_machine m in
          let path () = rpath in
          (match analyze with None -> () | Some f -> f view path);
          acc.a_terminals <- acc.a_terminals + 1;
          (match on_terminal with None -> () | Some f -> f view path))
      | _ when depth >= opts.o_max_steps ->
        acc.a_truncated <- acc.a_truncated + 1;
        (match on_truncated with
        | None -> ()
        | Some f -> f (Engine.Config_view.of_machine m) (fun () -> rpath))
      | pids ->
        if (match pids with _ :: _ :: _ -> true | _ -> opts.o_crash_faults)
        then acc.a_choice_points <- acc.a_choice_points + 1;
        let rec loop sleep explored = function
          | [] -> ()
          | mv :: rest ->
            if sleep_mem mv sleep then begin
              acc.a_pruned <- acc.a_pruned + 1;
              loop sleep explored rest
            end
            else begin
              let child_sleep =
                if opts.o_por then begin
                  let tok = Lepower_prof.Phase.enter ph_por in
                  let kept =
                    List.filter
                      (fun mv' ->
                        acc.a_por_checks <- acc.a_por_checks + 1;
                        let p = move_pid mv' and q = move_pid mv in
                        match opts.o_fast with
                        | Some fast
                          when p <> q
                               && p < Array.length fast
                               && q < Array.length fast
                               && fast.(p).(q) ->
                          acc.a_fast <- acc.a_fast + 1;
                          true
                        | _ -> independent_m m mv' mv)
                      (List.rev_append explored sleep)
                  in
                  Lepower_prof.Phase.leave tok;
                  kept
                end
                else []
              in
              let rpath' = decision_of_move mv :: rpath in
              (match mv with
              | Step_m pid ->
                let mk = Engine.Machine.mark m in
                let saved_hist = histories.(pid) in
                let saved_status = Engine.Machine.status m pid in
                let saved_ssum = !store_sum and saved_psum = !proc_sum in
                Engine.Machine.step m pid;
                (if opts.o_dedup then begin
                   (if Engine.Machine.last_step_event m then begin
                      let loc = Engine.Machine.last_loc m in
                      histories.(pid) <-
                        Fingerprint.history_extend_op histories.(pid) ~loc
                          ~op:(Engine.Machine.last_op m)
                          ~result:(Engine.Machine.last_result m);
                      store_sum :=
                        !store_sum
                        - Fingerprint.store_binding_hash loc
                            (Engine.Machine.last_old_state m)
                        + Fingerprint.store_binding_hash loc
                            (Engine.Machine.last_new_state m)
                    end);
                   proc_sum :=
                     !proc_sum
                     - Fingerprint.proc_hash ~pid saved_status saved_hist
                     + Fingerprint.proc_hash ~pid
                         (Engine.Machine.status m pid)
                         histories.(pid)
                 end);
                go (depth + 1) rpath' child_sleep
                  (Option.map (fun c -> Engine.step c pid) shadow);
                Engine.Machine.undo_to m mk;
                histories.(pid) <- saved_hist;
                store_sum := saved_ssum;
                proc_sum := saved_psum
              | Crash_m pid ->
                let mk = Engine.Machine.mark m in
                let saved_status = Engine.Machine.status m pid in
                let saved_psum = !proc_sum in
                Engine.Machine.crash m pid;
                (if opts.o_dedup then
                   proc_sum :=
                     !proc_sum
                     - Fingerprint.proc_hash ~pid saved_status histories.(pid)
                     + Fingerprint.proc_hash ~pid
                         (Engine.Machine.status m pid)
                         histories.(pid));
                go depth rpath' child_sleep
                  (Option.map (fun c -> Engine.crash c pid) shadow);
                Engine.Machine.undo_to m mk;
                proc_sum := saved_psum);
              loop sleep (if opts.o_por then mv :: explored else explored) rest
            end
        in
        loop sleep [] (moves_of opts pids)
    in
    match visited with
    | None -> proceed sleep
    | Some tbl -> (
      let tok = Lepower_prof.Phase.enter ph_fingerprint in
      let action =
        let key =
          Fingerprint.of_parts ~store_sum:!store_sum ~proc_sum:!proc_sum
            ~store:(Engine.Machine.state_bindings m)
            ~procs:
              (Array.init n (fun pid ->
                   (Engine.Machine.status m pid, histories.(pid))))
        in
        match Fingerprint.Tbl.find_opt tbl key with
        | None ->
          Fingerprint.Tbl.add tbl key (if leaf then [] else sleep);
          `Proceed sleep
        | Some stored when leaf || sleep_subset stored sleep -> `Dedup
        | Some stored ->
          let sleep = sleep_inter sleep stored in
          Fingerprint.Tbl.replace tbl key sleep;
          `Proceed sleep
      in
      Lepower_prof.Phase.leave tok;
      match action with
      | `Dedup -> acc.a_deduped <- acc.a_deduped + 1
      | `Proceed sleep -> proceed sleep)
  in
  go depth0 rpath0 [] (if opts.o_verify then Some config0 else None);
  m

(* Specialized arena walk for the naive mode (no dedup, no POR, no
   lockstep shadow): the traversal needs no move lists, no sleep sets
   and no decision accumulation, so the whole DFS runs allocation-free
   on the machine's memoized hot path — with or without callbacks.
   Hooks observe each leaf through a flat [Config_view]: the usual
   checker reads (statuses, decisions, steps, store state) are O(1)
   array reads on the live machine, and only a hook that actually asks
   for the trace or the decision path pays, by replaying the walker's
   recorded move path from this item's root configuration.  Same
   traversal order and counters as [explore_seq_arena]; that equality
   is what the cross-backend tests pin down. *)
let explore_arena_naive ~opts ~acc ?tick ~analyze ~on_terminal
    ~on_truncated (config0, _histories0, depth0, rpath0) =
  let m = Engine.Machine.of_config config0 in
  (* [ws] starts from the shared accumulator so the tick cadence
     ([a_configs land 8191]) is unchanged. *)
  let ws =
    {
      Engine.Machine.w_configs = acc.a_configs;
      w_terminals = acc.a_terminals;
      w_truncated = acc.a_truncated;
      w_max_depth = acc.a_max_depth;
      w_choice_points = acc.a_choice_points;
    }
  in
  let sync (ws : Engine.Machine.walk_stats) =
    acc.a_configs <- ws.Engine.Machine.w_configs;
    acc.a_terminals <- ws.Engine.Machine.w_terminals;
    acc.a_truncated <- ws.Engine.Machine.w_truncated;
    acc.a_max_depth <- ws.Engine.Machine.w_max_depth;
    acc.a_choice_points <- ws.Engine.Machine.w_choice_points
  in
  let tick =
    match tick with
    | None -> None
    | Some f ->
      Some
        (fun ws ->
          sync ws;
          f acc)
  in
  (* [~finally]: a hook may abort the walk ([check_all] raises
     [Stop_exploration] on the first violation); the counters walked so
     far still belong in the accumulator. *)
  Fun.protect
    ~finally:(fun () -> sync ws)
    (fun () ->
      match (analyze, on_terminal, on_truncated) with
      | None, None, None ->
        (* Counting-only walk: hand the whole enumeration to the
           machine's journal-free hot path. *)
        Engine.Machine.walk_naive ?tick ~crash_faults:opts.o_crash_faults
          ~max_steps:opts.o_max_steps ~depth0 ws m
      | _ ->
        let path = Array.make (opts.o_max_steps + Engine.Machine.n_procs m + 2) 0 in
        let mc_now = ref 0 in
        (* Both thunks read [path.(0 .. !mc_now - 1)], the move path of
           the leaf whose hook is currently running; they are only
           valid for the duration of that hook call (the same borrow
           discipline as the view itself). *)
        let decisions () =
          let ds = ref rpath0 in
          for i = 0 to !mc_now - 1 do
            let mv = Array.unsafe_get path i in
            ds :=
              (if mv >= 0 then Repro.Step mv else Repro.Crash (-mv - 1))
              :: !ds
          done;
          !ds
        in
        let replay () =
          let cfg = ref config0 in
          for i = 0 to !mc_now - 1 do
            let mv = Array.unsafe_get path i in
            cfg :=
              (if mv >= 0 then Engine.step !cfg mv
               else Engine.crash !cfg (-mv - 1))
          done;
          !cfg
        in
        let on_terminal_mc mc =
          match (analyze, on_terminal) with
          | None, None -> ()
          | _ ->
            mc_now := mc;
            (* One view per terminal, shared by both hooks, so the
               soundness guard sees every access the leaf performed. *)
            let view = Engine.Config_view.of_machine_flat m ~replay in
            (match analyze with None -> () | Some f -> f view decisions);
            (match on_terminal with None -> () | Some f -> f view decisions)
        in
        let on_truncated_mc mc =
          match on_truncated with
          | None -> ()
          | Some f ->
            mc_now := mc;
            f (Engine.Config_view.of_machine_flat m ~replay) decisions
        in
        Engine.Machine.walk_naive_checked ?tick
          ~crash_faults:opts.o_crash_faults ~max_steps:opts.o_max_steps
          ~depth0 ~path ~on_terminal:on_terminal_mc
          ~on_truncated:on_truncated_mc ws m);
  m

(* Reduced exploration (dedup and/or sleep-set POR) journal-free on the
   machine's flat arrays.  Per-move undo lives in a stack of reusable
   [Machine.frame]s — memo-hit steps bypass the journal entirely and
   crashes are unjournaled status flips.  Sleep sets are int bitsets
   ([Step_m p] at bit [p], [Crash_m p] at bit [n + p]; dispatch
   guarantees [2n <= 62]), and the dedup key is assembled from the
   incrementally maintained fingerprint sums, so no [Machine.config],
   no move list and no sleep list is ever materialized on the hot
   path.  Leaf hooks observe the machine through the same flat view as
   the naive checked walk, replaying the recorded move path on demand.

   Fidelity: traversal order (pids ascending, step before crash, crash
   at the same depth), counter cadence (including the [a_por_checks] /
   [a_fast] increments per sleep-set candidate — explored and sleep
   sets are disjoint, so bit iteration visits exactly the candidates
   the reference's list filter does), dedup actions and the
   caching-discipline subset/intersection tests all mirror
   [explore_seq] exactly; the cross-backend digest tests pin this. *)
let explore_arena_reduced ~opts ~acc ?tick ~visited ~analyze ~on_terminal
    ~on_truncated (config0, histories0, depth0, rpath0) =
  let m = Engine.Machine.of_config config0 in
  let n = Engine.Machine.n_procs m in
  let histories = Array.copy histories0 in
  let store_sum = ref 0 and proc_sum = ref 0 in
  (* Per-walk fingerprint plumbing: histories are extended through a
     hash-consing table so re-derived spines stay physically shared
     (visited-set hits then compare by pointer), and each location's
     [store_binding_hash] string prefix is precomputed per arena slot so
     a step's store delta is two value folds, no string walks. *)
  let hc = Fingerprint.hcons_create 1024 in
  (* One-entry per-pid extension cache in front of [hc]: right after
     backtracking, a sibling branch re-extends the same (physical) tail
     with the same memoized event blocks, so even the consing probe's
     hashing is skippable.  Physical-only compares — a false miss just
     falls through to [hc], which guarantees the canonical block. *)
  let ext_tl = Array.make n Fingerprint.history_empty in
  let ext_loc = Array.make n "" in
  let ext_op = Array.make n Memory.Value.Unit in
  let ext_result = Array.make n Memory.Value.Unit in
  let ext_ev = Array.make n Fingerprint.history_empty in
  let extend pid tl ~loc ~op ~result =
    if
      ext_tl.(pid) == tl
      && ext_loc.(pid) == loc
      && ext_op.(pid) == op
      && ext_result.(pid) == result
    then ext_ev.(pid)
    else begin
      let ev = Fingerprint.history_extend_hc hc tl ~loc ~op ~result in
      ext_tl.(pid) <- tl;
      ext_loc.(pid) <- loc;
      ext_op.(pid) <- op;
      ext_result.(pid) <- result;
      ext_ev.(pid) <- ev;
      ev
    end
  in
  let seeds =
    if opts.o_dedup then
      Array.of_list
        (List.map
           (fun (l, _) -> Fingerprint.store_seed l)
           (Engine.Machine.state_bindings m))
    else [||]
  in
  (if opts.o_dedup then begin
     let s, p = Fingerprint.sums config0 histories0 in
     store_sum := s;
     proc_sum := p
   end);
  (* Move path + per-move frames: [mc] indexes both.  At most
     [max_steps] step moves plus one crash per process on any branch. *)
  let slots = opts.o_max_steps + n + 2 in
  let path = Array.make slots 0 in
  (* Frames grow with the deepest branch actually reached, not with the
     [max_steps] bound — a frame per *live* move, reused across
     siblings at the same stack depth. *)
  let frames = ref (Array.init 64 (fun _ -> Engine.Machine.frame ())) in
  let frame_at mc =
    let fa = !frames in
    let len = Array.length fa in
    if mc < len then Array.unsafe_get fa mc
    else begin
      let fa' =
        Array.init
          (min slots (max (2 * len) (mc + 1)))
          (fun i -> if i < len then fa.(i) else Engine.Machine.frame ())
      in
      frames := fa';
      fa'.(mc)
    end
  in
  let mc_now = ref 0 in
  (* Hook thunks, as in [explore_arena_naive]: valid only while the
     hook runs, reconstruct the schedule from [path.(0 .. !mc_now-1)]. *)
  let decisions () =
    let ds = ref rpath0 in
    for i = 0 to !mc_now - 1 do
      let mv = Array.unsafe_get path i in
      ds := (if mv >= 0 then Repro.Step mv else Repro.Crash (-mv - 1)) :: !ds
    done;
    !ds
  in
  let replay () =
    let cfg = ref config0 in
    for i = 0 to !mc_now - 1 do
      let mv = Array.unsafe_get path i in
      cfg :=
        (if mv >= 0 then Engine.step !cfg mv else Engine.crash !cfg (-mv - 1))
    done;
    !cfg
  in
  (* Sleep-set filter for the child of taken move [(q, q_crash)]: keep
     each candidate bit of [cand] that is independent of the move, with
     the static fast matrix consulted first — the same per-candidate
     check (and counter increments) as the reference's list filter.
     [accs] holds every process's pending access in the {e parent}
     state, encoded by {!Engine.Machine.access_enc} — each expansion
     snapshots them once (recursion builds its own for deeper levels),
     so the exact check is two array reads and integer compares per
     candidate, no program-counter decode, no string walk. *)
  let child_sleep_of accs cand q q_crash =
    let tok = Lepower_prof.Phase.enter ph_por in
    let kept = ref 0 in
    for b = 0 to (2 * n) - 1 do
      if cand land (1 lsl b) <> 0 then begin
        acc.a_por_checks <- acc.a_por_checks + 1;
        let p = if b < n then b else b - n in
        let keep =
          match opts.o_fast with
          | Some fast
            when p <> q
                 && p < Array.length fast
                 && q < Array.length fast
                 && fast.(p).(q) ->
            acc.a_fast <- acc.a_fast + 1;
            true
          | _ ->
            p <> q
            && (b >= n || q_crash
               ||
               let ep = Array.unsafe_get accs p
               and eq = Array.unsafe_get accs q in
               if ep = -1 || eq = -1 then true
               else if ep >= 0 && eq >= 0 then
                 ep lsr 1 <> eq lsr 1 || ep land eq land 1 = 1
               else
                 (* an un-interned location: compare by name *)
                 match
                   (Engine.Machine.access m p, Engine.Machine.access m q)
                 with
                 | None, _ | _, None -> true
                 | Some (l1, r1), Some (l2, r2) ->
                   (not (String.equal l1 l2)) || (r1 && r2))
        in
        if keep then kept := !kept lor (1 lsl b)
      end
    done;
    Lepower_prof.Phase.leave tok;
    !kept
  in
  let rec go depth mc running sleep =
    if depth > acc.a_max_depth then acc.a_max_depth <- depth;
    let leaf = running = 0 || depth >= opts.o_max_steps in
    let proceed sleep =
      acc.a_configs <- acc.a_configs + 1;
      if acc.a_configs land 8191 = 0 then
        (match tick with Some f -> f acc | None -> ());
      if running = 0 then begin
        match (analyze, on_terminal) with
        | None, None -> acc.a_terminals <- acc.a_terminals + 1
        | _ ->
          mc_now := mc;
          (* One view per terminal, shared by both hooks, so the
             soundness guard sees every access the leaf performed. *)
          let view = Engine.Config_view.of_machine_flat m ~replay in
          (match analyze with None -> () | Some f -> f view decisions);
          acc.a_terminals <- acc.a_terminals + 1;
          (match on_terminal with None -> () | Some f -> f view decisions)
      end
      else if depth >= opts.o_max_steps then begin
        acc.a_truncated <- acc.a_truncated + 1;
        match on_truncated with
        | None -> ()
        | Some f ->
          mc_now := mc;
          f (Engine.Config_view.of_machine_flat m ~replay) decisions
      end
      else begin
        if running >= 2 || opts.o_crash_faults then
          acc.a_choice_points <- acc.a_choice_points + 1;
        let accs =
          if opts.o_por then Array.init n (Engine.Machine.access_enc m)
          else [||]
        in
        let explored = ref 0 in
        for pid = 0 to n - 1 do
          if Engine.Machine.is_running m pid then begin
            (if sleep land (1 lsl pid) <> 0 then
               acc.a_pruned <- acc.a_pruned + 1
             else begin
               let child_sleep =
                 if opts.o_por then
                   child_sleep_of accs (!explored lor sleep) pid false
                 else 0
               in
               let f = frame_at mc in
               let saved_hist = histories.(pid) in
               let saved_ssum = !store_sum and saved_psum = !proc_sum in
               Engine.Machine.step_frame m pid f;
               (if opts.o_dedup then begin
                  (if Engine.Machine.frame_step_event m f then begin
                     let loc = Engine.Machine.frame_loc m f in
                     let seed = seeds.(Engine.Machine.frame_loc_id m f) in
                     histories.(pid) <-
                       extend pid histories.(pid) ~loc
                         ~op:(Engine.Machine.frame_op m f)
                         ~result:(Engine.Machine.frame_result m f);
                     store_sum :=
                       !store_sum
                       - Memory.Value.hash_fold seed
                           (Engine.Machine.frame_old_state m f)
                       + Memory.Value.hash_fold seed
                           (Engine.Machine.frame_new_state m f)
                   end);
                  proc_sum :=
                    !proc_sum
                    - Fingerprint.proc_hash ~pid Proc.Running saved_hist
                    + Fingerprint.proc_hash ~pid
                        (Engine.Machine.status m pid)
                        histories.(pid)
                end);
               Array.unsafe_set path mc pid;
               go (depth + 1) (mc + 1)
                 (if Engine.Machine.is_running m pid then running
                  else running - 1)
                 child_sleep;
               Engine.Machine.undo_frame m f;
               histories.(pid) <- saved_hist;
               store_sum := saved_ssum;
               proc_sum := saved_psum;
               if opts.o_por then explored := !explored lor (1 lsl pid)
             end);
            if opts.o_crash_faults then begin
              if sleep land (1 lsl (n + pid)) <> 0 then
                acc.a_pruned <- acc.a_pruned + 1
              else begin
                let child_sleep =
                  if opts.o_por then
                    child_sleep_of accs (!explored lor sleep) pid true
                  else 0
                in
                let saved_psum = !proc_sum in
                Engine.Machine.crash_frame m pid;
                (if opts.o_dedup then
                   proc_sum :=
                     !proc_sum
                     - Fingerprint.proc_hash ~pid Proc.Running histories.(pid)
                     + Fingerprint.proc_hash ~pid Proc.Crashed histories.(pid));
                Array.unsafe_set path mc (-pid - 1);
                go depth (mc + 1) (running - 1) child_sleep;
                Engine.Machine.uncrash_frame m pid;
                proc_sum := saved_psum;
                if opts.o_por then explored := !explored lor (1 lsl (n + pid))
              end
            end
          end
        done
      end
    in
    match visited with
    | None -> proceed sleep
    | Some tbl -> (
      let tok = Lepower_prof.Phase.enter ph_fingerprint in
      let action =
        let h =
          Fingerprint.combine ~store_sum:!store_sum ~proc_sum:!proc_sum
        in
        match rtbl_find tbl m histories h with
        | None ->
          rtbl_add tbl m histories h (if leaf then 0 else sleep);
          `Proceed sleep
        | Some e when leaf || e.re_sleep land lnot sleep = 0 -> `Dedup
        | Some e ->
          let sleep = sleep land e.re_sleep in
          e.re_sleep <- sleep;
          `Proceed sleep
      in
      Lepower_prof.Phase.leave tok;
      match action with
      | `Dedup -> acc.a_deduped <- acc.a_deduped + 1
      | `Proceed sleep -> proceed sleep)
  in
  let running0 = ref 0 in
  for pid = 0 to n - 1 do
    if Engine.Machine.is_running m pid then incr running0
  done;
  go depth0 0 !running0 0;
  m

(* Backend dispatch for one DFS item — the single worker entry point for
   both the [domains <= 1] path and the frontier workers. *)
let explore_item ~opts ~acc ?tick ~visited ~analyze ~on_terminal
    ~on_truncated ~on_lowering item =
  match opts.o_backend with
  | Engine.Persistent ->
    explore_seq ~opts ~acc ?tick ~visited:(visited_lists visited) ~analyze
      ~on_terminal ~on_truncated item
  | Engine.Arena -> (
    let m =
      if
        (not opts.o_dedup) && (not opts.o_por) && (not opts.o_verify)
        && visited = None
      then
        explore_arena_naive ~opts ~acc ?tick ~analyze ~on_terminal
          ~on_truncated item
      else if opts.o_reduced then
        explore_arena_reduced ~opts ~acc ?tick
          ~visited:(visited_bits visited) ~analyze ~on_terminal ~on_truncated
          item
      else
        (* Lockstep shadow ([verify_backend]) or an oversized move
           alphabet: the journaled reference walk. *)
        explore_seq_arena ~opts ~acc ?tick ~visited:(visited_lists visited)
          ~analyze ~on_terminal ~on_truncated item
    in
    match on_lowering with
    | None -> ()
    | Some f -> f (Engine.Machine.reports m))

(* ------------------------------------------------------------------ *)
(* Multicore frontier exploration.                                    *)

(* Expand the first few levels of the schedule tree breadth-first (naive:
   no memoization or reduction, so the split is exact) until at least
   [target] roots exist; leaves met on the way are dispatched to the
   callbacks right here in the coordinator.  Returns the frontier in
   deterministic (schedule) order, each root carrying its path prefix. *)
let split_frontier ~opts ~acc ~analyze ~on_terminal ~on_truncated ~target
    config =
  let expand (config, histories, depth, rpath) =
    if depth > acc.a_max_depth then acc.a_max_depth <- depth;
    acc.a_configs <- acc.a_configs + 1;
    match Engine.enabled config with
    | [] ->
      (match (analyze, on_terminal) with
      | None, None -> acc.a_terminals <- acc.a_terminals + 1
      | _ ->
        let view = Engine.Config_view.of_config config in
        let path () = rpath in
        (match analyze with None -> () | Some f -> f view path);
        acc.a_terminals <- acc.a_terminals + 1;
        (match on_terminal with None -> () | Some f -> f view path));
      []
    | _ when depth >= opts.o_max_steps ->
      acc.a_truncated <- acc.a_truncated + 1;
      (match on_truncated with
      | None -> ()
      | Some f -> f (Engine.Config_view.of_config config) (fun () -> rpath));
      []
    | pids ->
      if (match pids with _ :: _ :: _ -> true | _ -> opts.o_crash_faults)
      then acc.a_choice_points <- acc.a_choice_points + 1;
      List.concat_map
        (fun m ->
          let rpath' = decision_of_move m :: rpath in
          match m with
          | Step_m pid ->
            let config', histories' =
              step_with_history opts config histories pid
            in
            [ (config', histories', depth + 1, rpath') ]
          | Crash_m pid -> [ (Engine.crash config pid, histories, depth, rpath') ])
        (moves_of opts pids)
  in
  let rec grow frontier =
    if List.length frontier >= target then frontier
    else
      match List.concat_map expand frontier with
      | [] -> []
      | next -> grow next
  in
  grow [ (config, initial_histories config, 0, []) ]

(* Workers share nothing: each gets every [i mod domains = w]-th frontier
   root (static split, so per-worker work — and therefore every merged
   count — is deterministic), its own visited table, and its own
   accumulator.  User callbacks are serialized through one mutex by the
   caller.  A worker that raises (e.g. [Stop_exploration] out of a
   checking callback) stops early; its exception is re-raised by the
   coordinator after all workers are joined. *)
(* Globally merged running totals for the progress callback: workers
   publish their accumulator deltas with atomic adds each tick, so any
   single reader sees a consistent-enough global count without touching
   the workers' hot state. *)
type pshared = {
  ps_configs : int Atomic.t;
  ps_terminals : int Atomic.t;
  ps_truncated : int Atomic.t;
  ps_deduped : int Atomic.t;
  ps_pruned : int Atomic.t;
  ps_max_depth : int Atomic.t;
}

let pshared_create () =
  {
    ps_configs = Atomic.make 0;
    ps_terminals = Atomic.make 0;
    ps_truncated = Atomic.make 0;
    ps_deduped = Atomic.make 0;
    ps_pruned = Atomic.make 0;
    ps_max_depth = Atomic.make 0;
  }

let pshared_publish ps ~last (wacc : acc) =
  let add cell now prev =
    if now <> prev then ignore (Atomic.fetch_and_add cell (now - prev))
  in
  add ps.ps_configs wacc.a_configs last.a_configs;
  add ps.ps_terminals wacc.a_terminals last.a_terminals;
  add ps.ps_truncated wacc.a_truncated last.a_truncated;
  add ps.ps_deduped wacc.a_deduped last.a_deduped;
  add ps.ps_pruned wacc.a_pruned last.a_pruned;
  let rec bump () =
    let cur = Atomic.get ps.ps_max_depth in
    if
      wacc.a_max_depth > cur
      && not (Atomic.compare_and_set ps.ps_max_depth cur wacc.a_max_depth)
    then bump ()
  in
  bump ();
  acc_merge last wacc;
  (* acc_merge adds; we want a copy of the current state instead. *)
  last.a_terminals <- wacc.a_terminals;
  last.a_truncated <- wacc.a_truncated;
  last.a_max_depth <- wacc.a_max_depth;
  last.a_choice_points <- wacc.a_choice_points;
  last.a_configs <- wacc.a_configs;
  last.a_deduped <- wacc.a_deduped;
  last.a_pruned <- wacc.a_pruned;
  last.a_por_checks <- wacc.a_por_checks;
  last.a_fast <- wacc.a_fast

let pshared_progress ps ~domains =
  {
    p_configs = Atomic.get ps.ps_configs;
    p_terminals = Atomic.get ps.ps_terminals;
    p_truncated = Atomic.get ps.ps_truncated;
    p_deduped = Atomic.get ps.ps_deduped;
    p_pruned = Atomic.get ps.ps_pruned;
    p_max_depth = Atomic.get ps.ps_max_depth;
    p_domains = domains;
  }

let g_frontier = Lepower_obs.Metrics.gauge "explore.frontier.size"

(* Per-domain busy seconds: on an oversubscribed host (fewer cores than
   domains) these sum to well over the coordinator's wall time, which is
   exactly the dom4-slower-than-dom1 signature on 1-core runners. *)
let g_domain_busy w =
  Lepower_obs.Metrics.gauge (Printf.sprintf "explore.domain%d.busy_s" w)

let g_domain_roots w =
  Lepower_obs.Metrics.gauge (Printf.sprintf "explore.domain%d.roots" w)

let run_parallel ~opts ~acc ~domains ~progress ~analyze ~on_terminal
    ~on_truncated ~on_lowering config =
  let frontier =
    let tok = Lepower_prof.Phase.enter ph_frontier in
    let f =
      split_frontier ~opts ~acc ~analyze ~on_terminal ~on_truncated
        ~target:(domains * 4) config
    in
    Lepower_prof.Phase.leave tok;
    f
  in
  Lepower_obs.Metrics.set g_frontier (Float.of_int (List.length frontier));
  match frontier with
  | [] -> 1 (* the whole space fit in the frontier expansion *)
  | _ ->
    let items = Array.of_list frontier in
    let nd = min domains (Array.length items) in
    let ps = pshared_create () in
    let progress_mutex = Mutex.create () in
    let notify () =
      match progress with
      | None -> ()
      | Some f ->
        Mutex.lock progress_mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock progress_mutex)
          (fun () -> f (pshared_progress ps ~domains:nd))
    in
    let workers =
      List.init nd (fun w ->
          Domain.spawn (fun () ->
              let t0 = Unix.gettimeofday () in
              let wacc = acc_create () in
              let last = acc_create () in
              let tick wacc =
                pshared_publish ps ~last wacc;
                notify ()
              in
              let tick = if progress = None then None else Some tick in
              let visited = visited_create opts 1024 in
              let failed = ref None in
              let tok = Lepower_prof.Phase.enter ph_walk in
              (try
                 let roots = ref 0 in
                 Array.iteri
                   (fun i item ->
                     if i mod nd = w then begin
                       incr roots;
                       explore_item ~opts ~acc:wacc ?tick ~visited ~analyze
                         ~on_terminal ~on_truncated ~on_lowering item
                     end)
                   items;
                 Lepower_obs.Metrics.set (g_domain_roots w)
                   (Float.of_int !roots)
               with e -> failed := Some e);
              Lepower_prof.Phase.leave tok;
              Lepower_obs.Metrics.set (g_domain_busy w)
                (Unix.gettimeofday () -. t0);
              (wacc, !failed)))
    in
    let results = List.map Domain.join workers in
    List.iter (fun (wacc, _) -> acc_merge acc wacc) results;
    (match List.find_map (fun (_, e) -> e) results with
    | Some e -> raise e
    | None -> ());
    nd

let with_mutex mutex f =
  Option.map
    (fun g config rpath ->
      Mutex.lock mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock mutex)
        (fun () -> g config rpath))
    f

(* Adapt a public [Engine.Config_view.t -> unit] callback to the
   internal path-carrying shape. *)
let drop_path f = Option.map (fun g view _rpath -> g view) f

(* ------------------------------------------------------------------ *)
(* Public entry points.                                               *)

(* [serialize]: wrap the callbacks in the mutex when running on several
   domains.  The public [explore] always serializes (arbitrary user
   callbacks); [check_all] opts out for its own pure predicate — locking
   around every terminal would serialize the whole search — and wraps
   only what actually needs it (the analyze hook, failure recording). *)
let explore_inner ~serialize ~(options : Options.t) ~analyze ~on_terminal
    ~on_truncated config =
  let opts = opts_of options ~n_procs:(Array.length config.Engine.procs) in
  let domains = options.Options.domains in
  (* The lowering report fires once per DFS item, not per configuration,
     so a mutex around it is cheap even on the hottest runs. *)
  let on_lowering =
    match options.Options.on_lowering with
    | None -> None
    | Some f when domains <= 1 -> Some f
    | Some f ->
      let mutex = Mutex.create () in
      Some
        (fun reports ->
          Mutex.lock mutex;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock mutex)
            (fun () -> f reports))
  in
  let acc = acc_create () in
  let finish domains_used =
    (* Counters maintained once, from the merged totals, so they stay
       deterministic and race-free even under domain parallelism. *)
    Lepower_obs.Metrics.incr m_configs ~by:acc.a_configs;
    Lepower_obs.Metrics.incr m_choice_points ~by:acc.a_choice_points;
    Lepower_obs.Metrics.incr m_terminals ~by:acc.a_terminals;
    Lepower_obs.Metrics.incr m_truncated ~by:acc.a_truncated;
    Lepower_obs.Metrics.incr m_deduped ~by:acc.a_deduped;
    Lepower_obs.Metrics.incr m_por_pruned ~by:acc.a_pruned;
    Lepower_obs.Metrics.incr m_por_checks ~by:acc.a_por_checks;
    Lepower_obs.Metrics.incr m_por_fast_hits ~by:acc.a_fast;
    {
      terminals = acc.a_terminals;
      truncated = acc.a_truncated;
      max_depth = acc.a_max_depth;
      choice_points = acc.a_choice_points;
      configs_visited = acc.a_configs;
      configs_deduped = acc.a_deduped;
      por_pruned = acc.a_pruned;
      por_checks = acc.a_por_checks;
      por_fast_hits = acc.a_fast;
      domains_used;
    }
  in
  let domains_used =
    Lepower_obs.Span.with_span "explore.explore"
      ~args:
        [
          ("max_steps", Lepower_obs.Json.Int opts.o_max_steps);
          ("dedup", Lepower_obs.Json.Bool opts.o_dedup);
          ("por", Lepower_obs.Json.Bool opts.o_por);
          ("domains", Lepower_obs.Json.Int domains);
        ]
      (fun () ->
        let progress = options.Options.progress in
        if domains <= 1 then begin
          let visited = visited_create opts 4096 in
          let tick =
            Option.map
              (fun f (acc : acc) ->
                f
                  {
                    p_configs = acc.a_configs;
                    p_terminals = acc.a_terminals;
                    p_truncated = acc.a_truncated;
                    p_deduped = acc.a_deduped;
                    p_pruned = acc.a_pruned;
                    p_max_depth = acc.a_max_depth;
                    p_domains = 1;
                  })
              progress
          in
          let tok = Lepower_prof.Phase.enter ph_walk in
          explore_item ~opts ~acc ?tick ~visited ~analyze ~on_terminal
            ~on_truncated ~on_lowering
            (config, initial_histories config, 0, []);
          Lepower_prof.Phase.leave tok;
          1
        end
        else if serialize then begin
          let mutex = Mutex.create () in
          run_parallel ~opts ~acc ~domains ~progress
            ~analyze:(with_mutex mutex analyze)
            ~on_terminal:(with_mutex mutex on_terminal)
            ~on_truncated:(with_mutex mutex on_truncated)
            ~on_lowering config
        end
        else
          run_parallel ~opts ~acc ~domains ~progress ~analyze ~on_terminal
            ~on_truncated ~on_lowering config)
  in
  finish domains_used

let explore ?(options = Options.default) config =
  explore_inner ~serialize:true ~options
    ~analyze:(drop_path options.Options.analyze)
    ~on_terminal:(drop_path options.Options.on_terminal)
    ~on_truncated:(drop_path options.Options.on_truncated)
    config

type violation = {
  trace : Trace.t;
  message : string;
  decisions : Repro.decision list;
}

exception Unsound_predicate of string

let unsound_message =
  "Explore.check_all: the predicate (or analyze hook) inspected the global \
   trace order (Config_view.trace / last_event / config) on a satisfying \
   terminal while dedup or por was enabled; the reductions only preserve \
   trace-order-insensitive properties, so the verdict would be unsound. \
   Disable dedup/por, or restate the predicate with order-insensitive \
   accessors (statuses, decisions, steps, store_state, events_of)."

let check_all_gen ~guard ~(options : Options.t) config predicate =
  (* The predicate is a pure function of the view, so under domain
     parallelism it runs concurrently in the workers with no lock — a
     per-terminal mutex would serialize the entire search.  Only the
     two effectful spots synchronize: recording the first violation, and
     the caller's [analyze] hook (arbitrary user code). *)
  let mutex = Mutex.create () in
  let failure = ref None in
  let record view path message =
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () ->
        if !failure = None then
          failure :=
            Some
              {
                trace = Engine.Config_view.trace view;
                message;
                decisions = List.rev (path ());
              });
    raise Stop_exploration
  in
  (* Soundness guard: dedup/POR explore one representative per
     commutation class, so a verdict is only transferable to the pruned
     interleavings when the predicate never looked at the global order.
     A violation is exempt — its witness schedule is genuinely executed
     — so the guard fires only on satisfying terminals. *)
  let guard_order =
    guard && (options.Options.dedup || options.Options.por)
  in
  let on_terminal view path =
    match predicate view with
    | Ok () ->
      if guard_order && Engine.Config_view.order_accessed view then
        raise (Unsound_predicate unsound_message)
    | Error message -> record view path message
  in
  let on_truncated view path =
    (* The truncated schedule is the whole diagnostic: say where the
       execution was cut off and what it was doing, not just that it
       happened. *)
    let depth = Engine.Config_view.trace_length view in
    let message =
      match Engine.Config_view.last_event view with
      | None -> "execution exceeded the step bound before any shared-memory op"
      | Some last ->
        Fmt.str
          "execution exceeded the step bound at depth %d (possible \
           livelock); last event: %a"
          depth Trace.pp_event last
    in
    record view path message
  in
  match
    explore_inner ~serialize:false ~options
      ~analyze:(with_mutex mutex (drop_path options.Options.analyze))
      ~on_terminal:(Some on_terminal) ~on_truncated:(Some on_truncated) config
  with
  | stats -> Ok stats
  | exception Stop_exploration -> (
    match !failure with
    | Some v -> Error v
    | None -> assert false)

let check_all ?(options = Options.default) config predicate =
  check_all_gen ~guard:true ~options config predicate

module Vtbl = Hashtbl.Make (struct
  type t = Memory.Value.t

  let equal = Memory.Value.equal
  let hash = Memory.Value.hash
end)

let decision_sets ?(options = Options.default) config =
  (* Keyed by the canonical (sorted) decision multiset in a hash table:
     O(1) per terminal instead of a comparison against every set seen so
     far.  The result stays the documented sorted list of sorted lists. *)
  let sets = Vtbl.create 64 in
  let on_terminal view _rpath =
    let ds =
      Engine.Config_view.decision_values view
      |> List.sort Memory.Value.compare
    in
    let key = Memory.Value.List ds in
    if not (Vtbl.mem sets key) then Vtbl.add sets key ds;
    match options.Options.on_terminal with None -> () | Some f -> f view
  in
  ignore
    (explore_inner ~serialize:true ~options
       ~analyze:(drop_path options.Options.analyze)
       ~on_terminal:(Some on_terminal)
       ~on_truncated:(drop_path options.Options.on_truncated)
       config);
  Vtbl.fold (fun _ ds acc -> ds :: acc) sets []
  |> List.sort (List.compare Memory.Value.compare)
