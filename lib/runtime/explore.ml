type stats = {
  terminals : int;
  truncated : int;
  max_depth : int;
  choice_points : int;
  configs_visited : int;
}

exception Stop_exploration

let m_configs = Lepower_obs.Metrics.counter "explore.configs_visited"
let m_choice_points = Lepower_obs.Metrics.counter "explore.choice_points"
let m_terminals = Lepower_obs.Metrics.counter "explore.terminals"
let m_truncated = Lepower_obs.Metrics.counter "explore.truncated"

let explore ?(max_steps = 10_000) ?(crash_faults = false) ?analyze ?on_terminal
    ?on_truncated config =
  let terminals = ref 0
  and truncated = ref 0
  and max_depth = ref 0
  and choice_points = ref 0
  and configs_visited = ref 0 in
  let emit hook n config =
    incr n;
    match hook with None -> () | Some f -> f config
  in
  let rec go config depth =
    if depth > !max_depth then max_depth := depth;
    incr configs_visited;
    Lepower_obs.Metrics.incr m_configs;
    match Engine.enabled config with
    | [] ->
      (match analyze with None -> () | Some f -> f config);
      emit on_terminal terminals config
    | pids when depth >= max_steps ->
      ignore pids;
      emit on_truncated truncated config
    | pids ->
      (* A choice point is a configuration where the adversary has more
         than one move: several enabled processes, or (with crash faults)
         the step/crash alternative for even a single process. *)
      if (match pids with _ :: _ :: _ -> true | _ -> crash_faults) then begin
        incr choice_points;
        Lepower_obs.Metrics.incr m_choice_points
      end;
      List.iter
        (fun pid ->
          go (Engine.step config pid) (depth + 1);
          if crash_faults then go (Engine.crash config pid) depth)
        pids
  in
  Lepower_obs.Span.with_span "explore.explore"
    ~args:[ ("max_steps", Lepower_obs.Json.Int max_steps) ]
    (fun () -> go config 0);
  Lepower_obs.Metrics.incr m_terminals ~by:!terminals;
  Lepower_obs.Metrics.incr m_truncated ~by:!truncated;
  {
    terminals = !terminals;
    truncated = !truncated;
    max_depth = !max_depth;
    choice_points = !choice_points;
    configs_visited = !configs_visited;
  }

type violation = { trace : Trace.t; message : string }

let check_all ?max_steps ?crash_faults ?analyze config predicate =
  let failure = ref None in
  let record config message =
    failure := Some { trace = Engine.trace config; message };
    raise Stop_exploration
  in
  let on_terminal config =
    match predicate config with
    | Ok () -> ()
    | Error message -> record config message
  in
  let on_truncated config =
    (* The truncated schedule is the whole diagnostic: say where the
       execution was cut off and what it was doing, not just that it
       happened. *)
    let depth = List.length config.Engine.trace in
    let message =
      match config.Engine.trace with
      | [] -> "execution exceeded the step bound before any shared-memory op"
      | last :: _ ->
        Fmt.str
          "execution exceeded the step bound at depth %d (possible \
           livelock); last event: %a"
          depth Trace.pp_event last
    in
    record config message
  in
  match
    explore ?max_steps ?crash_faults ?analyze ~on_terminal ~on_truncated config
  with
  | stats -> Ok stats
  | exception Stop_exploration -> (
    match !failure with
    | Some v -> Error v
    | None -> assert false)

let decision_sets ?max_steps config =
  let module Vls = Set.Make (struct
    type t = Memory.Value.t list

    let compare = List.compare Memory.Value.compare
  end) in
  let sets = ref Vls.empty in
  let on_terminal config =
    let ds =
      Array.to_list config.Engine.procs
      |> List.filter_map Proc.decision
      |> List.sort Memory.Value.compare
    in
    sets := Vls.add ds !sets
  in
  ignore (explore ?max_steps ~on_terminal config);
  Vls.elements !sets
