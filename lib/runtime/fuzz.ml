module Obs = Lepower_obs
module Json = Lepower_obs.Json

let m_runs = Obs.Metrics.counter "fuzz.runs"
let m_violations = Obs.Metrics.counter "fuzz.violations"
let ph_run = Lepower_prof.Phase.make "fuzz.run"

type sched_kind =
  | Random_walk
  | Pct of { depth : int }
  | Starve of { victim : int; stall : int }

let kind_name = function
  | Random_walk -> "random"
  | Pct _ -> "pct"
  | Starve _ -> "starve"

let instantiate kind ~seed ~max_steps =
  match kind with
  | Random_walk -> Sched.random ~seed
  | Pct { depth } -> Sched.pct ~seed ~depth ~max_steps ()
  | Starve { victim; stall } ->
    Sched.starve ~victim ~stall (Sched.random ~seed)

type run = {
  final : Engine.config;
  decisions : Repro.decision list;
  sched_name : string;
  injected : int;
  hit_step_limit : bool;
}

(* Internal run result carrying a view of the final state instead of a
   materialized configuration.  On the arena backend the machine is
   never stepped after finishing, so the borrow is sound for the rest
   of the campaign iteration; [campaign] only materializes (via the
   view) when a certificate or violation report actually needs it. *)
type vrun = {
  v_final : Engine.Config_view.t;
  v_decisions : Repro.decision list;
  v_sched_name : string;
  v_injected : int;
  v_hit_step_limit : bool;
}

let run_view ?(max_steps = 1_000) ?(plan = Faults.none)
    ?(backend = Engine.Persistent) ~kind ~seed config =
  Obs.Metrics.incr m_runs;
  let sched = instantiate kind ~seed ~max_steps in
  let rng = Random.State.make [| 0xfa17; seed |] in
  (* Faults never add or remove objects, so the fault roller's location
     list is fixed for the whole run — computed once, not per decision. *)
  let locs = Memory.Store.locs config.Engine.store in
  let finish ~hit final log injected =
    {
      v_final = final;
      v_decisions = List.rev log;
      v_sched_name = Printf.sprintf "fuzz:%s" sched.Sched.name;
      v_injected = injected;
      v_hit_step_limit = hit;
    }
  in
  (* Both loops make rng and scheduler calls in exactly the same order,
     so a seed produces the same decision log on either backend. *)
  let go_persistent () =
    let rec go config log crashes faults =
      if config.Engine.time >= max_steps then
        finish ~hit:true (Engine.Config_view.of_config config) log
          (crashes + faults)
      else
        match Engine.enabled config with
        | [] ->
          finish ~hit:false (Engine.Config_view.of_config config) log
            (crashes + faults)
        | enabled -> (
          match
            Faults.decide ~plan ~rng ~crashes ~faults ~sched
              ~time:config.Engine.time ~enabled ~locs
          with
          | None ->
            finish ~hit:false (Engine.Config_view.of_config config) log
              (crashes + faults)
          | Some d ->
            (* The engine protocol: [observe] fires for every decision that
               scheduled a process, lost writes included — the scheduler
               cannot tell a lost step from a real one, just as the process
               cannot. *)
            (match d with
            | Repro.Step pid | Repro.Lose pid ->
              sched.Sched.observe ~time:config.Engine.time ~pid
            | Repro.Crash _ | Repro.Stick _ -> ());
            let config' = Faults.apply config d in
            let crashes' =
              match d with Repro.Crash _ -> crashes + 1 | _ -> crashes
            in
            let faults' =
              match d with
              | Repro.Lose _ | Repro.Stick _ -> faults + 1
              | _ -> faults
            in
            go config' (d :: log) crashes' faults')
    in
    go config [] 0 0
  in
  let go_arena () =
    let m = Engine.Machine.of_config config in
    let rec go log crashes faults =
      if Engine.Machine.time m >= max_steps then
        finish ~hit:true (Engine.Config_view.of_machine m) log
          (crashes + faults)
      else
        match Engine.Machine.enabled m with
        | [] ->
          finish ~hit:false (Engine.Config_view.of_machine m) log
            (crashes + faults)
        | enabled -> (
          match
            Faults.decide ~plan ~rng ~crashes ~faults ~sched
              ~time:(Engine.Machine.time m) ~enabled ~locs
          with
          | None ->
            finish ~hit:false (Engine.Config_view.of_machine m) log
              (crashes + faults)
          | Some d ->
            (match d with
            | Repro.Step pid | Repro.Lose pid ->
              sched.Sched.observe ~time:(Engine.Machine.time m) ~pid
            | Repro.Crash _ | Repro.Stick _ -> ());
            Faults.apply_machine m d;
            let crashes' =
              match d with Repro.Crash _ -> crashes + 1 | _ -> crashes
            in
            let faults' =
              match d with
              | Repro.Lose _ | Repro.Stick _ -> faults + 1
              | _ -> faults
            in
            go (d :: log) crashes' faults')
    in
    go [] 0 0
  in
  let tok = Lepower_prof.Phase.enter ph_run in
  let r =
    match backend with
    | Engine.Persistent -> go_persistent ()
    | Engine.Arena -> go_arena ()
  in
  Lepower_prof.Phase.leave tok;
  r

let run ?max_steps ?plan ?backend ~kind ~seed config =
  let r = run_view ?max_steps ?plan ?backend ~kind ~seed config in
  {
    final = Engine.Config_view.config r.v_final;
    decisions = r.v_decisions;
    sched_name = r.v_sched_name;
    injected = r.v_injected;
    hit_step_limit = r.v_hit_step_limit;
  }

(* Live campaign progress: one callback per completed run (campaigns are
   run-bounded, so per-run cadence is cheap), carrying the totals a
   heartbeat needs to show runs/ETA/injection counts. *)
type progress = {
  p_run : int;  (** runs completed so far *)
  p_runs_total : int;
  p_injected : int;
  p_steps : int;
}

type outcome = {
  runs : int;
  first_violation : int option;
  injected : int;
  steps : int;
  cert : Repro.t option;
  shrink : Repro.shrink_stats option;
  message : string option;
}

let campaign ?(runs = 256) ?(seed = 1) ?(max_steps = 1_000)
    ?(plan = Faults.none) ?(kind = Pct { depth = 3 }) ?(shrink = true)
    ?(subject = Json.Null) ?backend ?progress ~failing fresh_config =
  Obs.Span.with_span "fuzz.campaign"
    ~args:
      [
        ("kind", Json.String (kind_name kind));
        ("runs", Json.Int runs);
        ("max_steps", Json.Int max_steps);
      ]
  @@ fun () ->
  let rec go i injected steps =
    if i >= runs then
      {
        runs = i;
        first_violation = None;
        injected;
        steps;
        cert = None;
        shrink = None;
        message = None;
      }
    else
      let config0 = fresh_config () in
      let r =
        run_view ~max_steps ~plan ?backend ~kind ~seed:(seed + i) config0
      in
      let injected = injected + r.v_injected in
      let steps = steps + List.length r.v_decisions in
      (match progress with
      | Some f ->
        f { p_run = i + 1; p_runs_total = runs; p_injected = injected;
            p_steps = steps }
      | None -> ());
      (* Non-violating runs never materialize a configuration: the
         predicate reads the machine's final state through the view. *)
      match failing r.v_final with
      | None -> go (i + 1) injected steps
      | Some message ->
        Obs.Metrics.incr m_violations;
        let cert =
          Repro.of_decisions ~subject ~sched:r.v_sched_name ~seed:(seed + i)
            ~max_steps ~message config0 r.v_decisions
        in
        let cert, stats =
          if shrink then
            let failing c = failing c <> None in
            let cert, stats = Repro.shrink ~failing ~config0 cert in
            (cert, Some stats)
          else (cert, None)
        in
        {
          runs = i + 1;
          first_violation = Some i;
          injected;
          steps;
          cert = Some cert;
          shrink = stats;
          message = Some message;
        }
  in
  go 0 0 0
