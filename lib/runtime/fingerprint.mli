(** Canonical configuration fingerprints for exploration memoization.

    An {!Engine.config} cannot be compared structurally: each process's
    remaining program is a closure.  But programs are {e deterministic}
    functions of the responses they receive (the purity requirement of
    {!Program}), so within one exploration — where every process starts
    from a fixed program — a process's local state is fully determined by
    the sequence of [(loc, op, result)] triples it has performed, and a
    whole configuration by

    - the store's state bindings,
    - each process's status, and
    - each process's operation history.

    Two configurations with equal fingerprints have the same reachable
    futures and the same per-process trace projections; only the global
    interleaving order of their traces (and the [time] stamps, which are
    deliberately {e excluded}) may differ.  This is exactly the
    equivalence the explorer's [~dedup] mode prunes on.

    Histories are hash-chained persistent lists: extending by one event is
    O(size of that event's values), and the spine carries precomputed
    hashes so visited-set insertion never rehashes a deep history. *)

type history
(** One process's operation history, newest first, with precomputed
    chained hashes. *)

val history_empty : history

val history_extend : history -> Trace.event -> history
(** Record one more event for the owning process.  The event's [time]
    and [pid] fields are ignored: only [(loc, op, result)] enter the
    fingerprint, keeping it insensitive to the global interleaving. *)

val history_extend_op :
  history -> loc:string -> op:Memory.Value.t -> result:Memory.Value.t -> history
(** {!history_extend} without requiring a materialized {!Trace.event} —
    the arena-backed explorer extends histories straight from the
    machine's step delta. *)

type hcons
(** A hash-consing table for history extension, scoped to one walk. *)

val hcons_create : int -> hcons

val history_extend_hc :
  hcons ->
  history ->
  loc:string ->
  op:Memory.Value.t ->
  result:Memory.Value.t ->
  history
(** {!history_extend_op} through a consing table: re-extending the same
    (physical) tail with an equal event returns the {e same} history
    block, so histories re-derived along commuting interleavings become
    physically equal and {!history_equal}'s identity shortcut makes
    visited-set hits O(procs) pointer checks instead of full spine
    walks.  Purely an optimization — the returned history is
    structurally identical to {!history_extend_op}'s, with the same
    hash, and compares correctly against un-consed histories. *)

val history_hash : history -> int

val history_equal : history -> history -> bool
(** Structural equality on [(loc, op, result)] triples, physical-identity
    shortcut first — sibling branches share spines, so comparing a stored
    history against a live one is usually O(1).  This is the per-process
    component of {!equal}, exposed for visited-set implementations that
    keep histories outside the fingerprint record (the journal-free
    reduced walk's snapshot table). *)

type t
(** A fingerprint: canonical store bindings + per-process status and
    history, with a precomputed hash. *)

val make : Engine.config -> history array -> t
(** [make config histories] — [histories.(pid)] must be the history of
    events process [pid] performed, as maintained by the explorer via
    {!history_extend}. *)

val equal : t -> t -> bool
val hash : t -> int

(** {2 Incremental hashing}

    The fingerprint hash is built from two {e commutative} sums — one
    term per store binding ({!store_binding_hash}), one term per process
    ({!proc_hash}) — combined by {!combine}.  Because the sums commute,
    a caller that knows which single binding or process a step changed
    can maintain them in O(1): [sum - old_term + new_term] (native
    wrap-around [+]/[-]).  {!sums} computes them from scratch;
    {!of_parts} assembles a fingerprint from maintained sums.
    [make config hs] and
    [of_parts ~store_sum ~proc_sum ...] agree whenever the sums equal
    [sums config hs] — the property the test suite checks over random
    op sequences. *)

val store_binding_hash : string -> Memory.Value.t -> int
(** The store sum's term for one [loc -> state] binding. *)

val store_seed : string -> int
(** The location-only prefix of {!store_binding_hash}:
    [store_binding_hash loc v = Memory.Value.hash_fold (store_seed loc) v].
    Locations are fixed for the lifetime of a walk, so a hot loop can
    precompute the seed per location and skip the string fold on every
    step delta. *)

val proc_hash : pid:int -> Proc.status -> history -> int
(** The process sum's term for one process (the pid is baked into the
    term, so the sum distinguishes permutations). *)

val combine : store_sum:int -> proc_sum:int -> int
(** Fold the two sums into the final non-negative hash. *)

val sums : Engine.config -> history array -> int * int
(** [(store_sum, proc_sum)] computed from scratch, without
    materializing binding lists. *)

val of_parts :
  store_sum:int ->
  proc_sum:int ->
  store:(string * Memory.Value.t) list ->
  procs:(Proc.status * history) array ->
  t
(** Assemble a fingerprint from incrementally-maintained sums plus the
    canonical structural components (used by [equal] on hash
    collision).  [store] must be sorted by location; [procs.(pid)] must
    match the terms folded into [proc_sum]. *)

module Tbl : Hashtbl.S with type key = t

val digest : Engine.config -> string
(** A fixed-width hex digest of the {e exact} configuration — store
    bindings, per-process status and step counts, and the full trace in
    global order with [time]/[pid] stamps.  Where {!make} deliberately
    identifies commuting schedules, [digest] separates them: it is the
    bit-for-bit certificate {!Repro} records at the start and end of a
    run and re-checks after replay. *)
