(** Canonical configuration fingerprints for exploration memoization.

    An {!Engine.config} cannot be compared structurally: each process's
    remaining program is a closure.  But programs are {e deterministic}
    functions of the responses they receive (the purity requirement of
    {!Program}), so within one exploration — where every process starts
    from a fixed program — a process's local state is fully determined by
    the sequence of [(loc, op, result)] triples it has performed, and a
    whole configuration by

    - the store's state bindings,
    - each process's status, and
    - each process's operation history.

    Two configurations with equal fingerprints have the same reachable
    futures and the same per-process trace projections; only the global
    interleaving order of their traces (and the [time] stamps, which are
    deliberately {e excluded}) may differ.  This is exactly the
    equivalence the explorer's [~dedup] mode prunes on.

    Histories are hash-chained persistent lists: extending by one event is
    O(size of that event's values), and the spine carries precomputed
    hashes so visited-set insertion never rehashes a deep history. *)

type history
(** One process's operation history, newest first, with precomputed
    chained hashes. *)

val history_empty : history

val history_extend : history -> Trace.event -> history
(** Record one more event for the owning process.  The event's [time]
    and [pid] fields are ignored: only [(loc, op, result)] enter the
    fingerprint, keeping it insensitive to the global interleaving. *)

type t
(** A fingerprint: canonical store bindings + per-process status and
    history, with a precomputed hash. *)

val make : Engine.config -> history array -> t
(** [make config histories] — [histories.(pid)] must be the history of
    events process [pid] performed, as maintained by the explorer via
    {!history_extend}. *)

val equal : t -> t -> bool
val hash : t -> int

module Tbl : Hashtbl.S with type key = t

val digest : Engine.config -> string
(** A fixed-width hex digest of the {e exact} configuration — store
    bindings, per-process status and step counts, and the full trace in
    global order with [time]/[pid] stamps.  Where {!make} deliberately
    identifies commuting schedules, [digest] separates them: it is the
    bit-for-bit certificate {!Repro} records at the start and end of a
    run and re-checks after replay. *)
