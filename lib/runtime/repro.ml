module Json = Lepower_obs.Json

let m_replays = Lepower_obs.Metrics.counter "repro.replays"
let m_shrink_attempts = Lepower_obs.Metrics.counter "repro.shrink_attempts"
let ph_record = Lepower_prof.Phase.make "repro.record"

type decision =
  | Step of int
  | Crash of int
  | Lose of int
  | Stick of string

module Decision = struct
  type t = decision

  let pid = function
    | Step pid | Crash pid | Lose pid -> Some pid
    | Stick _ -> None

  let equal (a : t) (b : t) = a = b

  let pp ppf = function
    | Step pid -> Fmt.pf ppf "s%d" pid
    | Crash pid -> Fmt.pf ppf "c%d" pid
    | Lose pid -> Fmt.pf ppf "l%d" pid
    | Stick loc -> Fmt.pf ppf "k:%s" loc

  let to_json = function
    | Step pid -> Json.String (Printf.sprintf "s%d" pid)
    | Crash pid -> Json.String (Printf.sprintf "c%d" pid)
    | Lose pid -> Json.String (Printf.sprintf "l%d" pid)
    | Stick loc -> Json.String (Printf.sprintf "k:%s" loc)

  let of_json = function
    | Json.String s when String.length s >= 2 -> (
      let num () =
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some pid when pid >= 0 -> Ok pid
        | Some _ | None -> Error (Printf.sprintf "bad decision pid: %S" s)
      in
      match s.[0] with
      | 's' -> Result.map (fun pid -> Step pid) (num ())
      | 'c' -> Result.map (fun pid -> Crash pid) (num ())
      | 'l' -> Result.map (fun pid -> Lose pid) (num ())
      | 'k' ->
        if s.[1] = ':' && String.length s > 2 then
          Ok (Stick (String.sub s 2 (String.length s - 2)))
        else Error (Printf.sprintf "bad stuck-at decision: %S" s)
      | _ -> Error (Printf.sprintf "bad decision tag: %S" s))
    | j ->
      Error
        ("decision is not an \"s<pid>\"/\"c<pid>\"/\"l<pid>\"/\"k:<loc>\" \
          string: " ^ Json.to_string j)
end

type t = {
  format : int;
  subject : Json.t;
  sched : string;
  seed : int option;
  max_steps : int;
  message : string;
  version : string;
  initial : string;
  final : string;
  decisions : decision list;
}

let with_message t message = { t with message }
let with_subject t subject = { t with subject }

let git_version =
  let version =
    lazy
      (match Sys.getenv_opt "LEPOWER_GIT_DESCRIBE" with
      | Some v when v <> "" -> v
      | _ -> (
        try
          let ic =
            Unix.open_process_in "git describe --always --dirty 2>/dev/null"
          in
          let line = try input_line ic with End_of_file -> "" in
          match (Unix.close_process_in ic, line) with
          | Unix.WEXITED 0, line when line <> "" -> line
          | _ -> "unknown"
        with Unix.Unix_error _ | Sys_error _ -> "unknown"))
  in
  fun () -> Lazy.force version

(* ------------------------------------------------------------------ *)
(* Recording.                                                          *)

let recording (inner : Sched.t) =
  let log = ref [] in
  let observe ~time ~pid =
    log := Step pid :: !log;
    inner.Sched.observe ~time ~pid
  in
  ( { inner with Sched.observe },
    fun () -> List.rev !log )

let make_cert ?(subject = Json.Null) ?(sched = "?") ?seed ?(max_steps = 0)
    ~message ~initial ~final decisions =
  {
    format = 1;
    subject;
    sched;
    seed;
    max_steps;
    message;
    version = git_version ();
    initial;
    final;
    decisions;
  }

let record ?subject ?seed ?max_steps ~sched config =
  let sched', log = recording sched in
  (* The [repro.record] phase brackets only the certificate work — the
     two digests and the cert build — so it isolates recording overhead
     from the run it observes. *)
  let tok = Lepower_prof.Phase.enter ph_record in
  let initial = Fingerprint.digest config in
  Lepower_prof.Phase.leave tok;
  let outcome = Engine.run ?max_steps ~sched:sched' config in
  let tok = Lepower_prof.Phase.enter ph_record in
  let cert =
    make_cert ?subject ~sched:sched.Sched.name ?seed
      ?max_steps:(Some (Option.value ~default:1_000_000 max_steps))
      ~message:"" ~initial
      ~final:(Fingerprint.digest outcome.Engine.final)
      (log ())
  in
  Lepower_prof.Phase.leave tok;
  (outcome, cert)

(* ------------------------------------------------------------------ *)
(* Replay.                                                             *)

type applied = {
  final : Engine.config;
  applied : decision list;
  skipped : int;
}

let apply ?(strict = true) ?(backend = Engine.Persistent) config decisions =
  Lepower_obs.Metrics.incr m_replays;
  let inapplicable idx d enabled =
    Fmt.str "decision %d (%a) is not applicable: enabled = {%s}" idx
      Decision.pp d
      (String.concat ", " (List.map string_of_int enabled))
  in
  match backend with
  | Engine.Arena ->
    (* Same loop over the mutable machine.  Applicability, skipping and
       error strings are identical, so a certificate replays bit for bit
       on either backend (the digest gates in [replay] check exactly
       that). *)
    let m = Engine.Machine.of_config config in
    let rec go applied skipped idx = function
      | [] ->
        Ok
          {
            final = Engine.Machine.config m;
            applied = List.rev applied;
            skipped;
          }
      | d :: rest ->
        let enabled = Engine.Machine.enabled m in
        let applicable =
          match Decision.pid d with
          | Some pid -> List.mem pid enabled
          | None -> (
            match d with
            | Stick loc -> Engine.Machine.mem_loc m loc
            | Step _ | Crash _ | Lose _ -> false)
        in
        if not applicable then
          if strict then Error (inapplicable idx d enabled)
          else go applied (skipped + 1) (idx + 1) rest
        else begin
          (match d with
          | Step pid -> Engine.Machine.step m pid
          | Crash pid -> Engine.Machine.crash m pid
          | Lose pid -> Engine.Machine.step_lost m pid
          | Stick loc -> Engine.Machine.freeze m loc);
          go (d :: applied) skipped (idx + 1) rest
        end
    in
    go [] 0 0 decisions
  | Engine.Persistent ->
  let rec go config applied skipped idx = function
    | [] -> Ok { final = config; applied = List.rev applied; skipped }
    | d :: rest ->
      let enabled = Engine.enabled config in
      let applicable =
        match Decision.pid d with
        | Some pid -> List.mem pid enabled
        | None -> (
          match d with
          | Stick loc ->
            Memory.Store.spec_of config.Engine.store loc <> None
          | Step _ | Crash _ | Lose _ -> false)
      in
      if not applicable then
        if strict then Error (inapplicable idx d enabled)
        else go config applied (skipped + 1) (idx + 1) rest
      else
        let config' =
          match d with
          | Step pid -> Engine.step config pid
          | Crash pid -> Engine.crash config pid
          | Lose pid -> Engine.step_lost config pid
          | Stick loc ->
            { config with
              Engine.store = Memory.Store.freeze config.Engine.store loc }
        in
        go config' (d :: applied) skipped (idx + 1) rest
  in
  go config [] 0 0 decisions

let of_decisions ?subject ?sched ?seed ?max_steps ~message config decisions =
  match apply ~strict:true config decisions with
  | Error e -> invalid_arg ("Repro.of_decisions: " ^ e)
  | Ok { final; _ } ->
    make_cert ?subject ?sched ?seed ?max_steps ~message
      ~initial:(Fingerprint.digest config)
      ~final:(Fingerprint.digest final)
      decisions

let replay ?backend t config =
  let initial = Fingerprint.digest config in
  if not (String.equal initial t.initial) then
    Error
      (Printf.sprintf
         "initial fingerprint mismatch: certificate %s, rebuilt instance %s \
          (wrong subject, parameters, or code version %s)"
         t.initial initial t.version)
  else
    match apply ~strict:true ?backend config t.decisions with
    | Error e -> Error ("replay diverged: " ^ e)
    | Ok { final; _ } ->
      let digest = Fingerprint.digest final in
      if String.equal digest t.final then Ok final
      else
        Error
          (Printf.sprintf
             "final fingerprint mismatch: certificate %s, replay %s" t.final
             digest)

(* ------------------------------------------------------------------ *)
(* Shrinking: delta debugging over the decision log.                   *)

type shrink_stats = { attempts : int; original : int; shrunk : int }

let drop_nth ds i = List.filteri (fun j _ -> j <> i) ds

(* Classic ddmin (Zeller & Hildebrandt): try removing chunks at
   increasing granularity; [test] returns the {e effective} decision list
   of a still-failing candidate (lenient replay also sheds decisions that
   became inapplicable), or [None]. *)
let ddmin test ds =
  let rec loop ds n =
    let len = List.length ds in
    if len < 2 || n > len then ds
    else
      let chunk = max 1 (len / n) in
      let rec complements i =
        if i >= n then None
        else
          let lo = i * chunk in
          let hi = if i = n - 1 then len else min len (lo + chunk) in
          if hi <= lo then complements (i + 1)
          else
            let cand = List.filteri (fun j _ -> j < lo || j >= hi) ds in
            match test cand with
            | Some smaller -> Some smaller
            | None -> complements (i + 1)
      in
      match complements 0 with
      | Some smaller -> loop smaller (max (n - 1) 2)
      | None -> if n >= len then ds else loop ds (min len (n * 2))
  in
  loop ds 2

(* Drop each adversary decision — crash, lost write, stuck-at —
   individually; restart the scan after every success (a removal can
   make others removable).  Keeps the fault set minimal: a surviving
   fault decision is one the failure actually needs. *)
let adversary_pass test ds =
  let rec go i ds =
    if i >= List.length ds then ds
    else
      match List.nth ds i with
      | Step _ -> go (i + 1) ds
      | Crash _ | Lose _ | Stick _ -> (
        match test (drop_nth ds i) with
        | Some smaller -> go 0 smaller
        | None -> go (i + 1) ds)
  in
  go 0 ds

(* Drop every decision of one pid at once — merging that process out of
   the schedule entirely.  The big first cut for failures that only need
   a few of the participants. *)
let pid_pass test ds =
  let pids ds = List.sort_uniq compare (List.filter_map Decision.pid ds) in
  let rec go tried ds =
    let next =
      List.find_opt (fun pid -> not (List.mem pid tried)) (pids ds)
    in
    match next with
    | None -> ds
    | Some pid -> (
      let cand = List.filter (fun d -> Decision.pid d <> Some pid) ds in
      if List.length cand = List.length ds then go (pid :: tried) ds
      else
        match test cand with
        | Some smaller -> go (pid :: tried) smaller
        | None -> go (pid :: tried) ds)
  in
  go [] ds

let shrink ?(budget = 4_000) ~failing ~config0 t =
  Lepower_obs.Span.with_span "repro.shrink"
    ~args:[ ("decisions", Json.Int (List.length t.decisions)) ]
  @@ fun () ->
  let attempts = ref 0 in
  let test ds =
    if !attempts >= budget then None
    else begin
      incr attempts;
      Lepower_obs.Metrics.incr m_shrink_attempts;
      match apply ~strict:false config0 ds with
      | Error _ -> None
      | Ok { final; applied; _ } ->
        (* Candidates replay on the persistent backend, so the view is
           a free wrapper over the already-materialized final. *)
        if failing (Engine.Config_view.of_config final) then Some applied
        else None
    end
  in
  let original = List.length t.decisions in
  match test t.decisions with
  | None ->
    (* The recorded schedule does not fail under this predicate (or the
       budget is 0): nothing sound to shrink. *)
    (t, { attempts = !attempts; original; shrunk = original })
  | Some effective ->
    let rec fixpoint ds =
      let ds' = ddmin test (adversary_pass test (pid_pass test ds)) in
      if List.length ds' < List.length ds && !attempts < budget then
        fixpoint ds'
      else ds'
    in
    let shrunk = fixpoint effective in
    let cert =
      of_decisions ~subject:t.subject ~sched:t.sched ?seed:t.seed
        ~max_steps:t.max_steps ~message:t.message config0 shrunk
    in
    (cert, { attempts = !attempts; original; shrunk = List.length shrunk })

(* ------------------------------------------------------------------ *)
(* Serialization: one strict Lepower_obs.Json document.                *)

let to_json t =
  Json.Obj
    [
      ("kind", Json.String "lepower-repro-cert");
      ("format", Json.Int t.format);
      ("subject", t.subject);
      ("sched", Json.String t.sched);
      ("seed", match t.seed with Some s -> Json.Int s | None -> Json.Null);
      ("max_steps", Json.Int t.max_steps);
      ("message", Json.String t.message);
      ("version", Json.String t.version);
      ("initial", Json.String t.initial);
      ("final", Json.String t.final);
      ("decisions", Json.List (List.map Decision.to_json t.decisions));
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let field name =
    match Json.member name json with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "certificate is missing %S" name)
  in
  let string name =
    let* v = field name in
    match v with
    | Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "certificate field %S is not a string" name)
  in
  let int name =
    let* v = field name in
    match v with
    | Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "certificate field %S is not an int" name)
  in
  let* kind = string "kind" in
  if kind <> "lepower-repro-cert" then
    Error (Printf.sprintf "not a repro certificate (kind %S)" kind)
  else
    let* format = int "format" in
    if format <> 1 then
      Error (Printf.sprintf "unsupported certificate format %d" format)
    else
      let* subject = field "subject" in
      let* sched = string "sched" in
      let* seed =
        let* v = field "seed" in
        match v with
        | Json.Null -> Ok None
        | Json.Int i -> Ok (Some i)
        | _ -> Error "certificate field \"seed\" is not an int or null"
      in
      let* max_steps = int "max_steps" in
      let* message = string "message" in
      let* version = string "version" in
      let* initial = string "initial" in
      let* final = string "final" in
      let* decisions =
        let* v = field "decisions" in
        match v with
        | Json.List ds ->
          List.fold_left
            (fun acc d ->
              let* acc = acc in
              let* d = Decision.of_json d in
              Ok (d :: acc))
            (Ok []) ds
          |> Result.map List.rev
        | _ -> Error "certificate field \"decisions\" is not a list"
      in
      Ok
        {
          format;
          subject;
          sched;
          seed;
          max_steps;
          message;
          version;
          initial;
          final;
          decisions;
        }

let save path t = Lepower_obs.Export.write_json path (to_json t)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
    match Json.of_string contents with
    | Error e -> Error (Printf.sprintf "%s: invalid JSON: %s" path e)
    | Ok json -> of_json json)
